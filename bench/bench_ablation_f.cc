// Ablation -- the layered-Dewey bound f (the paper's §2.1 "constant
// f"). Sweeps f at fixed tree shapes and reports the design trade-off:
// small f minimizes label bytes but adds layers (more climb work per
// LCA); large f approaches plain Dewey's per-label growth. The sweet
// spot for deep trees sits at moderate f (8-64).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "labeling/layered_dewey.h"

namespace crimson {
namespace {

void BM_AblationF(benchmark::State& state) {
  uint32_t f = static_cast<uint32_t>(state.range(0));
  const PhyloTree& tree =
      bench::CachedCaterpillar(static_cast<uint32_t>(state.range(1)));
  LayeredDeweyScheme scheme(f);
  Status s = scheme.Build(tree);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Rng rng(23);
  std::vector<std::pair<NodeId, NodeId>> queries(4096);
  for (auto& q : queries) {
    q.first = static_cast<NodeId>(rng.Uniform(tree.size()));
    q.second = static_cast<NodeId>(rng.Uniform(tree.size()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = queries[i++ & 4095];
    benchmark::DoNotOptimize(scheme.Lca(a, b));
  }
  state.counters["f"] = static_cast<double>(f);
  state.counters["layers"] = static_cast<double>(scheme.num_layers());
  state.counters["max_label_B"] = static_cast<double>(scheme.MaxLabelBytes());
  state.counters["avg_label_B"] =
      static_cast<double>(scheme.TotalLabelBytes()) /
      static_cast<double>(tree.size());
}

// Args: {f, depth}.
BENCHMARK(BM_AblationF)
    ->Args({3, 100000})->Args({4, 100000})->Args({8, 100000})
    ->Args({16, 100000})->Args({64, 100000})->Args({256, 100000})
    ->Args({8, 1000000})->Args({64, 1000000});

void BM_AblationF_Yule(benchmark::State& state) {
  uint32_t f = static_cast<uint32_t>(state.range(0));
  const PhyloTree& tree = bench::CachedYule(100000);
  LayeredDeweyScheme scheme(f);
  if (!scheme.Build(tree).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(24);
  std::vector<std::pair<NodeId, NodeId>> queries(4096);
  for (auto& q : queries) {
    q.first = static_cast<NodeId>(rng.Uniform(tree.size()));
    q.second = static_cast<NodeId>(rng.Uniform(tree.size()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = queries[i++ & 4095];
    benchmark::DoNotOptimize(scheme.Lca(a, b));
  }
  state.counters["f"] = static_cast<double>(f);
  state.counters["layers"] = static_cast<double>(scheme.num_layers());
  state.counters["avg_label_B"] =
      static_cast<double>(scheme.TotalLabelBytes()) /
      static_cast<double>(tree.size());
}

BENCHMARK(BM_AblationF_Yule)->Arg(3)->Arg(8)->Arg(64);

}  // namespace
}  // namespace crimson
