// E11 -- the Benchmark Manager end-to-end (paper §2.2 / Fig. 3):
// sample -> project -> reconstruct -> compare, for NJ and UPGMA across
// sample sizes. RF accuracy is exported as a counter next to latency.
//
// Shape expectations:
//  * rf_norm(NJ) <= rf_norm(UPGMA) on the rate-perturbed (non-clock)
//    gold standard;
//  * both improve (rf falls) as sequence length grows;
//  * runtime is dominated by the O(k^3) reconstruction for large k.

#include <benchmark/benchmark.h>

#include <memory>

#include "crimson/benchmark_manager.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace crimson {
namespace {

struct Gold {
  PhyloTree tree;
  std::map<std::string, std::string> seqs;
  std::unique_ptr<BenchmarkManager> manager;
};

/// Gold standard: birth-death tree (512 extant species), clock broken,
/// sequences of the requested length.
const Gold& CachedGold(size_t seq_length) {
  static auto* cache = new std::map<size_t, std::unique_ptr<Gold>>();
  auto it = cache->find(seq_length);
  if (it == cache->end()) {
    auto gold = std::make_unique<Gold>();
    Rng rng(0xC0FFEE);
    BirthDeathOptions opts;
    opts.n_leaves = 512;
    opts.death_rate = 0.25;
    gold->tree = std::move(SimulateBirthDeath(opts, &rng)).value();
    double max_w = 0;
    for (double w : gold->tree.RootPathWeights()) max_w = std::max(max_w, w);
    for (NodeId n = 1; n < gold->tree.size(); ++n) {
      gold->tree.set_edge_length(n,
                                 gold->tree.edge_length(n) / max_w * 0.7);
    }
    PerturbBranchRates(&gold->tree, 3.0, &rng);
    SeqEvolveOptions seq_opts;
    seq_opts.model = SubstModel::kHKY85;
    seq_opts.base_freqs = {0.3, 0.2, 0.2, 0.3};
    seq_opts.seq_length = seq_length;
    auto ev = SequenceEvolver::Create(seq_opts);
    gold->seqs = std::move(*ev->EvolveLeaves(gold->tree, &rng));
    gold->manager = std::make_unique<BenchmarkManager>(&gold->tree,
                                                       &gold->seqs, 8);
    if (!gold->manager->Init().ok()) abort();
    cache->emplace(seq_length, std::move(gold));
    it = cache->find(seq_length);
  }
  return *it->second;
}

void RunPipeline(benchmark::State& state,
                 const ReconstructionAlgorithm& algorithm) {
  const Gold& gold = CachedGold(static_cast<size_t>(state.range(1)));
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = static_cast<size_t>(state.range(0));
  Rng rng(17);
  double rf_sum = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    auto run = gold.manager->Evaluate(algorithm, sel, &rng);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      break;
    }
    rf_sum += run->rf.normalized;
    ++runs;
    benchmark::DoNotOptimize(run);
  }
  state.counters["k"] = static_cast<double>(sel.k);
  state.counters["seq_len"] = static_cast<double>(state.range(1));
  if (runs > 0) state.counters["rf_norm"] = rf_sum / static_cast<double>(runs);
}

void BM_Pipeline_NJ(benchmark::State& state) {
  RunPipeline(state, *MakeNjAlgorithm(DistanceCorrection::kJC69));
}
void BM_Pipeline_UPGMA(benchmark::State& state) {
  RunPipeline(state, *MakeUpgmaAlgorithm(DistanceCorrection::kJC69));
}

// Args: {sample size k, sequence length}.
BENCHMARK(BM_Pipeline_NJ)
    ->Args({16, 500})->Args({64, 500})->Args({128, 500})
    ->Args({64, 125})->Args({64, 2000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pipeline_UPGMA)
    ->Args({16, 500})->Args({64, 500})->Args({128, 500})
    ->Args({64, 125})->Args({64, 2000})
    ->Unit(benchmark::kMillisecond);

// Stage breakdown at a fixed configuration: where does the time go?
void BM_PipelineStages(benchmark::State& state) {
  const Gold& gold = CachedGold(500);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = static_cast<size_t>(state.range(0));
  auto nj = MakeNjAlgorithm();
  Rng rng(18);
  double sample_s = 0, project_s = 0, reconstruct_s = 0, compare_s = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    auto run = gold.manager->Evaluate(*nj, sel, &rng);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      break;
    }
    sample_s += run->sample_seconds;
    project_s += run->project_seconds;
    reconstruct_s += run->reconstruct_seconds;
    compare_s += run->compare_seconds;
    ++runs;
  }
  if (runs > 0) {
    state.counters["sample_ms"] = 1e3 * sample_s / static_cast<double>(runs);
    state.counters["project_ms"] = 1e3 * project_s / static_cast<double>(runs);
    state.counters["reconstruct_ms"] =
        1e3 * reconstruct_s / static_cast<double>(runs);
    state.counters["compare_ms"] = 1e3 * compare_s / static_cast<double>(runs);
  }
}

BENCHMARK(BM_PipelineStages)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
