// Bulk-loaded ingest vs. the per-row Insert path: StoreTree + first
// bind on a >= 50k-node simulated Yule tree. The bulk path batch-encodes
// rows, feeds each B+tree index one sorted run built bottom-up
// (BTree::BulkLoad, no page splits), and persists the layered-Dewey
// labels so the first OpenTree bind deserializes the scheme instead of
// relabeling.
//
// Ships its own main: before benchmarking it asserts that a
// bulk-loaded tree answers all six query kinds byte-identically to an
// insert-loaded one (exits non-zero otherwise), then writes results to
// BENCH_bulk_load.json unless --benchmark_out= is given.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "crimson/crimson.h"
#include "tree/newick.h"

namespace crimson {
namespace {

CrimsonOptions PerRowOptions() {
  CrimsonOptions options;
  options.bulk_load_threshold = std::numeric_limits<size_t>::max();
  options.persist_labels = false;
  return options;
}

CrimsonOptions BulkOptions() {
  CrimsonOptions options;
  options.bulk_load_threshold = 0;
  options.persist_labels = true;
  return options;
}

/// StoreTree + first bind through the session: LoadTree runs the
/// labeling, the store path under test, and the OpenTree bind.
void RunStoreAndBind(benchmark::State& state, const CrimsonOptions& options) {
  const PhyloTree& gold =
      bench::CachedYule(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto session = std::move(Crimson::Open(options)).value();
    auto report = session->LoadTree("yule", gold);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(gold.size()));
  state.counters["nodes"] = static_cast<double>(gold.size());
}

void BM_StoreAndFirstBind_PerRow(benchmark::State& state) {
  RunStoreAndBind(state, PerRowOptions());
}

void BM_StoreAndFirstBind_Bulk(benchmark::State& state) {
  RunStoreAndBind(state, BulkOptions());
}

BENCHMARK(BM_StoreAndFirstBind_PerRow)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreAndFirstBind_Bulk)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

/// Executes all six query kinds and renders each result.
std::vector<std::string> RunSixKinds(Crimson* session, TreeRef tree,
                                     const PhyloTree& gold) {
  std::vector<NodeId> leaves = gold.Leaves();
  std::vector<std::string> set;
  for (size_t i = 0; i < leaves.size(); i += leaves.size() / 5 + 1) {
    set.emplace_back(gold.name(leaves[i]));
  }
  PhyloTree pattern =
      std::move(session->Project("yule", set)).value();
  std::vector<QueryRequest> requests = {
      LcaQuery{set[0], set[1]},
      ProjectQuery{set},
      SampleUniformQuery{16},
      SampleTimeQuery{16, 1.0},
      CladeQuery{{set[0], set[2]}},
      PatternQuery{WriteNewick(pattern), false},
  };
  std::vector<std::string> rendered;
  for (const QueryRequest& request : requests) {
    auto result = session->Execute(tree, request);
    rendered.push_back(result.ok() ? RenderResult(*result)
                                   : result.status().ToString());
  }
  return rendered;
}

/// Six-query-kind identity between an insert-loaded and a bulk-loaded
/// tree (same session seed => same sampling tickets). Returns false and
/// prints the first divergence on mismatch.
bool VerifyBulkMatchesPerRow() {
  const PhyloTree& gold = bench::CachedYule(30000);
  auto per_row = std::move(Crimson::Open(PerRowOptions())).value();
  auto bulk = std::move(Crimson::Open(BulkOptions())).value();
  TreeRef ref_a = per_row->LoadTree("yule", gold).value().ref;
  TreeRef ref_b = bulk->LoadTree("yule", gold).value().ref;
  // The projection for the pattern query consumes one ticket in each
  // session before the six-kind run; both sessions stay in lockstep.
  std::vector<std::string> a = RunSixKinds(per_row.get(), ref_a, gold);
  std::vector<std::string> b = RunSixKinds(bulk.get(), ref_b, gold);
  static const char* kKinds[] = {"lca",         "project", "sample_uniform",
                                 "sample_time", "clade",   "pattern_match"};
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::fprintf(stderr,
                   "FAIL: %s diverges between per-row and bulk load:\n"
                   "--- per-row ---\n%s\n--- bulk ---\n%s\n",
                   kKinds[i], a[i].c_str(), b[i].c_str());
      return false;
    }
  }
  std::fprintf(stderr,
               "verified: all 6 query kinds byte-identical between "
               "per-row and bulk-loaded trees (%zu nodes)\n",
               gold.size());
  return true;
}

}  // namespace
}  // namespace crimson

int main(int argc, char** argv) {
  if (!crimson::VerifyBulkMatchesPerRow()) return 1;
  std::vector<char*> args(argv, argv + argc);
  std::string out = "--benchmark_out=BENCH_bulk_load.json";
  std::string fmt = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
