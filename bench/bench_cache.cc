// bench_cache: the adaptive query cache under a Zipfian hot-query
// workload, against the same session with the cache disabled.
//
// A database of gold trees with sequences is built once. The timed
// phase replays one precomputed Zipfian schedule of cacheable queries
// (LCA, projection, clade, pattern match) twice on fresh sessions:
//
//   cached   -- the default CrimsonOptions::query_cache_bytes budget;
//              the skewed schedule concentrates on a hot set, so most
//              executions become result-cache hits;
//   uncached -- query_cache_bytes = 0: every query executes in full,
//              the pre-cache behavior.
//
// Byte identity: after the timed phase both sessions run all six
// query kinds per tree in one fixed order. Tickets advance identically
// in both modes (cache hits consume tickets too), so every rendering
// -- sampling draws included -- must match byte for byte.
//
// Invalidation: a final phase flips one tree name between two
// topologies with DropTree + re-store, querying after every flip; an
// answer matching the *previous* topology is a stale read. The cache
// must serve zero of them.
//
// Writes BENCH_cache.json. With --gate, exits non-zero unless the
// cached schedule sustains >= 1.5x the uncached throughput (the CI
// smoke contract) with identity intact and zero stale reads. The bar
// was 3x before the packed-tree / NameIndex refactor made the uncached
// path itself ~2.3x faster (name resolution stopped being O(n)); the
// gate guards the cache's usefulness, not the baseline's slowness.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace crimson {
namespace {

std::string TreeName(int i) { return StrFormat("gold%d", i); }

/// All six query kinds against an n-leaf Yule tree (leaves S0..).
std::vector<QueryRequest> SixKinds(uint32_t n_leaves) {
  const std::string a = StrFormat("S%u", n_leaves / 5);
  const std::string b = StrFormat("S%u", n_leaves - 2);
  return {
      QueryRequest(LcaQuery{a, b}),
      QueryRequest(ProjectQuery{{"S0", "S1", a, b}}),
      QueryRequest(SampleUniformQuery{10}),
      QueryRequest(SampleTimeQuery{8, 0.5}),
      QueryRequest(CladeQuery{{"S2", "S3", a}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
}

/// The cacheable query pool for one tree: distinct projections,
/// pattern matches, LCAs, and clades, weighted toward the projection /
/// pattern kinds whose execution cost the cache actually hides.
std::vector<QueryRequest> CacheablePool(uint32_t n_leaves) {
  std::vector<QueryRequest> pool;
  // Projections dominate the pool: each species name is resolved by a
  // linear scan over the tree, so the execution cost the cache hides
  // grows with tree size while the hit path stays O(result).
  for (int v = 0; v < 4; ++v) {
    std::vector<std::string> species;
    for (uint32_t s = static_cast<uint32_t>(v); s < n_leaves;
         s += n_leaves / 16) {
      species.push_back(StrFormat("S%u", s));
    }
    pool.emplace_back(ProjectQuery{species});
  }
  pool.emplace_back(PatternQuery{"(S1,S2);", true});
  pool.emplace_back(
      PatternQuery{StrFormat("(S3,S%u);", n_leaves / 2), true});
  pool.emplace_back(LcaQuery{"S1", StrFormat("S%u", n_leaves - 1)});
  pool.emplace_back(LcaQuery{"S4", StrFormat("S%u", n_leaves / 3)});
  pool.emplace_back(
      CladeQuery{{"S5", "S6", StrFormat("S%u", n_leaves / 4)}});
  return pool;
}

bool BuildDatabase(const std::string& path, int n_trees, uint32_t n_leaves) {
  std::remove(path.c_str());
  CrimsonOptions opts;
  opts.db_path = path;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) return false;
  auto session = std::move(session_or).value();
  for (int i = 0; i < n_trees; ++i) {
    Rng rng(0xC01D + i);
    YuleOptions yule;
    yule.n_leaves = n_leaves;
    auto tree = SimulateYule(yule, &rng);
    if (!tree.ok()) return false;
    SeqEvolveOptions seq;
    seq.seq_length = 120;
    auto sequences = SequenceEvolver::Create(seq)->EvolveLeaves(*tree, &rng);
    if (!sequences.ok()) return false;
    if (!session->LoadTree(TreeName(i), *tree).ok()) return false;
    if (!session->AppendSpeciesData(TreeName(i), *sequences).ok()) {
      return false;
    }
  }
  return session->Flush().ok();
}

/// One (tree, query) draw of the replayed schedule.
struct Op {
  int tree = 0;
  int query = 0;
};

/// A Zipf(s=1.1) schedule over the flattened (tree x query) pool --
/// the classic skew: a few hot queries dominate, a long tail keeps
/// the cache honest about misses and evictions.
std::vector<Op> ZipfSchedule(int n_trees, int pool_size, int ops,
                             uint64_t seed) {
  const int universe = n_trees * pool_size;
  std::vector<double> cdf(universe);
  double total = 0;
  for (int i = 0; i < universe; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    cdf[i] = total;
  }
  // Decorrelate rank from (tree, query) position so the hot set spans
  // trees and kinds.
  std::vector<int> slot(universe);
  for (int i = 0; i < universe; ++i) slot[i] = i;
  Rng shuffle_rng(seed ^ 0x5A5A);
  for (int i = universe - 1; i > 0; --i) {
    std::swap(slot[i],
              slot[static_cast<int>(shuffle_rng.Uniform(
                  static_cast<uint64_t>(i + 1)))]);
  }
  Rng rng(seed);
  std::vector<Op> schedule;
  schedule.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    const double u =
        static_cast<double>(rng.Next() >> 11) / 9007199254740992.0 * total;
    const int rank = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const int flat = slot[std::min(rank, universe - 1)];
    schedule.push_back(Op{flat / pool_size, flat % pool_size});
  }
  return schedule;
}

struct PhaseResult {
  double seconds = 0;
  double ops_per_sec = 0;
  uint64_t hits = 0;
  std::vector<std::string> renders;      // timed schedule, per op
  std::vector<std::vector<std::string>> six;  // per tree, per kind
  bool ok = false;
};

/// Replays the schedule on a fresh session with the given cache
/// budget (timed), then runs the six-kind identity batches (untimed).
PhaseResult RunPhase(const std::string& path, uint64_t cache_bytes,
                     int n_trees, uint32_t n_leaves,
                     const std::vector<Op>& schedule) {
  PhaseResult out;
  CrimsonOptions opts;
  opts.db_path = path;
  opts.seed = 42;
  opts.query_cache_bytes = cache_bytes;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) {
    fprintf(stderr, "session open failed: %s\n",
            session_or.status().ToString().c_str());
    return out;
  }
  auto session = std::move(session_or).value();

  std::vector<TreeRef> refs(n_trees);
  for (int i = 0; i < n_trees; ++i) {
    auto ref = session->OpenTree(TreeName(i));
    if (!ref.ok()) return out;
    refs[i] = *ref;
  }
  const std::vector<QueryRequest> pool = CacheablePool(n_leaves);

  // Results are kept as values during the timed section and rendered
  // afterwards, so the (mode-independent) rendering cost does not
  // dilute the contrast.
  std::vector<QueryResult> raw;
  raw.reserve(schedule.size());
  auto start = std::chrono::steady_clock::now();
  for (const Op& op : schedule) {
    auto r = session->Execute(refs[op.tree], pool[op.query]);
    if (!r.ok()) {
      fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return out;
    }
    raw.push_back(std::move(*r));
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.ops_per_sec = schedule.size() / out.seconds;
  out.hits = session->GetCacheStats().hits;
  out.renders.reserve(raw.size());
  for (const QueryResult& r : raw) out.renders.push_back(RenderResult(r));

  // Identity material: all six kinds per tree in one fixed order.
  // Tickets advanced identically through the schedule above, so the
  // sampling draws here must agree across cache modes too.
  const std::vector<QueryRequest> requests = SixKinds(n_leaves);
  out.six.resize(n_trees);
  for (int i = 0; i < n_trees; ++i) {
    auto results = session->ExecuteBatch(refs[i], requests);
    for (auto& r : results) {
      if (!r.ok()) {
        fprintf(stderr, "identity query failed: %s\n",
                r.status().ToString().c_str());
        return out;
      }
      out.six[i].push_back(RenderResult(*r));
    }
  }
  out.ok = true;
  return out;
}

/// DropTree + re-store flip loop: every post-flip answer must match
/// the topology just stored, never the previous one. Returns the
/// number of stale answers (-1 on infrastructure failure).
int64_t RunInvalidationPhase(const std::string& path, int flips) {
  // Two topologies whose Spy/Bha LCA renders differently.
  const char* kTopoA =
      "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";
  const char* kTopoB =
      "((Syn:1,Bsu:1):0.5,(Lla:2,(Spy:1,Bha:1):0.5):0.25)root;";
  const QueryRequest probe{LcaQuery{"Spy", "Bha"}};

  // Expected renderings from a cache-off throwaway session.
  std::string expected[2];
  {
    CrimsonOptions opts;
    opts.seed = 1;
    opts.query_cache_bytes = 0;
    auto s = Crimson::Open(opts);
    if (!s.ok()) return -1;
    for (int v = 0; v < 2; ++v) {
      auto ref = (*s)->LoadNewick(StrFormat("v%d", v), v ? kTopoB : kTopoA);
      if (!ref.ok()) return -1;
      auto r = (*s)->Execute(ref->ref, probe);
      if (!r.ok()) return -1;
      expected[v] = RenderResult(*r);
    }
    if (expected[0] == expected[1]) return -1;
  }

  CrimsonOptions opts;
  opts.db_path = path;
  opts.seed = 42;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) return -1;
  auto session = std::move(session_or).value();

  int64_t stale = 0;
  for (int flip = 0; flip < flips; ++flip) {
    const int v = flip % 2;
    if (flip > 0 && !session->DropTree("flip").ok()) return -1;
    auto load = session->LoadNewick("flip", v ? kTopoB : kTopoA);
    if (!load.ok()) return -1;
    // Query twice: the first answer populates the cache, the second
    // must hit it -- and both must match the topology just stored.
    for (int q = 0; q < 2; ++q) {
      auto r = session->Execute(load->ref, probe);
      if (!r.ok()) return -1;
      if (RenderResult(*r) != expected[v]) ++stale;
    }
  }
  if (!session->DropTree("flip").ok()) return -1;
  return stale;
}

}  // namespace

int Run(int argc, char** argv) {
  int n_trees = 6;
  uint32_t n_leaves = 480;
  int ops = 6000;
  int flips = 60;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--trees=", 8) == 0) n_trees = atoi(argv[i] + 8);
    if (strncmp(argv[i], "--leaves=", 9) == 0) {
      n_leaves = static_cast<uint32_t>(atoi(argv[i] + 9));
    }
    if (strncmp(argv[i], "--ops=", 6) == 0) ops = atoi(argv[i] + 6);
    if (strncmp(argv[i], "--flips=", 8) == 0) flips = atoi(argv[i] + 8);
  }

  const std::string path = "/tmp/crimson_bench_cache.db";
  if (!BuildDatabase(path, n_trees, n_leaves)) {
    fprintf(stderr, "database build failed\n");
    return 1;
  }

  const int pool_size = static_cast<int>(CacheablePool(n_leaves).size());
  const std::vector<Op> schedule =
      ZipfSchedule(n_trees, pool_size, ops, 0x21F);

  PhaseResult uncached =
      RunPhase(path, /*cache_bytes=*/0, n_trees, n_leaves, schedule);
  PhaseResult cached = RunPhase(path, CrimsonOptions().query_cache_bytes,
                                n_trees, n_leaves, schedule);
  if (!uncached.ok || !cached.ok) return 1;

  const double speedup =
      cached.seconds > 0 ? uncached.seconds / cached.seconds : 0;
  const double hit_rate =
      ops > 0 ? static_cast<double>(cached.hits) / ops : 0;
  const bool identical =
      cached.renders == uncached.renders && cached.six == uncached.six;

  const int64_t stale = RunInvalidationPhase(path, flips);
  const bool pass = speedup >= 1.5 && identical && stale == 0;

  printf(
      "zipfian hot-query replay, %d trees x %u leaves, %d ops "
      "(%d-entry pool):\n"
      "  uncached (budget 0)      : %9.0f queries/s  (%.3fs)\n"
      "  cached (default budget)  : %9.0f queries/s  (%.3fs, %.1fx, "
      "%.0f%% hits)\n"
      "schedule + six-kind byte identity across modes: %s\n"
      "stale reads across %d drop/re-store flips: %lld\n"
      "gate (cached >= 1.5x, identity, zero stale): %s\n",
      n_trees, n_leaves, ops, n_trees * pool_size, uncached.ops_per_sec,
      uncached.seconds, cached.ops_per_sec, cached.seconds, speedup,
      hit_rate * 100.0, identical ? "OK" : "MISMATCH", flips,
      static_cast<long long>(stale), pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_cache.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"trees\": %d,\n"
            "  \"leaves\": %u,\n"
            "  \"ops\": %d,\n"
            "  \"pool_size\": %d,\n"
            "  \"uncached_ops_per_sec\": %.2f,\n"
            "  \"cached_ops_per_sec\": %.2f,\n"
            "  \"speedup\": %.2f,\n"
            "  \"hit_rate\": %.4f,\n"
            "  \"byte_identical\": %s,\n"
            "  \"flips\": %d,\n"
            "  \"stale_reads\": %lld,\n"
            "  \"gate_min_speedup\": 1.5,\n"
            "  \"pass\": %s\n"
            "}\n",
            n_trees, n_leaves, ops, n_trees * pool_size,
            uncached.ops_per_sec, cached.ops_per_sec, speedup, hit_rate,
            identical ? "true" : "false", flips,
            static_cast<long long>(stale), pass ? "true" : "false");
    fclose(json);
  }

  std::remove(path.c_str());
  if (gate && !pass) {
    fprintf(stderr,
            "GATE FAILURE: speedup %.2fx < 1.5x, identity broken, or "
            "%lld stale reads (need 0)\n",
            speedup, static_cast<long long>(stale));
    return 1;
  }
  return 0;
}

}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
