// E12 -- minimal spanning clade (paper §2.2): LCA of the input leaves
// plus subtree enumeration. Shape expectation: cost = k LCA probes +
// O(|clade|) traversal; the clade size, not the tree size, dominates.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "labeling/layered_dewey.h"
#include "query/clade.h"
#include "query/sampling.h"

namespace crimson {
namespace {

void BM_MinimalSpanningClade(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  const PhyloTree& tree = bench::CachedYule(n);
  static auto* schemes =
      new std::map<uint32_t, std::unique_ptr<LayeredDeweyScheme>>();
  auto it = schemes->find(n);
  if (it == schemes->end()) {
    auto s = std::make_unique<LayeredDeweyScheme>(8);
    if (!s->Build(tree).ok()) abort();
    it = schemes->emplace(n, std::move(s)).first;
  }
  Sampler sampler(&tree);
  Rng rng(15);
  auto sample =
      sampler.SampleUniform(static_cast<size_t>(state.range(1)), &rng);
  size_t clade_nodes = 0;
  for (auto _ : state) {
    auto clade = MinimalSpanningClade(tree, *it->second, *sample);
    if (!clade.ok()) state.SkipWithError(clade.status().ToString().c_str());
    clade_nodes = clade->nodes.size();
    benchmark::DoNotOptimize(clade);
  }
  state.counters["k"] = static_cast<double>(state.range(1));
  state.counters["clade_nodes"] = static_cast<double>(clade_nodes);
}

// Sibling-cluster clades stay small even in huge trees: sample leaves
// under one subtree instead of uniformly.
void BM_LocalizedClade(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  const PhyloTree& tree = bench::CachedYule(n);
  static auto* schemes =
      new std::map<uint32_t, std::unique_ptr<LayeredDeweyScheme>>();
  auto it = schemes->find(n);
  if (it == schemes->end()) {
    auto s = std::make_unique<LayeredDeweyScheme>(8);
    if (!s->Build(tree).ok()) abort();
    it = schemes->emplace(n, std::move(s)).first;
  }
  // Pick an internal node ~log2(n) levels down and use its leaves.
  NodeId anchor = tree.root();
  for (int d = 0; d < 8 && !tree.is_leaf(anchor); ++d) {
    anchor = tree.first_child(anchor);
  }
  Sampler sampler(&tree);
  std::vector<NodeId> pool = sampler.LeavesUnder(anchor);
  if (pool.size() < 4) {
    state.SkipWithError("anchor subtree too small");
    return;
  }
  std::vector<NodeId> sample(pool.begin(),
                             pool.begin() + std::min<size_t>(16, pool.size()));
  size_t clade_nodes = 0;
  for (auto _ : state) {
    auto clade = MinimalSpanningClade(tree, *it->second, sample);
    if (!clade.ok()) state.SkipWithError(clade.status().ToString().c_str());
    clade_nodes = clade->nodes.size();
    benchmark::DoNotOptimize(clade);
  }
  state.counters["clade_nodes"] = static_cast<double>(clade_nodes);
}

// Args: {tree leaves, sampled k}.
BENCHMARK(BM_MinimalSpanningClade)
    ->Args({10000, 8})->Args({10000, 64})
    ->Args({100000, 8})->Args({100000, 64})->Args({100000, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LocalizedClade)->Args({100000, 0});

}  // namespace
}  // namespace crimson
