// bench_concurrent_reads: parallel vs serialized cold reads through
// the storage engine.
//
// A database of gold trees is built once, then read back by 8 threads
// -- each thread cold-binds its own trees (OpenTree: tree rows, label
// blobs) and exports them with their sequences (ExportNexus: species
// rows), i.e. exactly the storage-read mix ExecuteBatch workers and
// experiment EvalState builds generate. The same workload runs twice
// on fresh sessions:
//
//   serialized -- CrimsonOptions::serialize_storage_reads routes every
//                 storage read through the exclusive writer lock, the
//                 engine's pre-concurrency behavior;
//   shared     -- the default path: shared storage lock + Database
//                 read epochs + latched buffer pool, so cold misses
//                 from different threads overlap in the pager.
//
// A fixed injected latency on every page read (--read-delay-us,
// default 400us, modelling a cold random read from networked block
// storage) makes the contrast deterministic across machines --
// including single-core CI boxes, because overlapping *sleeps* need
// concurrency in the lock discipline, not extra cores. Raw no-delay
// numbers are reported alongside.
//
// Byte identity: after the timed phase both sessions execute all six
// query kinds per tree; every rendering and every NEXUS export must
// be identical across the two modes.
//
// A final overlap phase measures snapshot-read liveness: one thread
// bulk-stores a large tree (--writer-leaves, default 8000) while this
// thread keeps exporting a bound tree, timing each read. MVCC page
// versions let the exports resolve against the last committed epoch,
// so reads keep completing at idle-grade latency through the store.
//
// Writes BENCH_concurrent_reads.json. With --gate, exits non-zero
// unless the shared path sustains >= 3x the serialized aggregate
// throughput at 8 threads (the CI smoke contract) with identity
// intact and at least 4 reads complete during the bulk store.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "storage/file.h"

namespace crimson {
namespace {

/// File wrapper adding a fixed latency to every Read, standing in for
/// a cold random page read from the device.
class SlowReadFile final : public File {
 public:
  SlowReadFile(std::unique_ptr<File> base, int delay_us)
      : base_(std::move(base)), delay_us_(delay_us) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    if (delay_us_ > 0) {
      // Sleeping (not spinning) yields the core, exactly like a
      // blocked pread: threads whose reads are not serialized behind
      // a lock overlap their waits.
      auto until = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(delay_us_);
      std::this_thread::sleep_until(until);
    }
    return base_->Read(offset, n, scratch);
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    return base_->Write(offset, data, n);
  }
  Status Sync() override { return base_->Sync(); }
  uint64_t Size() const override { return base_->Size(); }
  Status Truncate(uint64_t new_size) override {
    return base_->Truncate(new_size);
  }

 private:
  std::unique_ptr<File> base_;
  int delay_us_;
};

StorageEnv DelayedReadEnv(int delay_us) {
  StorageEnv env = PosixStorageEnv();
  auto open = env.open_file;
  env.open_file =
      [open, delay_us](
          const std::string& path) -> Result<std::unique_ptr<File>> {
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> f, open(path));
    return std::unique_ptr<File>(new SlowReadFile(std::move(f), delay_us));
  };
  return env;
}

std::string TreeName(int i) { return StrFormat("gold%d", i); }

/// All six query kinds against an n-leaf Yule tree (leaves S0..).
std::vector<QueryRequest> SixKinds(uint32_t n_leaves) {
  const std::string a = StrFormat("S%u", n_leaves / 5);
  const std::string b = StrFormat("S%u", n_leaves - 2);
  return {
      QueryRequest(LcaQuery{a, b}),
      QueryRequest(ProjectQuery{{"S0", "S1", a, b}}),
      QueryRequest(SampleUniformQuery{10}),
      QueryRequest(SampleTimeQuery{8, 0.5}),
      QueryRequest(CladeQuery{{"S2", "S3", a}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
}

bool BuildDatabase(const std::string& path, int n_trees, uint32_t n_leaves) {
  std::remove(path.c_str());
  CrimsonOptions opts;
  opts.db_path = path;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) return false;
  auto session = std::move(session_or).value();
  for (int i = 0; i < n_trees; ++i) {
    Rng rng(0xC01D + i);
    YuleOptions yule;
    yule.n_leaves = n_leaves;
    auto tree = SimulateYule(yule, &rng);
    if (!tree.ok()) return false;
    SeqEvolveOptions seq;
    seq.seq_length = 120;
    auto sequences = SequenceEvolver::Create(seq)->EvolveLeaves(*tree, &rng);
    if (!sequences.ok()) return false;
    if (!session->LoadTree(TreeName(i), *tree).ok()) return false;
    if (!session->AppendSpeciesData(TreeName(i), *sequences).ok()) {
      return false;
    }
  }
  return session->Flush().ok();
}

struct PhaseResult {
  double seconds = 0;        // timed parallel cold-read section
  double tasks_per_sec = 0;  // aggregate throughput over that section
  std::vector<std::string> nexus;              // per tree
  std::vector<std::vector<std::string>> six;   // per tree, per query kind
  bool ok = false;
};

/// One full workload pass on a fresh session: 8 threads cold-bind and
/// export disjoint tree subsets (timed), then the six query kinds run
/// per tree in a fixed order (identity material, untimed).
PhaseResult RunPhase(const std::string& path, bool serialize, int n_trees,
                     uint32_t n_leaves, int threads, int delay_us,
                     size_t pool_pages) {
  PhaseResult out;
  CrimsonOptions opts;
  opts.db_path = path;
  opts.buffer_pool_pages = pool_pages;
  opts.batch_workers = static_cast<size_t>(threads);
  opts.serialize_storage_reads = serialize;
  opts.storage_env = DelayedReadEnv(delay_us);
  opts.seed = 42;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) {
    fprintf(stderr, "session open failed: %s\n",
            session_or.status().ToString().c_str());
    return out;
  }
  auto session = std::move(session_or).value();

  out.nexus.resize(n_trees);
  std::vector<TreeRef> refs(n_trees);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t; i < n_trees; i += threads) {
        auto ref = session->OpenTree(TreeName(i));
        if (!ref.ok()) {
          ++failures;
          return;
        }
        refs[i] = *ref;
        auto doc = session->ExportNexus(*ref);
        if (!doc.ok()) {
          ++failures;
          return;
        }
        out.nexus[i] = std::move(*doc);
      }
    });
  }
  for (auto& w : workers) w.join();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (failures.load() != 0) {
    fprintf(stderr, "cold-read task failed\n");
    return out;
  }
  out.tasks_per_sec = n_trees / out.seconds;

  // Identity material: per-tree batches in a fixed global order, so
  // both modes assign the same tickets (sampling draws included).
  std::vector<QueryRequest> requests = SixKinds(n_leaves);
  out.six.resize(n_trees);
  for (int i = 0; i < n_trees; ++i) {
    auto results = session->ExecuteBatch(refs[i], requests);
    for (auto& r : results) {
      if (!r.ok()) {
        fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
        return out;
      }
      out.six[i].push_back(RenderResult(*r));
    }
  }
  out.ok = true;
  return out;
}

bool Identical(const PhaseResult& a, const PhaseResult& b) {
  return a.nexus == b.nexus && a.six == b.six;
}

struct WriteOverlapResult {
  double write_seconds = 0;        // the bulk StoreTree transaction
  double idle_mean_ms = 0;         // mean read latency, quiet engine
  double during_mean_ms = 0;       // mean read latency, store in flight
  double during_max_ms = 0;        // worst single read during the store
  int64_t reads_during_write = 0;  // reads completed while store ran
  bool ok = false;
};

/// Snapshot-read liveness during a bulk write: one thread bulk-stores
/// a large tree while this thread keeps exporting an already-bound
/// tree. Under the MVCC snapshot path the exports resolve against the
/// last committed epoch (page versions, not the writer's lock), so
/// reads keep completing -- and keep their idle-grade latency --
/// for the whole store. Before snapshots, this loop would stall for
/// the entire transaction and complete ~0 reads.
WriteOverlapResult RunWriteOverlap(const std::string& path,
                                   uint32_t writer_leaves,
                                   size_t pool_pages) {
  WriteOverlapResult out;
  CrimsonOptions opts;
  opts.db_path = path;
  opts.buffer_pool_pages = pool_pages;
  opts.seed = 42;
  auto session_or = Crimson::Open(opts);
  if (!session_or.ok()) {
    fprintf(stderr, "overlap session open failed: %s\n",
            session_or.status().ToString().c_str());
    return out;
  }
  auto session = std::move(session_or).value();
  auto ref = session->OpenTree(TreeName(0));
  if (!ref.ok()) return out;

  // Simulate the writer's tree outside the measured window.
  Rng rng(0xB16);
  YuleOptions yule;
  yule.n_leaves = writer_leaves;
  auto big = SimulateYule(yule, &rng);
  if (!big.ok()) return out;

  auto one_read_ms = [&]() -> double {
    auto t0 = std::chrono::steady_clock::now();
    auto doc = session->ExportNexus(*ref);
    if (!doc.ok()) return -1;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  const int kIdleReads = 16;
  double idle_total = 0;
  for (int i = 0; i < kIdleReads; ++i) {
    double ms = one_read_ms();
    if (ms < 0) return out;
    idle_total += ms;
  }
  out.idle_mean_ms = idle_total / kIdleReads;

  std::atomic<bool> writer_done{false};
  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    auto t0 = std::chrono::steady_clock::now();
    if (!session->LoadTree("bulkwrite", *big).ok()) {
      writer_ok.store(false, std::memory_order_release);
    }
    out.write_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    writer_done.store(true, std::memory_order_release);
  });
  double during_total = 0;
  while (!writer_done.load(std::memory_order_acquire)) {
    double ms = one_read_ms();
    if (ms < 0) {
      writer.join();
      return out;
    }
    during_total += ms;
    if (ms > out.during_max_ms) out.during_max_ms = ms;
    ++out.reads_during_write;
  }
  writer.join();
  if (out.reads_during_write > 0) {
    out.during_mean_ms = during_total / out.reads_during_write;
  }
  out.ok = writer_ok.load(std::memory_order_acquire);
  return out;
}

}  // namespace

int Run(int argc, char** argv) {
  int threads = 8;
  int n_trees = 32;
  uint32_t n_leaves = 96;
  int delay_us = 400;
  size_t pool_pages = 64;
  uint32_t writer_leaves = 8000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--threads=", 10) == 0) threads = atoi(argv[i] + 10);
    if (strncmp(argv[i], "--trees=", 8) == 0) n_trees = atoi(argv[i] + 8);
    if (strncmp(argv[i], "--leaves=", 9) == 0) {
      n_leaves = static_cast<uint32_t>(atoi(argv[i] + 9));
    }
    if (strncmp(argv[i], "--read-delay-us=", 16) == 0) {
      delay_us = atoi(argv[i] + 16);
    }
    if (strncmp(argv[i], "--pool-pages=", 13) == 0) {
      pool_pages = static_cast<size_t>(atoi(argv[i] + 13));
    }
    if (strncmp(argv[i], "--writer-leaves=", 16) == 0) {
      writer_leaves = static_cast<uint32_t>(atoi(argv[i] + 16));
    }
  }

  const std::string path = "/tmp/crimson_bench_concurrent_reads.db";
  if (!BuildDatabase(path, n_trees, n_leaves)) {
    fprintf(stderr, "database build failed\n");
    return 1;
  }

  // Gated contrast under deterministic read latency.
  PhaseResult serialized = RunPhase(path, /*serialize=*/true, n_trees,
                                    n_leaves, threads, delay_us, pool_pages);
  PhaseResult shared = RunPhase(path, /*serialize=*/false, n_trees, n_leaves,
                                threads, delay_us, pool_pages);
  if (!serialized.ok || !shared.ok) return 1;
  double speedup =
      shared.seconds > 0 ? serialized.seconds / shared.seconds : 0;
  bool identical = Identical(serialized, shared);

  // Raw numbers without injected latency, for the curious.
  PhaseResult raw_serialized = RunPhase(path, true, n_trees, n_leaves,
                                        threads, 0, pool_pages);
  PhaseResult raw_shared = RunPhase(path, false, n_trees, n_leaves, threads,
                                    0, pool_pages);

  // Snapshot-read liveness while a bulk store is in flight.
  WriteOverlapResult overlap =
      RunWriteOverlap(path, writer_leaves, pool_pages);

  const int64_t kMinReadsDuringWrite = 4;
  const bool overlap_pass =
      overlap.ok && overlap.reads_during_write >= kMinReadsDuringWrite;
  const bool pass = speedup >= 3.0 && identical && overlap_pass;
  printf(
      "cold-read throughput, %d trees x %u leaves, %d threads, "
      "%dus injected read latency, %zu-page pool:\n"
      "  serialized (single lock) : %8.1f binds+exports/s  (%.3fs)\n"
      "  shared (latched pool)    : %8.1f binds+exports/s  (%.3fs, %.1fx)\n"
      "raw device (no injected latency):\n"
      "  serialized               : %8.1f binds+exports/s\n"
      "  shared                   : %8.1f binds+exports/s\n"
      "six-kind + NEXUS byte identity across modes: %s\n"
      "snapshot reads during a %u-leaf bulk store (%.3fs write):\n"
      "  completed during write   : %lld exports (idle mean %.2fms, "
      "during mean %.2fms, during max %.2fms)\n"
      "gate (shared >= 3x, identity, >= %lld reads during write): %s\n",
      n_trees, n_leaves, threads, delay_us, pool_pages,
      serialized.tasks_per_sec, serialized.seconds, shared.tasks_per_sec,
      shared.seconds, speedup,
      raw_serialized.ok ? raw_serialized.tasks_per_sec : 0,
      raw_shared.ok ? raw_shared.tasks_per_sec : 0,
      identical ? "OK" : "MISMATCH", writer_leaves, overlap.write_seconds,
      static_cast<long long>(overlap.reads_during_write),
      overlap.idle_mean_ms, overlap.during_mean_ms, overlap.during_max_ms,
      static_cast<long long>(kMinReadsDuringWrite), pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_concurrent_reads.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"threads\": %d,\n"
            "  \"trees\": %d,\n"
            "  \"leaves\": %u,\n"
            "  \"read_delay_us\": %d,\n"
            "  \"pool_pages\": %zu,\n"
            "  \"serialized_tasks_per_sec\": %.2f,\n"
            "  \"shared_tasks_per_sec\": %.2f,\n"
            "  \"shared_speedup\": %.2f,\n"
            "  \"raw_serialized_tasks_per_sec\": %.2f,\n"
            "  \"raw_shared_tasks_per_sec\": %.2f,\n"
            "  \"byte_identical\": %s,\n"
            "  \"writer_leaves\": %u,\n"
            "  \"write_seconds\": %.3f,\n"
            "  \"reads_during_write\": %lld,\n"
            "  \"read_ms_idle_mean\": %.3f,\n"
            "  \"read_ms_during_write_mean\": %.3f,\n"
            "  \"read_ms_during_write_max\": %.3f,\n"
            "  \"gate_min_reads_during_write\": %lld,\n"
            "  \"gate_min_speedup\": 3.0,\n"
            "  \"pass\": %s\n"
            "}\n",
            threads, n_trees, n_leaves, delay_us, pool_pages,
            serialized.tasks_per_sec, shared.tasks_per_sec, speedup,
            raw_serialized.ok ? raw_serialized.tasks_per_sec : 0.0,
            raw_shared.ok ? raw_shared.tasks_per_sec : 0.0,
            identical ? "true" : "false", writer_leaves,
            overlap.write_seconds,
            static_cast<long long>(overlap.reads_during_write),
            overlap.idle_mean_ms, overlap.during_mean_ms,
            overlap.during_max_ms,
            static_cast<long long>(kMinReadsDuringWrite),
            pass ? "true" : "false");
    fclose(json);
  }

  std::remove(path.c_str());
  if (gate && !pass) {
    fprintf(stderr,
            "GATE FAILURE: speedup %.2fx < 3.0x, identity broken, or only "
            "%lld reads completed during the bulk store (need >= %lld)\n",
            speedup, static_cast<long long>(overlap.reads_during_write),
            static_cast<long long>(kMinReadsDuringWrite));
    return 1;
  }
  return 0;
}

}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
