// Experiment API throughput: a repeated NJ-vs-UPGMA evaluation sweep
// through Crimson::RunExperiment (evaluation state built once, cached
// against the TreeHandle, replicates fanned out on the worker pool)
// versus the pre-Experiment-API per-call path (sequence fetch +
// BenchmarkManager rebuild on every evaluation). Before any timing,
// the gate verifies that a parallel run is byte-identical to a
// single-worker run of the same spec -- the determinism contract the
// Experiment API shares with ExecuteBatch -- and refuses to run
// otherwise.
//
// Ships its own main: results are written to BENCH_experiments.json
// (benchmark's JSON format) unless --benchmark_out=... overrides.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "tree/newick.h"

namespace crimson {
namespace {

constexpr uint32_t kLeaves = 2000;
constexpr size_t kSeqLen = 200;

const std::map<std::string, std::string>& CachedSequences() {
  static auto* seqs = [] {
    SeqEvolveOptions opts;
    opts.seq_length = kSeqLen;
    auto evolver = SequenceEvolver::Create(opts);
    Rng rng(0xDA7A);
    return new std::map<std::string, std::string>(
        std::move(evolver->EvolveLeaves(bench::CachedYule(kLeaves), &rng))
            .value());
  }();
  return *seqs;
}

ExperimentSpec SweepSpec() {
  ExperimentSpec spec;
  spec.algorithms = {"nj", "upgma"};
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 16;
  spec.selections = {sel};
  spec.replicates = 4;
  spec.compute_triplets = false;
  return spec;
}

struct Fixture {
  std::unique_ptr<Crimson> session;
  TreeRef tree;
};

Fixture MakeFixture(size_t workers, uint64_t seed = 0xBE7C) {
  Fixture fx;
  CrimsonOptions options;
  options.batch_workers = workers;
  options.seed = seed;
  fx.session = std::move(Crimson::Open(options)).value();
  fx.tree =
      fx.session->LoadTree("gold", bench::CachedYule(kLeaves)).value().ref;
  auto loaded = fx.session->AppendSpeciesData("gold", CachedSequences());
  if (!loaded.ok()) {
    fprintf(stderr, "species load failed: %s\n",
            loaded.status().ToString().c_str());
    exit(1);
  }
  return fx;
}

/// The determinism gate: a parallel run of the sweep must be
/// byte-identical to a single-worker run with the same session seed.
bool VerifyParallelMatchesSequential() {
  Fixture sequential = MakeFixture(/*workers=*/1);
  Fixture parallel = MakeFixture(/*workers=*/8);
  auto spec = SweepSpec();
  auto a = sequential.session->RunExperiment(sequential.tree, spec);
  auto b = parallel.session->RunExperiment(parallel.tree, spec);
  if (!a.ok() || !b.ok()) {
    fprintf(stderr, "gate experiment failed: %s / %s\n",
            a.status().ToString().c_str(), b.status().ToString().c_str());
    return false;
  }
  if (a->runs.size() != b->runs.size()) return false;
  for (size_t i = 0; i < a->runs.size(); ++i) {
    const BenchmarkRun& x = a->runs[i];
    const BenchmarkRun& y = b->runs[i];
    if (x.algorithm != y.algorithm || x.sample_size != y.sample_size ||
        x.rf.distance != y.rf.distance ||
        x.rf.normalized != y.rf.normalized ||
        WriteNewick(x.reference) != WriteNewick(y.reference) ||
        WriteNewick(x.reconstructed) != WriteNewick(y.reconstructed)) {
      fprintf(stderr,
              "DETERMINISM VIOLATION: parallel run %zu differs from "
              "sequential\n",
              i);
      return false;
    }
  }
  return true;
}

/// The Experiment API path: evaluation state is built once and cached;
/// every iteration reruns the whole sweep through the worker pool.
void BM_ExperimentSweep_Cached(benchmark::State& state) {
  Fixture fx = MakeFixture(static_cast<size_t>(state.range(0)));
  auto spec = SweepSpec();
  // Warm the cache so the loop measures steady-state repeated
  // evaluation (the first call pays the one-time build).
  if (!fx.session->RunExperiment(fx.tree, spec).ok()) {
    state.SkipWithError("warmup experiment failed");
    return;
  }
  for (auto _ : state) {
    auto report = fx.session->RunExperiment(fx.tree, spec);
    if (!report.ok()) {
      state.SkipWithError("experiment failed");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(SweepSpec().job_count()));
  state.counters["workers"] = static_cast<double>(state.range(0));
}

/// The pre-Experiment-API path: every evaluation refetches the
/// sequence map from storage and rebuilds the BenchmarkManager
/// (relabel + sampler init), one replicate at a time on one thread --
/// what the old Crimson::Benchmark did per call.
void BM_ExperimentSweep_RebuildPerCall(benchmark::State& state) {
  Fixture fx = MakeFixture(/*workers=*/1);
  auto spec = SweepSpec();
  auto info = fx.session->GetTreeInfo(fx.tree);
  auto tree = fx.session->GetTree(fx.tree);
  if (!info.ok() || !tree.ok()) {
    state.SkipWithError("fixture broken");
    return;
  }
  auto nj = MakeNjAlgorithm();
  auto upgma = MakeUpgmaAlgorithm();
  std::vector<const ReconstructionAlgorithm*> instances = {nj.get(),
                                                           upgma.get()};
  uint64_t ticket = 0;
  for (auto _ : state) {
    for (const ReconstructionAlgorithm* algorithm : instances) {
      for (const SelectionSpec& sel : spec.selections) {
        for (size_t rep = 0; rep < spec.replicates; ++rep) {
          auto seqs = fx.session->species_repository()->SequencesForTree(
              info->tree_id);
          if (!seqs.ok()) {
            state.SkipWithError("sequence fetch failed");
            return;
          }
          BenchmarkManager manager(*tree, &*seqs,
                                   static_cast<uint32_t>(info->f));
          if (!manager.Init().ok()) {
            state.SkipWithError("manager init failed");
            return;
          }
          Rng rng(0xBE7C + ticket++);
          auto run = manager.Evaluate(*algorithm, sel, &rng,
                                      spec.compute_triplets);
          if (!run.ok()) {
            state.SkipWithError("evaluate failed");
            return;
          }
          benchmark::DoNotOptimize(run);
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.job_count()));
}

BENCHMARK(BM_ExperimentSweep_Cached)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExperimentSweep_RebuildPerCall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson

int main(int argc, char** argv) {
  if (!crimson::VerifyParallelMatchesSequential()) {
    fprintf(stderr,
            "refusing to benchmark: parallel experiment is not "
            "byte-identical to sequential\n");
    return 1;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out = "--benchmark_out=BENCH_experiments.json";
  std::string fmt = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
