// E4 -- index build time per node across schemes and tree shapes.
// Shape expectation: all schemes build in O(n); the layered scheme's
// constant is modestly higher (layer construction) but stays linear
// where plain Dewey's total work is O(n * depth) on deep trees.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"

namespace crimson {
namespace {

const PhyloTree& TreeFor(int shape, int64_t size) {
  if (shape == 0) return bench::CachedCaterpillar(static_cast<uint32_t>(size));
  return bench::CachedYule(static_cast<uint32_t>(size));
}

template <typename MakeScheme>
void RunBuild(benchmark::State& state, MakeScheme make) {
  const PhyloTree& tree = TreeFor(static_cast<int>(state.range(0)),
                                  state.range(1));
  for (auto _ : state) {
    auto scheme = make();
    Status s = scheme.Build(tree);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(scheme.node_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tree.size()));
  state.counters["nodes"] = static_cast<double>(tree.size());
}

void BM_Build_Dewey(benchmark::State& state) {
  RunBuild(state, [] { return DeweyScheme(); });
}
void BM_Build_LayeredDewey(benchmark::State& state) {
  RunBuild(state, [] { return LayeredDeweyScheme(8); });
}
void BM_Build_Interval(benchmark::State& state) {
  RunBuild(state, [] { return IntervalScheme(); });
}

// Args: {shape (0=caterpillar by depth, 1=yule by leaves), size}.
BENCHMARK(BM_Build_Dewey)
    ->Args({0, 1000})->Args({0, 10000})
    ->Args({1, 10000})->Args({1, 100000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build_LayeredDewey)
    ->Args({0, 1000})->Args({0, 10000})->Args({0, 100000})->Args({0, 1000000})
    ->Args({1, 10000})->Args({1, 100000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build_Interval)
    ->Args({0, 1000})->Args({0, 10000})->Args({0, 100000})->Args({0, 1000000})
    ->Args({1, 10000})->Args({1, 100000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
