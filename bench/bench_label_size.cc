// E3 -- label size vs depth (paper §2.1 claim: Dewey labels grow with
// depth; Crimson's layered labels stay bounded by f).
//
// Series reported: for each (scheme, depth) the bytes/node and max
// label bytes appear as benchmark counters. Plain Dewey at depth 10^5+
// is intentionally absent: its labels alone would need O(depth) bytes
// per node (gigabytes at the paper's 10^6 scale), which is the claim.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"

namespace crimson {
namespace {

template <typename Scheme>
void RunLabelSize(benchmark::State& state, Scheme& scheme) {
  const PhyloTree& tree = bench::CachedCaterpillar(
      static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    Status s = scheme.Build(tree);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(scheme.node_count());
  }
  state.counters["nodes"] = static_cast<double>(tree.size());
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["max_label_B"] = static_cast<double>(scheme.MaxLabelBytes());
  state.counters["avg_label_B"] =
      static_cast<double>(scheme.TotalLabelBytes()) /
      static_cast<double>(tree.size());
  state.counters["total_label_MiB"] =
      static_cast<double>(scheme.TotalLabelBytes()) / (1024.0 * 1024.0);
}

void BM_LabelSize_Dewey(benchmark::State& state) {
  DeweyScheme scheme;
  RunLabelSize(state, scheme);
}

void BM_LabelSize_LayeredDewey(benchmark::State& state) {
  LayeredDeweyScheme scheme(8);
  RunLabelSize(state, scheme);
}

void BM_LabelSize_LayeredDeweyF16(benchmark::State& state) {
  LayeredDeweyScheme scheme(16);
  RunLabelSize(state, scheme);
}

void BM_LabelSize_Interval(benchmark::State& state) {
  IntervalScheme scheme;
  RunLabelSize(state, scheme);
}

// Plain Dewey: quadratic total label bytes confines it to 10^4.
BENCHMARK(BM_LabelSize_Dewey)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
// Layered/interval scale to the paper's 10^5..10^6-level regime.
BENCHMARK(BM_LabelSize_LayeredDewey)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LabelSize_LayeredDeweyF16)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LabelSize_Interval)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
