// E5 -- LCA query latency on deep trees (paper §2.1: layered Dewey
// answers LCA in O(f * layers) while naive parent walks and interval
// climbing degrade linearly with depth; plain Dewey pays for long
// prefix comparisons and label storage).
//
// Shape expectation: layered-Dewey latency is flat across the depth
// sweep; naive/interval grow roughly linearly with depth.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"

namespace crimson {
namespace {

template <typename Scheme>
void RunLca(benchmark::State& state, Scheme& scheme) {
  const PhyloTree& tree =
      bench::CachedCaterpillar(static_cast<uint32_t>(state.range(0)));
  Status s = scheme.Build(tree);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Rng rng(1234);
  // Pre-draw query pairs so RNG cost stays out of the loop.
  std::vector<std::pair<NodeId, NodeId>> queries(4096);
  for (auto& q : queries) {
    q.first = static_cast<NodeId>(rng.Uniform(tree.size()));
    q.second = static_cast<NodeId>(rng.Uniform(tree.size()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = queries[i++ & 4095];
    auto lca = scheme.Lca(a, b);
    benchmark::DoNotOptimize(lca);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}

void BM_Lca_LayeredDewey(benchmark::State& state) {
  LayeredDeweyScheme scheme(8);
  RunLca(state, scheme);
}
void BM_Lca_Dewey(benchmark::State& state) {
  DeweyScheme scheme;
  RunLca(state, scheme);
}
void BM_Lca_Interval(benchmark::State& state) {
  IntervalScheme scheme;
  RunLca(state, scheme);
}
void BM_Lca_NaiveWalk(benchmark::State& state) {
  NaiveScheme scheme;
  RunLca(state, scheme);
}

BENCHMARK(BM_Lca_LayeredDewey)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Lca_Dewey)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Lca_Interval)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Lca_NaiveWalk)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// LCA on realistic (Yule) shapes: depth ~ log n, all schemes fast; the
// layered scheme must not regress on shallow trees.
template <typename Scheme>
void RunLcaYule(benchmark::State& state, Scheme& scheme) {
  const PhyloTree& tree =
      bench::CachedYule(static_cast<uint32_t>(state.range(0)));
  Status s = scheme.Build(tree);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Rng rng(99);
  std::vector<std::pair<NodeId, NodeId>> queries(4096);
  for (auto& q : queries) {
    q.first = static_cast<NodeId>(rng.Uniform(tree.size()));
    q.second = static_cast<NodeId>(rng.Uniform(tree.size()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = queries[i++ & 4095];
    benchmark::DoNotOptimize(scheme.Lca(a, b));
  }
}

void BM_LcaYule_LayeredDewey(benchmark::State& state) {
  LayeredDeweyScheme scheme(8);
  RunLcaYule(state, scheme);
}
void BM_LcaYule_Naive(benchmark::State& state) {
  NaiveScheme scheme;
  RunLcaYule(state, scheme);
}
BENCHMARK(BM_LcaYule_LayeredDewey)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LcaYule_Naive)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace crimson
