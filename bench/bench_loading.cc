// E9 -- Data Loader throughput (paper §3 "Loading Data"): parsing
// Newick/NEXUS and loading trees (three modes) into the relational
// repositories, including layered-Dewey index construction.
// Shape expectation: throughput (nodes/s) roughly flat across sizes
// (linear loading); with-species mode adds per-sequence cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "tree/newick.h"
#include "tree/nexus.h"

namespace crimson {
namespace {

std::string YuleNewick(uint32_t n_leaves) {
  static auto* cache = new std::map<uint32_t, std::string>();
  auto it = cache->find(n_leaves);
  if (it == cache->end()) {
    it = cache->emplace(n_leaves,
                        WriteNewick(bench::CachedYule(n_leaves))).first;
  }
  return it->second;
}

void BM_ParseNewick(benchmark::State& state) {
  std::string text = YuleNewick(static_cast<uint32_t>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    auto t = ParseNewick(text);
    if (!t.ok()) state.SkipWithError(t.status().ToString().c_str());
    nodes = t->size();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nodes));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void BM_LoadStructureOnly(benchmark::State& state) {
  std::string text = YuleNewick(static_cast<uint32_t>(state.range(0)));
  uint64_t nodes = 0;
  int run = 0;
  for (auto _ : state) {
    auto c = Crimson::Open();
    if (!c.ok()) state.SkipWithError("open failed");
    auto report = (*c)->LoadNewick("t" + std::to_string(run++), text,
                                   LoadMode::kTreeStructureOnly);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    nodes = report->nodes_loaded;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nodes));
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_LoadWithSpeciesData(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  const PhyloTree& tree = bench::CachedYule(n);
  // Sequences evolve once; loading is what is being measured.
  static auto* seq_cache =
      new std::map<uint32_t, std::map<std::string, std::string>>();
  auto sit = seq_cache->find(n);
  if (sit == seq_cache->end()) {
    SeqEvolveOptions opts;
    opts.seq_length = 200;
    auto ev = SequenceEvolver::Create(opts);
    Rng rng(10);
    sit = seq_cache->emplace(n, *ev->EvolveLeaves(tree, &rng)).first;
  }
  int run = 0;
  for (auto _ : state) {
    auto c = Crimson::Open();
    std::string name = "t" + std::to_string(run++);
    auto report = (*c)->LoadTree(name, tree);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    auto append = (*c)->AppendSpeciesData(name, sit->second);
    if (!append.ok()) state.SkipWithError(append.status().ToString().c_str());
    benchmark::DoNotOptimize(append);
  }
  state.counters["species"] = static_cast<double>(n);
}

void BM_LoadOnDisk(benchmark::State& state) {
  // Same load against a real file (page writes + fsync on flush).
  std::string text = YuleNewick(static_cast<uint32_t>(state.range(0)));
  std::string path = "/tmp/crimson_bench_load.db";
  int run = 0;
  for (auto _ : state) {
    RemoveFile(path).ToString();
    CrimsonOptions opts;
    opts.db_path = path;
    auto c = Crimson::Open(opts);
    auto report = (*c)->LoadNewick("t" + std::to_string(run++), text,
                                   LoadMode::kTreeStructureOnly);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    if (!(*c)->Flush().ok()) state.SkipWithError("flush failed");
  }
  RemoveFile(path).ToString();
}

BENCHMARK(BM_ParseNewick)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadStructureOnly)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadWithSpeciesData)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadOnDisk)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
