// bench_metrics: the observability layer's overhead and correctness
// gates (see DESIGN.md "Observability").
//
//   overhead  -- one hot loop templated over the registry classes,
//               compiled twice into this binary: once against the real
//               obs::Counter/obs::Histogram atomic cells, once against
//               the obs::Noop* twins (the compiled-out baseline). Each
//               simulated query does a fixed spin of work, then the
//               instrumented variant adds two counter bumps and one
//               histogram observation -- the per-query registry
//               traffic of the session hot path. Repeats interleave
//               A/B and take the per-variant minimum, so a background
//               blip cannot charge one side only.
//   percentile -- a deterministic latency stream is fed to a real
//               histogram AND kept raw; the histogram's interpolated
//               p50/p95/p99 must agree with the exact offline
//               bench::Percentile within one bucket width.
//   slow log  -- a session with slow_query_micros=1 and a collecting
//               sink must emit exactly one structured line per
//               executed query (every query in the scenario costs well
//               over a microsecond; the cache is off so none
//               short-circuits), and the same scenario with a huge
//               threshold must emit none.
//
// Also reports instrumented end-to-end session throughput
// (informational). Writes BENCH_metrics.json; with --gate, exits
// non-zero unless overhead <= 2%, the percentiles agree, and the slow
// log is exact.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "crimson/crimson.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crimson {
namespace {

constexpr double kMaxOverheadPct = 2.0;

/// Simulated query compute: a few microseconds of serial spin, far
/// cheaper than any real query, so the measured overhead bound is
/// conservative.
inline uint64_t SpinWork(uint64_t x, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

/// The hot loop, templated over the registry family. Returns seconds.
template <typename Registry>
double RunHotLoop(Registry* reg, int ops, int work_rounds, uint64_t* sink) {
  auto* executed = reg->GetCounter("bench.executed");
  auto* bytes = reg->GetCounter("bench.bytes");
  auto* latency = reg->GetHistogram("bench.latency_us");
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  WallTimer timer;
  for (int i = 0; i < ops; ++i) {
    x = SpinWork(x, work_rounds);
    executed->Increment();
    bytes->Add(x & 0xFF);
    latency->Observe(1 + (x & 0xFFFF));
  }
  *sink += x;
  return timer.ElapsedSeconds();
}

struct OverheadResult {
  double noop_ns_per_op = 0;
  double real_ns_per_op = 0;
  double overhead_pct = 0;
  bool ok = false;
};

OverheadResult MeasureOverhead(int ops, int work_rounds, int repeats) {
  OverheadResult out;
  obs::NoopRegistry noop;
  obs::MetricsRegistry real;
  uint64_t sink = 0;
  double best_noop = 1e30, best_real = 1e30;
  for (int r = 0; r < repeats; ++r) {
    double n = RunHotLoop(&noop, ops, work_rounds, &sink);
    double t = RunHotLoop(&real, ops, work_rounds, &sink);
    if (n < best_noop) best_noop = n;
    if (t < best_real) best_real = t;
  }
  if (sink == 0) fprintf(stderr, "(sink zero)\n");  // keep the work live
  out.noop_ns_per_op = best_noop / ops * 1e9;
  out.real_ns_per_op = best_real / ops * 1e9;
  out.overhead_pct =
      best_noop > 0 ? (best_real - best_noop) / best_noop * 100.0 : 100.0;
  out.ok = out.overhead_pct <= kMaxOverheadPct;
  return out;
}

struct PercentileResult {
  double max_error_buckets = 0;  // |estimate - exact| / bucket width
  bool ok = false;
};

PercentileResult CheckPercentiles(int samples) {
  obs::Histogram hist(obs::Histogram::DefaultLatencyBoundsUs());
  std::vector<double> raw;
  raw.reserve(samples);
  uint64_t x = 0x21F0AAAD;
  for (int i = 0; i < samples; ++i) {
    x = SpinWork(x, 1);
    // Mixed scale: mostly fast "queries", a heavy tail.
    uint64_t us = (i % 10 == 0) ? 1 + (x % 900000) : 1 + (x % 3000);
    hist.Observe(us);
    raw.push_back(static_cast<double>(us));
  }
  obs::HistogramSnapshot snap = hist.Snapshot();
  PercentileResult out;
  out.ok = true;
  for (double p : {50.0, 95.0, 99.0}) {
    const double exact = bench::Percentile(&raw, p / 100.0);
    const double estimate = snap.Percentile(p);
    const double width = snap.BucketWidth(exact);
    const double err = width > 0 ? std::abs(estimate - exact) / width : 0;
    if (err > out.max_error_buckets) out.max_error_buckets = err;
    if (std::abs(estimate - exact) > width) out.ok = false;
  }
  return out;
}

struct SlowLogResult {
  int queries = 0;
  int lines_low_threshold = 0;
  int lines_high_threshold = 0;
  bool format_ok = true;
  bool ok = false;
  double session_qps = 0;
};

/// Heavy, cache-off queries (pattern matches and wide projections):
/// every one costs well over 1us, so with slow_query_micros=1 each
/// must produce a line and with a huge threshold none may.
SlowLogResult RunSlowLogScenario(int queries) {
  SlowLogResult out;
  out.queries = queries;
  for (int phase = 0; phase < 2; ++phase) {
    const bool low = phase == 0;
    std::vector<std::string> lines;
    std::mutex lines_mu;
    CrimsonOptions options;
    options.query_cache_bytes = 0;  // no sub-microsecond hits
    options.slow_query_micros = low ? 1 : (1ull << 40);
    options.slow_query_sink = [&](const std::string& line) {
      std::lock_guard<std::mutex> lock(lines_mu);
      lines.push_back(line);
    };
    auto session_or = Crimson::Open(options);
    if (!session_or.ok()) return out;
    auto session = std::move(session_or).value();
    auto load = session->LoadTree("bench", bench::CachedYule(96));
    if (!load.ok()) return out;
    WallTimer timer;
    for (int i = 0; i < queries; ++i) {
      QueryRequest request =
          (i % 2 == 0)
              ? QueryRequest(PatternQuery{"(S1,(S2,S3));", false})
              : QueryRequest(ProjectQuery{{"S0", "S5", "S10", "S20", "S40"}});
      auto r = session->Execute(load->ref, request);
      if (!r.ok()) {
        fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
        return out;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    if (low) {
      out.lines_low_threshold = static_cast<int>(lines.size());
      out.session_qps = seconds > 0 ? queries / seconds : 0;
      for (const std::string& line : lines) {
        if (line.find("slow_query total_us=") != 0 ||
            line.find(" kind=") == std::string::npos ||
            line.find(" params=tree=bench") == std::string::npos ||
            line.find(" status=ok") == std::string::npos ||
            line.find(" spans=") == std::string::npos) {
          out.format_ok = false;
        }
      }
      // Exactness cross-check: the registry counted the same events
      // the sink saw.
      if (session->SnapshotMetrics().counter("query.slow") !=
          static_cast<uint64_t>(lines.size())) {
        out.format_ok = false;
      }
    } else {
      out.lines_high_threshold = static_cast<int>(lines.size());
    }
  }
  out.ok = out.lines_low_threshold == queries &&
           out.lines_high_threshold == 0 && out.format_ok;
  return out;
}

int Run(int argc, char** argv) {
  bool gate = false;
  int ops = 50000;
  int work_rounds = 1200;
  int repeats = 7;
  int samples = 50000;
  int slow_queries = 50;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--ops=", 6) == 0) ops = atoi(argv[i] + 6);
    if (strncmp(argv[i], "--repeats=", 10) == 0) repeats = atoi(argv[i] + 10);
  }

  OverheadResult overhead = MeasureOverhead(ops, work_rounds, repeats);
  PercentileResult pct = CheckPercentiles(samples);
  SlowLogResult slow = RunSlowLogScenario(slow_queries);
  const bool pass = overhead.ok && pct.ok && slow.ok;

  printf(
      "registry hot loop, %d ops x %d repeats (interleaved, min):\n"
      "  noop baseline : %8.1f ns/op\n"
      "  instrumented  : %8.1f ns/op  (+%.2f%%, gate <= %.1f%%)\n"
      "histogram percentiles vs offline exact (%d samples): "
      "max error %.2f bucket widths: %s\n"
      "slow-query log (%d heavy queries): threshold 1us -> %d lines, "
      "huge threshold -> %d lines, format %s: %s\n"
      "instrumented session throughput: %.0f queries/s\n"
      "gate: %s\n",
      ops, repeats, overhead.noop_ns_per_op, overhead.real_ns_per_op,
      overhead.overhead_pct, kMaxOverheadPct, samples,
      pct.max_error_buckets, pct.ok ? "OK" : "DISAGREE", slow.queries,
      slow.lines_low_threshold, slow.lines_high_threshold,
      slow.format_ok ? "ok" : "BAD", slow.ok ? "OK" : "FAIL",
      slow.session_qps, pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_metrics.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"ops\": %d,\n"
            "  \"repeats\": %d,\n"
            "  \"noop_ns_per_op\": %.2f,\n"
            "  \"instrumented_ns_per_op\": %.2f,\n"
            "  \"overhead_pct\": %.3f,\n"
            "  \"gate_max_overhead_pct\": %.1f,\n"
            "  \"percentile_samples\": %d,\n"
            "  \"percentile_max_error_buckets\": %.3f,\n"
            "  \"percentile_ok\": %s,\n"
            "  \"slow_queries\": %d,\n"
            "  \"slow_lines_low_threshold\": %d,\n"
            "  \"slow_lines_high_threshold\": %d,\n"
            "  \"slow_log_ok\": %s,\n"
            "  \"session_queries_per_sec\": %.1f,\n"
            "  \"pass\": %s\n"
            "}\n",
            ops, repeats, overhead.noop_ns_per_op, overhead.real_ns_per_op,
            overhead.overhead_pct, kMaxOverheadPct, samples,
            pct.max_error_buckets, pct.ok ? "true" : "false", slow.queries,
            slow.lines_low_threshold, slow.lines_high_threshold,
            slow.ok ? "true" : "false", slow.session_qps,
            pass ? "true" : "false");
    fclose(json);
  }

  if (gate && !pass) {
    fprintf(stderr,
            "GATE FAILURE: overhead %.2f%% (max %.1f%%), percentiles %s, "
            "slow log %s\n",
            overhead.overhead_pct, kMaxOverheadPct, pct.ok ? "ok" : "BAD",
            slow.ok ? "ok" : "BAD");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
