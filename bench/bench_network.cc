// bench_network: closed-loop multi-client throughput/latency for the
// wire protocol (CrimsonServer + CrimsonClient over loopback).
//
// One server over a fresh in-memory session; N client threads each run
// a closed loop of single LCA queries (issue, wait, repeat) against a
// stored Yule tree, for N in {1, 4, 16, 64}. A deterministic injected
// per-query execution delay (--delay-us, default 2000) models query
// compute inside an execution slot, so the scaling shape is
// reproducible across machines -- including single-core CI boxes,
// because overlapping *sleeps* need concurrency in the server's slot
// discipline, not extra cores: with E execution slots the ceiling is
// E/delay queries/sec no matter the core count.
//
// Backpressure is part of the measurement: admission is capped
// (--max-inflight, default 32), so at 64 clients the server sheds load
// with kUnavailable + retry-after instead of queueing without bound.
// Clients sleep the server's hint and retry (the canonical loop);
// reported latency is per successful request, rejects are counted
// separately. That is exactly why p99 stays bounded at saturation:
// admitted work is at most max_inflight deep, everything else waits
// client-side.
//
// Byte identity: after the timed phase, all six query kinds run over
// the wire and on a fresh same-seed in-process session; the encoded
// result payloads must match byte for byte.
//
// Writes BENCH_network.json. With --gate, exits non-zero unless
//   - QPS grows monotonically from 1 to 4 to 16 clients,
//   - at 64 clients the server rejected work (backpressure engaged)
//     and successful-request p99 stayed under 100x the injected delay,
//   - the six-kind wire vs in-process byte identity holds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "crimson/crimson.h"
#include "crimson/service.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace {

constexpr uint32_t kLeaves = 96;
constexpr uint64_t kSeed = 42;

std::string BenchNewick() {
  Rng rng(0xBE7);
  YuleOptions yule;
  yule.n_leaves = kLeaves;
  auto tree = SimulateYule(yule, &rng);
  if (!tree.ok()) return {};
  return WriteNewick(*tree);
}

std::vector<QueryRequest> SixKinds() {
  return {
      QueryRequest(LcaQuery{"S19", "S94"}),
      QueryRequest(ProjectQuery{{"S0", "S1", "S19", "S94"}}),
      QueryRequest(SampleUniformQuery{10}),
      QueryRequest(SampleTimeQuery{8, 0.5}),
      QueryRequest(CladeQuery{{"S2", "S3", "S19"}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
}

struct LevelResult {
  int clients = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double seconds = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  bool ok = false;
};

using bench::Percentile;

/// `clients` closed loops of `ops_per_client` successful LCA queries
/// each against one running server.
LevelResult RunLevel(uint16_t port, int clients, int ops_per_client) {
  LevelResult out;
  out.clients = clients;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> rejects(clients, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientOptions copts;
      copts.port = port;
      auto client_or = net::CrimsonClient::Connect(copts);
      if (!client_or.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(client_or).value();
      const QueryRequest request(LcaQuery{"S19", "S94"});
      latencies[c].reserve(ops_per_client);
      for (int i = 0; i < ops_per_client;) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = client->Execute("bench", request);
        auto us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        if (r.ok()) {
          latencies[c].push_back(us);
          ++i;
        } else if (r.status().IsUnavailable()) {
          ++rejects[c];
          int64_t backoff = std::max<int64_t>(r.status().retry_after_ms(), 1);
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        } else {
          fprintf(stderr, "client %d failed: %s\n", c,
                  r.status().ToString().c_str());
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (failures.load() != 0) return out;

  std::vector<double> all;
  for (auto& l : latencies) {
    out.completed += l.size();
    all.insert(all.end(), l.begin(), l.end());
  }
  for (uint64_t r : rejects) out.rejected += r;
  out.qps = out.seconds > 0 ? out.completed / out.seconds : 0;
  out.p50_us = Percentile(&all, 0.50);
  out.p99_us = Percentile(&all, 0.99);
  out.ok = true;
  return out;
}

/// Six query kinds over the wire vs a fresh same-seed in-process
/// session: encoded result payloads must be byte-identical.
bool CheckByteIdentity(const std::string& newick) {
  CrimsonOptions wire_opts;
  wire_opts.seed = kSeed;
  auto wire_session_or = Crimson::Open(wire_opts);
  if (!wire_session_or.ok()) return false;
  auto wire_session = std::move(wire_session_or).value();
  SessionService service(wire_session.get());
  auto server_or = net::CrimsonServer::Start(&service);
  if (!server_or.ok()) return false;
  auto server = std::move(server_or).value();
  net::ClientOptions copts;
  copts.port = server->port();
  auto client_or = net::CrimsonClient::Connect(copts);
  if (!client_or.ok()) return false;
  auto client = std::move(client_or).value();
  if (!client->StoreNewick("twin", newick).ok()) return false;

  CrimsonOptions local_opts;
  local_opts.seed = kSeed;
  auto local_or = Crimson::Open(local_opts);
  if (!local_or.ok()) return false;
  auto local = std::move(local_or).value();
  auto report = local->LoadNewick("twin", newick);
  if (!report.ok()) return false;

  for (const auto& request : SixKinds()) {
    auto remote = client->Execute("twin", request);
    auto in_process = local->Execute(report->ref, request);
    if (remote.ok() != in_process.ok()) return false;
    if (!remote.ok()) continue;
    std::string remote_bytes, local_bytes;
    net::EncodeQueryResult(&remote_bytes, *remote);
    net::EncodeQueryResult(&local_bytes, *in_process);
    if (remote_bytes != local_bytes) {
      fprintf(stderr, "byte identity broken for %s\n",
              std::string(QueryKindName(request)).c_str());
      return false;
    }
  }
  return server->Shutdown().ok();
}

}  // namespace

int Run(int argc, char** argv) {
  int delay_us = 2000;
  int ops_per_client = 100;
  size_t exec_slots = 8;
  size_t max_inflight = 32;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--delay-us=", 11) == 0) {
      delay_us = atoi(argv[i] + 11);
    }
    if (strncmp(argv[i], "--ops=", 6) == 0) ops_per_client = atoi(argv[i] + 6);
    if (strncmp(argv[i], "--workers=", 10) == 0) {
      exec_slots = static_cast<size_t>(atoi(argv[i] + 10));
    }
    if (strncmp(argv[i], "--max-inflight=", 15) == 0) {
      max_inflight = static_cast<size_t>(atoi(argv[i] + 15));
    }
  }

  const std::string newick = BenchNewick();
  if (newick.empty()) {
    fprintf(stderr, "tree simulation failed\n");
    return 1;
  }

  CrimsonOptions session_opts;
  session_opts.seed = kSeed;
  session_opts.batch_workers = exec_slots;
  auto session_or = Crimson::Open(session_opts);
  if (!session_or.ok()) {
    fprintf(stderr, "session open failed: %s\n",
            session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();
  SessionService service(session.get());

  net::ServerOptions server_opts;
  server_opts.max_connections = 128;
  server_opts.max_exec_concurrency = exec_slots;
  server_opts.max_inflight_queries = max_inflight;
  server_opts.retry_after_ms = 2;
  server_opts.inject_query_delay_us = delay_us;
  auto server_or = net::CrimsonServer::Start(&service, server_opts);
  if (!server_or.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_or).value();

  {
    net::ClientOptions copts;
    copts.port = server->port();
    auto seeder = net::CrimsonClient::Connect(copts);
    if (!seeder.ok() || !(*seeder)->StoreNewick("bench", newick).ok()) {
      fprintf(stderr, "bench tree store failed\n");
      return 1;
    }
  }

  const int levels[] = {1, 4, 16, 64};
  std::vector<LevelResult> results;
  for (int clients : levels) {
    LevelResult r = RunLevel(server->port(), clients, ops_per_client);
    if (!r.ok) {
      fprintf(stderr, "level with %d clients failed\n", clients);
      return 1;
    }
    results.push_back(r);
  }
  if (!server->Shutdown().ok()) {
    fprintf(stderr, "server drain failed\n");
    return 1;
  }

  const bool identical = CheckByteIdentity(newick);

  const LevelResult& l1 = results[0];
  const LevelResult& l4 = results[1];
  const LevelResult& l16 = results[2];
  const LevelResult& l64 = results[3];
  const double p99_bound_us = 100.0 * delay_us;
  const bool qps_monotone = l4.qps > l1.qps && l16.qps >= l4.qps;
  const bool saturation_bounded =
      l64.rejected > 0 && l64.p99_us <= p99_bound_us;
  const bool pass = qps_monotone && saturation_bounded && identical;

  printf("closed-loop wire protocol, %dus injected query delay, "
         "%zu exec slots, %zu admission slots:\n",
         delay_us, exec_slots, max_inflight);
  for (const LevelResult& r : results) {
    printf("  %2d client(s): %8.0f q/s   p50 %7.0fus   p99 %7.0fus   "
           "%llu ok, %llu rejected\n",
           r.clients, r.qps, r.p50_us, r.p99_us,
           static_cast<unsigned long long>(r.completed),
           static_cast<unsigned long long>(r.rejected));
  }
  printf("six-kind wire vs in-process byte identity: %s\n"
         "gate (QPS monotone 1->4->16, p99@64 <= %.0fus with rejects, "
         "identity): %s\n",
         identical ? "OK" : "MISMATCH", p99_bound_us, pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_network.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"delay_us\": %d,\n"
            "  \"exec_slots\": %zu,\n"
            "  \"max_inflight\": %zu,\n"
            "  \"ops_per_client\": %d,\n"
            "  \"levels\": [\n",
            delay_us, exec_slots, max_inflight, ops_per_client);
    for (size_t i = 0; i < results.size(); ++i) {
      const LevelResult& r = results[i];
      fprintf(json,
              "    {\"clients\": %d, \"qps\": %.1f, \"p50_us\": %.1f, "
              "\"p99_us\": %.1f, \"completed\": %llu, \"rejected\": %llu}%s\n",
              r.clients, r.qps, r.p50_us, r.p99_us,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.rejected),
              i + 1 < results.size() ? "," : "");
    }
    fprintf(json,
            "  ],\n"
            "  \"byte_identical\": %s,\n"
            "  \"qps_monotone\": %s,\n"
            "  \"p99_bound_us\": %.1f,\n"
            "  \"saturation_bounded\": %s,\n"
            "  \"pass\": %s\n"
            "}\n",
            identical ? "true" : "false", qps_monotone ? "true" : "false",
            p99_bound_us, saturation_bounded ? "true" : "false",
            pass ? "true" : "false");
    fclose(json);
  }

  if (gate && !pass) {
    fprintf(stderr, "GATE FAILURE: see BENCH_network.json\n");
    return 1;
  }
  return 0;
}

}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
