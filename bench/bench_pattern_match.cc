// E8 -- tree pattern match (paper §2.2): project the pattern's leaf
// set, then compare. Cost = projection + linear-time comparison.
// Shape expectation: scales with pattern size, not tree size.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "labeling/layered_dewey.h"
#include "query/pattern_match.h"
#include "query/sampling.h"

namespace crimson {
namespace {

struct MatchBundle {
  std::unique_ptr<LayeredDeweyScheme> scheme;
  std::unique_ptr<TreeProjector> projector;
  std::unique_ptr<PatternMatcher> matcher;
  std::unique_ptr<Sampler> sampler;
};

const MatchBundle& CachedMatcher(uint32_t n_leaves) {
  static auto* cache = new std::map<uint32_t, std::unique_ptr<MatchBundle>>();
  auto it = cache->find(n_leaves);
  if (it == cache->end()) {
    const PhyloTree& tree = bench::CachedYule(n_leaves);
    auto b = std::make_unique<MatchBundle>();
    b->scheme = std::make_unique<LayeredDeweyScheme>(8);
    if (!b->scheme->Build(tree).ok()) abort();
    b->projector = std::make_unique<TreeProjector>(&tree, b->scheme.get());
    b->matcher = std::make_unique<PatternMatcher>(b->projector.get());
    b->sampler = std::make_unique<Sampler>(&tree);
    it = cache->emplace(n_leaves, std::move(b)).first;
  }
  return *it->second;
}

// Matching a true pattern (a projection of the tree itself).
void BM_PatternMatch_Hit(benchmark::State& state) {
  const MatchBundle& b = CachedMatcher(static_cast<uint32_t>(state.range(0)));
  Rng rng(8);
  auto sample = b.sampler->SampleUniform(
      static_cast<size_t>(state.range(1)), &rng);
  auto pattern = b.projector->Project(*sample);
  if (!pattern.ok()) {
    state.SkipWithError("projection failed");
    return;
  }
  bool exact = false;
  for (auto _ : state) {
    auto m = b.matcher->Match(*pattern, 1e-9, /*match_weights=*/true);
    if (!m.ok()) state.SkipWithError(m.status().ToString().c_str());
    exact = m->exact;
    benchmark::DoNotOptimize(m);
  }
  state.counters["exact"] = exact ? 1 : 0;
}

// Matching a decoy: same species, shuffled topology (exercise the
// negative path and the similarity machinery).
void BM_PatternMatch_Miss(benchmark::State& state) {
  const MatchBundle& b = CachedMatcher(static_cast<uint32_t>(state.range(0)));
  Rng rng(9);
  auto sample = b.sampler->SampleUniform(
      static_cast<size_t>(state.range(1)), &rng);
  auto projection = b.projector->Project(*sample);
  if (!projection.ok()) {
    state.SkipWithError("projection failed");
    return;
  }
  // Decoy: random topology over the same leaf names.
  std::vector<std::string> names;
  for (NodeId n : projection->Leaves()) names.emplace_back(projection->name(n));
  PhyloTree decoy = MakeRandomBinary(static_cast<uint32_t>(names.size()),
                                     &rng);
  std::vector<NodeId> decoy_leaves = decoy.Leaves();
  for (size_t i = 0; i < decoy_leaves.size(); ++i) {
    decoy.set_name(decoy_leaves[i], names[i]);
  }
  bool exact = true;
  for (auto _ : state) {
    auto m = b.matcher->Match(decoy, 1e-9, /*match_weights=*/false);
    if (!m.ok()) state.SkipWithError(m.status().ToString().c_str());
    exact = m->exact;
    benchmark::DoNotOptimize(m);
  }
  state.counters["exact"] = exact ? 1 : 0;
}

// Args: {tree leaves, pattern leaves}.
BENCHMARK(BM_PatternMatch_Hit)
    ->Args({10000, 16})->Args({10000, 128})->Args({10000, 1024})
    ->Args({100000, 16})->Args({100000, 128})->Args({100000, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PatternMatch_Miss)
    ->Args({100000, 16})->Args({100000, 128})->Args({100000, 1024})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
