// E7 -- tree projection (paper Fig. 2 / §2.2): project the tree induced
// by k sampled species out of a large gold-standard tree. This is the
// workhorse query of the Benchmark Manager, since reconstruction
// algorithms "can only handle a relatively small input set (several
// hundred to several thousand species)".
//
// Shape expectation: after the one-time O(n) projector setup, each
// projection costs O(k log k) sorting plus k LCA probes -- driven by
// the sample size, not the 10^5..10^6-node tree.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "labeling/layered_dewey.h"
#include "query/projection.h"
#include "query/sampling.h"

namespace crimson {
namespace {

struct ProjectorBundle {
  std::unique_ptr<LayeredDeweyScheme> scheme;
  std::unique_ptr<TreeProjector> projector;
  std::unique_ptr<Sampler> sampler;
};

const ProjectorBundle& CachedBundle(uint32_t n_leaves) {
  static auto* cache =
      new std::map<uint32_t, std::unique_ptr<ProjectorBundle>>();
  auto it = cache->find(n_leaves);
  if (it == cache->end()) {
    const PhyloTree& tree = bench::CachedYule(n_leaves);
    auto bundle = std::make_unique<ProjectorBundle>();
    bundle->scheme = std::make_unique<LayeredDeweyScheme>(8);
    Status s = bundle->scheme->Build(tree);
    if (!s.ok()) abort();
    bundle->projector =
        std::make_unique<TreeProjector>(&tree, bundle->scheme.get());
    bundle->sampler = std::make_unique<Sampler>(&tree);
    it = cache->emplace(n_leaves, std::move(bundle)).first;
  }
  return *it->second;
}

void BM_ProjectUniformSample(benchmark::State& state) {
  const ProjectorBundle& b =
      CachedBundle(static_cast<uint32_t>(state.range(0)));
  size_t k = static_cast<size_t>(state.range(1));
  Rng rng(6);
  auto sample = b.sampler->SampleUniform(k, &rng);
  if (!sample.ok()) {
    state.SkipWithError("sampling failed");
    return;
  }
  for (auto _ : state) {
    auto proj = b.projector->Project(*sample);
    if (!proj.ok()) state.SkipWithError(proj.status().ToString().c_str());
    benchmark::DoNotOptimize(proj);
  }
  state.counters["tree_nodes"] =
      static_cast<double>(bench::CachedYule(
                              static_cast<uint32_t>(state.range(0))).size());
  state.counters["k"] = static_cast<double>(k);
}

// Args: {tree leaves, sample size k}. k spans the paper's stated
// reconstruction input range.
BENCHMARK(BM_ProjectUniformSample)
    ->Args({10000, 100})->Args({10000, 1000})
    ->Args({100000, 100})->Args({100000, 1000})->Args({100000, 4000})
    ->Args({500000, 100})->Args({500000, 1000})->Args({500000, 4000})
    ->Unit(benchmark::kMillisecond);

void BM_ProjectFromDeepTree(benchmark::State& state) {
  // Deep-chain regime: long merged unary paths.
  const PhyloTree& tree =
      bench::CachedCaterpillar(static_cast<uint32_t>(state.range(0)));
  static auto* schemes =
      new std::map<int64_t, std::unique_ptr<LayeredDeweyScheme>>();
  auto it = schemes->find(state.range(0));
  if (it == schemes->end()) {
    auto s = std::make_unique<LayeredDeweyScheme>(8);
    if (!s->Build(tree).ok()) abort();
    it = schemes->emplace(state.range(0), std::move(s)).first;
  }
  TreeProjector projector(&tree, it->second.get());
  Sampler sampler(&tree);
  Rng rng(7);
  auto sample = sampler.SampleUniform(
      static_cast<size_t>(state.range(1)), &rng);
  if (!sample.ok()) {
    state.SkipWithError("sampling failed");
    return;
  }
  for (auto _ : state) {
    auto proj = projector.Project(*sample);
    benchmark::DoNotOptimize(proj);
  }
}

BENCHMARK(BM_ProjectFromDeepTree)
    ->Args({100000, 100})->Args({100000, 1000})
    ->Args({1000000, 100})->Args({1000000, 1000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
