// Batched vs. sequential query throughput through the session API: an
// LCA + clade mix over the cached Yule gold standard, executed one
// request at a time through Execute and as one ExecuteBatch call over
// the session worker pool. Batched results are defined to be
// byte-identical to sequential execution (tickets are assigned in
// request order), so this measures pure dispatch/concurrency overhead.
//
// Ships its own main: by default results are also written to
// BENCH_query_batch.json (benchmark's JSON format, the file the
// harness collects); pass --benchmark_out=... to override.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "crimson/crimson.h"

namespace crimson {
namespace {

struct Fixture {
  std::unique_ptr<Crimson> session;
  TreeRef tree;
  std::vector<QueryRequest> requests;
};

/// Session over the cached Yule tree plus a deterministic LCA + clade
/// request mix (3:1), cached per (n_leaves, n_requests, workers).
const Fixture& CachedFixture(uint32_t n_leaves, size_t n_requests,
                             size_t workers) {
  static auto* cache = new std::map<std::string, std::unique_ptr<Fixture>>();
  std::string key = std::to_string(n_leaves) + "/" +
                    std::to_string(n_requests) + "/" +
                    std::to_string(workers);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto fx = std::make_unique<Fixture>();
    CrimsonOptions options;
    options.batch_workers = workers;
    fx->session = std::move(Crimson::Open(options)).value();
    const PhyloTree& gold = bench::CachedYule(n_leaves);
    fx->tree = fx->session->LoadTree("yule", gold).value().ref;

    std::vector<std::string> leaves;
    for (NodeId n : gold.Leaves()) leaves.emplace_back(gold.name(n));
    Rng rng(0xBA7C4);
    fx->requests.reserve(n_requests);
    for (size_t i = 0; i < n_requests; ++i) {
      const std::string& a = leaves[rng.Uniform(leaves.size())];
      const std::string& b = leaves[rng.Uniform(leaves.size())];
      if (i % 4 == 3) {
        fx->requests.emplace_back(CladeQuery{{a, b}});
      } else {
        fx->requests.emplace_back(LcaQuery{a, b});
      }
    }
    it = cache->emplace(key, std::move(fx)).first;
  }
  return *it->second;
}

constexpr size_t kRequests = 1024;

void BM_QueryMix_Sequential(benchmark::State& state) {
  const Fixture& fx = CachedFixture(
      static_cast<uint32_t>(state.range(0)), kRequests, /*workers=*/1);
  for (auto _ : state) {
    for (const QueryRequest& request : fx.requests) {
      auto r = fx.session->Execute(fx.tree, request);
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRequests));
  state.counters["queries"] = static_cast<double>(kRequests);
}

void BM_QueryMix_Batched(benchmark::State& state) {
  const Fixture& fx =
      CachedFixture(static_cast<uint32_t>(state.range(0)), kRequests,
                    static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto results = fx.session->ExecuteBatch(fx.tree, fx.requests);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRequests));
  state.counters["workers"] = static_cast<double>(state.range(1));
}

BENCHMARK(BM_QueryMix_Sequential)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryMix_Batched)
    ->Args({1000, 2})->Args({1000, 4})->Args({1000, 8})
    ->Args({10000, 2})->Args({10000, 4})->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out = "--benchmark_out=BENCH_query_batch.json";
  std::string fmt = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
