// E6 -- sampling queries (paper §2.2): uniform species sampling and
// sampling with respect to evolutionary time, over gold-standard trees
// of increasing size and sample sizes matching reconstruction input
// scales (hundreds to thousands of species).
//
// Shape expectation: uniform sampling is O(k) after O(n) setup;
// time sampling costs frontier discovery plus per-subtree draws.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "query/sampling.h"

namespace crimson {
namespace {

const Sampler& CachedSampler(uint32_t n_leaves) {
  static auto* cache =
      new std::map<uint32_t, std::unique_ptr<Sampler>>();
  auto it = cache->find(n_leaves);
  if (it == cache->end()) {
    it = cache->emplace(n_leaves, std::make_unique<Sampler>(
                                      &bench::CachedYule(n_leaves))).first;
  }
  return *it->second;
}

void BM_SampleUniform(benchmark::State& state) {
  const Sampler& sampler =
      CachedSampler(static_cast<uint32_t>(state.range(0)));
  size_t k = static_cast<size_t>(state.range(1));
  Rng rng(4);
  for (auto _ : state) {
    auto s = sampler.SampleUniform(k, &rng);
    if (!s.ok()) state.SkipWithError(s.status().ToString().c_str());
    benchmark::DoNotOptimize(s);
  }
  state.counters["leaves"] = static_cast<double>(state.range(0));
  state.counters["k"] = static_cast<double>(k);
}

void BM_SampleWithRespectToTime(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  const Sampler& sampler = CachedSampler(n);
  const PhyloTree& tree = bench::CachedYule(n);
  // Aim the frontier mid-tree: half the max root-path weight.
  double max_w = 0;
  for (double w : tree.RootPathWeights()) max_w = std::max(max_w, w);
  double time = max_w * 0.5;
  size_t k = static_cast<size_t>(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    auto s = sampler.SampleWithRespectToTime(k, time, &rng);
    if (!s.ok()) state.SkipWithError(s.status().ToString().c_str());
    benchmark::DoNotOptimize(s);
  }
  state.counters["leaves"] = static_cast<double>(n);
  state.counters["k"] = static_cast<double>(k);
}

void BM_TimeFrontier(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  const Sampler& sampler = CachedSampler(n);
  const PhyloTree& tree = bench::CachedYule(n);
  double max_w = 0;
  for (double w : tree.RootPathWeights()) max_w = std::max(max_w, w);
  double time = max_w * static_cast<double>(state.range(1)) / 100.0;
  size_t frontier_size = 0;
  for (auto _ : state) {
    auto frontier = sampler.TimeFrontier(time);
    frontier_size = frontier.size();
    benchmark::DoNotOptimize(frontier);
  }
  state.counters["frontier"] = static_cast<double>(frontier_size);
}

// Args: {tree leaves, k}.
BENCHMARK(BM_SampleUniform)
    ->Args({10000, 100})->Args({10000, 1000})
    ->Args({100000, 100})->Args({100000, 1000})->Args({100000, 4096})
    ->Args({500000, 1000});
BENCHMARK(BM_SampleWithRespectToTime)
    ->Args({10000, 100})->Args({10000, 1000})
    ->Args({100000, 100})->Args({100000, 1000})
    ->Unit(benchmark::kMillisecond);
// Args: {tree leaves, time as % of height}.
BENCHMARK(BM_TimeFrontier)
    ->Args({100000, 25})->Args({100000, 50})->Args({100000, 75})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crimson
