// E10 -- storage access paths (paper "database challenges" #1):
// gold-standard trees are huge while queries touch small portions, so
// indexed random access by species name / evolutionary time must beat
// scans, and the buffer pool must keep hot paths cheap.
//
// Shape expectation: B+Tree point lookups are microseconds and scale
// ~log n; full scans grow linearly and lose by orders of magnitude;
// shrinking the buffer pool turns hits into misses and inflates
// latency.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "storage/database.h"

namespace crimson {
namespace {

struct Db {
  std::unique_ptr<Database> db;
  std::unique_ptr<Table> table;
};

/// Table of n rows: (id int64 unique-indexed, name string indexed,
/// weight double indexed, payload).
std::unique_ptr<Db> BuildDb(int64_t rows, size_t pool_pages) {
  auto out = std::make_unique<Db>();
  DatabaseOptions opts;
  opts.buffer_pool_pages = pool_pages;
  out->db = std::move(Database::OpenInMemory(opts)).value();
  Schema schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"weight", ColumnType::kDouble},
                 {"payload", ColumnType::kBytes}});
  auto table = out->db->CreateTable(
      "nodes", schema,
      {{"by_id", "id", true}, {"by_name", "name", false},
       {"by_weight", "weight", false}});
  if (!table.ok()) abort();
  out->table = std::make_unique<Table>(std::move(table).value());
  Rng rng(11);
  for (int64_t i = 0; i < rows; ++i) {
    Row row = {i, StrFormat("S%lld", static_cast<long long>(i)),
               rng.NextDouble() * 1000.0, std::string(32, 'x')};
    if (!out->table->Insert(row).ok()) abort();
  }
  return out;
}

void BM_IndexPointLookup(benchmark::State& state) {
  auto db = BuildDb(state.range(0), 4096);
  Rng rng(12);
  for (auto _ : state) {
    int64_t id = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(state.range(0))));
    auto hits = db->table->IndexLookup(
        "by_name", StrFormat("S%lld", static_cast<long long>(id)));
    if (!hits.ok() || hits->empty()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_FullScanLookup(benchmark::State& state) {
  auto db = BuildDb(state.range(0), 4096);
  Rng rng(13);
  for (auto _ : state) {
    std::string target =
        StrFormat("S%llu", static_cast<unsigned long long>(
                               rng.Uniform(static_cast<uint64_t>(
                                   state.range(0)))));
    bool found = false;
    Status s = db->table->Scan([&](const RecordId&, const Row& row) {
      if (std::get<std::string>(row[1]) == target) {
        found = true;
        return false;
      }
      return true;
    });
    if (!s.ok() || !found) state.SkipWithError("scan failed");
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_IndexRangeScan(benchmark::State& state) {
  auto db = BuildDb(state.range(0), 4096);
  for (auto _ : state) {
    std::string lo, hi;
    db->table->EncodeKeyFor("by_weight", 400.0, &lo).ToString();
    db->table->EncodeKeyFor("by_weight", 500.0, &hi).ToString();
    int64_t count = 0;
    Status s = db->table->IndexRangeScan("by_weight", lo, hi,
                                         [&](const Slice&, RecordId) {
                                           ++count;
                                           return true;
                                         });
    if (!s.ok()) state.SkipWithError("range scan failed");
    benchmark::DoNotOptimize(count);
  }
}

void BM_PointLookupVsPoolSize(benchmark::State& state) {
  // Fixed 200k-row table; buffer pool from ample to starved.
  auto db = BuildDb(200000, static_cast<size_t>(state.range(0)));
  db->db->buffer_pool()->ResetStats();
  Rng rng(14);
  for (auto _ : state) {
    int64_t id = static_cast<int64_t>(rng.Uniform(200000));
    auto hits = db->table->IndexLookup("by_id", id);
    if (!hits.ok()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(hits);
  }
  const BufferPoolStats& stats = db->db->stats();
  double total = static_cast<double>(stats.hits + stats.misses);
  state.counters["pool_pages"] = static_cast<double>(state.range(0));
  state.counters["hit_rate"] =
      total > 0 ? static_cast<double>(stats.hits) / total : 0;
}

BENCHMARK(BM_IndexPointLookup)->Arg(10000)->Arg(100000)->Arg(400000);
BENCHMARK(BM_FullScanLookup)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexRangeScan)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointLookupVsPoolSize)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace crimson
