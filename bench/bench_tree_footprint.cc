// bench_tree_footprint: bytes/node of the packed PhyloTree layout
// against the legacy struct-of-strings layout, plus the name-addressed
// query speedup the interned NameIndex buys over linear FindByName
// resolution (ROADMAP item 2).
//
// Footprint: one Yule tree with realistic ~20-character species labels
// is built in the packed layout (measured via MemoryFootprintBytes
// after ShrinkToFit) and mirrored into the legacy representation --
// a std::vector of { std::string name; double edge; 4x NodeId } nodes,
// exactly the pre-refactor sizeof(Node)==56 shape. Legacy bytes are
// the vector payload plus, for every label past the 15-char SSO cap,
// the glibc malloc chunk its heap buffer actually consumes
// (max(32, round16(capacity + 1 + 8))); header-free SSO names charge
// nothing extra, so the model is conservative.
//
// Resolution: the same tree's labeled-LCA workload addressed by
// species names -- each query resolves 2 (LCA) or 4 (clade-style) leaf
// names and folds the layered-Dewey LCA over them. The "linear" mode
// resolves via PhyloTree::FindByName (the pre-index behavior of
// Crimson::ResolveSpecies); "indexed" resolves via NameIndex::Find.
// Results must agree node-for-node.
//
// Writes BENCH_tree_footprint.json. With --gate, exits non-zero unless
// packed bytes/node <= 0.5x legacy bytes/node AND the indexed workload
// is >= 10x faster than the linear one (the CI smoke contract).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "labeling/layered_dewey.h"
#include "sim/tree_sim.h"
#include "tree/name_index.h"
#include "tree/phylo_tree.h"

namespace crimson {
namespace {

/// The pre-refactor node shape (sizeof == 56 on LP64): one heap string
/// and five fields per node.
struct LegacyNode {
  std::string name;
  double edge_length = 0.0;
  NodeId parent = kNoNode;
  NodeId first_child = kNoNode;
  NodeId last_child = kNoNode;
  NodeId next_sibling = kNoNode;
};

/// glibc malloc chunk consumed by a heap allocation of `request` bytes.
size_t MallocChunk(size_t request) {
  size_t chunk = (request + 8 + 15) & ~static_cast<size_t>(15);
  return std::max<size_t>(32, chunk);
}

/// Realistic species label, ~20 chars ("Species_00042_3fa9c1d2").
std::string SpeciesLabel(uint32_t i) {
  uint64_t h = 0x9E3779B97F4A7C15ULL * (i + 1);
  h ^= h >> 29;
  return StrFormat("Species_%05u_%08x", i,
                   static_cast<uint32_t>(h & 0xffffffff));
}

struct Footprint {
  size_t nodes = 0;
  size_t packed_bytes = 0;
  size_t legacy_bytes = 0;
  double packed_per_node = 0;
  double legacy_per_node = 0;
  double ratio = 0;
};

Footprint MeasureFootprint(const PhyloTree& tree) {
  Footprint out;
  out.nodes = tree.size();
  out.packed_bytes = tree.MemoryFootprintBytes();

  // Mirror into the legacy layout and charge what it actually holds:
  // the node vector plus each non-SSO name's malloc chunk.
  std::vector<LegacyNode> legacy;
  legacy.reserve(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    LegacyNode node;
    node.name = std::string(tree.name(n));
    node.edge_length = tree.edge_length(n);
    node.parent = tree.parent(n);
    node.first_child = tree.first_child(n);
    node.next_sibling = tree.next_sibling(n);
    legacy.push_back(std::move(node));
  }
  size_t bytes = legacy.capacity() * sizeof(LegacyNode);
  for (const LegacyNode& node : legacy) {
    // libstdc++ SSO holds up to 15 chars inline; longer names own a
    // heap buffer of capacity+1 bytes.
    if (node.name.capacity() > 15) {
      bytes += MallocChunk(node.name.capacity() + 1);
    }
  }
  out.legacy_bytes = bytes;
  out.packed_per_node = static_cast<double>(out.packed_bytes) / out.nodes;
  out.legacy_per_node = static_cast<double>(out.legacy_bytes) / out.nodes;
  out.ratio = out.packed_per_node / out.legacy_per_node;
  return out;
}

/// One name-addressed query: 2 names (LCA) or 4 names (clade-style
/// span), resolved then folded through the labeled LCA.
struct NameQuery {
  std::vector<std::string> species;
};

std::vector<NameQuery> MakeWorkload(uint32_t n_leaves, int ops,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<NameQuery> out;
  out.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    NameQuery q;
    const int k = (i % 2 == 0) ? 2 : 4;  // alternate LCA / clade shape
    for (int j = 0; j < k; ++j) {
      q.species.push_back(SpeciesLabel(
          static_cast<uint32_t>(rng.Uniform(n_leaves))));
    }
    out.push_back(std::move(q));
  }
  return out;
}

struct WorkloadResult {
  double seconds = 0;
  std::vector<NodeId> answers;
  bool ok = false;
};

/// Runs the workload with either linear (FindByName) or indexed
/// (NameIndex) name resolution; the LCA fold is identical in both.
WorkloadResult RunWorkload(const PhyloTree& tree,
                           const LayeredDeweyScheme& scheme,
                           const NameIndex* index,
                           const std::vector<NameQuery>& workload) {
  WorkloadResult out;
  out.answers.reserve(workload.size());
  auto start = std::chrono::steady_clock::now();
  for (const NameQuery& q : workload) {
    NodeId lca = kNoNode;
    for (const std::string& s : q.species) {
      NodeId n = index != nullptr ? index->Find(tree, s)
                                  : tree.FindByName(s);
      if (n == kNoNode) return out;
      if (lca == kNoNode) {
        lca = n;
      } else {
        auto folded = scheme.Lca(lca, n);
        if (!folded.ok()) return out;
        lca = *folded;
      }
    }
    out.answers.push_back(lca);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.ok = true;
  return out;
}

}  // namespace

int Run(int argc, char** argv) {
  uint32_t n_leaves = 30000;  // ~60k nodes with Yule internals
  int ops = 2000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--leaves=", 9) == 0) {
      n_leaves = static_cast<uint32_t>(atoi(argv[i] + 9));
    }
    if (strncmp(argv[i], "--ops=", 6) == 0) ops = atoi(argv[i] + 6);
  }

  Rng rng(0xF007);
  YuleOptions yule;
  yule.n_leaves = n_leaves;
  auto tree_or = SimulateYule(yule, &rng);
  if (!tree_or.ok()) {
    fprintf(stderr, "tree simulation failed: %s\n",
            tree_or.status().ToString().c_str());
    return 1;
  }
  PhyloTree tree = std::move(*tree_or);
  // Rebuild with realistic-length species labels (Yule's "S123"
  // defaults mostly fit SSO and would flatter neither layout).
  // Building fresh interns each label exactly once, as a real parse
  // of such a file would.
  {
    PhyloTree relabeled;
    relabeled.Reserve(tree.size(), static_cast<size_t>(n_leaves) * 24);
    uint32_t leaf_ordinal = 0;
    for (NodeId n = 0; n < tree.size(); ++n) {
      std::string label =
          tree.is_leaf(n) ? SpeciesLabel(leaf_ordinal++) : std::string();
      if (n == 0) {
        relabeled.AddRoot(label, tree.edge_length(n));
      } else {
        relabeled.AddChild(tree.parent(n), label, tree.edge_length(n));
      }
    }
    tree = std::move(relabeled);
  }
  tree.ShrinkToFit();

  const Footprint fp = MeasureFootprint(tree);

  LayeredDeweyScheme scheme(8);
  Status built = scheme.Build(tree);
  if (!built.ok()) {
    fprintf(stderr, "labeling failed: %s\n", built.ToString().c_str());
    return 1;
  }
  NameIndex index = NameIndex::Build(tree);
  const std::vector<NameQuery> workload =
      MakeWorkload(n_leaves, ops, 0xBEEF);

  WorkloadResult linear = RunWorkload(tree, scheme, nullptr, workload);
  WorkloadResult indexed = RunWorkload(tree, scheme, &index, workload);
  if (!linear.ok || !indexed.ok) {
    fprintf(stderr, "workload failed\n");
    return 1;
  }
  const bool identical = linear.answers == indexed.answers;
  const double speedup =
      indexed.seconds > 0 ? linear.seconds / indexed.seconds : 0;

  const bool pass = fp.ratio <= 0.5 && speedup >= 10.0 && identical;

  printf(
      "packed tree footprint, %zu nodes (%u leaves, ~20-char labels):\n"
      "  packed layout : %8.1f bytes/node (%zu bytes)\n"
      "  legacy layout : %8.1f bytes/node (%zu bytes, struct + malloc "
      "chunks)\n"
      "  ratio         : %8.3f (gate <= 0.500)\n"
      "name-addressed LCA/clade workload, %d queries:\n"
      "  linear FindByName : %9.0f queries/s  (%.3fs)\n"
      "  NameIndex         : %9.0f queries/s  (%.3fs, %.1fx)\n"
      "answers identical across modes: %s\n"
      "gate (ratio <= 0.5, speedup >= 10x, identity): %s\n",
      fp.nodes, n_leaves, fp.packed_per_node, fp.packed_bytes,
      fp.legacy_per_node, fp.legacy_bytes, fp.ratio, ops,
      ops / linear.seconds, linear.seconds, ops / indexed.seconds,
      indexed.seconds, speedup, identical ? "OK" : "MISMATCH",
      pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_tree_footprint.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"nodes\": %zu,\n"
            "  \"leaves\": %u,\n"
            "  \"packed_bytes_per_node\": %.2f,\n"
            "  \"legacy_bytes_per_node\": %.2f,\n"
            "  \"footprint_ratio\": %.4f,\n"
            "  \"ops\": %d,\n"
            "  \"linear_ops_per_sec\": %.2f,\n"
            "  \"indexed_ops_per_sec\": %.2f,\n"
            "  \"resolution_speedup\": %.2f,\n"
            "  \"answers_identical\": %s,\n"
            "  \"gate_max_ratio\": 0.5,\n"
            "  \"gate_min_speedup\": 10.0,\n"
            "  \"pass\": %s\n"
            "}\n",
            fp.nodes, n_leaves, fp.packed_per_node, fp.legacy_per_node,
            fp.ratio, ops, ops / linear.seconds, ops / indexed.seconds,
            speedup, identical ? "true" : "false", pass ? "true" : "false");
    fclose(json);
  }

  if (gate && !pass) {
    fprintf(stderr,
            "GATE FAILURE: footprint ratio %.3f (need <= 0.5), speedup "
            "%.1fx (need >= 10x), identity %s\n",
            fp.ratio, speedup, identical ? "ok" : "broken");
    return 1;
  }
  return 0;
}

}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
