// Shared fixtures for the Crimson benchmark suite. Trees are cached per
// (shape, size) so repeated benchmark registrations do not rebuild the
// gold standard each time.

#ifndef CRIMSON_BENCH_BENCH_UTIL_H_
#define CRIMSON_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace bench {

/// Exact sample percentile (p in [0, 1]) by nearest-rank over the
/// sorted samples; sorts in place. The offline reference the
/// histogram-percentile gate in bench_metrics compares against, and
/// the latency reporter of the closed-loop benches.
inline double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  size_t idx = static_cast<size_t>(p * (sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

/// Deep chain tree with `depth` levels (the paper's depth regime).
inline const PhyloTree& CachedCaterpillar(uint32_t depth) {
  static auto* cache = new std::map<uint32_t, std::unique_ptr<PhyloTree>>();
  auto it = cache->find(depth);
  if (it == cache->end()) {
    it = cache->emplace(depth, std::make_unique<PhyloTree>(
                                   MakeCaterpillar(depth))).first;
  }
  return *it->second;
}

/// Yule gold-standard tree with n leaves (2n-1 nodes).
inline const PhyloTree& CachedYule(uint32_t n_leaves) {
  static auto* cache = new std::map<uint32_t, std::unique_ptr<PhyloTree>>();
  auto it = cache->find(n_leaves);
  if (it == cache->end()) {
    Rng rng(0xBEEF + n_leaves);
    YuleOptions opts;
    opts.n_leaves = n_leaves;
    auto t = SimulateYule(opts, &rng);
    it = cache->emplace(n_leaves, std::make_unique<PhyloTree>(
                                      std::move(t).value())).first;
  }
  return *it->second;
}

}  // namespace bench
}  // namespace crimson

#endif  // CRIMSON_BENCH_BENCH_UTIL_H_
