// bench_wal: group commit vs per-commit fsync on the write-ahead log.
//
// Eight writer threads each run minimal transactions (header image +
// commit record + durable sync) as fast as they can. In per-commit
// mode every committer issues its own fdatasync; in group mode
// concurrent committers coalesce behind one leader sync (Wal::Sync
// with group=true). A fixed artificial sync latency (--sync-delay-us,
// default 200us, modelling a fast SSD flush) makes the contrast
// deterministic across machines; raw no-delay numbers are reported
// alongside.
//
// Writes BENCH_wal.json. With --gate, exits non-zero unless group
// commit sustains >= 5x the per-commit-fsync throughput at 8 threads
// under the injected latency (the CI smoke contract).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/string_util.h"
#include "storage/wal.h"

namespace crimson {
namespace {

/// File wrapper that adds a fixed latency to every Sync, standing in
/// for device flush time.
class SlowSyncFile final : public File {
 public:
  SlowSyncFile(std::unique_ptr<File> base, int delay_us)
      : base_(std::move(base)), delay_us_(delay_us) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    return base_->Read(offset, n, scratch);
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    return base_->Write(offset, data, n);
  }
  Status Sync() override {
    if (delay_us_ > 0) {
      // Sleeping yields the core so concurrent committers keep
      // queueing behind the in-flight sync -- exactly how a real
      // device flush behaves.
      auto until = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(delay_us_);
      std::this_thread::sleep_until(until);
    }
    return base_->Sync();
  }
  uint64_t Size() const override { return base_->Size(); }
  Status Truncate(uint64_t new_size) override {
    return base_->Truncate(new_size);
  }

 private:
  std::unique_ptr<File> base_;
  int delay_us_;
};

StorageEnv DelayedEnv(int delay_us) {
  StorageEnv env = PosixStorageEnv();
  auto open = env.open_file;
  env.open_file =
      [open, delay_us](
          const std::string& path) -> Result<std::unique_ptr<File>> {
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> f, open(path));
    return std::unique_ptr<File>(new SlowSyncFile(std::move(f), delay_us));
  };
  return env;
}

/// Commits/sec over `duration_ms` with `threads` writers.
double RunMode(const std::string& dir, bool group, int threads,
               int duration_ms, int delay_us, int window_us) {
  WalOptions opts;
  opts.segment_bytes = 256ull << 20;  // no rotation mid-bench
  opts.group_window_us = static_cast<uint64_t>(window_us);
  auto wal_or = Wal::Open(dir + "/wal", DelayedEnv(delay_us), opts);
  if (!wal_or.ok()) {
    fprintf(stderr, "wal open failed: %s\n",
            wal_or.status().ToString().c_str());
    return 0;
  }
  Wal* wal = wal_or->get();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t txn = static_cast<uint64_t>(t) << 32;
      while (!stop.load(std::memory_order_relaxed)) {
        auto header = wal->AppendHeaderImage(1, 0, 0);
        if (!header.ok()) { failed = true; return; }
        auto lsn = wal->AppendCommit(++txn);
        if (!lsn.ok() || !wal->Sync(*lsn, group).ok()) {
          failed = true;
          return;
        }
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop = true;
  for (auto& w : workers) w.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (failed.load()) {
    fprintf(stderr, "wal commit failed mid-bench\n");
    return 0;
  }
  return static_cast<double>(commits.load()) / seconds;
}

}  // namespace

int Run(int argc, char** argv) {
  int threads = 8;
  int duration_ms = 400;
  int delay_us = 200;
  int window_us = 150;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--gate") == 0) gate = true;
    if (strncmp(argv[i], "--threads=", 10) == 0) threads = atoi(argv[i] + 10);
    if (strncmp(argv[i], "--duration-ms=", 14) == 0) {
      duration_ms = atoi(argv[i] + 14);
    }
    if (strncmp(argv[i], "--sync-delay-us=", 16) == 0) {
      delay_us = atoi(argv[i] + 16);
    }
    if (strncmp(argv[i], "--group-window-us=", 18) == 0) {
      window_us = atoi(argv[i] + 18);
    }
  }

  char dir_template[] = "/tmp/crimson_bench_wal_XXXXXX";
  char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dirs(dir);

  // Gated contrast under deterministic sync latency.
  double commit_cps = RunMode(dirs, /*group=*/false, threads, duration_ms,
                              delay_us, window_us);
  double group_cps = RunMode(dirs, /*group=*/true, threads, duration_ms,
                             delay_us, window_us);
  double speedup = commit_cps > 0 ? group_cps / commit_cps : 0;
  // Raw numbers on the actual device, for the curious.
  double raw_commit_cps =
      RunMode(dirs, /*group=*/false, threads, duration_ms / 2, 0, window_us);
  double raw_group_cps =
      RunMode(dirs, /*group=*/true, threads, duration_ms / 2, 0, window_us);

  const bool pass = speedup >= 5.0;
  printf("wal commit throughput, %d threads, %dus injected sync latency:\n"
         "  per-commit fsync : %10.0f commits/s\n"
         "  group commit     : %10.0f commits/s  (%.1fx)\n"
         "raw device (no injected latency):\n"
         "  per-commit fsync : %10.0f commits/s\n"
         "  group commit     : %10.0f commits/s\n"
         "gate (group >= 5x): %s\n",
         threads, delay_us, commit_cps, group_cps, speedup, raw_commit_cps,
         raw_group_cps, pass ? "PASS" : "FAIL");

  FILE* json = fopen("BENCH_wal.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"threads\": %d,\n"
            "  \"duration_ms\": %d,\n"
            "  \"sync_delay_us\": %d,\n"
            "  \"per_commit_fsync_cps\": %.1f,\n"
            "  \"group_commit_cps\": %.1f,\n"
            "  \"group_commit_speedup\": %.2f,\n"
            "  \"raw_per_commit_fsync_cps\": %.1f,\n"
            "  \"raw_group_commit_cps\": %.1f,\n"
            "  \"gate_min_speedup\": 5.0,\n"
            "  \"pass\": %s\n"
            "}\n",
            threads, duration_ms, delay_us, commit_cps, group_cps, speedup,
            raw_commit_cps, raw_group_cps, pass ? "true" : "false");
    fclose(json);
  }

  // Best-effort cleanup of the temp WAL dir.
  for (uint32_t idx = 1; idx < 16; ++idx) {
    RemoveFile(WalSegmentPath(dirs + "/wal", idx));
  }
  rmdir(dirs.c_str());

  return gate && !pass ? 1 : 0;
}

}  // namespace crimson

int main(int argc, char** argv) { return crimson::Run(argc, argv); }
