// Batched query execution through the session API: bind a simulated
// Yule tree to a TreeRef once, build a mixed list of typed requests,
// and run it both sequentially (Execute per request) and batched
// (ExecuteBatch over the worker pool), verifying that the two
// executions produce identical results before comparing wall time.
//
// Run:  ./batch_queries [n_leaves] [n_requests] [workers]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/timer.h"
#include "crimson/crimson.h"
#include "sim/tree_sim.h"

namespace {

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crimson;
  uint32_t n_leaves = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 10000;
  size_t n_requests = argc > 2 ? static_cast<size_t>(atoi(argv[2])) : 4096;
  size_t workers = argc > 3 ? static_cast<size_t>(atoi(argv[3])) : 4;

  Rng rng(2718);
  YuleOptions tree_opts;
  tree_opts.n_leaves = n_leaves;
  PhyloTree gold = Unwrap(SimulateYule(tree_opts, &rng), "simulate");

  // Two same-seed sessions so the sequential run cannot be polluted by
  // the batched run's query tickets (and vice versa).
  CrimsonOptions options;
  options.seed = 7;
  options.batch_workers = workers;
  auto sequential_session = Unwrap(Crimson::Open(options), "open");
  auto batched_session = Unwrap(Crimson::Open(options), "open");
  TreeRef seq_tree =
      Unwrap(sequential_session->LoadTree("yule", gold), "load").ref;
  TreeRef batch_tree =
      Unwrap(batched_session->LoadTree("yule", gold), "load").ref;
  printf("gold standard: %zu leaves; %zu requests; %zu workers\n",
         gold.LeafCount(), n_requests, workers);

  std::vector<std::string> leaves;
  for (NodeId n : gold.Leaves()) leaves.emplace_back(gold.name(n));
  std::vector<QueryRequest> requests;
  requests.reserve(n_requests);
  for (size_t i = 0; i < n_requests; ++i) {
    const std::string& a = leaves[rng.Uniform(leaves.size())];
    const std::string& b = leaves[rng.Uniform(leaves.size())];
    switch (i % 4) {
      case 0:
      case 1:
        requests.emplace_back(LcaQuery{a, b});
        break;
      case 2:
        requests.emplace_back(CladeQuery{{a, b}});
        break;
      default:
        requests.emplace_back(SampleUniformQuery{8});
        break;
    }
  }

  WallTimer timer;
  std::vector<std::string> sequential_rendered;
  sequential_rendered.reserve(n_requests);
  for (const QueryRequest& request : requests) {
    sequential_rendered.push_back(RenderResult(
        Unwrap(sequential_session->Execute(seq_tree, request), "execute")));
  }
  double sequential_s = timer.ElapsedSeconds();

  timer.Restart();
  auto batched = batched_session->ExecuteBatch(batch_tree, requests);
  double batched_s = timer.ElapsedSeconds();

  size_t mismatches = 0;
  for (size_t i = 0; i < n_requests; ++i) {
    if (!batched[i].ok() ||
        RenderResult(*batched[i]) != sequential_rendered[i]) {
      ++mismatches;
    }
  }
  printf("sequential: %.3fs   batched: %.3fs   (%.2fx)\n", sequential_s,
         batched_s, batched_s > 0 ? sequential_s / batched_s : 0.0);
  printf("result check: %zu/%zu identical%s\n", n_requests - mismatches,
         n_requests, mismatches ? "  <-- BUG" : " (byte-for-byte)");
  return mismatches == 0 ? 0 : 1;
}
