// Build a gold-standard simulation tree with species data -- the
// modeling component workflow of the CIPRes project (paper §1) -- and
// store it in an on-disk Crimson database.
//
//   * simulates a birth-death tree (default 5000 extant species),
//   * breaks the molecular clock with per-branch rate multipliers,
//   * evolves HKY85 sequences along it,
//   * loads tree + species data into a Crimson database file,
//   * exports a NEXUS snapshot and demonstrates point queries.
//
// Run:  ./build_gold_standard [n_leaves] [db_path]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "tree/nexus.h"

namespace {

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crimson;
  uint32_t n_leaves = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 5000;
  std::string db_path = argc > 2 ? argv[2] : "/tmp/crimson_gold.db";

  Rng rng(2026);
  WallTimer timer;

  // ---- simulate the tree ----------------------------------------------
  BirthDeathOptions tree_opts;
  tree_opts.n_leaves = n_leaves;
  tree_opts.death_rate = 0.25;
  PhyloTree gold = Unwrap(SimulateBirthDeath(tree_opts, &rng), "simulate");
  double max_w = 0;
  for (double w : gold.RootPathWeights()) max_w = std::max(max_w, w);
  for (NodeId n = 1; n < gold.size(); ++n) {
    gold.set_edge_length(n, gold.edge_length(n) / max_w * 0.8);
  }
  PerturbBranchRates(&gold, 3.0, &rng);
  printf("simulated birth-death tree: %zu nodes, %zu leaves, depth %u "
         "(%.2fs)\n",
         gold.size(), gold.LeafCount(), gold.MaxDepth(),
         timer.ElapsedSeconds());

  // ---- evolve sequences -------------------------------------------------
  timer.Restart();
  SeqEvolveOptions seq_opts;
  seq_opts.model = SubstModel::kHKY85;
  seq_opts.kappa = 2.5;
  seq_opts.base_freqs = {0.3, 0.2, 0.2, 0.3};
  seq_opts.seq_length = 1000;
  auto evolver = Unwrap(SequenceEvolver::Create(seq_opts), "evolver");
  auto sequences = Unwrap(evolver.EvolveLeaves(gold, &rng), "evolve");
  printf("evolved %zu HKY85 sequences of %zu sites (%.2fs)\n",
         sequences.size(), seq_opts.seq_length, timer.ElapsedSeconds());

  // ---- load into Crimson -------------------------------------------------
  timer.Restart();
  RemoveFile(db_path).ToString();
  CrimsonOptions options;
  options.db_path = db_path;
  options.f = 8;
  options.buffer_pool_pages = 16384;
  auto crimson = Unwrap(Crimson::Open(options), "open");
  auto report = Unwrap(crimson->LoadTree("gold", gold), "load tree");
  auto append =
      Unwrap(crimson->AppendSpeciesData("gold", sequences), "load species");
  if (!crimson->Flush().ok()) return 1;
  printf("loaded into %s: %llu nodes + %llu sequences (%.2fs)\n",
         db_path.c_str(),
         static_cast<unsigned long long>(report.nodes_loaded),
         static_cast<unsigned long long>(append.species_loaded),
         timer.ElapsedSeconds());

  // ---- NEXUS snapshot -----------------------------------------------------
  NexusDocument doc;
  for (NodeId n : gold.Leaves()) doc.taxa.emplace_back(gold.name(n));
  NexusTree nt;
  nt.name = "gold";
  nt.tree = gold;
  doc.trees.push_back(std::move(nt));
  std::string nexus = WriteNexus(doc);
  printf("NEXUS snapshot: %zu bytes (structure only; add sequences with "
         "the DATA block if desired)\n",
         nexus.size());

  // ---- demonstrate queries (bind the handle once, then Execute) ----------
  TreeRef tree = report.ref;
  auto sample = std::get<SampleAnswer>(
      Unwrap(crimson->Execute(tree, SampleUniformQuery{8}), "sample"));
  printf("\nuniform sample of 8 species: ");
  for (const auto& s : sample.species) printf("%s ", s.c_str());
  auto lca = std::get<LcaAnswer>(
      Unwrap(crimson->Execute(
                 tree, LcaQuery{sample.species[0], sample.species[1]}),
             "lca"));
  printf("\nLCA(%s, %s) = node %u\n", sample.species[0].c_str(),
         sample.species[1].c_str(), lca.node);
  auto proj = std::get<ProjectAnswer>(
      Unwrap(crimson->Execute(tree, ProjectQuery{sample.species}),
             "project"));
  printf("projection over the sample: %zu nodes\n", proj.projection.size());
  printf("\ndatabase left at %s\n", db_path.c_str());
  return 0;
}
