// Deep-tree indexing demo -- the paper's motivating scenario (§1-2.1):
// phylogenetic simulation trees are far deeper than XML documents
// (average depth > 1000, up to a million levels), which breaks plain
// Dewey labels. This program builds trees across that depth range and
// reports, for each labeling scheme:
//   * label storage (max and total bytes),
//   * LCA latency measured over random node pairs.
//
// Run:  ./deep_tree_queries [max_depth]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "crimson/crimson.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"
#include "tree/tree_builders.h"

namespace {

using namespace crimson;

void Report(const char* label, LabelingScheme* scheme, const PhyloTree& tree,
            Rng* rng) {
  WallTimer timer;
  Status s = scheme->Build(tree);
  if (!s.ok()) {
    printf("  %-22s build failed: %s\n", label, s.ToString().c_str());
    return;
  }
  double build_s = timer.ElapsedSeconds();

  const int kQueries = 20000;
  std::vector<std::pair<NodeId, NodeId>> queries(kQueries);
  for (auto& q : queries) {
    q.first = static_cast<NodeId>(rng->Uniform(tree.size()));
    q.second = static_cast<NodeId>(rng->Uniform(tree.size()));
  }
  timer.Restart();
  uint64_t checksum = 0;
  for (const auto& [a, b] : queries) {
    checksum += *scheme->Lca(a, b);
  }
  double lca_ns = timer.ElapsedSeconds() / kQueries * 1e9;
  printf("  %-22s build %7.3fs   max label %6zu B   total %9.2f MiB   "
         "LCA %9.0f ns  [chk %llu]\n",
         label, build_s, scheme->MaxLabelBytes(),
         scheme->TotalLabelBytes() / 1024.0 / 1024.0, lca_ns,
         static_cast<unsigned long long>(checksum % 997));
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t max_depth =
      argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 1000000;

  Rng rng(1);
  for (uint32_t depth = 1000; depth <= max_depth; depth *= 10) {
    PhyloTree tree = MakeCaterpillar(depth);
    printf("caterpillar depth %u (%zu nodes):\n", depth, tree.size());
    LayeredDeweyScheme layered8(8);
    Report("layered_dewey(f=8)", &layered8, tree, &rng);
    LayeredDeweyScheme layered64(64);
    Report("layered_dewey(f=64)", &layered64, tree, &rng);
    IntervalScheme interval;
    Report("interval(pre/post)", &interval, tree, &rng);
    NaiveScheme naive;
    Report("naive parent walk", &naive, tree, &rng);
    if (depth <= 10000) {
      DeweyScheme dewey;
      Report("plain dewey [11]", &dewey, tree, &rng);
    } else {
      printf("  %-22s skipped: labels would need O(depth) bytes/node "
             "(~%.1f GiB total here)\n",
             "plain dewey [11]",
             static_cast<double>(depth) * depth / 1e9);
    }
    printf("\n");
  }
  printf("The bounded layered labels and flat LCA latency across three\n"
         "orders of magnitude of depth are the paper's §2.1 claims.\n");

  // ---- the session API on a deep tree: batched LCA queries --------------
  {
    const uint32_t depth = std::min(max_depth, 50000u);
    printf("\nSession API on a depth-%u caterpillar (batched LCA):\n",
           depth);
    CrimsonOptions options;
    auto crimson = Crimson::Open(options);
    if (!crimson.ok()) {
      fprintf(stderr, "open failed: %s\n",
              crimson.status().ToString().c_str());
      return 1;
    }
    auto report = (*crimson)->LoadTree("deep", MakeCaterpillar(depth));
    if (!report.ok()) {
      fprintf(stderr, "load failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    TreeRef tree = report->ref;
    std::vector<QueryRequest> requests;
    requests.reserve(2000);
    for (size_t i = 0; i < 2000; ++i) {
      requests.push_back(LcaQuery{
          StrFormat("L%u", static_cast<uint32_t>(rng.Uniform(depth + 1))),
          StrFormat("L%u", static_cast<uint32_t>(rng.Uniform(depth + 1)))});
    }
    WallTimer timer;
    auto results = (*crimson)->ExecuteBatch(tree, requests);
    size_t ok = 0;
    for (const auto& r : results) ok += r.ok();
    printf("  %zu/%zu LCA queries answered in %.3fs through one typed\n"
           "  Execute dispatch over the session worker pool.\n",
           ok, results.size(), timer.ElapsedSeconds());
  }
  return 0;
}
