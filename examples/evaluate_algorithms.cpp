// Evaluate phylogenetic tree reconstruction algorithms against a
// gold-standard simulation tree -- the central use case of the paper
// (Benchmark Manager, §2.2). Reproduces the E11 experiment as a
// readable report: NJ vs UPGMA across sample sizes and sequence
// lengths, scored by Robinson-Foulds distance to the true projection.
//
// Run:  ./evaluate_algorithms [n_leaves]

#include <cstdio>
#include <cstdlib>

#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace {

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crimson;
  uint32_t n_leaves = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 1024;

  Rng rng(4711);
  BirthDeathOptions tree_opts;
  tree_opts.n_leaves = n_leaves;
  tree_opts.death_rate = 0.25;
  PhyloTree gold = Unwrap(SimulateBirthDeath(tree_opts, &rng), "simulate");
  double max_w = 0;
  for (double w : gold.RootPathWeights()) max_w = std::max(max_w, w);
  for (NodeId n = 1; n < gold.size(); ++n) {
    gold.set_edge_length(n, gold.edge_length(n) / max_w * 0.7);
  }
  PerturbBranchRates(&gold, 3.0, &rng);
  printf("gold standard: %zu leaves, clock broken (rate spread 3x)\n\n",
         gold.LeafCount());

  printf("%-8s %6s %8s | %-18s %-18s\n", "seq_len", "k", "reps",
         "NJ rf_norm(avg)", "UPGMA rf_norm(avg)");
  printf("---------------------------------------------------------------\n");

  auto nj = MakeNjAlgorithm(DistanceCorrection::kJC69);
  auto upgma = MakeUpgmaAlgorithm(DistanceCorrection::kJC69);

  for (size_t seq_len : {250, 1000}) {
    SeqEvolveOptions seq_opts;
    seq_opts.model = SubstModel::kHKY85;
    seq_opts.base_freqs = {0.3, 0.2, 0.2, 0.3};
    seq_opts.seq_length = seq_len;
    auto evolver = Unwrap(SequenceEvolver::Create(seq_opts), "evolver");
    auto sequences = Unwrap(evolver.EvolveLeaves(gold, &rng), "evolve");

    // One Crimson session per sweep: the gold standard is loaded once
    // and evaluations run through the facade's Benchmark path (which
    // also records them in the query history).
    CrimsonOptions options;
    options.seed = 4711 + seq_len;
    auto crimson = Unwrap(Crimson::Open(options), "open");
    std::string tree_name = "gold_" + std::to_string(seq_len);
    Unwrap(crimson->LoadTree(tree_name, gold), "load tree");
    Unwrap(crimson->AppendSpeciesData(tree_name, sequences), "load species");

    for (size_t k : {16, 64, 256}) {
      const int reps = 5;
      double nj_rf = 0, upgma_rf = 0;
      for (int rep = 0; rep < reps; ++rep) {
        SelectionSpec sel;
        sel.kind = SelectionSpec::Kind::kUniform;
        sel.k = k;
        nj_rf += Unwrap(crimson->Benchmark(tree_name, *nj, sel,
                                           /*compute_triplets=*/false),
                        "nj")
                     .rf.normalized;
        upgma_rf += Unwrap(crimson->Benchmark(tree_name, *upgma, sel,
                                              /*compute_triplets=*/false),
                           "upgma")
                        .rf.normalized;
      }
      printf("%-8zu %6zu %8d | %-18.4f %-18.4f%s\n", seq_len, k, reps,
             nj_rf / reps, upgma_rf / reps,
             nj_rf <= upgma_rf ? "   <- NJ wins" : "");
    }
  }
  printf(
      "\nExpected shape (paper/benchmarking lore): NJ <= UPGMA on\n"
      "non-clock data; both improve as sequences lengthen.\n");
  return 0;
}
