// Evaluate phylogenetic tree reconstruction algorithms against a
// gold-standard simulation tree -- the central use case of the paper
// (Benchmark Manager, §2.2) -- through the typed Experiment API.
// Reproduces the E11 experiment: NJ vs UPGMA across sample sizes and
// sequence lengths, scored by Robinson-Foulds distance to the true
// projection. The whole sweep per sequence length is ONE
// ExperimentSpec (algorithm registry names x a uniform-k selection
// grid x replicates): replicates fan out on the session worker pool,
// the spec and every score row are persisted, and the final report is
// replayed byte-identically from storage via RerunExperiment.
//
// Run:  ./evaluate_algorithms [n_leaves]

#include <cstdio>
#include <cstdlib>

#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace {

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crimson;
  uint32_t n_leaves = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 1024;

  Rng rng(4711);
  BirthDeathOptions tree_opts;
  tree_opts.n_leaves = n_leaves;
  tree_opts.death_rate = 0.25;
  PhyloTree gold = Unwrap(SimulateBirthDeath(tree_opts, &rng), "simulate");
  double max_w = 0;
  for (double w : gold.RootPathWeights()) max_w = std::max(max_w, w);
  for (NodeId n = 1; n < gold.size(); ++n) {
    gold.set_edge_length(n, gold.edge_length(n) / max_w * 0.7);
  }
  PerturbBranchRates(&gold, 3.0, &rng);
  printf("gold standard: %zu leaves, clock broken (rate spread 3x)\n\n",
         gold.LeafCount());

  // One spec covers the whole NJ-vs-UPGMA sweep for a sequence length:
  // 2 algorithms x 3 sample sizes x 5 replicates = 30 runs, fanned out
  // on the session worker pool with ticketed RNGs (byte-identical to a
  // sequential sweep).
  ExperimentSpec spec;
  spec.algorithms = {"nj", "upgma"};
  for (size_t k : {16, 64, 256}) {
    if (k > gold.LeafCount()) continue;
    SelectionSpec sel;
    sel.kind = SelectionSpec::Kind::kUniform;
    sel.k = k;
    spec.selections.push_back(sel);
  }
  spec.replicates = 5;
  spec.compute_triplets = false;

  printf("%-8s %6s %8s | %-18s %-18s\n", "seq_len", "k", "reps",
         "NJ rf_norm(avg)", "UPGMA rf_norm(avg)");
  printf("---------------------------------------------------------------\n");

  for (size_t seq_len : {250, 1000}) {
    SeqEvolveOptions seq_opts;
    seq_opts.model = SubstModel::kHKY85;
    seq_opts.base_freqs = {0.3, 0.2, 0.2, 0.3};
    seq_opts.seq_length = seq_len;
    auto evolver = Unwrap(SequenceEvolver::Create(seq_opts), "evolver");
    auto sequences = Unwrap(evolver.EvolveLeaves(gold, &rng), "evolve");

    // One Crimson session per sweep: the gold standard is loaded once,
    // its evaluation state (sequence map + benchmark manager) is built
    // once and cached against the handle, and the whole grid runs as a
    // single persisted experiment.
    CrimsonOptions options;
    options.seed = 4711 + seq_len;
    auto crimson = Unwrap(Crimson::Open(options), "open");
    std::string tree_name = "gold_" + std::to_string(seq_len);
    TreeRef tree = Unwrap(crimson->LoadTree(tree_name, gold), "load").ref;
    Unwrap(crimson->AppendSpeciesData(tree_name, sequences), "load species");

    ExperimentReport report =
        Unwrap(crimson->RunExperiment(tree, spec), "experiment");

    // cells are algorithm-major in spec order: NJ cells first.
    const size_t n_sels = spec.selections.size();
    for (size_t s = 0; s < n_sels; ++s) {
      const ExperimentCell& nj_cell = report.cells[s];
      const ExperimentCell& upgma_cell = report.cells[n_sels + s];
      printf("%-8zu %6zu %8zu | %-18.4f %-18.4f%s\n", seq_len,
             spec.selections[s].k, spec.replicates,
             nj_cell.mean_rf_normalized, upgma_cell.mean_rf_normalized,
             nj_cell.mean_rf_normalized <= upgma_cell.mean_rf_normalized
                 ? "   <- NJ wins"
                 : "");
    }

    // The spec, runs and aggregates are persisted: replaying the
    // stored experiment reproduces the report exactly.
    ExperimentReport replay = Unwrap(
        crimson->RerunExperiment(report.experiment_id), "rerun");
    for (size_t i = 0; i < report.runs.size(); ++i) {
      if (replay.runs[i].rf.distance != report.runs[i].rf.distance) {
        fprintf(stderr, "replay diverged at run %zu\n", i);
        return 1;
      }
    }
    printf("         (experiment %lld: %zu runs persisted, replay "
           "verified)\n",
           static_cast<long long>(report.experiment_id),
           report.runs.size());
  }
  printf(
      "\nExpected shape (paper/benchmarking lore): NJ <= UPGMA on\n"
      "non-clock data; both improve as sequences lengthen.\n");
  return 0;
}
