// Remote session quickstart: drive a running crimson_server over the
// wire protocol. Stores a small simulated tree, binds it, runs all six
// typed query kinds (pipelined and one-at-a-time), and reads back the
// server-side query history -- the network twin of quickstart.cpp.
//
// Start a server, then run the client:
//   ./crimson_server --db=/tmp/crimson_net.db --port=9917 &
//   ./network_client 9917 [host]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "net/client.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace {

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crimson;
  net::ClientOptions options;
  options.port = argc > 1 ? static_cast<uint16_t>(atoi(argv[1])) : 9917;
  if (argc > 2) options.host = argv[2];

  auto client = Unwrap(net::CrimsonClient::Connect(options), "connect");
  std::string echo = Unwrap(client->Ping("hello"), "ping");
  printf("connected; ping echoed %zu bytes\n", echo.size());

  // Simulate locally, ship the Newick over the wire. Against a server
  // restarted from a checkpointed database the tree already exists;
  // reopen it instead -- that path is the recovery smoke check.
  Rng rng(1234);
  YuleOptions yule;
  yule.n_leaves = 256;
  PhyloTree tree = Unwrap(SimulateYule(yule, &rng), "simulate");
  auto store = client->StoreNewick("net_demo", WriteNewick(tree));
  if (!store.ok() && store.status().IsAlreadyExists()) {
    store = client->OpenTree("net_demo");
    printf("tree already stored; reopened from recovered database\n");
  }
  TreeInfo stored = Unwrap(std::move(store), "store tree");
  printf("stored '%s': %lld nodes, %lld leaves\n", stored.name.c_str(),
         static_cast<long long>(stored.n_nodes),
         static_cast<long long>(stored.n_leaves));

  // All six query kinds, pipelined in one batch.
  std::vector<QueryRequest> requests = {
      QueryRequest(LcaQuery{"S10", "S200"}),
      QueryRequest(ProjectQuery{{"S1", "S10", "S100", "S200"}}),
      QueryRequest(SampleUniformQuery{5}),
      QueryRequest(SampleTimeQuery{5, 0.5}),
      QueryRequest(CladeQuery{{"S3", "S4", "S5"}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
  auto results = client->ExecuteBatch("net_demo", requests);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      fprintf(stderr, "query %zu failed: %s\n", i,
              results[i].status().ToString().c_str());
      return 1;
    }
    printf("  [%s] %s\n",
           std::string(QueryKindName(requests[i])).c_str(),
           SummarizeResult(*results[i]).c_str());
  }

  // Single query with the canonical backpressure-retry loop.
  QueryResult lca = Unwrap(
      client->ExecuteWithRetry("net_demo", QueryRequest(LcaQuery{"S1", "S2"})),
      "lca with retry");
  printf("retry-loop lca: %s\n", SummarizeResult(lca).c_str());

  auto trees = Unwrap(client->ListTrees(), "list trees");
  printf("server has %zu tree(s)\n", trees.size());

  auto history = Unwrap(client->History(5), "history");
  printf("last %zu history entries:\n", history.size());
  for (const auto& e : history) {
    printf("  #%lld %s: %s\n", static_cast<long long>(e.query_id),
           e.kind.c_str(), e.summary.c_str());
  }

  if (!client->Checkpoint().ok()) {
    fprintf(stderr, "checkpoint failed\n");
    return 1;
  }
  printf("network quickstart OK\n");
  return 0;
}
