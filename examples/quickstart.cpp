// Quickstart: the paper's worked examples, end to end.
//
//   * load the Figure 1 sample tree into Crimson,
//   * show its Dewey labels (Lla = 2.1.1, Spy = 2.1.2),
//   * answer the LCA queries of §2.1,
//   * project {Bha, Lla, Syn} (Figure 2),
//   * sample four species with respect to evolutionary time 1 (§2.2),
//   * match the Figure 2 pattern against the tree,
//   * show the query history.
//
// Run:  ./quickstart

#include <cstdio>

#include "crimson/crimson.h"
#include "labeling/dewey_scheme.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace {

void Check(const crimson::Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Unwrap(crimson::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  using namespace crimson;

  // ---- the Figure 1 sample tree --------------------------------------
  PhyloTree fig1 = MakePaperFigure1Tree();
  printf("Figure 1 tree: %s\n\n", WriteNewick(fig1).c_str());

  // ---- plain Dewey labels (paper §2.1) --------------------------------
  DeweyScheme dewey;
  Check(dewey.Build(fig1), "dewey build");
  for (const char* name : {"Lla", "Spy", "Syn", "Bha", "Bsu"}) {
    NodeId n = fig1.FindByName(name);
    printf("Dewey label of %-3s = %s\n", name,
           dewey.label(n).ToString().c_str());
  }

  // ---- open Crimson (in-memory) and bind the tree to a handle ---------
  CrimsonOptions options;
  options.f = 3;  // the paper's Figure 4 uses f = 3
  auto crimson = Unwrap(Crimson::Open(options), "open");
  TreeRef tree = Unwrap(crimson->LoadTree("fig1", fig1), "load").ref;

  // ---- LCA queries (typed requests through the one Execute path) -------
  auto lca1 = std::get<LcaAnswer>(
      Unwrap(crimson->Execute(tree, LcaQuery{"Lla", "Spy"}), "lca"));
  printf("\nLCA(Lla, Spy) = node %u  (the interior node '2.1')\n",
         lca1.node);
  auto lca2 = std::get<LcaAnswer>(
      Unwrap(crimson->Execute(tree, LcaQuery{"Lla", "Syn"}), "lca"));
  printf("LCA(Lla, Syn) = node %u '%s'  (paper: node 1, the root)\n",
         lca2.node, lca2.name.c_str());

  // ---- Figure 2: tree projection ---------------------------------------
  auto projection = std::get<ProjectAnswer>(
      Unwrap(crimson->Execute(tree, ProjectQuery{{"Bha", "Lla", "Syn"}}),
             "project"));
  printf("\nProjection over {Bha, Lla, Syn} (Figure 2):\n  %s\n",
         WriteNewick(projection.projection).c_str());
  printf("  (note Lla's merged edge 0.5 + 1.0 = 1.5)\n");

  // ---- §2.2: sampling with respect to time -----------------------------
  auto sample = std::get<SampleAnswer>(
      Unwrap(crimson->Execute(tree, SampleTimeQuery{4, 1.0}), "sample"));
  printf("\nSample of 4 species at evolutionary distance 1: {");
  for (size_t i = 0; i < sample.species.size(); ++i) {
    printf("%s%s", i ? ", " : "", sample.species[i].c_str());
  }
  printf("}\n  (paper: {Bha, Lla, Syn, Bsu} or {Bha, Spy, Syn, Bsu})\n");

  // ---- tree pattern match ----------------------------------------------
  auto hit = std::get<PatternAnswer>(Unwrap(
      crimson->Execute(
          tree, PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);",
                             /*match_weights=*/true}),
      "pattern"));
  printf("\nFigure 2 pattern matches Figure 1 tree: %s\n",
         hit.exact ? "YES" : "no");
  auto miss = std::get<PatternAnswer>(Unwrap(
      crimson->Execute(tree, PatternQuery{"((Bha:1,Syn:1):1,Lla:1);",
                                          /*match_weights=*/false}),
      "pattern"));
  printf("Swapped pattern (Lla <-> Syn) matches:      %s\n",
         miss.exact ? "yes" : "NO");

  // ---- batched execution ------------------------------------------------
  std::vector<QueryRequest> batch = {
      LcaQuery{"Bha", "Bsu"},
      CladeQuery{{"Lla", "Spy"}},
      SampleUniformQuery{3},
  };
  auto batch_results = crimson->ExecuteBatch(tree, batch);
  printf("\nExecuteBatch over %zu mixed queries:\n", batch.size());
  for (size_t i = 0; i < batch_results.size(); ++i) {
    printf("  [%zu] %-14s -> %s\n", i,
           std::string(QueryKindName(batch[i])).c_str(),
           batch_results[i].ok()
               ? SummarizeResult(*batch_results[i]).c_str()
               : batch_results[i].status().ToString().c_str());
  }

  // ---- Tree Viewer (Fig. 3): ASCII dendrogram of the projection --------
  auto art = Unwrap(crimson->RenderTree("fig1"), "render");
  printf("\nTree Viewer (ASCII dendrogram of the loaded tree):\n%s",
         art.c_str());

  // ---- query history (Query Repository) --------------------------------
  auto history = Unwrap(crimson->QueryHistory(10), "history");
  printf("\nQuery history (%zu entries, newest first):\n", history.size());
  for (const auto& e : history) {
    printf("  #%lld %-14s %s\n", static_cast<long long>(e.query_id),
           e.kind.c_str(), e.summary.c_str());
  }
  return 0;
}
