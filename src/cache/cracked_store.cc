#include "cache/cracked_store.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "common/string_util.h"

namespace crimson {
namespace cache {

namespace {

Status NoSequence(const std::string& name) {
  return Status::NotFound(
      StrFormat("no sequence for sampled species '%s'", name.c_str()));
}

}  // namespace

Result<std::map<std::string, std::string>> MapSequenceSource::GetBatch(
    const std::vector<std::string>& names) const {
  std::map<std::string, std::string> out;
  for (const std::string& name : names) {
    auto it = map_->find(name);
    if (it == map_->end()) return NoSequence(name);
    out.emplace(it->first, it->second);
  }
  return out;
}

CrackedSequenceStore::CrackedSequenceStore(std::vector<std::string> names,
                                           size_t min_piece, FetchFn fetch,
                                           obs::MetricsRegistry* metrics)
    : names_(std::move(names)),
      min_piece_(min_piece == 0 ? 1 : min_piece),
      fetch_(std::move(fetch)),
      sequences_(names_.size()),
      state_(names_.size(), kUnknown) {
  if (!names_.empty()) {
    pieces_.emplace(0, Piece{names_.size(), false});
  }
  if (metrics != nullptr) {
    fetches_ctr_ = metrics->GetCounter("crack.fetches");
    batches_ctr_ = metrics->GetCounter("crack.batches");
    piece_hits_ctr_ = metrics->GetCounter("crack.piece_hits");
    sequences_loaded_ctr_ = metrics->GetCounter("crack.sequences_loaded");
  }
}

size_t CrackedSequenceStore::AlignDown(size_t ordinal) const {
  return ordinal - ordinal % min_piece_;
}

size_t CrackedSequenceStore::AlignUp(size_t ordinal) const {
  size_t up = ordinal + (min_piece_ - ordinal % min_piece_) % min_piece_;
  return std::min(up, names_.size());
}

Status CrackedSequenceStore::EnsureLoadedLocked(size_t lo, size_t hi) const {
  // Walk the pieces overlapping [lo, hi); crack and fetch the unloaded
  // ones. Keys of pieces to process are collected first because
  // cracking mutates the map under the iterator.
  std::vector<size_t> pending;
  {
    auto it = pieces_.upper_bound(lo);
    if (it != pieces_.begin()) --it;
    for (; it != pieces_.end() && it->first < hi; ++it) {
      if (!it->second.loaded && it->second.end > lo) {
        pending.push_back(it->first);
      }
    }
  }
  for (size_t begin : pending) {
    auto it = pieces_.find(begin);
    const size_t end = it->second.end;
    // Crack the piece at the (aligned) touched boundaries.
    const size_t cut_lo = std::max(begin, AlignDown(lo));
    const size_t cut_hi = std::min(end, AlignUp(hi));
    std::vector<std::string> slice(names_.begin() + cut_lo,
                                   names_.begin() + cut_hi);
    auto fetched = fetch_(slice);
    if (!fetched.ok()) return fetched.status();
    ++fetches_;
    if (fetches_ctr_) fetches_ctr_->Increment();
    for (size_t ord = cut_lo; ord < cut_hi; ++ord) {
      auto fit = fetched->find(names_[ord]);
      if (fit == fetched->end()) {
        state_[ord] = kMissing;
      } else {
        sequences_[ord] = fit->second;
        state_[ord] = kHave;
      }
      ++sequences_loaded_;
      if (sequences_loaded_ctr_) sequences_loaded_ctr_->Increment();
    }
    // Split: [begin, cut_lo) stays cold, [cut_lo, cut_hi) is hot,
    // [cut_hi, end) stays cold.
    if (cut_lo > begin) {
      it->second.end = cut_lo;
      it = pieces_.emplace(cut_lo, Piece{cut_hi, true}).first;
    } else {
      it->second.end = cut_hi;
      it->second.loaded = true;
    }
    ++loaded_pieces_;
    if (cut_hi < end) {
      pieces_.emplace(cut_hi, Piece{end, false});
    }
  }
  return Status::OK();
}

Result<std::map<std::string, std::string>> CrackedSequenceStore::GetBatch(
    const std::vector<std::string>& names) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  if (batches_ctr_) batches_ctr_->Increment();
  // Resolve names to ordinals (the domain is sorted).
  std::vector<size_t> ordinals;
  ordinals.reserve(names.size());
  for (const std::string& name : names) {
    auto it = std::lower_bound(names_.begin(), names_.end(), name);
    if (it == names_.end() || *it != name) return NoSequence(name);
    ordinals.push_back(static_cast<size_t>(it - names_.begin()));
  }
  // Coalesce the touched ordinals into ranges so near-adjacent touches
  // (within one granule) crack a single piece instead of many.
  std::vector<size_t> sorted = ordinals;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const uint64_t fetches_before = fetches_;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] - sorted[j] <= min_piece_) {
      ++j;
    }
    CRIMSON_RETURN_IF_ERROR(EnsureLoadedLocked(sorted[i], sorted[j] + 1));
    i = j + 1;
  }
  if (fetches_ == fetches_before) {
    ++piece_hits_;
    if (piece_hits_ctr_) piece_hits_ctr_->Increment();
  }
  // Assemble in request order so the first missing name reported
  // matches the eager path's error exactly.
  std::map<std::string, std::string> out;
  for (size_t k = 0; k < names.size(); ++k) {
    const size_t ord = ordinals[k];
    if (state_[ord] != kHave) return NoSequence(names[k]);
    out.emplace(names[k], sequences_[ord]);
  }
  return out;
}

CrackedStoreStats CrackedSequenceStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CrackedStoreStats stats;
  stats.pieces = pieces_.size();
  stats.loaded_pieces = loaded_pieces_;
  stats.sequences_loaded = sequences_loaded_;
  stats.sequences_total = names_.size();
  stats.fetches = fetches_;
  stats.batches = batches_;
  stats.piece_hits = piece_hits_;
  return stats;
}

}  // namespace cache
}  // namespace crimson
