// Adaptive cracking of the per-tree sequence store (the CrackStore /
// database-cracking discipline, SNIPPETS.md §1): instead of
// materializing a tree's whole sequence set into EvalState up front,
// the store keeps the tree's leaf-name domain as a sorted ordinal
// axis and a piece map over it. The first query that touches a name
// range cracks the covering piece at (granularity-aligned) range
// boundaries and fetches only the touched slice from storage; repeat
// queries over the same region are pure in-memory lookups. The piece
// map refines monotonically with the observed query mix -- a
// clustered workload materializes a narrow band, a scattered one
// converges toward full residency, and nothing is fetched twice.
//
// The store only ever *adds* loaded pieces; invalidation is handled a
// level up (Crimson's eval generation): a mutating op on the tree
// discards the whole EvalState, and the fetch callback revalidates
// the generation so a stale store can never lazily fault in data that
// postdates its snapshot (it returns Unavailable and the caller
// rebuilds).
//
// Thread safety: GetBatch is safe to call concurrently; one internal
// mutex serializes cracking and lookups. The fetch callback runs with
// that mutex held (lock order: store mutex -> storage read lock; no
// path takes them in reverse).

#ifndef CRIMSON_CACHE_CRACKED_STORE_H_
#define CRIMSON_CACHE_CRACKED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace crimson {
namespace cache {

/// Where BenchmarkManager gets sequences for a sample. Implementations
/// must return NotFound("no sequence for sampled species '<name>'")
/// for the first requested name that has no sequence.
class SequenceSource {
 public:
  virtual ~SequenceSource() = default;

  /// Sequences for the named species, keyed by name. Names may repeat.
  virtual Result<std::map<std::string, std::string>> GetBatch(
      const std::vector<std::string>& names) const = 0;
};

/// Adapter over a fully materialized name -> sequence map (tests and
/// the BenchmarkManager map constructors).
class MapSequenceSource final : public SequenceSource {
 public:
  /// The map must outlive the source.
  explicit MapSequenceSource(const std::map<std::string, std::string>* map)
      : map_(map) {}

  Result<std::map<std::string, std::string>> GetBatch(
      const std::vector<std::string>& names) const override;

 private:
  const std::map<std::string, std::string>* map_;
};

struct CrackedStoreStats {
  uint64_t pieces = 0;            // pieces in the map (loaded + not)
  uint64_t loaded_pieces = 0;     // pieces materialized so far
  uint64_t sequences_loaded = 0;  // ordinals fetched (present or missing)
  uint64_t sequences_total = 0;   // the ordinal domain size
  uint64_t fetches = 0;           // storage round trips
  uint64_t batches = 0;           // GetBatch calls
  uint64_t piece_hits = 0;        // GetBatch calls served with no fetch
};

/// The cracked per-tree sequence store. Ordinals are indices into the
/// sorted unique leaf-name domain fixed at construction.
class CrackedSequenceStore final : public SequenceSource {
 public:
  /// Fetches sequences for a slice of the domain from backing storage.
  /// Names absent from the returned map are recorded as having no
  /// sequence. Errors propagate to the GetBatch caller unchanged.
  using FetchFn = std::function<Result<std::map<std::string, std::string>>(
      const std::vector<std::string>& names)>;

  /// `names` is the ordinal domain and must be sorted and unique.
  /// `min_piece` is the cracking granularity: fetched slices are
  /// aligned out to multiples of it (0 behaves as 1). `metrics`
  /// (optional) receives cumulative session-wide crack.* counter
  /// mirrors -- unlike stats(), they survive this store being dropped
  /// with its EvalState.
  CrackedSequenceStore(std::vector<std::string> names, size_t min_piece,
                       FetchFn fetch, obs::MetricsRegistry* metrics = nullptr);

  Result<std::map<std::string, std::string>> GetBatch(
      const std::vector<std::string>& names) const override;

  CrackedStoreStats stats() const;

  size_t domain_size() const { return names_.size(); }

 private:
  // Sequence residency per ordinal.
  enum State : uint8_t { kUnknown = 0, kHave = 1, kMissing = 2 };

  // Piece map node: the piece covers [begin, end) where `begin` is the
  // map key.
  struct Piece {
    size_t end = 0;
    bool loaded = false;
  };

  /// Materializes [lo, hi), cracking unloaded pieces at aligned
  /// boundaries. Called with mu_ held.
  Status EnsureLoadedLocked(size_t lo, size_t hi) const;

  size_t AlignDown(size_t ordinal) const;
  size_t AlignUp(size_t ordinal) const;

  const std::vector<std::string> names_;
  const size_t min_piece_;
  const FetchFn fetch_;

  mutable std::mutex mu_;
  mutable std::map<size_t, Piece> pieces_;
  mutable std::vector<std::string> sequences_;
  mutable std::vector<uint8_t> state_;
  mutable uint64_t loaded_pieces_ = 0;
  mutable uint64_t sequences_loaded_ = 0;
  mutable uint64_t fetches_ = 0;
  mutable uint64_t batches_ = 0;
  mutable uint64_t piece_hits_ = 0;
  /// Telemetry mirrors (null without a registry).
  obs::Counter* fetches_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* piece_hits_ctr_ = nullptr;
  obs::Counter* sequences_loaded_ctr_ = nullptr;
};

}  // namespace cache
}  // namespace crimson

#endif  // CRIMSON_CACHE_CRACKED_STORE_H_
