#include "cache/query_cache.h"

#include <utility>
#include <variant>

namespace crimson {
namespace cache {

namespace {

// Fixed bookkeeping cost charged per entry on top of the payload
// (hash node, list node, stamp, key copy in the recency list).
constexpr uint64_t kEntryOverhead = 160;

// The protected segment may hold at most this fraction of the budget;
// beyond it, protected LRU entries demote back into probation.
constexpr uint64_t kProtectedNum = 3;
constexpr uint64_t kProtectedDen = 4;

uint64_t ApproxTreeBytes(const PhyloTree& tree) {
  // Packed columns + name arena, straight from the tree (O(1)).
  return tree.MemoryFootprintBytes();
}

}  // namespace

uint64_t ApproxResultBytes(const QueryResult& result) {
  struct Visitor {
    uint64_t operator()(const LcaAnswer& a) const {
      return 16 + a.name.size();
    }
    uint64_t operator()(const ProjectAnswer& a) const {
      return ApproxTreeBytes(a.projection);
    }
    uint64_t operator()(const SampleAnswer& a) const {
      uint64_t bytes = 0;
      for (const auto& s : a.species) bytes += 32 + s.size();
      return bytes;
    }
    uint64_t operator()(const CladeAnswer&) const { return 24; }
    uint64_t operator()(const PatternAnswer& a) const {
      return 16 + ApproxTreeBytes(a.projection);
    }
  };
  return std::visit(Visitor{}, result);
}

QueryCache::QueryCache(uint64_t budget_bytes, obs::MetricsRegistry* metrics)
    : budget_(budget_bytes) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter("cache.hits");
  misses_ = metrics->GetCounter("cache.misses");
  insertions_ = metrics->GetCounter("cache.insertions");
  evictions_ = metrics->GetCounter("cache.evictions");
  invalidations_ = metrics->GetCounter("cache.invalidations");
  stale_skips_ = metrics->GetCounter("cache.stale_skips");
  bypassed_ = metrics->GetCounter("cache.bypassed");
  entries_gauge_ = metrics->GetGauge("cache.entries");
  bytes_used_gauge_ = metrics->GetGauge("cache.bytes_used");
  metrics->GetGauge("cache.budget_bytes")->Set(budget_);
}

bool QueryCache::IsCacheable(const QueryRequest& request) {
  return !std::holds_alternative<SampleUniformQuery>(request) &&
         !std::holds_alternative<SampleTimeQuery>(request);
}

std::string QueryCache::KeyFor(const std::string& tree_name,
                               const QueryRequest& request) {
  std::string key(QueryKindName(request));
  key.push_back('?');
  key += EncodeQueryParams(tree_name, request);
  return key;
}

QueryCache::TreeState& QueryCache::StateLocked(const std::string& tree) {
  return trees_[tree];
}

bool QueryCache::ValidLocked(const std::string& tree,
                             const ReadStamp& stamp) const {
  auto it = trees_.find(tree);
  if (it == trees_.end()) {
    // No mutation has ever touched the tree in this cache's lifetime.
    return stamp.generation == 0;
  }
  return stamp.generation == it->second.generation &&
         stamp.epoch >= it->second.barrier_epoch;
}

ReadStamp QueryCache::Stamp(const std::string& tree_name,
                            uint64_t committed_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trees_.find(tree_name);
  uint64_t generation = it == trees_.end() ? 0 : it->second.generation;
  return ReadStamp{generation, committed_epoch};
}

std::optional<QueryResult> QueryCache::Lookup(const std::string& tree_name,
                                              const std::string& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (!ValidLocked(tree_name, entry.stamp)) {
    invalidations_->Increment();
    misses_->Increment();
    EraseEntryLocked(it);
    return std::nullopt;
  }
  hits_->Increment();
  if (entry.segment == Segment::kProbation) {
    // First re-reference: promote into the protected segment.
    probation_.erase(entry.pos);
    protected_.push_front(it->first);
    entry.pos = protected_.begin();
    entry.segment = Segment::kProtected;
    protected_bytes_ += entry.bytes;
    // Keep the protected segment within its share of the budget by
    // demoting its own LRU tail (never the entry just promoted).
    while (protected_bytes_ * kProtectedDen > budget_ * kProtectedNum &&
           protected_.size() > 1) {
      const std::string& victim_key = protected_.back();
      auto vit = entries_.find(victim_key);
      Entry& victim = vit->second;
      protected_bytes_ -= victim.bytes;
      protected_.pop_back();
      probation_.push_front(vit->first);
      victim.pos = probation_.begin();
      victim.segment = Segment::kProbation;
    }
  } else {
    protected_.splice(protected_.begin(), protected_, entry.pos);
    entry.pos = protected_.begin();
  }
  return entry.result;
}

void QueryCache::Insert(const std::string& tree_name, const std::string& key,
                        const ReadStamp& stamp, const QueryResult& result) {
  if (!enabled()) return;
  const uint64_t bytes =
      kEntryOverhead + 2 * key.size() + tree_name.size() +
      ApproxResultBytes(result);
  std::lock_guard<std::mutex> lock(mu_);
  if (!ValidLocked(tree_name, stamp)) {
    // A mutation began or committed while the query ran; the result
    // may reflect a superseded snapshot, so it never enters the cache.
    stale_skips_->Increment();
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss on the same key already inserted; both copies
    // were computed under valid stamps, so keep the resident one.
    return;
  }
  if (bytes > budget_) return;  // would evict everything for one entry
  EvictForLocked(bytes);
  auto [eit, inserted] = entries_.emplace(
      key, Entry{tree_name, result, stamp, bytes, Segment::kProbation, {}});
  probation_.push_front(eit->first);
  eit->second.pos = probation_.begin();
  bytes_used_ += bytes;
  insertions_->Increment();
  entries_gauge_->Set(entries_.size());
  bytes_used_gauge_->Set(bytes_used_);
}

void QueryCache::EvictForLocked(uint64_t incoming_bytes) {
  while (bytes_used_ + incoming_bytes > budget_) {
    std::list<std::string>* victim_list =
        !probation_.empty() ? &probation_ : &protected_;
    if (victim_list->empty()) return;
    auto it = entries_.find(victim_list->back());
    EraseEntryLocked(it);
    evictions_->Increment();
  }
}

void QueryCache::EraseEntryLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  Entry& entry = it->second;
  if (entry.segment == Segment::kProbation) {
    probation_.erase(entry.pos);
  } else {
    protected_.erase(entry.pos);
    protected_bytes_ -= entry.bytes;
  }
  bytes_used_ -= entry.bytes;
  entries_.erase(it);
  entries_gauge_->Set(entries_.size());
  bytes_used_gauge_->Set(bytes_used_);
}

void QueryCache::BeginTreeMutation(const std::string& tree_name) {
  std::lock_guard<std::mutex> lock(mu_);
  TreeState& state = StateLocked(tree_name);
  state.saved_generation = state.generation;
  ++state.generation;
}

void QueryCache::CommitTreeMutation(const std::string& tree_name,
                                    uint64_t committed_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  TreeState& state = StateLocked(tree_name);
  state.barrier_epoch = committed_epoch;
}

void QueryCache::AbortTreeMutation(const std::string& tree_name) {
  std::lock_guard<std::mutex> lock(mu_);
  TreeState& state = StateLocked(tree_name);
  // The aborted transaction changed nothing: entries stamped before
  // Begin are still correct, so the generation rolls back.
  state.generation = state.saved_generation;
}

void QueryCache::EraseTree(const std::string& tree_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.tree == tree_name) {
      auto next = std::next(it);
      EraseEntryLocked(it);
      invalidations_->Increment();
      it = next;
    } else {
      ++it;
    }
  }
  trees_.erase(tree_name);
}

void QueryCache::NoteBypass() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  bypassed_->Increment();
}

CacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.insertions = insertions_->value();
  stats.evictions = evictions_->value();
  stats.invalidations = invalidations_->value();
  stats.stale_skips = stale_skips_->value();
  stats.bypassed = bypassed_->value();
  stats.entries = entries_.size();
  stats.bytes_used = bytes_used_;
  stats.budget_bytes = budget_;
  return stats;
}

}  // namespace cache
}  // namespace crimson
