// The adaptive query cache (ROADMAP open item 3): a session-level
// result cache for the idempotent query kinds -- LCA, projection,
// clade, pattern match; never sampling -- keyed by the canonical
// encoded QueryRequest and guarded by a per-tree (generation, epoch)
// validity stamp.
//
// Invalidation contract (MVCC-safe; see DESIGN.md "Adaptive caching &
// cracking"):
//
//   - Every cached entry carries the ReadStamp captured *before* its
//     query executed: the tree's mutation generation plus the storage
//     engine's committed epoch at that moment.
//   - A mutating session op (StoreTree / AppendSpeciesData / DropTree)
//     brackets its write transaction with BeginTreeMutation (bumps the
//     tree's generation while the writer lock is held) and either
//     CommitTreeMutation (records the post-commit epoch as the tree's
//     epoch barrier) or AbortTreeMutation (rolls the generation back,
//     since the aborted write changed nothing).
//   - An entry is served only if its generation still matches the
//     tree's AND its epoch is >= the tree's barrier. The generation
//     check catches queries that stamped before a mutation began; the
//     epoch barrier catches the race where a query stamps *during* an
//     in-flight mutation (its generation already matches the new one,
//     but it computed against the pre-commit MVCC snapshot, which the
//     pre-commit epoch in its stamp betrays).
//
//   Net guarantee: a query that begins after a mutation completes can
//   never observe a pre-mutation cached result; a query that overlaps
//   a mutation may serialize before it, which snapshot isolation
//   already allows.
//
// Replacement is 2Q within a byte budget: new entries enter a
// probation FIFO and are promoted to a protected LRU segment on their
// first re-reference, so one burst of unrepeated queries cannot flush
// the hot set. Eviction drains probation first; the protected segment
// is capped at 3/4 of the budget and demotes back into probation.
//
// Thread safety: every public method is safe to call concurrently;
// one internal mutex guards the whole structure (hit/miss work is a
// hash probe plus list splice, so the critical sections are tiny
// compared to the query execution they replace).

#ifndef CRIMSON_CACHE_QUERY_CACHE_H_
#define CRIMSON_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "crimson/query_request.h"
#include "obs/metrics.h"

namespace crimson {
namespace cache {

/// Counters for the result cache plus the session's cracked sequence
/// stores (the crack_* fields are aggregated across trees by
/// Crimson::GetCacheStats; QueryCache::stats fills only its own).
struct CacheStats {
  // Result cache.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // byte-budget pressure
  uint64_t invalidations = 0;  // entries dropped by the stamp check
  uint64_t stale_skips = 0;    // computed results whose stamp aged out
  uint64_t bypassed = 0;       // non-idempotent kinds (sampling)
  uint64_t entries = 0;
  uint64_t bytes_used = 0;
  uint64_t budget_bytes = 0;
  // Cracked sequence stores (aggregate over live EvalStates).
  uint64_t crack_stores = 0;
  uint64_t crack_pieces = 0;
  uint64_t crack_loaded_pieces = 0;
  uint64_t crack_sequences_loaded = 0;
  uint64_t crack_sequences_total = 0;
  uint64_t crack_fetches = 0;
  uint64_t crack_batches = 0;
  uint64_t crack_piece_hits = 0;
};

/// The validity stamp captured before a cacheable query executes.
struct ReadStamp {
  uint64_t generation = 0;
  uint64_t epoch = 0;
};

/// Rough retained-byte estimate for one QueryResult (projection trees
/// dominate; counted per node plus name payload).
uint64_t ApproxResultBytes(const QueryResult& result);

class QueryCache {
 public:
  /// budget_bytes == 0 disables the cache entirely (every Lookup
  /// misses without counting, Insert is a no-op). The cache's counters
  /// are registry-backed cells named after the wire keys (cache.hits,
  /// cache.misses, ...); when `metrics` is null the cache owns a
  /// private registry, so standalone instances keep isolated counts.
  /// stats() reads the cells back -- one source of truth.
  explicit QueryCache(uint64_t budget_bytes,
                      obs::MetricsRegistry* metrics = nullptr);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  bool enabled() const { return budget_ > 0; }

  /// True for the idempotent kinds (lca, project, clade,
  /// pattern_match); sampling kinds consume session RNG tickets and
  /// must always execute.
  static bool IsCacheable(const QueryRequest& request);

  /// Canonical cache key: kind tag + the history-stable parameter
  /// encoding (which embeds the tree name).
  static std::string KeyFor(const std::string& tree_name,
                            const QueryRequest& request);

  /// The current validity stamp for a tree; callers pass the storage
  /// engine's committed epoch. Must be captured BEFORE executing the
  /// query whose result will be inserted.
  ReadStamp Stamp(const std::string& tree_name, uint64_t committed_epoch);

  /// Returns the cached result if present and still valid; stale
  /// entries are erased on the spot. Counts a hit or a miss.
  std::optional<QueryResult> Lookup(const std::string& tree_name,
                                    const std::string& key);

  /// Inserts a computed result tagged with the pre-execution stamp.
  /// Silently skipped (stale_skips) if the stamp has aged out -- a
  /// mutation began or committed while the query ran.
  void Insert(const std::string& tree_name, const std::string& key,
              const ReadStamp& stamp, const QueryResult& result);

  // -- invalidation hooks (called with the session writer lock held,
  //    so at most one mutation is in flight at a time) ---------------

  /// A mutating op on `tree_name` is starting: bump its generation so
  /// entries stamped before this point stop validating.
  void BeginTreeMutation(const std::string& tree_name);

  /// The mutation committed; `committed_epoch` (read after commit)
  /// becomes the tree's epoch barrier.
  void CommitTreeMutation(const std::string& tree_name,
                          uint64_t committed_epoch);

  /// The mutation aborted: restore the pre-Begin generation.
  void AbortTreeMutation(const std::string& tree_name);

  /// Drops every entry for a tree plus its generation state (DropTree;
  /// a re-stored tree under the same name starts fresh).
  void EraseTree(const std::string& tree_name);

  /// Counts a query that skipped the cache because its kind is not
  /// idempotent.
  void NoteBypass();

  /// Snapshot of the result-cache counters (crack_* left zero).
  CacheStats stats() const;

 private:
  enum class Segment : uint8_t { kProbation, kProtected };

  struct Entry {
    std::string tree;
    QueryResult result;
    ReadStamp stamp;
    uint64_t bytes = 0;
    Segment segment = Segment::kProbation;
    std::list<std::string>::iterator pos;  // into the segment's list
  };

  struct TreeState {
    uint64_t generation = 0;
    uint64_t barrier_epoch = 0;
    uint64_t saved_generation = 0;  // for abort rollback
  };

  /// True if `stamp` is still valid against the tree's current state.
  bool ValidLocked(const std::string& tree, const ReadStamp& stamp) const;
  void EraseEntryLocked(std::unordered_map<std::string, Entry>::iterator it);
  void EvictForLocked(uint64_t incoming_bytes);
  TreeState& StateLocked(const std::string& tree);

  const uint64_t budget_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::map<std::string, TreeState> trees_;
  // MRU at front. The lists store the map keys; Entry::pos points back.
  std::list<std::string> probation_;
  std::list<std::string> protected_;
  uint64_t bytes_used_ = 0;
  uint64_t protected_bytes_ = 0;

  /// Backing registry when the constructor got none.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  /// Registry-backed counter cells (resolved once in the ctor; bumped
  /// under mu_, read lock-free by anyone snapshotting the registry).
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* invalidations_ = nullptr;
  obs::Counter* stale_skips_ = nullptr;
  obs::Counter* bypassed_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_used_gauge_ = nullptr;
};

}  // namespace cache
}  // namespace crimson

#endif  // CRIMSON_CACHE_QUERY_CACHE_H_
