#include "common/coding.h"

namespace crimson {

char* EncodeVarint32(char* dst, uint32_t v) {
  auto* ptr = reinterpret_cast<uint8_t*>(dst);
  while (v >= 0x80) {
    *ptr++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *ptr++ = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

char* EncodeVarint64(char* dst, uint64_t v) {
  auto* ptr = reinterpret_cast<uint8_t*>(dst);
  while (v >= 0x80) {
    *ptr++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *ptr++ = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

int PutVarint32(std::string* dst, uint32_t v) {
  char buf[kMaxVarint32Bytes];
  char* end = EncodeVarint32(buf, v);
  dst->append(buf, end - buf);
  return static_cast<int>(end - buf);
}

int PutVarint64(std::string* dst, uint64_t v) {
  char buf[kMaxVarint64Bytes];
  char* end = EncodeVarint64(buf, v);
  dst->append(buf, end - buf);
  return static_cast<int>(end - buf);
}

namespace {

// Shared LEB128 decode; max_bytes bounds overlong encodings.
bool DecodeVarint(Slice* input, uint64_t* value, int max_bytes) {
  uint64_t result = 0;
  int shift = 0;
  const auto* p = reinterpret_cast<const uint8_t*>(input->data());
  const auto* limit = p + input->size();
  for (int i = 0; i < max_bytes && p < limit; ++i, ++p) {
    uint64_t byte = *p;
    result |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      input->remove_prefix(i + 1);
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  if (!DecodeVarint(input, &v64, kMaxVarint32Bytes)) return false;
  if (v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  return DecodeVarint(input, value, kMaxVarint64Bytes);
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return true;
}

}  // namespace crimson
