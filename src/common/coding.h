// Fixed-width and varint encodings used by the storage engine and the
// label codecs. Little-endian on-disk layout, independent of host order.

#ifndef CRIMSON_COMMON_CODING_H_
#define CRIMSON_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace crimson {

// ---------------------------------------------------------------------------
// Fixed-width little-endian encodings.
// ---------------------------------------------------------------------------

inline void EncodeFixed16(char* dst, uint16_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
}

inline void EncodeFixed32(char* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline void EncodeFixed64(char* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline uint16_t DecodeFixed16(const char* src) {
  return static_cast<uint16_t>(static_cast<uint8_t>(src[0])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(src[1])) << 8);
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(src[i]);
  }
  return v;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(src[i]);
  }
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

// ---------------------------------------------------------------------------
// Varints (LEB128, unsigned). 32-bit values use at most 5 bytes,
// 64-bit values at most 10 bytes.
// ---------------------------------------------------------------------------

inline constexpr int kMaxVarint32Bytes = 5;
inline constexpr int kMaxVarint64Bytes = 10;

/// Appends v to *dst in varint format; returns bytes written.
int PutVarint32(std::string* dst, uint32_t v);
int PutVarint64(std::string* dst, uint64_t v);

/// Encodes into a raw buffer (must have room for kMaxVarintNNBytes);
/// returns a pointer one past the last written byte.
char* EncodeVarint32(char* dst, uint32_t v);
char* EncodeVarint64(char* dst, uint64_t v);

/// Parses a varint from input, advancing it past the parsed bytes.
/// Returns false on truncated/overlong input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Number of bytes PutVarintNN would write.
int VarintLength(uint64_t v);

// ---------------------------------------------------------------------------
// Length-prefixed strings.
// ---------------------------------------------------------------------------

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// ---------------------------------------------------------------------------
// Doubles: encoded via bit_cast to fixed64.
// ---------------------------------------------------------------------------

inline void PutDouble(std::string* dst, double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  PutFixed64(dst, bits);
}

inline double DecodeDouble(const char* src) {
  uint64_t bits = DecodeFixed64(src);
  double d;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

inline bool GetDouble(Slice* input, double* d) {
  if (input->size() < 8) return false;
  *d = DecodeDouble(input->data());
  input->remove_prefix(8);
  return true;
}

inline bool GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return false;
  *v = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  *v = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace crimson

#endif  // CRIMSON_COMMON_CODING_H_
