#include "common/crc32.h"

#include <array>

namespace crimson {

namespace {

/// Lazily built table for CRC32 (IEEE 802.3 polynomial, reflected).
const uint32_t* Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

uint32_t Crc32(const char* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace crimson
