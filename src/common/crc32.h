// CRC32 (IEEE 802.3 polynomial, reflected) shared by the WAL record
// framing and the network wire protocol.

#ifndef CRIMSON_COMMON_CRC32_H_
#define CRIMSON_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace crimson {

/// Running CRC: pass the previous value as `seed` to extend a checksum
/// across multiple buffers.
uint32_t Crc32(const char* data, size_t n, uint32_t seed = 0);

}  // namespace crimson

#endif  // CRIMSON_COMMON_CRC32_H_
