#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <string>

namespace crimson {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Compact stable id for the calling thread: a per-process sequence
/// number handed out on first log, so lines read "tid=3" instead of a
/// pointer-sized hash.
uint64_t ThreadLogId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// ISO-8601 UTC wall-clock timestamp with milliseconds, e.g.
/// "2026-08-07T12:34:56.789Z".
void FormatTimestamp(char* buf, size_t n) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  size_t len = std::strftime(buf, n, "%Y-%m-%dT%H:%M:%S", &tm);
  snprintf(buf + len, n - len, ".%03dZ", millis);
}
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view msg) {
  if (level < MinLogLevel()) return;
  // Shorten path to basename for readability.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  char ts[40];
  FormatTimestamp(ts, sizeof(ts));
  std::lock_guard<std::mutex> lock(LogMutex());
  fprintf(stderr, "[%s %s tid=%llu %.*s:%d] %.*s\n", ts, LevelName(level),
          static_cast<unsigned long long>(ThreadLogId()),
          static_cast<int>(file.size()), file.data(), line,
          static_cast<int>(msg.size()), msg.data());
}

}  // namespace crimson
