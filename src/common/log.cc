#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace crimson {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view msg) {
  if (level < MinLogLevel()) return;
  // Shorten path to basename for readability.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  std::lock_guard<std::mutex> lock(LogMutex());
  fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelName(level),
          static_cast<int>(file.size()), file.data(), line,
          static_cast<int>(msg.size()), msg.data());
}

}  // namespace crimson
