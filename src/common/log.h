// Minimal leveled logging to stderr. The loader uses this to surface
// "loading status as well as errors ... dynamically generated and
// displayed to the user" (paper §3).

#ifndef CRIMSON_COMMON_LOG_H_
#define CRIMSON_COMMON_LOG_H_

#include <sstream>
#include <string_view>

namespace crimson {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error" into
/// `*level` (case-sensitive); false on anything else. Backs the
/// crimson_server --log-level flag.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// Emits a single log line (thread-safe).
void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view msg);

namespace internal {

/// Stream-style collector used by the CRIMSON_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crimson

#define CRIMSON_LOG(level)                                            \
  if (::crimson::LogLevel::level < ::crimson::MinLogLevel()) {        \
  } else                                                              \
    ::crimson::internal::LogStream(::crimson::LogLevel::level,        \
                                   __FILE__, __LINE__)

#endif  // CRIMSON_COMMON_LOG_H_
