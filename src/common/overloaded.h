// Overload-set helper for std::visit: combines lambdas into one
// callable (the standard "overloaded" idiom).

#ifndef CRIMSON_COMMON_OVERLOADED_H_
#define CRIMSON_COMMON_OVERLOADED_H_

namespace crimson {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace crimson

#endif  // CRIMSON_COMMON_OVERLOADED_H_
