#include "common/random.h"

#include <unordered_set>

namespace crimson {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Floyd's algorithm: O(k) expected draws, good when k << n.
  if (k < n / 4) {
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(static_cast<size_t>(k) * 2);
    for (uint64_t j = n - k; j < n; ++j) {
      uint64_t t = Uniform(j + 1);
      if (chosen.insert(t).second) {
        out.push_back(t);
      } else {
        chosen.insert(j);
        out.push_back(j);
      }
    }
    return out;
  }
  // Dense case: partial Fisher-Yates over an index array.
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; ++i) idx[i] = i;
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + Uniform(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace crimson
