// Deterministic pseudo-random number generation for simulation and
// sampling. All Crimson randomness flows through Rng so that every
// experiment is reproducible from a single seed.

#ifndef CRIMSON_COMMON_RANDOM_H_
#define CRIMSON_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace crimson {

/// SplitMix64: used to seed the main generator from a single word.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0xC815011DULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0. Uses Lemire rejection to avoid
  /// modulo bias.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Exponential with given rate (mean 1/rate).
  double Exponential(double rate) {
    assert(rate > 0);
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Bernoulli trial.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (Floyd's algorithm
  /// when k << n, shuffle-prefix otherwise). Result order is unspecified.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace crimson

#endif  // CRIMSON_COMMON_RANDOM_H_
