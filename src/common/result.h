// Result<T>: value-or-Status, the Crimson analogue of absl::StatusOr.

#ifndef CRIMSON_COMMON_RESULT_H_
#define CRIMSON_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace crimson {

/// Holds either a value of type T or a non-OK Status describing why the
/// value is absent. Construction from a value yields ok(); construction
/// from a Status must use a non-OK status.
template <typename T>
class Result {
 public:
  /// Implicit conversions from value and Status intentionally mirror
  /// absl::StatusOr ergonomics (`return value;` / `return status;`).
  Result(T value) : value_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked via assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if an error is held.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace crimson

/// Evaluates `rexpr` (a Result<T>), propagates the error, otherwise
/// assigns the value to `lhs`. Usable in functions returning Status or
/// Result<U>. Variadic so that template arguments containing commas
/// (e.g. std::map<K, V>) survive preprocessing.
#define CRIMSON_ASSIGN_OR_RETURN(lhs, ...)            \
  CRIMSON_ASSIGN_OR_RETURN_IMPL_(                     \
      CRIMSON_CONCAT_(_result_tmp_, __LINE__), lhs, __VA_ARGS__)

#define CRIMSON_CONCAT_INNER_(a, b) a##b
#define CRIMSON_CONCAT_(a, b) CRIMSON_CONCAT_INNER_(a, b)

#define CRIMSON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, ...) \
  auto tmp = (__VA_ARGS__);                           \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // CRIMSON_COMMON_RESULT_H_
