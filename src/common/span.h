// Minimal std::span stand-in (the project targets C++17). A Span is a
// non-owning view over a contiguous sequence; it never allocates and is
// cheap to copy. Only the read-side surface needed by the batched query
// API is provided.

#ifndef CRIMSON_COMMON_SPAN_H_
#define CRIMSON_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace crimson {

template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  template <size_t N>
  constexpr Span(T (&array)[N]) : data_(array), size_(N) {}  // NOLINT

  /// Views over vectors; the const overload participates only when T is
  /// const-qualified so a Span<T> cannot silently drop constness.
  Span(std::vector<value_type>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<value_type>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr Span subspan(size_t offset, size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace crimson

#endif  // CRIMSON_COMMON_SPAN_H_
