#include "common/status.h"

namespace crimson {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace crimson
