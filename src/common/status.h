// Status: exception-free error propagation for the Crimson library.
//
// Crimson follows the Google C++ style guide and does not use exceptions.
// All fallible operations return a Status (or Result<T>, see result.h).
// A Status is cheap to copy in the OK case (single word) and carries a
// code plus a human-readable message otherwise.

#ifndef CRIMSON_COMMON_STATUS_H_
#define CRIMSON_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace crimson {

/// Canonical error codes, modeled after absl::StatusCode / rocksdb::Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kResourceExhausted = 10,
  kUnavailable = 11,
};

/// Returns a stable lowercase name for a code ("ok", "not_found", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error type. OK statuses are represented by a null
/// rep pointer so that the common success path allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_.reset(other.rep_ ? new Rep(*other.rep_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory functions -- the only way to construct a non-OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  /// Transient overload: the operation was rejected (not failed) and is
  /// safe to retry. `retry_after_ms` is the server's backoff hint
  /// (0 = none); it survives copies and round-trips the wire protocol.
  static Status Unavailable(std::string_view msg, int64_t retry_after_ms = 0) {
    Status s(StatusCode::kUnavailable, msg);
    s.rep_->retry_after_ms = retry_after_ms;
    return s;
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Suggested retry delay attached to an Unavailable status; 0 when
  /// absent or for any other code.
  int64_t retry_after_ms() const { return rep_ ? rep_->retry_after_ms : 0; }

  /// Message attached at construction; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string_view m) : code(c), message(m) {}
    StatusCode code;
    std::string message;
    int64_t retry_after_ms = 0;  // only meaningful for kUnavailable
  };

  Status(StatusCode code, std::string_view msg)
      : rep_(new Rep(code, msg)) {}

  std::unique_ptr<Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace crimson

/// Propagates a non-OK status to the caller. Usable in functions
/// returning Status.
#define CRIMSON_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::crimson::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // CRIMSON_COMMON_STATUS_H_
