#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crimson {

std::vector<std::string_view> StrSplit(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (tolower(static_cast<unsigned char>(a[i])) !=
        tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(toupper(static_cast<unsigned char>(c)));
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in double: " + buf);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

}  // namespace crimson
