// Small string helpers shared across modules (formatting, splitting,
// numeric parsing). No locale dependence.

#ifndef CRIMSON_COMMON_STRING_UTIL_H_
#define CRIMSON_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace crimson {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

/// Strict numeric parsing: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace crimson

#endif  // CRIMSON_COMMON_STRING_UTIL_H_
