#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace crimson {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  // Shared state outlives every worker task via shared_ptr: ParallelFor
  // only returns once `done` reaches n, and tasks touch nothing after
  // incrementing it.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first exception thrown by body
  };
  auto state = std::make_shared<State>();
  const size_t total = n;
  auto drain = [state, total, &body] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      // An index always counts as done even if body throws; otherwise
      // the caller would wait forever (or a worker would terminate).
      // The first exception is rethrown on the calling thread below.
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  size_t helpers = std::min(total - 1, threads_.size());
  for (size_t i = 0; i < helpers; ++i) Submit(drain);
  drain();  // the caller works too
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == total;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace crimson
