// Fixed-size worker pool used by the batched query path. Workers sleep
// on a condition variable; ParallelFor hands out indices through an
// atomic cursor so callers get static work distribution without
// per-task allocation ordering effects.

#ifndef CRIMSON_COMMON_THREAD_POOL_H_
#define CRIMSON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crimson {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; returns immediately.
  void Submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1) across the pool and blocks until every
  /// index has finished. The calling thread participates, so the pool
  /// makes progress even with a single worker. `body` must be safe to
  /// invoke concurrently for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace crimson

#endif  // CRIMSON_COMMON_THREAD_POOL_H_
