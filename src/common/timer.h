// Wall-clock timer for benchmark harnesses and loader progress.

#ifndef CRIMSON_COMMON_TIMER_H_
#define CRIMSON_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace crimson {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crimson

#endif  // CRIMSON_COMMON_TIMER_H_
