#include "crimson/benchmark_manager.h"

#include "common/string_util.h"
#include "common/timer.h"

namespace crimson {

BenchmarkManager::BenchmarkManager(
    const PhyloTree* gold_tree,
    const std::map<std::string, std::string>* sequences, uint32_t f)
    : tree_(gold_tree),
      owned_source_(std::make_unique<cache::MapSequenceSource>(sequences)),
      sequences_(owned_source_.get()),
      owned_scheme_(std::make_unique<LayeredDeweyScheme>(f)),
      scheme_(owned_scheme_.get()) {}

BenchmarkManager::BenchmarkManager(
    const PhyloTree* gold_tree,
    const std::map<std::string, std::string>* sequences,
    const LayeredDeweyScheme* scheme)
    : tree_(gold_tree),
      owned_source_(std::make_unique<cache::MapSequenceSource>(sequences)),
      sequences_(owned_source_.get()),
      scheme_(scheme) {}

BenchmarkManager::BenchmarkManager(const PhyloTree* gold_tree,
                                   const cache::SequenceSource* sequences,
                                   const LayeredDeweyScheme* scheme)
    : tree_(gold_tree), sequences_(sequences), scheme_(scheme) {}

Status BenchmarkManager::Init() {
  if (tree_ == nullptr || tree_->empty()) {
    return Status::InvalidArgument("benchmark manager needs a gold tree");
  }
  if (owned_scheme_ != nullptr) {
    CRIMSON_RETURN_IF_ERROR(owned_scheme_->Build(*tree_));
  } else if (scheme_ == nullptr || scheme_->node_count() != tree_->size()) {
    return Status::InvalidArgument(
        "borrowed labeling scheme does not match the gold tree");
  }
  if (names_ == nullptr) {
    owned_names_ = std::make_unique<NameIndex>(NameIndex::Build(*tree_));
    names_ = owned_names_.get();
  }
  sampler_ = std::make_unique<Sampler>(tree_);
  projector_ = std::make_unique<TreeProjector>(tree_, scheme_);
  return Status::OK();
}

Result<std::vector<NodeId>> BenchmarkManager::SelectSpecies(
    const SelectionSpec& selection, Rng* rng) const {
  switch (selection.kind) {
    case SelectionSpec::Kind::kUniform:
      return sampler_->SampleUniform(selection.k, rng);
    case SelectionSpec::Kind::kWithRespectToTime:
      return sampler_->SampleWithRespectToTime(selection.k, selection.time,
                                               rng);
    case SelectionSpec::Kind::kUserList: {
      std::vector<NodeId> out;
      out.reserve(selection.species.size());
      for (const std::string& s : selection.species) {
        NodeId n = names_->Find(*tree_, s);
        if (n == kNoNode || !tree_->is_leaf(n)) {
          return Status::NotFound(
              StrFormat("species '%s' is not a leaf of the gold tree",
                        s.c_str()));
        }
        out.push_back(n);
      }
      return out;
    }
  }
  return Status::Internal("unknown selection kind");
}

Result<BenchmarkRun> BenchmarkManager::Evaluate(
    const ReconstructionAlgorithm& algorithm, const SelectionSpec& selection,
    Rng* rng, bool compute_triplets) const {
  if (sampler_ == nullptr) {
    return Status::FailedPrecondition("Init() not called");
  }
  BenchmarkRun run;
  run.algorithm = algorithm.name();

  WallTimer timer;
  CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> sample,
                           SelectSpecies(selection, rng));
  run.sample_seconds = timer.ElapsedSeconds();
  run.sample_size = sample.size();
  if (sample.size() < 3) {
    return Status::InvalidArgument(
        "need at least 3 sampled species to benchmark");
  }

  timer.Restart();
  CRIMSON_ASSIGN_OR_RETURN(run.reference, projector_->Project(sample));
  run.project_seconds = timer.ElapsedSeconds();

  // Collect the sampled species' sequences through the source (a
  // cracked store materializes only this slice; a map source just
  // copies). Missing species surface as NotFound from the source.
  std::vector<std::string> wanted;
  wanted.reserve(sample.size());
  for (NodeId n : sample) wanted.emplace_back(tree_->name(n));
  using SequenceMap = std::map<std::string, std::string>;
  CRIMSON_ASSIGN_OR_RETURN(SequenceMap seqs, sequences_->GetBatch(wanted));

  timer.Restart();
  CRIMSON_ASSIGN_OR_RETURN(run.reconstructed, algorithm.Reconstruct(seqs));
  run.reconstruct_seconds = timer.ElapsedSeconds();

  timer.Restart();
  CRIMSON_ASSIGN_OR_RETURN(run.rf,
                           RobinsonFoulds(run.reference, run.reconstructed));
  if (compute_triplets && sample.size() <= 512) {
    CRIMSON_ASSIGN_OR_RETURN(
        run.triplets, TripletDistance(run.reference, run.reconstructed));
  }
  run.compare_seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace crimson
