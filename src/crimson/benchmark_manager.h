// Benchmark Manager (paper §2.2, Fig. 3): characterizes and evaluates a
// tree inference algorithm by comparing its output to projection trees
// derived from the gold-standard simulation tree. The pipeline is:
//   sample species -> project the true tree over the sample ->
//   fetch/simulate sequences -> run the algorithm -> score against the
//   projection (Robinson-Foulds, triplets).

#ifndef CRIMSON_CRIMSON_BENCHMARK_MANAGER_H_
#define CRIMSON_CRIMSON_BENCHMARK_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cracked_store.h"
#include "common/random.h"
#include "common/result.h"
#include "labeling/layered_dewey.h"
#include "query/projection.h"
#include "query/sampling.h"
#include "recon/algorithm.h"
#include "recon/distance.h"
#include "recon/rf_distance.h"
#include "recon/triplet.h"
#include "tree/name_index.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// How to choose the species sample (the three demo selection modes).
struct SelectionSpec {
  enum class Kind { kUniform, kWithRespectToTime, kUserList };
  Kind kind = Kind::kUniform;
  size_t k = 32;                      // kUniform / kWithRespectToTime
  double time = 0;                    // kWithRespectToTime
  std::vector<std::string> species;   // kUserList
};

struct BenchmarkRun {
  std::string algorithm;
  size_t sample_size = 0;
  PhyloTree reference;      // projection of the true tree
  PhyloTree reconstructed;  // algorithm output
  RfResult rf;
  TripletResult triplets;   // populated when sample_size is moderate
  double sample_seconds = 0;
  double project_seconds = 0;
  double reconstruct_seconds = 0;
  double compare_seconds = 0;
};

/// Evaluates algorithms against one gold-standard tree held in memory
/// (the Crimson facade wires this to the repositories). Immutable
/// after Init(): Evaluate is const and randomness comes from the
/// caller's Rng, so one manager may be shared across threads (each
/// with its own Rng).
class BenchmarkManager {
 public:
  /// The tree and sequences must outlive the manager. `sequences` maps
  /// every leaf name to its (aligned) sequence.
  BenchmarkManager(const PhyloTree* gold_tree,
                   const std::map<std::string, std::string>* sequences,
                   uint32_t f = 8);

  /// Borrows an already-built labeling of `gold_tree` (which must
  /// outlive the manager): Init() skips the O(n) relabel.
  BenchmarkManager(const PhyloTree* gold_tree,
                   const std::map<std::string, std::string>* sequences,
                   const LayeredDeweyScheme* scheme);

  /// Borrows a labeling plus an abstract sequence source (which must
  /// both outlive the manager). This is the constructor the session's
  /// cached evaluation state uses: the TreeHandle's scheme is reused
  /// instead of rebuilt, and sequences come through the cracked store
  /// so only the sampled slices are ever materialized.
  BenchmarkManager(const PhyloTree* gold_tree,
                   const cache::SequenceSource* sequences,
                   const LayeredDeweyScheme* scheme);

  /// Borrows a pre-built name index over the gold tree (the session
  /// passes the TreeHandle's); must outlive the manager. Without one,
  /// Init() builds a private index. Call before Init().
  void set_name_index(const NameIndex* names) { names_ = names; }

  Status Init();

  /// Runs one evaluation.
  Result<BenchmarkRun> Evaluate(const ReconstructionAlgorithm& algorithm,
                                const SelectionSpec& selection, Rng* rng,
                                bool compute_triplets = false) const;

  const Sampler& sampler() const { return *sampler_; }
  const TreeProjector& projector() const { return *projector_; }
  const LayeredDeweyScheme& scheme() const { return *scheme_; }

 private:
  Result<std::vector<NodeId>> SelectSpecies(const SelectionSpec& selection,
                                            Rng* rng) const;

  const PhyloTree* tree_;
  /// Wraps the map-constructor maps; null when a source is borrowed.
  std::unique_ptr<cache::MapSequenceSource> owned_source_;
  const cache::SequenceSource* sequences_;
  /// Built by Init() when owned; pre-built and borrowed otherwise.
  std::unique_ptr<LayeredDeweyScheme> owned_scheme_;
  const LayeredDeweyScheme* scheme_ = nullptr;
  /// Built by Init() when not borrowed via set_name_index().
  std::unique_ptr<NameIndex> owned_names_;
  const NameIndex* names_ = nullptr;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<TreeProjector> projector_;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_BENCHMARK_MANAGER_H_
