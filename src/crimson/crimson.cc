#include "crimson/crimson.h"

#include <algorithm>

#include "common/log.h"
#include "common/string_util.h"
#include "recon/rf_distance.h"
#include "tree/ascii_render.h"
#include "tree/newick.h"
#include "tree/nexus.h"

namespace crimson {

namespace {

std::string JoinSpecies(const std::vector<std::string>& species) {
  std::string out;
  for (size_t i = 0; i < species.size(); ++i) {
    if (i) out.push_back(',');
    out += species[i];
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<Crimson>> Crimson::Open(const CrimsonOptions& options) {
  auto c = std::unique_ptr<Crimson>(new Crimson());
  c->options_ = options;
  c->rng_.Reseed(options.seed);
  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = options.buffer_pool_pages;
  if (options.db_path.empty()) {
    CRIMSON_ASSIGN_OR_RETURN(c->db_, Database::OpenInMemory(db_opts));
  } else {
    CRIMSON_ASSIGN_OR_RETURN(c->db_, Database::Open(options.db_path, db_opts));
  }
  CRIMSON_ASSIGN_OR_RETURN(c->trees_, TreeRepository::Open(c->db_.get()));
  CRIMSON_ASSIGN_OR_RETURN(c->species_, SpeciesRepository::Open(c->db_.get()));
  CRIMSON_ASSIGN_OR_RETURN(c->queries_, QueryRepository::Open(c->db_.get()));
  c->loader_ = std::make_unique<DataLoader>(c->trees_.get(),
                                            c->species_.get(), options.f);
  return c;
}

Result<LoadReport> Crimson::LoadNewick(const std::string& name,
                                       const std::string& newick,
                                       LoadMode mode) {
  return loader_->LoadNewick(name, newick, mode);
}

Result<LoadReport> Crimson::LoadNexus(const std::string& name,
                                      const std::string& nexus,
                                      LoadMode mode) {
  return loader_->LoadNexus(name, nexus, mode);
}

Result<LoadReport> Crimson::LoadTree(const std::string& name,
                                     const PhyloTree& tree) {
  return loader_->LoadTree(name, tree);
}

Result<LoadReport> Crimson::AppendSpeciesData(
    const std::string& tree_name,
    const std::map<std::string, std::string>& sequences) {
  return loader_->AppendSpecies(tree_name, sequences);
}

Result<std::vector<TreeInfo>> Crimson::ListTrees() const {
  return trees_->ListTrees();
}

Result<Crimson::TreeHandle*> Crimson::Handle(const std::string& name) {
  auto it = handles_.find(name);
  if (it != handles_.end()) return it->second.get();
  CRIMSON_ASSIGN_OR_RETURN(TreeInfo info, trees_->GetTreeInfo(name));
  auto handle = std::make_unique<TreeHandle>(
      static_cast<uint32_t>(info.f > 0 ? info.f : options_.f));
  handle->info = info;
  CRIMSON_ASSIGN_OR_RETURN(handle->tree, trees_->LoadTree(info.tree_id));
  CRIMSON_RETURN_IF_ERROR(handle->scheme.Build(handle->tree));
  handle->sampler = std::make_unique<Sampler>(&handle->tree);
  handle->projector =
      std::make_unique<TreeProjector>(&handle->tree, &handle->scheme);
  handle->matcher = std::make_unique<PatternMatcher>(handle->projector.get());
  TreeHandle* raw = handle.get();
  handles_.emplace(name, std::move(handle));
  return raw;
}

Result<const PhyloTree*> Crimson::GetTree(const std::string& name) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(name));
  return const_cast<const PhyloTree*>(&handle->tree);
}

Result<std::vector<NodeId>> Crimson::ResolveSpecies(
    TreeHandle* handle, const std::vector<std::string>& species) const {
  std::vector<NodeId> out;
  out.reserve(species.size());
  for (const std::string& s : species) {
    NodeId n = handle->tree.FindByName(s);
    if (n == kNoNode) {
      return Status::NotFound(StrFormat("species '%s' not in tree '%s'",
                                        s.c_str(),
                                        handle->info.name.c_str()));
    }
    out.push_back(n);
  }
  return out;
}

void Crimson::RecordQuery(const std::string& kind, const std::string& params,
                          const std::string& summary) {
  Result<int64_t> r = queries_->Record(kind, params, summary);
  if (!r.ok()) {
    CRIMSON_LOG(kWarning) << "query history write failed: " << r.status();
  }
}

Result<Crimson::LcaAnswer> Crimson::Lca(const std::string& tree_name,
                                        const std::string& a,
                                        const std::string& b) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                           ResolveSpecies(handle, {a, b}));
  CRIMSON_ASSIGN_OR_RETURN(NodeId lca, handle->scheme.Lca(nodes[0], nodes[1]));
  LcaAnswer answer;
  answer.node = lca;
  answer.name = handle->tree.name(lca);
  RecordQuery("lca",
              StrFormat("tree=%s&a=%s&b=%s", tree_name.c_str(), a.c_str(),
                        b.c_str()),
              StrFormat("lca node=%u name=%s", lca, answer.name.c_str()));
  return answer;
}

Result<PhyloTree> Crimson::Project(const std::string& tree_name,
                                   const std::vector<std::string>& species) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                           ResolveSpecies(handle, species));
  CRIMSON_ASSIGN_OR_RETURN(PhyloTree projection,
                           handle->projector->Project(nodes));
  RecordQuery("project",
              StrFormat("tree=%s&species=%s", tree_name.c_str(),
                        JoinSpecies(species).c_str()),
              StrFormat("projection nodes=%zu", projection.size()));
  return projection;
}

Result<std::vector<std::string>> Crimson::SampleUniform(
    const std::string& tree_name, size_t k) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                           handle->sampler->SampleUniform(k, &rng_));
  std::vector<std::string> names;
  names.reserve(nodes.size());
  for (NodeId n : nodes) names.push_back(handle->tree.name(n));
  RecordQuery("sample_uniform",
              StrFormat("tree=%s&k=%zu", tree_name.c_str(), k),
              StrFormat("sampled %zu species", names.size()));
  return names;
}

Result<std::vector<std::string>> Crimson::SampleWithRespectToTime(
    const std::string& tree_name, size_t k, double time) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<NodeId> nodes,
      handle->sampler->SampleWithRespectToTime(k, time, &rng_));
  std::vector<std::string> names;
  names.reserve(nodes.size());
  for (NodeId n : nodes) names.push_back(handle->tree.name(n));
  RecordQuery("sample_time",
              StrFormat("tree=%s&k=%zu&time=%.17g", tree_name.c_str(), k,
                        time),
              StrFormat("sampled %zu species", names.size()));
  return names;
}

Result<Crimson::CladeAnswer> Crimson::MinimalClade(
    const std::string& tree_name, const std::vector<std::string>& species) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                           ResolveSpecies(handle, species));
  CRIMSON_ASSIGN_OR_RETURN(
      Clade clade, MinimalSpanningClade(handle->tree, handle->scheme, nodes));
  CladeAnswer answer;
  answer.root = clade.root;
  answer.node_count = clade.nodes.size();
  for (NodeId n : clade.nodes) {
    if (handle->tree.is_leaf(n)) ++answer.leaf_count;
  }
  RecordQuery("clade",
              StrFormat("tree=%s&species=%s", tree_name.c_str(),
                        JoinSpecies(species).c_str()),
              StrFormat("clade root=%u nodes=%zu leaves=%zu", clade.root,
                        answer.node_count, answer.leaf_count));
  return answer;
}

Result<Crimson::PatternAnswer> Crimson::MatchPattern(
    const std::string& tree_name, const std::string& pattern_newick,
    bool match_weights) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(PhyloTree pattern, ParseNewick(pattern_newick));
  CRIMSON_ASSIGN_OR_RETURN(
      PatternMatcher::MatchResult match,
      handle->matcher->Match(pattern, 1e-9, match_weights));
  PatternAnswer answer;
  answer.exact = match.exact;
  answer.projection = std::move(match.projection);
  if (!answer.exact && pattern.LeafCount() >= 3) {
    // Approximate similarity: RF between pattern and projection.
    Result<RfResult> rf = RobinsonFoulds(pattern, answer.projection);
    if (rf.ok()) answer.rf_normalized = rf->normalized;
  }
  RecordQuery("pattern_match",
              StrFormat("tree=%s&pattern=%s&weights=%d", tree_name.c_str(),
                        pattern_newick.c_str(), match_weights ? 1 : 0),
              StrFormat("exact=%d rf=%.4f", answer.exact ? 1 : 0,
                        answer.rf_normalized));
  return answer;
}

Result<BenchmarkRun> Crimson::Benchmark(
    const std::string& tree_name, const ReconstructionAlgorithm& algorithm,
    const SelectionSpec& selection) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  std::map<std::string, std::string> seqs;
  CRIMSON_ASSIGN_OR_RETURN(
      seqs, species_->SequencesForTree(handle->info.tree_id));
  if (seqs.empty()) {
    return Status::FailedPrecondition(
        StrFormat("tree '%s' has no species data loaded",
                  tree_name.c_str()));
  }
  BenchmarkManager manager(&handle->tree, &seqs,
                           static_cast<uint32_t>(handle->info.f));
  CRIMSON_RETURN_IF_ERROR(manager.Init());
  CRIMSON_ASSIGN_OR_RETURN(
      BenchmarkRun run,
      manager.Evaluate(algorithm, selection, &rng_, /*compute_triplets=*/true));
  RecordQuery(
      "benchmark",
      StrFormat("tree=%s&algorithm=%s&k=%zu", tree_name.c_str(),
                run.algorithm.c_str(), run.sample_size),
      StrFormat("rf=%zu/%zu normalized=%.4f", run.rf.distance,
                run.rf.splits_a + run.rf.splits_b, run.rf.normalized));
  return run;
}

Result<std::vector<QueryRepository::Entry>> Crimson::QueryHistory(
    size_t limit) {
  return queries_->History(limit);
}

Result<std::string> Crimson::RerunQuery(int64_t query_id) {
  CRIMSON_ASSIGN_OR_RETURN(QueryRepository::Entry entry,
                           queries_->Get(query_id));
  // Parse "k=v&k=v" parameters.
  std::map<std::string, std::string> params;
  for (std::string_view pair : StrSplit(entry.params, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    params[std::string(pair.substr(0, eq))] =
        std::string(pair.substr(eq + 1));
  }
  const std::string& tree = params["tree"];
  if (entry.kind == "lca") {
    CRIMSON_ASSIGN_OR_RETURN(LcaAnswer a, Lca(tree, params["a"], params["b"]));
    return StrFormat("lca node=%u name=%s", a.node, a.name.c_str());
  }
  if (entry.kind == "project") {
    std::vector<std::string> species;
    for (std::string_view s : StrSplit(params["species"], ',')) {
      species.emplace_back(s);
    }
    CRIMSON_ASSIGN_OR_RETURN(PhyloTree p, Project(tree, species));
    return WriteNewick(p);
  }
  if (entry.kind == "sample_uniform") {
    CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(params["k"]));
    CRIMSON_ASSIGN_OR_RETURN(std::vector<std::string> names,
                             SampleUniform(tree, static_cast<size_t>(k)));
    return JoinSpecies(names);
  }
  if (entry.kind == "sample_time") {
    CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(params["k"]));
    CRIMSON_ASSIGN_OR_RETURN(double t, ParseDouble(params["time"]));
    CRIMSON_ASSIGN_OR_RETURN(
        std::vector<std::string> names,
        SampleWithRespectToTime(tree, static_cast<size_t>(k), t));
    return JoinSpecies(names);
  }
  if (entry.kind == "clade") {
    std::vector<std::string> species;
    for (std::string_view s : StrSplit(params["species"], ',')) {
      species.emplace_back(s);
    }
    CRIMSON_ASSIGN_OR_RETURN(CladeAnswer c, MinimalClade(tree, species));
    return StrFormat("clade root=%u nodes=%zu", c.root, c.node_count);
  }
  if (entry.kind == "pattern_match") {
    CRIMSON_ASSIGN_OR_RETURN(
        PatternAnswer p,
        MatchPattern(tree, params["pattern"], params["weights"] == "1"));
    return StrFormat("exact=%d rf=%.4f", p.exact ? 1 : 0, p.rf_normalized);
  }
  return Status::Unimplemented(
      StrFormat("cannot rerun query kind '%s'", entry.kind.c_str()));
}

Result<std::string> Crimson::ExportNexus(const std::string& tree_name) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  NexusDocument doc;
  for (NodeId n : handle->tree.Leaves()) {
    doc.taxa.push_back(handle->tree.name(n));
  }
  CRIMSON_ASSIGN_OR_RETURN(
      doc.sequences, species_->SequencesForTree(handle->info.tree_id));
  NexusTree nt;
  nt.name = tree_name;
  nt.tree = handle->tree;
  doc.trees.push_back(std::move(nt));
  return WriteNexus(doc);
}

Result<std::string> Crimson::RenderTree(const std::string& tree_name,
                                        size_t max_nodes) {
  CRIMSON_ASSIGN_OR_RETURN(TreeHandle * handle, Handle(tree_name));
  AsciiRenderOptions options;
  options.max_nodes = max_nodes;
  return RenderAscii(handle->tree, options);
}

Status Crimson::Flush() { return db_->Flush(); }

}  // namespace crimson
