#include "crimson/crimson.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/log.h"
#include "common/overloaded.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "query/lca.h"
#include "recon/rf_distance.h"
#include "tree/ascii_render.h"
#include "tree/newick.h"
#include "tree/nexus.h"

namespace crimson {

namespace {

/// Derives the seed for one query's private Rng from the session seed
/// and the query's ticket. Sequential and batched execution assign the
/// same tickets in request order, so sampling results are identical in
/// both modes, and two sessions with different seeds draw differently.
uint64_t QuerySeed(uint64_t session_seed, uint64_t ticket) {
  uint64_t state = session_seed + 0x9E3779B97F4A7C15ULL * (ticket + 1);
  return SplitMix64(&state);
}

/// Status of either a Status or a Result<T> (TransactLocked works
/// over both shapes of repository write).
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

}  // namespace

Crimson::~Crimson() {
  // A dropped session must not lose dirty pages (and, with durability
  // on, a clean close checkpoints so the next open skips replay).
  // db_ is null when Open failed partway.
  if (db_ == nullptr) return;
  Status s = Flush();
  if (!s.ok()) {
    CRIMSON_LOG(kWarning) << "flush on session close failed: " << s;
  }
}

std::shared_ptr<const Crimson::RepoSet> Crimson::Repos() const {
  std::lock_guard<std::mutex> lock(repos_mu_);
  return repos_;
}

template <typename Fn>
auto Crimson::TransactLocked(Fn&& fn) -> decltype(fn()) {
  // Every write transaction first drains the history buffer into the
  // queries table, so buffered entries ride along with the next write
  // and replay order (query id) is preserved. The buffer keeps its
  // entries until the transaction's fate is known -- there is never a
  // window where an entry is in neither the buffer nor committed
  // storage, so history readers need no lock against this drain
  // (QueryHistory dedups the brief both-places overlap by id).
  std::vector<QueryRepository::Entry> pending;
  {
    std::lock_guard<std::mutex> hist_lock(history_mu_);
    pending = history_buffer_;
  }
  // Only TransactLocked erases from the buffer, and every caller holds
  // db_mu_ exclusive, so `pending` is still the buffer's prefix when
  // the transaction resolves.
  auto drop_persisted = [&] {
    if (pending.empty()) return;
    std::lock_guard<std::mutex> hist_lock(history_mu_);
    history_buffer_.erase(history_buffer_.begin(),
                          history_buffer_.begin() + pending.size());
  };
  std::shared_ptr<const RepoSet> repos = Repos();
  Result<Txn> txn = db_->Begin();
  if (!txn.ok()) return txn.status();
  Status hist = pending.empty() ? Status::OK()
                                : repos->queries->RecordBatch(pending);
  auto result = hist.ok() ? fn() : decltype(fn())(hist);
  if (StatusOf(result).ok()) {
    Status committed = txn->Commit();
    if (!committed.ok()) {
      // Rolled back (durable) or indeterminate: keep the buffer; a
      // later drain re-inserts, and RecordBatch skips ids that did
      // reach storage.
      Status reopened = ReopenRepositoriesLocked();
      if (!reopened.ok()) {
        CRIMSON_LOG(kError) << "repository reopen after failed commit: "
                            << reopened;
      }
      return committed;
    }
    drop_persisted();
  } else {
    txn->Abort();
    if (db_->durable()) {
      // The WAL rolled the batch back; the entries live on in the
      // buffer for the next drain.
      Status reopened = ReopenRepositoriesLocked();
      if (!reopened.ok()) {
        CRIMSON_LOG(kError) << "repository reopen after abort: " << reopened;
      }
    } else if (hist.ok()) {
      // Without a WAL an abort cannot undo the batch -- the rows are
      // in storage for good, so the buffer must drop them or a later
      // drain would duplicate them.
      drop_persisted();
    }
  }
  return result;
}

template <typename Fn>
auto Crimson::MutateTree(const std::string& tree_name, Fn&& fn)
    -> decltype(fn()) {
  std::lock_guard<std::shared_mutex> lock(db_mu_);
  // Bump the tree's cache generation while holding the writer lock:
  // entries stamped before this point stop validating, and queries
  // stamping from here on carry the new generation but a pre-commit
  // epoch -- the commit barrier below invalidates those too.
  query_cache_->BeginTreeMutation(tree_name);
  auto result = TransactLocked(std::forward<Fn>(fn));
  if (StatusOf(result).ok()) {
    // Epoch read after the commit sealed it: every entry stamped with
    // an earlier epoch is now behind this tree's barrier.
    query_cache_->CommitTreeMutation(tree_name, db_->committed_epoch());
  } else {
    // The abort changed nothing; pre-Begin entries are still correct.
    query_cache_->AbortTreeMutation(tree_name);
  }
  return result;
}

Status Crimson::ReopenRepositoriesLocked() {
  CRIMSON_ASSIGN_OR_RETURN(Txn txn, db_->Begin());
  auto repos = std::make_shared<RepoSet>();
  CRIMSON_ASSIGN_OR_RETURN(repos->trees, TreeRepository::Open(db_.get()));
  repos->trees->set_bulk_load_threshold(options_.bulk_load_threshold);
  repos->trees->set_persist_labels(options_.persist_labels);
  CRIMSON_ASSIGN_OR_RETURN(repos->species, SpeciesRepository::Open(db_.get()));
  CRIMSON_ASSIGN_OR_RETURN(repos->queries, QueryRepository::Open(db_.get()));
  CRIMSON_ASSIGN_OR_RETURN(repos->experiments,
                           ExperimentRepository::Open(db_.get()));
  repos->loader = std::make_unique<DataLoader>(repos->trees.get(),
                                               repos->species.get(),
                                               options_.f);
  CRIMSON_RETURN_IF_ERROR(txn.Commit());
  const int64_t persisted_next = repos->queries->next_id();
  {
    std::lock_guard<std::mutex> lock(repos_mu_);
    repos_ = std::move(repos);
  }
  // Advance the session's id counter past the persisted ids, never
  // backwards (Execute threads bump it concurrently, and buffered
  // entries already carry ids beyond the persisted range).
  int64_t cur = next_query_id_.load(std::memory_order_relaxed);
  while (cur < persisted_next &&
         !next_query_id_.compare_exchange_weak(cur, persisted_next,
                                               std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Crimson::StorageReadGuard Crimson::AcquireStorageRead() const {
  StorageReadGuard guard;
  if (options_.serialize_storage_reads) {
    // Bench baseline: pre-MVCC behavior, reads queue behind the writer
    // (and each other) on the exclusive lock.
    guard.exclusive = std::unique_lock<std::shared_mutex>(db_mu_);
  }
  guard.repos = Repos();
  guard.epoch = db_->BeginRead();
  return guard;
}

Status Crimson::FlushHistory() {
  {
    std::lock_guard<std::mutex> hist_lock(history_mu_);
    if (history_buffer_.empty()) return Status::OK();
  }
  std::lock_guard<std::shared_mutex> lock(db_mu_);
  return TransactLocked([] { return Status::OK(); });
}

Result<std::unique_ptr<Crimson>> Crimson::Open(const CrimsonOptions& options) {
  auto c = std::unique_ptr<Crimson>(new Crimson());
  // The registry comes first: the storage engine, the result cache,
  // and the query-dispatch cells below all bind into it.
  c->metrics_ = std::make_unique<obs::MetricsRegistry>();
  c->options_ = options;
  DatabaseOptions db_opts;
  db_opts.buffer_pool_pages = options.buffer_pool_pages;
  db_opts.durability = options.durability;
  db_opts.wal_checkpoint_bytes = options.wal_checkpoint_bytes;
  db_opts.env = options.storage_env;
  db_opts.metrics = c->metrics_.get();
  if (options.db_path.empty()) {
    CRIMSON_ASSIGN_OR_RETURN(c->db_, Database::OpenInMemory(db_opts));
  } else {
    CRIMSON_ASSIGN_OR_RETURN(c->db_, Database::Open(options.db_path, db_opts));
  }
  // Repository open may create tables on a fresh database: one
  // transaction makes the whole schema setup atomic.
  CRIMSON_RETURN_IF_ERROR(c->ReopenRepositoriesLocked());
  c->pool_ = std::make_unique<ThreadPool>(
      options.batch_workers > 0 ? options.batch_workers : 1);
  c->query_cache_ = std::make_unique<cache::QueryCache>(
      options.query_cache_bytes, c->metrics_.get());
  // Resolve the query-dispatch cells once; the hot path then touches
  // only atomic cells (see obs/metrics.h design rules). The kind names
  // track the QueryRequest variant order.
  static constexpr const char* kKindNames[kQueryKindCount] = {
      "lca",  "project",       "sample_uniform",
      "sample_time", "clade", "pattern_match"};
  for (size_t i = 0; i < kQueryKindCount; ++i) {
    c->kind_cells_[i].latency = c->metrics_->GetHistogram(
        StrFormat("query.%s.latency_us", kKindNames[i]));
    c->kind_cells_[i].count =
        c->metrics_->GetCounter(StrFormat("query.%s.count", kKindNames[i]));
    c->kind_cells_[i].result_bytes = c->metrics_->GetCounter(
        StrFormat("query.%s.result_bytes", kKindNames[i]));
  }
  for (size_t i = 0; i < obs::kStageCount; ++i) {
    c->stage_hists_[i] = c->metrics_->GetHistogram(StrFormat(
        "query.stage.%.*s_us",
        static_cast<int>(obs::StageName(static_cast<obs::Stage>(i)).size()),
        obs::StageName(static_cast<obs::Stage>(i)).data()));
  }
  c->slow_queries_ = c->metrics_->GetCounter("query.slow");
  return c;
}

// -- loading ----------------------------------------------------------------

Result<SessionLoadReport> Crimson::FinishLoad(Result<LoadReport> report) {
  if (!report.ok()) return report.status();
  SessionLoadReport out;
  static_cast<LoadReport&>(out) = *report;
  // Loads can attach sequences to an existing tree (e.g. LoadNexus
  // with kAppendSpeciesData); drop any stale evaluation state.
  InvalidateEvalState(out.tree_name);
  CRIMSON_ASSIGN_OR_RETURN(out.ref, OpenTree(out.tree_name));
  return out;
}

Result<SessionLoadReport> Crimson::LoadNewick(const std::string& name,
                                              const std::string& newick,
                                              LoadMode mode) {
  Result<LoadReport> report = MutateTree(
      name, [&] { return Repos()->loader->LoadNewick(name, newick, mode); });
  return FinishLoad(std::move(report));
}

Result<SessionLoadReport> Crimson::LoadNexus(const std::string& name,
                                             const std::string& nexus,
                                             LoadMode mode) {
  Result<LoadReport> report = MutateTree(
      name, [&] { return Repos()->loader->LoadNexus(name, nexus, mode); });
  return FinishLoad(std::move(report));
}

Result<SessionLoadReport> Crimson::LoadTree(const std::string& name,
                                            const PhyloTree& tree) {
  Result<LoadReport> report = MutateTree(
      name, [&] { return Repos()->loader->LoadTree(name, tree); });
  return FinishLoad(std::move(report));
}

Result<LoadReport> Crimson::AppendSpeciesData(
    const std::string& tree_name,
    const std::map<std::string, std::string>& sequences) {
  Result<LoadReport> report = MutateTree(tree_name, [&] {
    return Repos()->loader->AppendSpecies(tree_name, sequences);
  });
  if (report.ok()) {
    // The tree's sequence map changed: drop any cached evaluation
    // state so the next experiment rebuilds it from storage.
    InvalidateEvalState(tree_name);
  }
  return report;
}

Status Crimson::DropTree(const std::string& name) {
  Status dropped = MutateTree(name, [&]() -> Status {
    auto repos = Repos();
    CRIMSON_ASSIGN_OR_RETURN(TreeInfo info, repos->trees->GetTreeInfo(name));
    // Structural rows (trees/nodes/subtrees/labels) plus the species
    // rows, which TreeRepository::DropTree does not own, in one
    // transaction: a crash recovers to all-or-nothing.
    CRIMSON_RETURN_IF_ERROR(repos->trees->DropTree(info.tree_id));
    return repos->species->DropForTree(info.tree_id);
  });
  if (!dropped.ok()) return dropped;
  // Post-commit eviction: cached results, the bound handle, and the
  // evaluation state all go, so a tree re-stored under this name can
  // never serve pre-drop state. (MutateTree's generation bump already
  // stops in-flight queries from inserting stale entries.)
  query_cache_->EraseTree(name);
  uint64_t id = 0;
  {
    std::unique_lock<std::shared_mutex> lock(handles_mu_);
    ++drop_counts_[name];
    auto it = handle_ids_.find(name);
    if (it != handle_ids_.end()) {
      id = it->second;
      handles_[id - 1] = nullptr;  // slot is never reused
      handle_ids_.erase(it);
    }
  }
  if (id != 0) {
    std::lock_guard<std::mutex> lock(eval_mu_);
    eval_cache_.erase(id);
    ++eval_generation_[id];
  }
  return Status::OK();
}

void Crimson::InvalidateEvalState(const std::string& tree_name) {
  uint64_t id = 0;
  {
    std::shared_lock<std::shared_mutex> lock(handles_mu_);
    auto it = handle_ids_.find(tree_name);
    if (it != handle_ids_.end()) id = it->second;
  }
  if (id == 0) return;  // never bound, so nothing cached
  std::lock_guard<std::mutex> lock(eval_mu_);
  eval_cache_.erase(id);
  ++eval_generation_[id];
}

Result<std::vector<TreeInfo>> Crimson::ListTrees() const {
  StorageReadGuard read = AcquireStorageRead();
  return read.repos->trees->ListTrees();
}

Result<TreeRef> Crimson::OpenTree(const std::string& name) {
 retry:
  uint64_t drops_before = 0;
  {
    std::shared_lock<std::shared_mutex> lock(handles_mu_);
    auto it = handle_ids_.find(name);
    if (it != handle_ids_.end()) return TreeRef(it->second);
    auto dit = drop_counts_.find(name);
    if (dit != drop_counts_.end()) drops_before = dit->second;
  }
  // Materialize without holding the cache lock so a slow first open
  // (storage load + index build on a large tree) never stalls query
  // dispatch on already-open trees. A racing open may duplicate the
  // work; the insertion below double-checks and keeps one handle.
  auto handle = [&]() -> Result<std::shared_ptr<TreeHandle>> {
    std::shared_ptr<TreeHandle> h;
    Result<std::string> blob = Status::NotFound("labels not fetched");
    {
      StorageReadGuard read = AcquireStorageRead();
      CRIMSON_ASSIGN_OR_RETURN(TreeInfo info,
                               read.repos->trees->GetTreeInfo(name));
      h = std::make_shared<TreeHandle>(
          static_cast<uint32_t>(info.f > 0 ? info.f : options_.f));
      h->info = info;
      CRIMSON_ASSIGN_OR_RETURN(h->tree,
                               read.repos->trees->LoadTree(info.tree_id));
      h->tree.ShrinkToFit();  // handles are read-only; drop build slack
      // Fetch the persisted labeling here; the O(n) decode runs below,
      // outside the read snapshot.
      blob = read.repos->trees->LoadSchemeBlob(info.tree_id);
    }
    // Label decode / index build is pure compute; no lock held. Prefer
    // the persisted labeling (O(n) reads) and fall back to relabeling
    // when it is absent, corrupt, or stale relative to the tree.
    obs::SpanTimer decode_span(obs::Stage::kLabelDecode);
    bool have_labels = false;
    if (blob.ok()) {
      LayeredDeweyScheme stored;
      Status decoded = stored.DecodeFrom(Slice(*blob));
      if (decoded.ok() && stored.node_count() == h->tree.size()) {
        h->scheme = std::move(stored);
        have_labels = true;
      } else {
        CRIMSON_LOG(kWarning)
            << "stored labels for '" << name << "' unusable ("
            << (decoded.ok() ? Status::Corruption("node count mismatch")
                             : decoded)
            << "); relabeling";
      }
    } else if (!blob.status().IsNotFound()) {
      CRIMSON_LOG(kWarning) << "stored labels for '" << name
                            << "' unreadable (" << blob.status()
                            << "); relabeling";
    }
    if (!have_labels) {
      CRIMSON_RETURN_IF_ERROR(h->scheme.Build(h->tree));
    }
    h->names = NameIndex::Build(h->tree);
    if (h->names.has_duplicate_leaf_names()) {
      // Stored trees from before the duplicate-name check (the loader
      // now rejects them) keep working under a deterministic rule:
      // every name-addressed lookup resolves to the first leaf in
      // arena (insertion) order.
      CRIMSON_LOG(kWarning)
          << "tree '" << name << "' has duplicate leaf names; "
          << "name-addressed queries resolve to the first occurrence";
    }
    h->sampler = std::make_unique<Sampler>(&h->tree);
    h->projector = std::make_unique<TreeProjector>(&h->tree, &h->scheme);
    h->matcher =
        std::make_unique<PatternMatcher>(h->projector.get(), &h->names);
    return h;
  }();
  if (!handle.ok()) return handle.status();

  std::unique_lock<std::shared_mutex> lock(handles_mu_);
  auto it = handle_ids_.find(name);
  if (it != handle_ids_.end()) return TreeRef(it->second);  // lost the race
  auto dit = drop_counts_.find(name);
  if ((dit == drop_counts_.end() ? 0 : dit->second) != drops_before) {
    // A DropTree landed while this bind was materializing: the handle
    // reflects deleted storage. Retry against the current state (which
    // typically resolves to NotFound, or to the re-stored tree).
    lock.unlock();
    goto retry;
  }
  handles_.push_back(std::move(*handle));
  uint64_t id = handles_.size();
  handle_ids_.emplace(name, id);
  return TreeRef(id);
}

Result<std::shared_ptr<const Crimson::TreeHandle>> Crimson::HandleFor(
    TreeRef tree) const {
  std::shared_lock<std::shared_mutex> lock(handles_mu_);
  if (!tree.valid() || tree.id() > handles_.size()) {
    return Status::InvalidArgument(
        "invalid TreeRef (not issued by this session)");
  }
  const std::shared_ptr<const TreeHandle>& handle = handles_[tree.id() - 1];
  if (handle == nullptr) {
    return Status::NotFound("stale TreeRef (the tree was dropped)");
  }
  return handle;
}

Result<TreeInfo> Crimson::GetTreeInfo(TreeRef tree) const {
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  return handle->info;
}

Result<const PhyloTree*> Crimson::GetTree(TreeRef tree) const {
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  // Handles stay resident until the session closes (or the tree is
  // dropped, after which HandleFor above fails instead).
  return &handle->tree;
}

Result<const PhyloTree*> Crimson::GetTree(const std::string& name) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(name));
  return GetTree(ref);
}

// -- query execution --------------------------------------------------------

Result<std::vector<NodeId>> Crimson::ResolveSpecies(
    const TreeHandle& handle, const std::vector<std::string>& species) {
  std::vector<NodeId> out;
  out.reserve(species.size());
  for (const std::string& s : species) {
    NodeId n = handle.names.Find(handle.tree, s);
    if (n == kNoNode) {
      return Status::NotFound(StrFormat("species '%s' not in tree '%s'",
                                        s.c_str(),
                                        handle.info.name.c_str()));
    }
    out.push_back(n);
  }
  return out;
}

Result<QueryResult> Crimson::ExecuteOnHandle(const TreeHandle& handle,
                                             const QueryRequest& request,
                                             uint64_t ticket) const {
  return std::visit(
      Overloaded{
          [&](const LcaQuery& q) -> Result<QueryResult> {
            CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                                     ResolveSpecies(handle, {q.a, q.b}));
            CRIMSON_ASSIGN_OR_RETURN(NodeId lca,
                                     handle.scheme.Lca(nodes[0], nodes[1]));
            LcaAnswer answer;
            answer.node = lca;
            answer.name = handle.tree.name(lca);
            return QueryResult(std::move(answer));
          },
          [&](const ProjectQuery& q) -> Result<QueryResult> {
            CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                                     ResolveSpecies(handle, q.species));
            CRIMSON_ASSIGN_OR_RETURN(PhyloTree projection,
                                     handle.projector->Project(nodes));
            return QueryResult(ProjectAnswer{std::move(projection)});
          },
          [&](const SampleUniformQuery& q) -> Result<QueryResult> {
            Rng rng(QuerySeed(options_.seed, ticket));
            CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                                     handle.sampler->SampleUniform(q.k, &rng));
            SampleAnswer answer;
            answer.species.reserve(nodes.size());
            for (NodeId n : nodes) {
              answer.species.emplace_back(handle.tree.name(n));
            }
            return QueryResult(std::move(answer));
          },
          [&](const SampleTimeQuery& q) -> Result<QueryResult> {
            Rng rng(QuerySeed(options_.seed, ticket));
            CRIMSON_ASSIGN_OR_RETURN(
                std::vector<NodeId> nodes,
                handle.sampler->SampleWithRespectToTime(q.k, q.time, &rng));
            SampleAnswer answer;
            answer.species.reserve(nodes.size());
            for (NodeId n : nodes) {
              answer.species.emplace_back(handle.tree.name(n));
            }
            return QueryResult(std::move(answer));
          },
          [&](const CladeQuery& q) -> Result<QueryResult> {
            CRIMSON_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                                     ResolveSpecies(handle, q.species));
            CRIMSON_ASSIGN_OR_RETURN(
                Clade clade,
                MinimalSpanningClade(handle.tree, handle.scheme, nodes));
            CladeAnswer answer;
            answer.root = clade.root;
            answer.node_count = clade.nodes.size();
            for (NodeId n : clade.nodes) {
              if (handle.tree.is_leaf(n)) ++answer.leaf_count;
            }
            return QueryResult(std::move(answer));
          },
          [&](const PatternQuery& q) -> Result<QueryResult> {
            CRIMSON_ASSIGN_OR_RETURN(PhyloTree pattern,
                                     ParseNewick(q.pattern_newick));
            CRIMSON_ASSIGN_OR_RETURN(
                PatternMatcher::MatchResult match,
                handle.matcher->Match(pattern, 1e-9, q.match_weights));
            PatternAnswer answer;
            answer.exact = match.exact;
            answer.projection = std::move(match.projection);
            if (!answer.exact && pattern.LeafCount() >= 3) {
              // Approximate similarity: RF between pattern and projection.
              Result<RfResult> rf = RobinsonFoulds(pattern, answer.projection);
              if (rf.ok()) answer.rf_normalized = rf->normalized;
            }
            return QueryResult(std::move(answer));
          },
      },
      request);
}

void Crimson::RecordQuery(std::string_view kind, const std::string& params,
                          const std::string& summary) {
  obs::SpanTimer span(obs::Stage::kHistoryEnqueue);
  // The headline concurrency fix: history appends no longer enter the
  // writer epoch on the query path. The entry gets its final id and
  // timestamp now and sits in the in-memory buffer until the next
  // write transaction (or Flush/Checkpoint) drains it.
  QueryRepository::Entry entry;
  entry.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  entry.timestamp_micros = NowMicros();
  entry.kind = std::string(kind);
  entry.params = params;
  entry.summary = summary;
  size_t buffered;
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    history_buffer_.push_back(std::move(entry));
    buffered = history_buffer_.size();
  }
  if (buffered >= options_.history_buffer_cap) {
    // Over the cap: flush opportunistically, but never block a query
    // behind a bulk load -- if the writer lock is taken, the buffer
    // just keeps growing until the writer's own drain.
    std::unique_lock<std::shared_mutex> lock(db_mu_, std::try_to_lock);
    if (lock.owns_lock()) {
      Status s = TransactLocked([] { return Status::OK(); });
      if (!s.ok()) {
        CRIMSON_LOG(kWarning) << "query history flush failed: " << s;
      }
    }
  }
}

void Crimson::FinishQueryTrace(obs::TraceContext* ctx,
                               const std::string& tree_name,
                               const QueryRequest& request,
                               const Result<QueryResult>& result) const {
  const int64_t total = ctx->total_us();
  const KindCells& cells = kind_cells_[request.index()];
  cells.latency->Observe(static_cast<uint64_t>(total));
  cells.count->Increment();
  if (result.ok()) {
    cells.result_bytes->Add(cache::ApproxResultBytes(*result));
  }
  for (size_t i = 0; i < obs::kStageCount; ++i) {
    const int64_t us = ctx->span_us(static_cast<obs::Stage>(i));
    if (us > 0) stage_hists_[i]->Observe(static_cast<uint64_t>(us));
  }
  if (options_.slow_query_micros > 0 &&
      total >= static_cast<int64_t>(options_.slow_query_micros)) {
    slow_queries_->Increment();
    std::string line = StrFormat(
        "slow_query total_us=%lld kind=%s params=%s status=%s spans=%s",
        static_cast<long long>(total),
        std::string(QueryKindName(request)).c_str(),
        EncodeQueryParams(tree_name, request).c_str(),
        result.ok() ? "ok" : result.status().ToString().c_str(),
        ctx->Breakdown().c_str());
    if (options_.slow_query_sink) {
      options_.slow_query_sink(line);
    } else {
      CRIMSON_LOG(kWarning) << line;
    }
  }
  // A connection-thread context outlives this query (pipelined runs
  // reuse it); start the next one clean.
  ctx->Reset();
}

Result<QueryResult> Crimson::Execute(TreeRef tree,
                                     const QueryRequest& request) {
  // Installs a fresh trace context, or adopts the connection thread's
  // (which already carries the admission wait). FinishQueryTrace
  // publishes and resets it on every result path below.
  obs::ScopedTrace trace;
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  // The ticket is consumed unconditionally -- even on a cache hit --
  // so a session with the cache on draws the same sampling streams as
  // one with it off (cache-on/off byte identity).
  const uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  const bool cacheable =
      query_cache_->enabled() && cache::QueryCache::IsCacheable(request);
  std::string key;
  if (cacheable) {
    key = cache::QueryCache::KeyFor(handle->info.name, request);
    std::optional<QueryResult> hit;
    {
      obs::SpanTimer span(obs::Stage::kCacheLookup);
      hit = query_cache_->Lookup(handle->info.name, key);
    }
    if (hit) {
      RecordQuery(QueryKindName(request),
                  EncodeQueryParams(handle->info.name, request),
                  SummarizeResult(*hit));
      Result<QueryResult> result(std::move(*hit));
      FinishQueryTrace(trace.context(), handle->info.name, request, result);
      return result;
    }
  } else if (query_cache_->enabled()) {
    query_cache_->NoteBypass();
  }
  // Stamp strictly before execution: if a mutation overlaps the run,
  // the stamp ages out and Insert drops the result.
  cache::ReadStamp stamp;
  if (cacheable) {
    stamp = query_cache_->Stamp(handle->info.name, db_->committed_epoch());
  }
  Result<QueryResult> result = [&] {
    obs::SpanTimer span(obs::Stage::kExecute);
    return ExecuteOnHandle(*handle, request, ticket);
  }();
  if (result.ok()) {
    if (cacheable) {
      query_cache_->Insert(handle->info.name, key, stamp, *result);
    }
    RecordQuery(QueryKindName(request),
                EncodeQueryParams(handle->info.name, request),
                SummarizeResult(*result));
  }
  FinishQueryTrace(trace.context(), handle->info.name, request, result);
  return result;
}

std::vector<Result<QueryResult>> Crimson::ExecuteBatch(
    TreeRef tree, Span<const QueryRequest> requests) {
  const size_t n = requests.size();
  std::vector<Result<QueryResult>> results(
      n, Result<QueryResult>(Status::Internal("query not executed")));
  if (n == 0) return results;
  Result<std::shared_ptr<const TreeHandle>> handle_or = HandleFor(tree);
  if (!handle_or.ok()) {
    for (auto& r : results) r = handle_or.status();
    return results;
  }
  const TreeHandle& handle = **handle_or;
  // Tickets are assigned in request order *before* dispatch, so the
  // i-th request draws exactly what it would draw under sequential
  // Execute calls -- batched results are byte-identical.
  const uint64_t base = ticket_.fetch_add(n, std::memory_order_relaxed);
  const bool cache_on = query_cache_->enabled();
  pool_->ParallelFor(n, [&](size_t i) {
    const QueryRequest& request = requests[i];
    // Workers install their own context; the calling thread (which
    // ParallelFor includes) keeps its pre-installed one, so a server's
    // admission wait lands on the query that thread runs first.
    obs::ScopedTrace trace;
    auto finish = [&] {
      FinishQueryTrace(trace.context(), handle.info.name, request, results[i]);
    };
    if (cache_on && cache::QueryCache::IsCacheable(request)) {
      const std::string key =
          cache::QueryCache::KeyFor(handle.info.name, request);
      std::optional<QueryResult> hit;
      {
        obs::SpanTimer span(obs::Stage::kCacheLookup);
        hit = query_cache_->Lookup(handle.info.name, key);
      }
      if (hit) {
        results[i] = QueryResult(std::move(*hit));
        finish();
        return;
      }
      cache::ReadStamp stamp =
          query_cache_->Stamp(handle.info.name, db_->committed_epoch());
      {
        obs::SpanTimer span(obs::Stage::kExecute);
        results[i] = ExecuteOnHandle(handle, request, base + i);
      }
      if (results[i].ok()) {
        query_cache_->Insert(handle.info.name, key, stamp, *results[i]);
      }
      finish();
      return;
    }
    if (cache_on) query_cache_->NoteBypass();
    {
      obs::SpanTimer span(obs::Stage::kExecute);
      results[i] = ExecuteOnHandle(handle, request, base + i);
    }
    finish();
  });
  // History is written after the barrier, in request order, keeping the
  // Query Repository deterministic under concurrency.
  for (size_t i = 0; i < n; ++i) {
    if (!results[i].ok()) continue;
    RecordQuery(QueryKindName(requests[i]),
                EncodeQueryParams(handle.info.name, requests[i]),
                SummarizeResult(*results[i]));
  }
  return results;
}

// -- legacy named wrappers --------------------------------------------------

Result<Crimson::LcaAnswer> Crimson::Lca(const std::string& tree_name,
                                        const std::string& a,
                                        const std::string& b) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult r, Execute(ref, LcaQuery{a, b}));
  return std::get<LcaAnswer>(std::move(r));
}

Result<PhyloTree> Crimson::Project(const std::string& tree_name,
                                   const std::vector<std::string>& species) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult r, Execute(ref, ProjectQuery{species}));
  return std::get<ProjectAnswer>(std::move(r)).projection;
}

Result<std::vector<std::string>> Crimson::SampleUniform(
    const std::string& tree_name, size_t k) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult r,
                           Execute(ref, SampleUniformQuery{k}));
  return std::get<SampleAnswer>(std::move(r)).species;
}

Result<std::vector<std::string>> Crimson::SampleWithRespectToTime(
    const std::string& tree_name, size_t k, double time) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult r,
                           Execute(ref, SampleTimeQuery{k, time}));
  return std::get<SampleAnswer>(std::move(r)).species;
}

Result<Crimson::CladeAnswer> Crimson::MinimalClade(
    const std::string& tree_name, const std::vector<std::string>& species) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult r, Execute(ref, CladeQuery{species}));
  return std::get<CladeAnswer>(std::move(r));
}

Result<Crimson::PatternAnswer> Crimson::MatchPattern(
    const std::string& tree_name, const std::string& pattern_newick,
    bool match_weights) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  CRIMSON_ASSIGN_OR_RETURN(
      QueryResult r, Execute(ref, PatternQuery{pattern_newick, match_weights}));
  return std::get<PatternAnswer>(std::move(r));
}

// -- the Experiment API -----------------------------------------------------

/// Cached per-tree evaluation state. Sequences are NOT materialized
/// up front: the cracked store (src/cache) keeps the tree's sorted
/// leaf-name domain and faults in only the ordinal slices that
/// experiment samples actually touch, refining its piece map with the
/// observed mix. The manager borrows the handle's tree and
/// layered-Dewey scheme (no relabel) and is shared, immutable, across
/// all experiment workers; the store's internal mutex serializes its
/// lazy loads. The handle shared_ptr keeps the borrowed tree/scheme
/// alive.
struct Crimson::EvalState {
  std::shared_ptr<const TreeHandle> handle;
  std::unique_ptr<cache::CrackedSequenceStore> store;
  BenchmarkManager manager;

  EvalState(std::shared_ptr<const TreeHandle> h,
            std::unique_ptr<cache::CrackedSequenceStore> s)
      : handle(std::move(h)),
        store(std::move(s)),
        manager(&handle->tree, store.get(), &handle->scheme) {
    manager.set_name_index(&handle->names);
  }
};

Result<std::shared_ptr<const Crimson::EvalState>> Crimson::EvalStateFor(
    TreeRef tree) {
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  for (;;) {
    uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(eval_mu_);
      auto it = eval_cache_.find(tree.id());
      if (it != eval_cache_.end()) return it->second;
      generation = eval_generation_[tree.id()];
    }
    // Build outside eval_mu_; a racing build may duplicate the work
    // and the insertion keeps one state. Only an index-only row count
    // touches storage here -- sequence bytes load lazily through the
    // cracked store as samples touch them.
    obs::SpanTimer build_span(obs::Stage::kEvalBuild);
    {
      StorageReadGuard read = AcquireStorageRead();
      CRIMSON_ASSIGN_OR_RETURN(
          uint64_t rows,
          read.repos->species->CountForTree(handle->info.tree_id));
      if (rows == 0) {
        return Status::FailedPrecondition(
            StrFormat("tree '%s' has no species data loaded",
                      handle->info.name.c_str()));
      }
    }
    // The ordinal domain: the tree's leaf names, sorted and deduped
    // (in-memory; no storage reads).
    std::vector<std::string> domain =
        handle->names.SortedLeafNames(handle->tree);
    if (handle->names.has_unnamed_leaf()) {
      // Unnamed leaves contributed "" to the pre-index domain; keep it
      // so ordinal positions stay stable.
      domain.insert(domain.begin(), std::string());
    }
    // The store's fetch callback revalidates the eval generation: once
    // this state is invalidated, a retained reference can no longer
    // fault in post-invalidation rows that would break its snapshot --
    // it reports Unavailable and the experiment loop rebuilds.
    const uint64_t tree_id = handle->info.tree_id;
    const uint64_t ref_id = tree.id();
    auto fetch = [this, tree_id, ref_id, generation](
                     const std::vector<std::string>& names)
        -> Result<std::map<std::string, std::string>> {
      {
        std::lock_guard<std::mutex> lock(eval_mu_);
        auto it = eval_generation_.find(ref_id);
        if ((it == eval_generation_.end() ? 0 : it->second) != generation) {
          return Status::Unavailable(
              "evaluation state invalidated by a concurrent write; "
              "rebuild and retry");
        }
      }
      StorageReadGuard read = AcquireStorageRead();
      return read.repos->species->SequencesForTreeSubset(
          static_cast<int64_t>(tree_id), names);
    };
    auto state = std::make_shared<EvalState>(
        handle, std::make_unique<cache::CrackedSequenceStore>(
                    std::move(domain), options_.crack_min_piece,
                    std::move(fetch), metrics_.get()));
    CRIMSON_RETURN_IF_ERROR(state->manager.Init());
    std::lock_guard<std::mutex> lock(eval_mu_);
    if (eval_generation_[tree.id()] != generation) {
      // An invalidation landed while this state was being built;
      // rebuild so its lazy loads see the new storage state.
      continue;
    }
    auto [it, inserted] = eval_cache_.emplace(tree.id(), std::move(state));
    return it->second;
  }
}

Result<ExperimentReport> Crimson::RunExperimentJobs(
    const EvalState& eval, const ExperimentSpec& spec,
    const std::vector<const ReconstructionAlgorithm*>& instances,
    uint64_t seed, uint64_t base_ticket) const {
  const size_t jobs = spec.job_count();
  const size_t per_algorithm = spec.selections.size() * spec.replicates;
  std::vector<Result<BenchmarkRun>> results(
      jobs, Result<BenchmarkRun>(Status::Internal("run not executed")));
  WallTimer timer;
  // Tickets were assigned to jobs in spec order before dispatch, so
  // every replicate draws exactly what it would draw under the
  // sequential legacy Benchmark loop -- any worker count produces
  // byte-identical runs.
  pool_->ParallelFor(jobs, [&](size_t i) {
    const size_t algorithm = i / per_algorithm;
    const size_t selection = (i % per_algorithm) / spec.replicates;
    Rng rng(QuerySeed(seed, base_ticket + i));
    results[i] = eval.manager.Evaluate(*instances[algorithm],
                                       spec.selections[selection], &rng,
                                       spec.compute_triplets);
  });
  ExperimentReport report;
  report.tree_name = eval.handle->info.name;
  report.spec = spec;
  report.seed = seed;
  report.base_ticket = base_ticket;
  report.runs.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    if (!results[i].ok()) return results[i].status();
    report.runs.push_back(std::move(*results[i]));
  }
  report.cells = AggregateCells(spec, report.runs);
  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

Status Crimson::PersistExperiment(ExperimentReport* report) {
  std::vector<ExperimentRepository::RunRow> run_rows;
  run_rows.reserve(report->runs.size());
  for (size_t i = 0; i < report->runs.size(); ++i) {
    const BenchmarkRun& run = report->runs[i];
    ExperimentRepository::RunRow row;
    row.ordinal = static_cast<int64_t>(i);
    row.algorithm = run.algorithm;
    const size_t per_algorithm =
        report->spec.selections.size() * report->spec.replicates;
    row.selection_index =
        static_cast<int64_t>((i % per_algorithm) / report->spec.replicates);
    row.replicate = static_cast<int64_t>(i % report->spec.replicates);
    row.sample_size = static_cast<int64_t>(run.sample_size);
    row.rf_distance = static_cast<int64_t>(run.rf.distance);
    row.rf_splits_a = static_cast<int64_t>(run.rf.splits_a);
    row.rf_splits_b = static_cast<int64_t>(run.rf.splits_b);
    row.rf_normalized = run.rf.normalized;
    row.triplet_total = static_cast<int64_t>(run.triplets.total);
    row.triplet_differing = static_cast<int64_t>(run.triplets.differing);
    row.triplet_fraction = run.triplets.fraction;
    row.seconds = run.sample_seconds + run.project_seconds +
                  run.reconstruct_seconds + run.compare_seconds;
    run_rows.push_back(std::move(row));
  }
  std::vector<ExperimentRepository::CellRow> cell_rows;
  cell_rows.reserve(report->cells.size());
  for (size_t i = 0; i < report->cells.size(); ++i) {
    const ExperimentCell& cell = report->cells[i];
    ExperimentRepository::CellRow row;
    row.ordinal = static_cast<int64_t>(i);
    row.algorithm = cell.algorithm;
    row.selection_index = static_cast<int64_t>(cell.selection_index);
    row.replicates = static_cast<int64_t>(cell.replicates);
    row.mean_rf_normalized = cell.mean_rf_normalized;
    row.min_rf_normalized = cell.min_rf_normalized;
    row.max_rf_normalized = cell.max_rf_normalized;
    row.mean_triplet_fraction = cell.mean_triplet_fraction;
    row.total_seconds = cell.total_seconds;
    cell_rows.push_back(std::move(row));
  }

  std::lock_guard<std::shared_mutex> lock(db_mu_);
  auto repos = Repos();
  // One transaction covers the experiment row, all run rows, and all
  // cell aggregates: a crash mid-persist recovers to either no trace
  // of the experiment or all of it.
  return TransactLocked([&]() -> Status {
    CRIMSON_ASSIGN_OR_RETURN(
        report->experiment_id,
        repos->experiments->PutExperiment(report->tree_name,
                                          EncodeExperimentSpec(report->spec),
                                          report->seed, report->base_ticket));
    for (auto& row : run_rows) row.experiment_id = report->experiment_id;
    for (auto& row : cell_rows) row.experiment_id = report->experiment_id;
    CRIMSON_RETURN_IF_ERROR(repos->experiments->PutRuns(run_rows));
    return repos->experiments->PutCells(cell_rows);
  });
}

Result<std::vector<std::unique_ptr<ReconstructionAlgorithm>>>
Crimson::InstantiateAlgorithms(const ExperimentSpec& spec) {
  // One shared instance per algorithm name (Reconstruct is const and
  // thread-safe by contract).
  std::vector<std::unique_ptr<ReconstructionAlgorithm>> owned;
  owned.reserve(spec.algorithms.size());
  for (const std::string& name : spec.algorithms) {
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<ReconstructionAlgorithm> alg,
                             AlgorithmRegistry::Global().Create(name));
    owned.push_back(std::move(alg));
  }
  return owned;
}

namespace {

std::vector<const ReconstructionAlgorithm*> RawPointers(
    const std::vector<std::unique_ptr<ReconstructionAlgorithm>>& owned) {
  std::vector<const ReconstructionAlgorithm*> instances;
  instances.reserve(owned.size());
  for (const auto& alg : owned) instances.push_back(alg.get());
  return instances;
}

}  // namespace

namespace {

/// Bound on rebuild-and-replay rounds when a concurrent write
/// invalidates the evaluation state mid-experiment (each round needs
/// another racing write to fail again, so 4 only trips under a
/// sustained write storm -- the Unavailable then surfaces).
constexpr int kMaxEvalRetries = 4;

}  // namespace

Result<ExperimentReport> Crimson::RunExperiment(TreeRef tree,
                                                const ExperimentSpec& spec) {
  CRIMSON_RETURN_IF_ERROR(ValidateExperimentSpec(spec));
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<ReconstructionAlgorithm>> owned,
      InstantiateAlgorithms(spec));
  const uint64_t base =
      ticket_.fetch_add(spec.job_count(), std::memory_order_relaxed);
  Result<ExperimentReport> ran = Status::Internal("experiment not executed");
  for (int attempt = 0; attempt < kMaxEvalRetries; ++attempt) {
    CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const EvalState> eval,
                             EvalStateFor(tree));
    ran = RunExperimentJobs(*eval, spec, RawPointers(owned), options_.seed,
                            base);
    // Unavailable = the state was invalidated while jobs ran; rebuild
    // and replay with the same tickets (jobs reseed from (seed,
    // base + i), so the retry is byte-identical to an unraced run).
    if (ran.ok() || !ran.status().IsUnavailable()) break;
  }
  if (!ran.ok()) return ran.status();
  ExperimentReport report = std::move(*ran);
  CRIMSON_RETURN_IF_ERROR(PersistExperiment(&report));
  RecordQuery("experiment",
              StrFormat("tree=%s&id=%lld&spec=%s",
                        report.tree_name.c_str(),
                        static_cast<long long>(report.experiment_id),
                        EncodeExperimentSpec(spec).c_str()),
              SummarizeExperiment(report));
  return report;
}

Result<ExperimentReport> Crimson::RerunExperiment(int64_t experiment_id) {
  ExperimentRepository::ExperimentRow row;
  {
    StorageReadGuard read = AcquireStorageRead();
    CRIMSON_ASSIGN_OR_RETURN(
        row, read.repos->experiments->GetExperiment(experiment_id));
  }
  CRIMSON_ASSIGN_OR_RETURN(ExperimentSpec spec,
                           DecodeExperimentSpec(row.spec));
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(row.tree_name));
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<ReconstructionAlgorithm>> owned,
      InstantiateAlgorithms(spec));
  // Replay with the *stored* RNG provenance: the session ticket
  // counter is not consulted, so the replay reproduces the original
  // rows on any session over this database.
  Result<ExperimentReport> ran = Status::Internal("experiment not executed");
  for (int attempt = 0; attempt < kMaxEvalRetries; ++attempt) {
    CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const EvalState> eval,
                             EvalStateFor(ref));
    ran = RunExperimentJobs(*eval, spec, RawPointers(owned), row.seed,
                            row.base_ticket);
    if (ran.ok() || !ran.status().IsUnavailable()) break;
  }
  if (!ran.ok()) return ran.status();
  ExperimentReport report = std::move(*ran);
  report.experiment_id = experiment_id;
  return report;
}

Result<std::vector<ExperimentRepository::ExperimentRow>>
Crimson::ListExperiments() const {
  StorageReadGuard read = AcquireStorageRead();
  return read.repos->experiments->ListExperiments();
}

// -- benchmarking (legacy wrapper) ------------------------------------------

Result<BenchmarkRun> Crimson::Benchmark(
    const std::string& tree_name, const ReconstructionAlgorithm& algorithm,
    const SelectionSpec& selection, bool compute_triplets) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  ExperimentSpec spec;
  spec.algorithms = {algorithm.name()};
  spec.selections = {selection};
  spec.replicates = 1;
  spec.compute_triplets = compute_triplets;
  const uint64_t base = ticket_.fetch_add(1, std::memory_order_relaxed);
  Result<ExperimentReport> ran = Status::Internal("benchmark not executed");
  for (int attempt = 0; attempt < kMaxEvalRetries; ++attempt) {
    CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const EvalState> eval,
                             EvalStateFor(ref));
    ran = RunExperimentJobs(*eval, spec, {&algorithm}, options_.seed, base);
    if (ran.ok() || !ran.status().IsUnavailable()) break;
  }
  if (!ran.ok()) return ran.status();
  ExperimentReport report = std::move(*ran);
  BenchmarkRun run = std::move(report.runs[0]);
  // History row: the pre-Experiment-API keys plus the encoded spec, so
  // the entry replays through the experiment path (the algorithm name
  // must be registered for the replay to resolve it). Benchmark takes
  // a raw algorithm reference, so its name never went through spec
  // validation: if it (or a species list) cannot be encoded, record
  // the legacy keys only rather than a corrupt spec.
  std::string params =
      StrFormat("tree=%s&algorithm=%s&k=%zu", tree_name.c_str(),
                run.algorithm.c_str(), run.sample_size);
  if (ValidateExperimentSpec(spec).ok()) {
    params += "&spec=" + EncodeExperimentSpec(spec);
  }
  RecordQuery(
      "benchmark", params,
      StrFormat("rf=%zu/%zu normalized=%.4f", run.rf.distance,
                run.rf.splits_a + run.rf.splits_b, run.rf.normalized));
  return run;
}

// -- query history ----------------------------------------------------------

Result<std::vector<QueryRepository::Entry>> Crimson::QueryHistory(
    size_t limit) {
  // Buffer copy strictly before the storage read. A mid-drain entry
  // stays in the buffer until its transaction commits, so with this
  // order it shows up in at least one source (possibly both -- the
  // merge dedups by id); the reverse order could miss an entry that
  // commits-and-drops between the two reads. No lock is held against
  // the drain, so history stays readable during a bulk store.
  std::vector<QueryRepository::Entry> merged;
  {
    std::lock_guard<std::mutex> hist_lock(history_mu_);
    merged = history_buffer_;
  }
  StorageReadGuard read = AcquireStorageRead();
  CRIMSON_ASSIGN_OR_RETURN(std::vector<QueryRepository::Entry> stored,
                           read.repos->queries->History(limit));
  merged.insert(merged.end(), std::make_move_iterator(stored.begin()),
                std::make_move_iterator(stored.end()));
  // Replay order: newest first by id, exactly as if every entry had
  // been persisted synchronously.
  std::sort(merged.begin(), merged.end(),
            [](const QueryRepository::Entry& a,
               const QueryRepository::Entry& b) {
              return a.query_id > b.query_id;
            });
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const QueryRepository::Entry& a,
                              const QueryRepository::Entry& b) {
                             return a.query_id == b.query_id;
                           }),
               merged.end());
  if (merged.size() > limit) merged.resize(limit);
  return merged;
}

Result<std::string> Crimson::RerunQuery(int64_t query_id) {
  QueryRepository::Entry entry;
  {
    // Buffer before storage, same reasoning as QueryHistory: a
    // mid-drain entry is still buffered until its transaction commits,
    // so this order finds it in one place or the other.
    bool found = false;
    {
      std::lock_guard<std::mutex> hist_lock(history_mu_);
      for (const QueryRepository::Entry& e : history_buffer_) {
        if (e.query_id == query_id) {
          entry = e;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      StorageReadGuard read = AcquireStorageRead();
      CRIMSON_ASSIGN_OR_RETURN(entry, read.repos->queries->Get(query_id));
    }
  }
  if (entry.kind == "experiment" || entry.kind == "benchmark") {
    CRIMSON_ASSIGN_OR_RETURN(DecodedExperimentParams decoded,
                             DecodeExperimentParams(entry.params));
    if (decoded.experiment_id.has_value()) {
      // Stored experiment: replay exactly (stored seed + tickets).
      CRIMSON_ASSIGN_OR_RETURN(ExperimentReport report,
                               RerunExperiment(*decoded.experiment_id));
      return RenderExperimentReport(report);
    }
    // Legacy "benchmark" row: re-run as a fresh experiment through the
    // registry (fresh tickets, so sampling selections may redraw).
    CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(decoded.tree_name));
    CRIMSON_ASSIGN_OR_RETURN(ExperimentReport report,
                             RunExperiment(ref, decoded.spec));
    return RenderExperimentReport(report);
  }
  auto decoded = DecodeQueryRequest(entry.kind, entry.params);
  if (!decoded.ok()) {
    if (decoded.status().IsUnimplemented()) {
      return Status::Unimplemented(
          StrFormat("cannot rerun query kind '%s'", entry.kind.c_str()));
    }
    return decoded.status();
  }
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(decoded->first));
  CRIMSON_ASSIGN_OR_RETURN(QueryResult result, Execute(ref, decoded->second));
  return RenderResult(result);
}

Result<std::string> Crimson::ExportNexus(TreeRef tree) {
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  NexusDocument doc;
  for (NodeId n : handle->tree.Leaves()) {
    // The index dedupes taxa (a repeated label would make the TAXA
    // block invalid NEXUS): only the canonical first leaf of each name
    // is listed, in leaf pre-order.
    if (!handle->tree.name(n).empty() &&
        handle->names.FindLeaf(handle->tree, handle->tree.name(n)) == n) {
      doc.taxa.emplace_back(handle->tree.name(n));
    }
  }
  {
    StorageReadGuard read = AcquireStorageRead();
    CRIMSON_ASSIGN_OR_RETURN(
        doc.sequences,
        read.repos->species->SequencesForTree(handle->info.tree_id));
  }
  NexusTree nt;
  nt.name = handle->info.name;
  nt.tree = handle->tree;
  doc.trees.push_back(std::move(nt));
  return WriteNexus(doc);
}

Result<std::string> Crimson::RenderTree(TreeRef tree, size_t max_nodes) {
  CRIMSON_ASSIGN_OR_RETURN(std::shared_ptr<const TreeHandle> handle,
                           HandleFor(tree));
  AsciiRenderOptions options;
  options.max_nodes = max_nodes;
  return RenderAscii(handle->tree, options);
}

Result<std::string> Crimson::ExportNexus(const std::string& tree_name) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  return ExportNexus(ref);
}

Result<std::string> Crimson::RenderTree(const std::string& tree_name,
                                        size_t max_nodes) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, OpenTree(tree_name));
  return RenderTree(ref, max_nodes);
}

Status Crimson::Flush() {
  // Buffered history rows must not outlive a flush (the destructor
  // relies on this: a dropped session loses no history).
  Status hist = FlushHistory();
  std::lock_guard<std::shared_mutex> lock(db_mu_);
  Status s = db_->Flush();
  return hist.ok() ? s : hist;
}

Status Crimson::Checkpoint() {
  Status hist = FlushHistory();
  std::lock_guard<std::shared_mutex> lock(db_mu_);
  Status s = db_->Checkpoint();
  return hist.ok() ? s : hist;
}

cache::CacheStats Crimson::GetCacheStats() const {
  cache::CacheStats stats = query_cache_->stats();
  // Snapshot the live states under eval_mu_, then read their store
  // counters outside it (the stores take their own mutex; holding
  // eval_mu_ across that would invert the fetch callback's
  // store -> eval_mu_ order).
  std::vector<std::shared_ptr<const EvalState>> states;
  {
    std::lock_guard<std::mutex> lock(eval_mu_);
    states.reserve(eval_cache_.size());
    for (const auto& [id, state] : eval_cache_) states.push_back(state);
  }
  for (const auto& state : states) {
    cache::CrackedStoreStats s = state->store->stats();
    ++stats.crack_stores;
    stats.crack_pieces += s.pieces;
    stats.crack_loaded_pieces += s.loaded_pieces;
    stats.crack_sequences_loaded += s.sequences_loaded;
    stats.crack_sequences_total += s.sequences_total;
    stats.crack_fetches += s.fetches;
    stats.crack_batches += s.batches;
    stats.crack_piece_hits += s.piece_hits;
  }
  return stats;
}

obs::MetricsSnapshot Crimson::SnapshotMetrics() const {
  // Refresh the derived gauges first: live cracked-store aggregates
  // (a walk over the current evaluation states -- unlike the crack.*
  // counters, which are cumulative across state drops) and the MVCC
  // chain levels. Counters need no refresh; they are written at the
  // event sites.
  cache::CacheStats cs = GetCacheStats();
  metrics_->GetGauge("crack.stores")->Set(cs.crack_stores);
  metrics_->GetGauge("crack.pieces")->Set(cs.crack_pieces);
  metrics_->GetGauge("crack.loaded_pieces")->Set(cs.crack_loaded_pieces);
  metrics_->GetGauge("crack.sequences_total")->Set(cs.crack_sequences_total);
  PageVersions::Stats ps = db_->page_version_stats();
  metrics_->GetGauge("pages.live_versions")->Set(ps.live_versions);
  metrics_->GetGauge("pages.active_snapshots")->Set(ps.active_snapshots);
  metrics_->GetGauge("pages.committed_epoch")->Set(ps.committed_epoch);
  return metrics_->Snapshot();
}

}  // namespace crimson
