// Crimson: the public entry point. Wires the repository manager
// (storage engine + repositories), the query processors (LCA,
// projection, sampling, clade, pattern match over the layered-Dewey
// index), and the benchmark manager together -- the architecture of the
// paper's Figure 3, with the GUI replaced by this API and the example
// CLI programs (see DESIGN.md substitutions).
//
// Session model: trees are bound once to an opaque TreeRef handle
// (LoadNewick/LoadNexus/LoadTree/OpenTree); every structure query is a
// typed QueryRequest executed through the single Execute dispatch,
// which also records the query history. ExecuteBatch runs independent
// read queries concurrently on a worker pool. Evaluation follows the
// same shape: RunExperiment executes a serializable ExperimentSpec
// (algorithm registry names x selection grid x replicates) on the
// worker pool against per-tree cached evaluation state, persists the
// spec and scores, and RerunExperiment replays stored workloads
// byte-identically. The session is thread-safe AND read-concurrent:
// the handle cache is guarded by a shared_mutex, storage writes hold
// the storage lock exclusively, while storage *reads* (cold OpenTree
// binds, label-scheme loads, sequence fetches, history/experiment
// lookups) take a Database read snapshot instead of any session-wide
// lock -- readers neither queue behind each other NOR behind the
// single writer; a query racing a 60k-node StoreTree observes the
// pre-commit state byte-identically. Query history is buffered in
// memory and flushed by the writer path (see history_buffer_cap), so
// read-only queries never enter the writer epoch (see DESIGN.md
// "Concurrency" and the README thread-safety table). Query execution
// itself touches only immutable per-tree state.

#ifndef CRIMSON_CRIMSON_CRIMSON_H_
#define CRIMSON_CRIMSON_CRIMSON_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cache/query_cache.h"
#include "common/random.h"
#include "common/result.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "crimson/benchmark_manager.h"
#include "crimson/data_loader.h"
#include "crimson/experiment_spec.h"
#include "crimson/query_request.h"
#include "crimson/repositories.h"
#include "crimson/tree_ref.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/clade.h"
#include "query/pattern_match.h"
#include "storage/database.h"

namespace crimson {

struct CrimsonOptions {
  /// Database file path; empty runs fully in memory.
  std::string db_path;
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 4096;
  /// Layered-Dewey bound f used when indexing loaded trees.
  uint32_t f = 8;
  /// Trees with at least this many nodes take the bulk-load storage
  /// path on ingest (batch row encoding + bottom-up index builds).
  /// SIZE_MAX forces per-row inserts, 0 always bulk-loads.
  size_t bulk_load_threshold = 512;
  /// Persist the serialized layered-Dewey labels alongside each stored
  /// tree so the first OpenTree bind deserializes them (O(n) reads)
  /// instead of relabeling from scratch.
  bool persist_labels = true;
  /// Deterministic seed for sampling queries. Every query draws from
  /// its own Rng seeded by (seed, query ticket), so results are
  /// reproducible regardless of whether queries run sequentially or
  /// batched across threads.
  uint64_t seed = 42;
  /// Worker threads backing ExecuteBatch (>= 1).
  size_t batch_workers = 4;
  /// Benchmark baseline knob: route storage *reads* through the
  /// exclusive writer lock instead of the snapshot read path,
  /// restoring the pre-concurrency single-lock engine.
  /// bench_concurrent_reads measures the snapshot path's speedup
  /// against this.
  bool serialize_storage_reads = false;
  /// Query-history entries buffered in memory before an opportunistic
  /// synchronous flush is attempted. History appends go to this buffer
  /// (read-only queries never enter the writer path for them); the
  /// buffer drains into the queries table inside the next write
  /// transaction, on Flush/Checkpoint, or when it reaches this cap
  /// while the writer lock happens to be free. Replay order (query id)
  /// is preserved across the buffer/storage boundary.
  size_t history_buffer_cap = 1024;
  /// Crash-durability discipline for on-disk databases (requires
  /// db_path). kOff preserves the legacy behavior and file format;
  /// kCommit wraps every repository write in a WAL transaction whose
  /// commit fsyncs the log; kGroupCommit additionally coalesces
  /// concurrent commit fsyncs. On open, a committed WAL prefix left by
  /// a crash is replayed before any read.
  Durability durability = Durability::kOff;
  /// Auto-checkpoint (flush + WAL truncation) once the log exceeds
  /// this many bytes; 0 = only explicit Checkpoint()/Flush() truncate.
  uint64_t wal_checkpoint_bytes = 16ull << 20;
  /// Filesystem hooks for the database file and WAL segments; crash
  /// tests substitute a fault-injecting environment.
  StorageEnv storage_env = PosixStorageEnv();
  /// Byte budget for the session's adaptive result cache over the
  /// idempotent query kinds (LCA, projection, clade, pattern match --
  /// never sampling). Cached results are invalidated by mutations of
  /// their tree and tagged with the MVCC committed epoch, so a hit is
  /// always byte-identical to re-executing (see DESIGN.md "Adaptive
  /// caching & cracking"). 0 disables the cache (bench baseline).
  uint64_t query_cache_bytes = 8ull << 20;
  /// Cracking granularity for per-tree evaluation state: sequence
  /// slices are faulted in from storage in aligned runs of at least
  /// this many leaf ordinals, refining the piece map with the observed
  /// sample mix instead of materializing every sequence up front.
  size_t crack_min_piece = 16;
  /// Slow-query threshold in microseconds; 0 (the default) disables
  /// the slow-query log. A query whose wall time meets the threshold
  /// emits one structured line -- "slow_query total_us=... kind=...
  /// params=<canonical request encoding> status=... spans=<stage
  /// breakdown>" -- through slow_query_sink, and bumps the query.slow
  /// counter either way the sink is set.
  uint64_t slow_query_micros = 0;
  /// Destination for slow-query lines; defaults to the process log at
  /// warning level. Called inline on the query thread: keep it cheap,
  /// and do not call back into the session from it.
  std::function<void(const std::string&)> slow_query_sink;
};

/// Load result: the DataLoader's report plus the session handle for
/// the loaded tree.
struct SessionLoadReport : LoadReport {
  TreeRef ref;
};

/// Facade over the whole system. Thread-safe: any number of threads
/// may load trees and execute queries on one session concurrently.
class Crimson {
 public:
  static Result<std::unique_ptr<Crimson>> Open(
      const CrimsonOptions& options = {});

  ~Crimson();

  Crimson(const Crimson&) = delete;
  Crimson& operator=(const Crimson&) = delete;

  // -- loading (paper §3 "Loading Data") -----------------------------------

  [[nodiscard]] Result<SessionLoadReport> LoadNewick(
      const std::string& name, const std::string& newick,
      LoadMode mode = LoadMode::kTreeStructureOnly);
  [[nodiscard]] Result<SessionLoadReport> LoadNexus(
      const std::string& name, const std::string& nexus,
      LoadMode mode = LoadMode::kTreeWithSpeciesData);
  [[nodiscard]] Result<SessionLoadReport> LoadTree(const std::string& name,
                                                   const PhyloTree& tree);
  [[nodiscard]] Result<LoadReport> AppendSpeciesData(
      const std::string& tree_name,
      const std::map<std::string, std::string>& sequences);

  /// Binds an already-stored tree to a handle (materializing the
  /// in-memory index on first open; afterwards a cache hit).
  [[nodiscard]] Result<TreeRef> OpenTree(const std::string& name);

  /// Drops a stored tree: structural rows, labels, AND species rows
  /// are deleted in one write transaction, the bound handle (if any)
  /// is evicted so stale TreeRefs fail instead of serving deleted
  /// state, and every cached result / evaluation state for the tree is
  /// discarded. A tree re-stored under the same name starts fresh.
  [[nodiscard]] Status DropTree(const std::string& name);

  [[nodiscard]] Result<std::vector<TreeInfo>> ListTrees() const;

  /// Metadata for a bound tree.
  [[nodiscard]] Result<TreeInfo> GetTreeInfo(TreeRef tree) const;

  /// The in-memory tree for a handle; stable until the session closes
  /// or the tree is dropped (DropTree frees the handle's state once
  /// the last in-flight query over it finishes).
  [[nodiscard]] Result<const PhyloTree*> GetTree(TreeRef tree) const;
  [[nodiscard]] Result<const PhyloTree*> GetTree(const std::string& name);

  // -- the typed query layer (paper §2 queries, one dispatch path) ---------

  /// Executes one typed query against a bound tree. This is the single
  /// code path for all six query kinds: history recording and
  /// RerunQuery replay both hang off it.
  [[nodiscard]] Result<QueryResult> Execute(TreeRef tree,
                                            const QueryRequest& request);

  /// Executes a list of independent read queries on the worker pool.
  /// Results (including sampling draws) are byte-identical to running
  /// the same list sequentially through Execute: each request is
  /// assigned its query ticket in list order before dispatch.
  std::vector<Result<QueryResult>> ExecuteBatch(
      TreeRef tree, Span<const QueryRequest> requests);

  // -- legacy named wrappers over Execute ----------------------------------
  //
  // Back-compat shims for the string-keyed facade; each resolves the
  // name to a TreeRef and forwards one typed request. New code should
  // bind a TreeRef once and call Execute directly.

  using LcaAnswer = ::crimson::LcaAnswer;
  using CladeAnswer = ::crimson::CladeAnswer;
  using PatternAnswer = ::crimson::PatternAnswer;

  [[nodiscard]] Result<LcaAnswer> Lca(const std::string& tree_name,
                                      const std::string& a,
                                      const std::string& b);
  [[nodiscard]] Result<PhyloTree> Project(
      const std::string& tree_name, const std::vector<std::string>& species);
  [[nodiscard]] Result<std::vector<std::string>> SampleUniform(
      const std::string& tree_name, size_t k);
  [[nodiscard]] Result<std::vector<std::string>> SampleWithRespectToTime(
      const std::string& tree_name, size_t k, double time);
  [[nodiscard]] Result<CladeAnswer> MinimalClade(
      const std::string& tree_name, const std::vector<std::string>& species);
  [[nodiscard]] Result<PatternAnswer> MatchPattern(
      const std::string& tree_name, const std::string& pattern_newick,
      bool match_weights = false);

  // -- the Experiment API (paper §2.2 Benchmark Manager) -------------------

  /// Runs a whole evaluation workload -- algorithm registry names x
  /// selection grid x replicates -- against a bound gold tree.
  /// Replicates fan out on the session worker pool with ticketed
  /// (seed, ticket) RNGs, so results are byte-identical to running the
  /// grid sequentially (the ExecuteBatch contract). The gold tree's
  /// evaluation state (sequence map + BenchmarkManager) is built once
  /// and cached against the handle, not per call. The spec, every
  /// BenchmarkRun's scores, and per-cell aggregates are persisted in
  /// the Experiment Repository; the returned report carries the
  /// assigned experiment id.
  [[nodiscard]] Result<ExperimentReport> RunExperiment(
      TreeRef tree, const ExperimentSpec& spec);

  /// Replays a stored experiment: decodes the persisted spec and
  /// re-runs it with the stored RNG provenance (seed + base ticket).
  /// As long as the tree's stored species data is unchanged since the
  /// experiment ran, the replay reproduces the original report
  /// byte-for-byte (scores and topologies; timings differ) on any
  /// session over the same database; evaluation state is rebuilt from
  /// current storage, so later sequence changes flow into the replay.
  /// Nothing new is persisted.
  [[nodiscard]] Result<ExperimentReport> RerunExperiment(
      int64_t experiment_id);

  /// All persisted experiments, oldest first.
  [[nodiscard]] Result<std::vector<ExperimentRepository::ExperimentRow>>
  ListExperiments() const;

  // -- benchmarking (legacy wrapper over the Experiment API) ---------------

  /// Evaluates a reconstruction algorithm against a loaded gold tree;
  /// sequences come from the species repository. `compute_triplets`
  /// adds the O(k^3) triplet-distance score; pass false for
  /// RF-only sweeps. Thin wrapper over a 1-replicate, 1-cell
  /// experiment (same cached evaluation state and RNG ticketing; no
  /// experiment row is persisted). New code should build an
  /// ExperimentSpec and call RunExperiment.
  [[nodiscard]] Result<BenchmarkRun> Benchmark(
      const std::string& tree_name, const ReconstructionAlgorithm& algorithm,
      const SelectionSpec& selection, bool compute_triplets = true);

  // -- query history (paper §2.1 Query Repository) -------------------------

  [[nodiscard]] Result<std::vector<QueryRepository::Entry>> QueryHistory(
      size_t limit = 50);

  /// Re-executes a recorded query by id: the stored typed request is
  /// decoded and replayed through Execute. Returns the fresh result
  /// rendering. Supported kinds: lca, project, sample_uniform,
  /// sample_time, clade, pattern_match -- plus "experiment" entries
  /// (replayed exactly via RerunExperiment) and "benchmark" entries
  /// (re-run as a 1-replicate experiment through RunExperiment).
  [[nodiscard]] Result<std::string> RerunQuery(int64_t query_id);

  /// Exports a bound tree (and any stored sequences) as a NEXUS
  /// document -- the demo's "view as NEXUS" output path.
  [[nodiscard]] Result<std::string> ExportNexus(TreeRef tree);

  /// Renders a bound tree as an ASCII dendrogram -- the library
  /// stand-in for the demo's Walrus viewer.
  [[nodiscard]] Result<std::string> RenderTree(TreeRef tree,
                                               size_t max_nodes = 512);

  // Name-keyed shims over the TreeRef overloads above.
  [[nodiscard]] Result<std::string> ExportNexus(
      const std::string& tree_name);
  [[nodiscard]] Result<std::string> RenderTree(const std::string& tree_name,
                                               size_t max_nodes = 512);

  /// Persists all state to disk (no-op for in-memory databases). With
  /// durability on this is a full checkpoint. Also invoked on session
  /// destruction, so a dropped session never loses dirty pages.
  Status Flush();

  /// Durable truncation point: flushes all dirty pages, fsyncs the
  /// database file, and truncates the write-ahead log. No-op content
  /// with durability off (equivalent to Flush).
  Status Checkpoint();

  /// Result-cache counters plus the aggregated cracked-store counters
  /// of every live evaluation state (see cache::CacheStats).
  cache::CacheStats GetCacheStats() const;

  /// The session's metrics registry. Every layer under this session --
  /// storage engine, result cache, cracked stores, query dispatch, and
  /// any server front door -- writes into it. Valid for the session's
  /// lifetime; callers may resolve and cache cells.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Point-in-time copy of every session metric, with the derived
  /// gauges (live cracked-store aggregates, MVCC chain levels)
  /// refreshed first. This is what the wire stats frame carries.
  obs::MetricsSnapshot SnapshotMetrics() const;

  Database* database() { return db_.get(); }
  /// The current species repository. The pointer stays valid until the
  /// next repository reopen (a failed durable write), so callers
  /// should not cache it across writes.
  SpeciesRepository* species_repository() { return Repos()->species.get(); }

 private:
  Crimson() = default;

  /// Immutable per-tree state: built once under the handle-cache lock,
  /// then shared (read-only) by any number of query threads.
  struct TreeHandle {
    TreeInfo info;
    PhyloTree tree;
    LayeredDeweyScheme scheme;
    /// Interned name -> NodeId index built once per bind; shared by
    /// species resolution, the pattern matcher, the cracked store's
    /// leaf domain, and NEXUS export.
    NameIndex names;
    std::unique_ptr<Sampler> sampler;
    std::unique_ptr<TreeProjector> projector;
    std::unique_ptr<PatternMatcher> matcher;

    explicit TreeHandle(uint32_t f) : scheme(f) {}
  };

  /// Cached evaluation state for one gold tree: the sequence map plus
  /// a BenchmarkManager borrowing the handle's tree and labeling.
  /// Immutable once built and shared across experiment workers;
  /// invalidated when AppendSpeciesData changes the tree's sequences.
  struct EvalState;

  Result<std::shared_ptr<const TreeHandle>> HandleFor(TreeRef tree) const;
  /// Pure query execution on immutable handle state; safe to call
  /// concurrently. `ticket` seeds the per-query Rng for sampling.
  Result<QueryResult> ExecuteOnHandle(const TreeHandle& handle,
                                      const QueryRequest& request,
                                      uint64_t ticket) const;
  /// Cached-or-built evaluation state for a bound tree;
  /// FailedPrecondition when the tree has no species data.
  Result<std::shared_ptr<const EvalState>> EvalStateFor(TreeRef tree);
  /// Drops the tree's cached evaluation state and bumps its
  /// generation, so in-flight EvalStateFor builds that read the old
  /// sequence map cannot re-cache it.
  void InvalidateEvalState(const std::string& tree_name);
  /// One instance per spec algorithm name, resolved from the global
  /// registry (shared by the run and replay paths).
  static Result<std::vector<std::unique_ptr<ReconstructionAlgorithm>>>
  InstantiateAlgorithms(const ExperimentSpec& spec);
  /// Fans the spec's jobs out on the worker pool. Job i draws from
  /// Rng(QuerySeed(seed, base_ticket + i)), so any worker count
  /// produces the sequential byte stream.
  Result<ExperimentReport> RunExperimentJobs(
      const EvalState& eval, const ExperimentSpec& spec,
      const std::vector<const ReconstructionAlgorithm*>& instances,
      uint64_t seed, uint64_t base_ticket) const;
  /// Persists report rows and records the history entry; fills in the
  /// assigned experiment id.
  Status PersistExperiment(ExperimentReport* report);
  static Result<std::vector<NodeId>> ResolveSpecies(
      const TreeHandle& handle, const std::vector<std::string>& species);
  void RecordQuery(std::string_view kind, const std::string& params,
                   const std::string& summary);
  /// Publishes one finished query's trace: per-kind latency/count/
  /// result-bytes, per-stage histograms, and -- past the slow-query
  /// threshold -- the structured slow line. Resets `ctx` afterwards so
  /// a reused (connection-thread) context starts the next query clean.
  void FinishQueryTrace(obs::TraceContext* ctx, const std::string& tree_name,
                        const QueryRequest& request,
                        const Result<QueryResult>& result) const;
  Result<SessionLoadReport> FinishLoad(Result<LoadReport> report);
  /// One generation of repository handles over the database. Swapped
  /// wholesale (under repos_mu_) when a failed durable write forces a
  /// reopen; readers that grabbed the previous generation finish on it
  /// safely -- its tables and trees still resolve against committed
  /// storage through their MVCC snapshots.
  struct RepoSet {
    std::unique_ptr<TreeRepository> trees;
    std::unique_ptr<SpeciesRepository> species;
    std::unique_ptr<QueryRepository> queries;
    std::unique_ptr<ExperimentRepository> experiments;
    std::unique_ptr<DataLoader> loader;
  };
  /// The current repository generation (brief repos_mu_ critical
  /// section; safe from any thread).
  std::shared_ptr<const RepoSet> Repos() const;
  /// Storage-read section: the current repositories plus a Database
  /// read snapshot. Lock-free against the writer -- a reader neither
  /// waits for nor stalls a concurrent StoreTree; its repository reads
  /// resolve against the snapshot's committed page images. With
  /// serialize_storage_reads the section instead takes db_mu_
  /// exclusive (bench baseline, pre-MVCC behavior).
  struct StorageReadGuard {
    std::shared_ptr<const RepoSet> repos;
    std::unique_lock<std::shared_mutex> exclusive;
    Database::ReadTxn epoch;
    /// Attributes the section's lifetime to the active query trace
    /// (no-op off the query path).
    obs::SpanTimer span{obs::Stage::kStorageRead};
  };
  StorageReadGuard AcquireStorageRead() const;
  /// Runs fn (one logical repository write) inside a Txn; db_mu_ must
  /// be held exclusive. Drains the history buffer into the same
  /// transaction first, so buffered entries become durable with the
  /// next write; the buffer keeps its entries until the transaction
  /// resolves (dropped once persisted, kept when rolled back), so
  /// history readers never race a half-done drain. Commits on success;
  /// aborts on failure. After an abort with durability on, the
  /// repositories are reopened: their in-memory hints (heap tails,
  /// cached counts, next ids) may reflect the rolled-back writes.
  template <typename Fn>
  auto TransactLocked(Fn&& fn) -> decltype(fn());
  /// TransactLocked plus the query-cache invalidation bracket for a
  /// mutation of `tree_name`: takes db_mu_ exclusive, bumps the tree's
  /// cache generation before the transaction, and on resolution either
  /// publishes the post-commit epoch barrier or rolls the generation
  /// back (abort changed nothing).
  template <typename Fn>
  auto MutateTree(const std::string& tree_name, Fn&& fn) -> decltype(fn());
  /// Rebuilds the repository handles (and the loader over them) from
  /// current storage and publishes them as a new generation; db_mu_
  /// must be held exclusive.
  Status ReopenRepositoriesLocked();
  /// Synchronously drains the history buffer inside its own write
  /// transaction (no-op when empty). Takes db_mu_ exclusive.
  Status FlushHistory();

  /// The session metrics registry. Declared first: every other member
  /// (database, cache, eval states) may hold resolved cell pointers,
  /// so the registry must be destroyed last.
  std::unique_ptr<obs::MetricsRegistry> metrics_;

  CrimsonOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ThreadPool> pool_;

  /// Query-dispatch cells, resolved once at Open (indexed by the
  /// QueryRequest variant alternative; see kQueryKindCount).
  static constexpr size_t kQueryKindCount =
      std::variant_size_v<QueryRequest>;
  struct KindCells {
    obs::Histogram* latency = nullptr;   // query.<kind>.latency_us
    obs::Counter* count = nullptr;       // query.<kind>.count
    obs::Counter* result_bytes = nullptr;  // query.<kind>.result_bytes
  };
  KindCells kind_cells_[kQueryKindCount];
  obs::Histogram* stage_hists_[obs::kStageCount] = {};  // query.stage.<s>_us
  obs::Counter* slow_queries_ = nullptr;                // query.slow

  /// Guards the repos_ pointer swap/copy only (reopen vs. readers).
  mutable std::mutex repos_mu_;
  std::shared_ptr<const RepoSet> repos_;

  /// The storage *write* lock. Writers (loads, experiment persistence,
  /// history flushes -- everything around TransactLocked) hold it
  /// exclusive. Snapshot reads do not take it at all (see
  /// AcquireStorageRead); with serialize_storage_reads they take it
  /// exclusive as the bench baseline. Never held while executing query
  /// compute.
  mutable std::shared_mutex db_mu_;

  /// In-memory query-history buffer (see history_buffer_cap). Entries
  /// carry their final ids (next_query_id_) and timestamps at enqueue
  /// time; TransactLocked drains the buffer into the queries table,
  /// erasing entries only after their transaction committed (so an
  /// entry is always findable in the buffer or in committed storage,
  /// and QueryHistory/RerunQuery take no lock against the drain).
  /// Lock order: db_mu_ -> history_mu_; history_mu_ is leaf-only.
  mutable std::mutex history_mu_;
  std::vector<QueryRepository::Entry> history_buffer_;
  /// Next history id; seeded from storage at open/reopen.
  std::atomic<int64_t> next_query_id_{1};

  /// Guards the handle cache. Shared for ref lookup on the query path,
  /// exclusive only for the brief insertion of a freshly materialized
  /// handle (materialization itself runs without this lock). Never
  /// held together with db_mu_.
  mutable std::shared_mutex handles_mu_;
  /// Slots are never reused; DropTree nulls a slot out (stale TreeRefs
  /// then fail handle resolution instead of serving deleted state).
  std::vector<std::shared_ptr<const TreeHandle>> handles_;
  std::map<std::string, uint64_t, std::less<>> handle_ids_;
  /// Per-name drop counter: OpenTree snapshots it before materializing
  /// and re-checks before publishing, so a bind racing a DropTree of
  /// the same name cannot insert a handle for the deleted tree.
  std::map<std::string, uint64_t, std::less<>> drop_counts_;

  /// Guards the evaluation-state cache (keyed by handle id). Never
  /// held while evaluating, and never together with db_mu_ or
  /// handles_mu_.
  mutable std::mutex eval_mu_;
  std::map<uint64_t, std::shared_ptr<const EvalState>> eval_cache_;
  /// Bumped by InvalidateEvalState; EvalStateFor re-checks it before
  /// inserting a freshly built state (lost-invalidation guard).
  std::map<uint64_t, uint64_t> eval_generation_;

  /// Monotone query ticket; combined with options_.seed to derive the
  /// per-query Rng (see QuerySeed in crimson.cc). Cache hits still
  /// consume a ticket, so a session with the cache on draws the same
  /// sampling streams as one with it off.
  std::atomic<uint64_t> ticket_{0};

  /// The adaptive result cache (src/cache); always constructed, budget
  /// 0 makes every operation a cheap no-op. Internally synchronized;
  /// its invalidation hooks run under db_mu_ via MutateTree.
  std::unique_ptr<cache::QueryCache> query_cache_;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_CRIMSON_H_
