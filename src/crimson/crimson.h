// Crimson: the public entry point. Wires the repository manager
// (storage engine + repositories), the query processors (LCA,
// projection, sampling, clade, pattern match over the layered-Dewey
// index), and the benchmark manager together -- the architecture of the
// paper's Figure 3, with the GUI replaced by this API and the example
// CLI programs (see DESIGN.md substitutions).

#ifndef CRIMSON_CRIMSON_CRIMSON_H_
#define CRIMSON_CRIMSON_CRIMSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crimson/benchmark_manager.h"
#include "crimson/data_loader.h"
#include "crimson/repositories.h"
#include "query/clade.h"
#include "query/pattern_match.h"
#include "storage/database.h"

namespace crimson {

struct CrimsonOptions {
  /// Database file path; empty runs fully in memory.
  std::string db_path;
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 4096;
  /// Layered-Dewey bound f used when indexing loaded trees.
  uint32_t f = 8;
  /// Deterministic seed for sampling queries.
  uint64_t seed = 42;
};

/// Facade over the whole system. Not thread-safe (single-user demo
/// semantics, as in the paper).
class Crimson {
 public:
  static Result<std::unique_ptr<Crimson>> Open(
      const CrimsonOptions& options = {});

  Crimson(const Crimson&) = delete;
  Crimson& operator=(const Crimson&) = delete;

  // -- loading (paper §3 "Loading Data") -----------------------------------

  Result<LoadReport> LoadNewick(
      const std::string& name, const std::string& newick,
      LoadMode mode = LoadMode::kTreeStructureOnly);
  Result<LoadReport> LoadNexus(
      const std::string& name, const std::string& nexus,
      LoadMode mode = LoadMode::kTreeWithSpeciesData);
  Result<LoadReport> LoadTree(const std::string& name, const PhyloTree& tree);
  Result<LoadReport> AppendSpeciesData(
      const std::string& tree_name,
      const std::map<std::string, std::string>& sequences);

  Result<std::vector<TreeInfo>> ListTrees() const;

  /// The in-memory handle for a loaded tree (cached after first use).
  Result<const PhyloTree*> GetTree(const std::string& name);

  // -- structure queries (recorded in the query history) -------------------

  /// LCA of two species; returns the ancestor's node id and name.
  struct LcaAnswer {
    NodeId node = kNoNode;
    std::string name;
  };
  Result<LcaAnswer> Lca(const std::string& tree_name, const std::string& a,
                        const std::string& b);

  /// Projection of the tree induced by the named species (Fig. 2).
  Result<PhyloTree> Project(const std::string& tree_name,
                            const std::vector<std::string>& species);

  /// Uniform random species sample.
  Result<std::vector<std::string>> SampleUniform(const std::string& tree_name,
                                                 size_t k);

  /// Sampling with respect to evolutionary time (paper §2.2).
  Result<std::vector<std::string>> SampleWithRespectToTime(
      const std::string& tree_name, size_t k, double time);

  /// Minimal spanning clade size + root for the named species.
  struct CladeAnswer {
    NodeId root = kNoNode;
    size_t node_count = 0;
    size_t leaf_count = 0;
  };
  Result<CladeAnswer> MinimalClade(const std::string& tree_name,
                                   const std::vector<std::string>& species);

  /// Tree pattern match against a Newick pattern (paper §2.2).
  struct PatternAnswer {
    bool exact = false;
    double rf_normalized = 0.0;  // similarity of pattern vs projection
    PhyloTree projection;
  };
  Result<PatternAnswer> MatchPattern(const std::string& tree_name,
                                     const std::string& pattern_newick,
                                     bool match_weights = false);

  // -- benchmarking ---------------------------------------------------------

  /// Evaluates a reconstruction algorithm against a loaded gold tree;
  /// sequences come from the species repository.
  Result<BenchmarkRun> Benchmark(const std::string& tree_name,
                                 const ReconstructionAlgorithm& algorithm,
                                 const SelectionSpec& selection);

  // -- query history (paper §2.1 Query Repository) -------------------------

  Result<std::vector<QueryRepository::Entry>> QueryHistory(size_t limit = 50);

  /// Re-executes a recorded query by id; returns the fresh result
  /// summary. Supported kinds: lca, project, sample_uniform,
  /// sample_time, clade, pattern_match.
  Result<std::string> RerunQuery(int64_t query_id);

  /// Exports a loaded tree (and any stored sequences) as a NEXUS
  /// document -- the demo's "view as NEXUS" output path.
  Result<std::string> ExportNexus(const std::string& tree_name);

  /// Renders a loaded tree (or a projection) as an ASCII dendrogram --
  /// the library stand-in for the demo's Walrus viewer.
  Result<std::string> RenderTree(const std::string& tree_name,
                                 size_t max_nodes = 512);

  /// Persists all state to disk (no-op for in-memory databases).
  Status Flush();

  Database* database() { return db_.get(); }
  SpeciesRepository* species_repository() { return species_.get(); }

 private:
  Crimson() = default;

  struct TreeHandle {
    TreeInfo info;
    PhyloTree tree;
    LayeredDeweyScheme scheme;
    std::unique_ptr<Sampler> sampler;
    std::unique_ptr<TreeProjector> projector;
    std::unique_ptr<PatternMatcher> matcher;

    explicit TreeHandle(uint32_t f) : scheme(f) {}
  };

  Result<TreeHandle*> Handle(const std::string& name);
  Result<std::vector<NodeId>> ResolveSpecies(
      TreeHandle* handle, const std::vector<std::string>& species) const;
  void RecordQuery(const std::string& kind, const std::string& params,
                   const std::string& summary);

  CrimsonOptions options_;
  Rng rng_{42};
  std::unique_ptr<Database> db_;
  std::unique_ptr<TreeRepository> trees_;
  std::unique_ptr<SpeciesRepository> species_;
  std::unique_ptr<QueryRepository> queries_;
  std::unique_ptr<DataLoader> loader_;
  std::map<std::string, std::unique_ptr<TreeHandle>> handles_;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_CRIMSON_H_
