#include "crimson/data_loader.h"

#include "common/log.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "labeling/layered_dewey.h"
#include "tree/name_index.h"
#include "tree/newick.h"

namespace crimson {

Result<LoadReport> DataLoader::LoadTree(const std::string& name,
                                        const PhyloTree& tree,
                                        LoadProgressFn progress) {
  WallTimer timer;
  // Duplicate leaf names would make every name-addressed query resolve
  // silently to one arbitrary occurrence; reject them at ingest. Trees
  // stored before this check still open (OpenTree applies a documented
  // first-occurrence rule and warns).
  {
    NameIndex names = NameIndex::Build(tree);
    if (names.has_duplicate_leaf_names()) {
      std::vector<std::string> dups = names.DuplicateLeafNames(tree);
      std::string sample = dups[0];
      return Status::InvalidArgument(StrFormat(
          "tree '%s' has %zu duplicate leaf name%s (e.g. '%s'); leaf names "
          "must be unique for name-addressed queries",
          name.c_str(), dups.size(), dups.size() == 1 ? "" : "s",
          sample.c_str()));
    }
  }
  if (progress) progress("indexing", 0);
  LayeredDeweyScheme scheme(f_);
  CRIMSON_RETURN_IF_ERROR(scheme.Build(tree));
  if (progress) progress("storing", 0);
  Result<int64_t> stored = trees_->StoreTree(name, tree, scheme);
  if (!stored.ok()) {
    CRIMSON_LOG(kError) << "loading tree '" << name
                        << "' failed: " << stored.status();
    return stored.status();
  }
  LoadReport report;
  report.tree_id = *stored;
  report.tree_name = name;
  report.nodes_loaded = tree.size();
  report.seconds = timer.ElapsedSeconds();
  CRIMSON_LOG(kInfo) << "loaded tree '" << name << "' (" << tree.size()
                     << " nodes) in " << report.seconds << "s";
  if (progress) progress("done", tree.size());
  return report;
}

Result<LoadReport> DataLoader::LoadNewick(const std::string& name,
                                          const std::string& newick_text,
                                          LoadMode mode,
                                          LoadProgressFn progress) {
  if (mode == LoadMode::kAppendSpeciesData) {
    return Status::InvalidArgument(
        "Newick input carries no species data to append");
  }
  if (progress) progress("parsing", 0);
  Result<PhyloTree> parsed = ParseNewick(newick_text);
  if (!parsed.ok()) {
    CRIMSON_LOG(kError) << "newick parse error: " << parsed.status();
    return parsed.status();
  }
  return LoadTree(name, *parsed, std::move(progress));
}

Result<LoadReport> DataLoader::LoadNexus(const std::string& name,
                                         const std::string& nexus_text,
                                         LoadMode mode,
                                         LoadProgressFn progress) {
  if (progress) progress("parsing", 0);
  Result<NexusDocument> parsed = ParseNexus(nexus_text);
  if (!parsed.ok()) {
    CRIMSON_LOG(kError) << "nexus parse error: " << parsed.status();
    return parsed.status();
  }
  const NexusDocument& doc = *parsed;

  if (mode == LoadMode::kAppendSpeciesData) {
    if (doc.sequences.empty()) {
      return Status::InvalidArgument("NEXUS input has no CHARACTERS data");
    }
    return AppendSpecies(name, doc.sequences, std::move(progress));
  }

  if (doc.trees.empty()) {
    return Status::InvalidArgument("NEXUS input has no TREES block");
  }
  CRIMSON_ASSIGN_OR_RETURN(LoadReport report,
                           LoadTree(name, doc.trees[0].tree, progress));
  if (mode == LoadMode::kTreeWithSpeciesData && !doc.sequences.empty()) {
    CRIMSON_ASSIGN_OR_RETURN(LoadReport append,
                             AppendSpecies(name, doc.sequences, progress));
    report.species_loaded = append.species_loaded;
  }
  return report;
}

Result<LoadReport> DataLoader::AppendSpecies(
    const std::string& tree_name,
    const std::map<std::string, std::string>& sequences,
    LoadProgressFn progress) {
  WallTimer timer;
  CRIMSON_ASSIGN_OR_RETURN(TreeInfo info, trees_->GetTreeInfo(tree_name));
  LoadReport report;
  report.tree_id = info.tree_id;
  report.tree_name = tree_name;
  // Resolve every species first (errors surface before any write),
  // then store the whole batch through the bulk path.
  std::vector<SpeciesRepository::SpeciesEntry> entries;
  entries.reserve(sequences.size());
  uint64_t resolved = 0;
  for (const auto& [species, seq] : sequences) {
    Result<NodeId> node = trees_->FindNodeByName(info.tree_id, species);
    if (!node.ok()) {
      CRIMSON_LOG(kError) << "append species: '" << species
                          << "' not found in tree '" << tree_name << "'";
      return node.status();
    }
    entries.push_back({species, *node, seq});
    ++resolved;
    if (progress && resolved % 1024 == 0) progress("resolving", resolved);
  }
  uint64_t done = entries.size();
  CRIMSON_RETURN_IF_ERROR(species_->PutBatch(info.tree_id,
                                             std::move(entries)));
  if (progress) progress("species", done);
  report.species_loaded = done;
  report.seconds = timer.ElapsedSeconds();
  CRIMSON_LOG(kInfo) << "appended " << done << " sequences to '" << tree_name
                     << "' in " << report.seconds << "s";
  if (progress) progress("done", done);
  return report;
}

}  // namespace crimson
