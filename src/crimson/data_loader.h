// Data Loader (paper Fig. 3 and §3 "Loading Data"): loads phylogenetic
// trees (Newick or NEXUS) into the repositories, with the three demo
// modes -- tree with species data, tree structure only, and appending
// species data to an existing tree -- plus dynamically reported
// progress/errors.

#ifndef CRIMSON_CRIMSON_DATA_LOADER_H_
#define CRIMSON_CRIMSON_DATA_LOADER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "crimson/repositories.h"
#include "tree/nexus.h"

namespace crimson {

enum class LoadMode {
  /// Tree topology + any sequences present in the input.
  kTreeWithSpeciesData,
  /// Topology only; sequences in the input are ignored.
  kTreeStructureOnly,
  /// Sequences only, attached to an already-loaded tree.
  kAppendSpeciesData,
};

struct LoadReport {
  int64_t tree_id = -1;
  std::string tree_name;
  uint64_t nodes_loaded = 0;
  uint64_t species_loaded = 0;
  double seconds = 0;
};

/// Progress callback: (phase, items done). Called at a coarse rate.
using LoadProgressFn = std::function<void(const std::string&, uint64_t)>;

class DataLoader {
 public:
  /// f is the layered-Dewey bound used when indexing loaded trees.
  DataLoader(TreeRepository* trees, SpeciesRepository* species,
             uint32_t f = 8)
      : trees_(trees), species_(species), f_(f) {}

  /// Loads a Newick string as tree `name`.
  Result<LoadReport> LoadNewick(const std::string& name,
                                const std::string& newick_text,
                                LoadMode mode = LoadMode::kTreeStructureOnly,
                                LoadProgressFn progress = nullptr);

  /// Loads a NEXUS document: first TREES-block tree (named `name` if
  /// the block has none) and, depending on mode, its CHARACTERS data.
  Result<LoadReport> LoadNexus(const std::string& name,
                               const std::string& nexus_text,
                               LoadMode mode = LoadMode::kTreeWithSpeciesData,
                               LoadProgressFn progress = nullptr);

  /// Loads an already-parsed tree (used by simulators / examples).
  Result<LoadReport> LoadTree(const std::string& name, const PhyloTree& tree,
                              LoadProgressFn progress = nullptr);

  /// Appends sequences to an existing tree; every species must resolve
  /// to a leaf of that tree.
  Result<LoadReport> AppendSpecies(
      const std::string& tree_name,
      const std::map<std::string, std::string>& sequences,
      LoadProgressFn progress = nullptr);

 private:
  TreeRepository* trees_;
  SpeciesRepository* species_;
  uint32_t f_;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_DATA_LOADER_H_
