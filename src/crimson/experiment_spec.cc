#include "crimson/experiment_spec.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace crimson {

namespace {

std::vector<std::string> SplitCsv(std::string_view joined) {
  std::vector<std::string> out;
  for (std::string_view s : StrSplit(joined, ',')) {
    if (!s.empty()) out.emplace_back(s);
  }
  return out;
}

std::string EncodeSelection(const SelectionSpec& sel) {
  switch (sel.kind) {
    case SelectionSpec::Kind::kUniform:
      return StrFormat("u:%zu", sel.k);
    case SelectionSpec::Kind::kWithRespectToTime:
      return StrFormat("t:%zu:%.17g", sel.k, sel.time);
    case SelectionSpec::Kind::kUserList:
      return "l:" + StrJoin(sel.species, ",");
  }
  return "u:0";
}

Result<SelectionSpec> DecodeSelection(std::string_view encoded) {
  SelectionSpec sel;
  size_t colon = encoded.find(':');
  if (colon != 1 || encoded.empty()) {
    return Status::InvalidArgument(
        StrFormat("bad selection '%.*s'", static_cast<int>(encoded.size()),
                  encoded.data()));
  }
  char kind = encoded[0];
  std::string_view rest = encoded.substr(2);
  switch (kind) {
    case 'u': {
      sel.kind = SelectionSpec::Kind::kUniform;
      CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(rest));
      sel.k = static_cast<size_t>(k);
      return sel;
    }
    case 't': {
      sel.kind = SelectionSpec::Kind::kWithRespectToTime;
      size_t split = rest.find(':');
      if (split == std::string_view::npos) {
        return Status::InvalidArgument(
            StrFormat("time selection needs k and time: '%.*s'",
                      static_cast<int>(encoded.size()), encoded.data()));
      }
      CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(rest.substr(0, split)));
      CRIMSON_ASSIGN_OR_RETURN(double time,
                               ParseDouble(rest.substr(split + 1)));
      sel.k = static_cast<size_t>(k);
      sel.time = time;
      return sel;
    }
    case 'l': {
      sel.kind = SelectionSpec::Kind::kUserList;
      sel.species = SplitCsv(rest);
      if (sel.species.empty()) {
        return Status::InvalidArgument("user-list selection has no species");
      }
      return sel;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown selection kind '%c'", kind));
  }
}

}  // namespace

Status ValidateExperimentSpec(const ExperimentSpec& spec) {
  if (spec.algorithms.empty()) {
    return Status::InvalidArgument("experiment spec needs >= 1 algorithm");
  }
  if (spec.selections.empty()) {
    return Status::InvalidArgument("experiment spec needs >= 1 selection");
  }
  if (spec.replicates == 0) {
    return Status::InvalidArgument("experiment spec needs >= 1 replicate");
  }
  // ',' ';' '|' are spec-grammar separators; '&' would corrupt the
  // k=v&k=v history params the encoded spec is embedded in.
  constexpr char kMetaChars[] = ",;|&";
  for (const std::string& name : spec.algorithms) {
    if (name.empty() || name.find_first_of(kMetaChars) != std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("bad algorithm name '%s'", name.c_str()));
    }
  }
  for (const SelectionSpec& sel : spec.selections) {
    if (sel.kind == SelectionSpec::Kind::kUserList) {
      for (const std::string& s : sel.species) {
        if (s.find_first_of(kMetaChars) != std::string::npos) {
          return Status::InvalidArgument(
              StrFormat("species name '%s' cannot be encoded", s.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

std::string EncodeExperimentSpec(const ExperimentSpec& spec) {
  std::string sels;
  for (size_t i = 0; i < spec.selections.size(); ++i) {
    if (i) sels.push_back('|');
    sels += EncodeSelection(spec.selections[i]);
  }
  return StrFormat("algs=%s;reps=%zu;triplets=%d;sels=%s",
                   StrJoin(spec.algorithms, ",").c_str(), spec.replicates,
                   spec.compute_triplets ? 1 : 0, sels.c_str());
}

Result<ExperimentSpec> DecodeExperimentSpec(std::string_view encoded) {
  ExperimentSpec spec;
  spec.compute_triplets = false;
  bool have_algs = false, have_sels = false;
  for (std::string_view field : StrSplit(encoded, ';')) {
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = field.substr(0, eq);
    std::string_view value = field.substr(eq + 1);
    if (key == "algs") {
      spec.algorithms = SplitCsv(value);
      have_algs = true;
    } else if (key == "reps") {
      CRIMSON_ASSIGN_OR_RETURN(int64_t reps, ParseInt64(value));
      if (reps < 1) {
        return Status::InvalidArgument("replicates must be >= 1");
      }
      spec.replicates = static_cast<size_t>(reps);
    } else if (key == "triplets") {
      spec.compute_triplets = value == "1";
    } else if (key == "sels") {
      for (std::string_view sel : StrSplit(value, '|')) {
        if (sel.empty()) continue;
        CRIMSON_ASSIGN_OR_RETURN(SelectionSpec decoded, DecodeSelection(sel));
        spec.selections.push_back(std::move(decoded));
      }
      have_sels = true;
    }
  }
  if (!have_algs || !have_sels) {
    return Status::InvalidArgument(
        StrFormat("experiment spec missing algs/sels: '%.*s'",
                  static_cast<int>(encoded.size()), encoded.data()));
  }
  CRIMSON_RETURN_IF_ERROR(ValidateExperimentSpec(spec));
  return spec;
}

Result<DecodedExperimentParams> DecodeExperimentParams(
    std::string_view params) {
  std::map<std::string, std::string, std::less<>> kv;
  for (std::string_view pair : StrSplit(params, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    kv[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
  }
  DecodedExperimentParams out;
  out.tree_name = kv["tree"];
  if (out.tree_name.empty()) {
    return Status::InvalidArgument(
        StrFormat("experiment params missing tree name: '%.*s'",
                  static_cast<int>(params.size()), params.data()));
  }
  if (auto it = kv.find("id"); it != kv.end()) {
    CRIMSON_ASSIGN_OR_RETURN(int64_t id, ParseInt64(it->second));
    out.experiment_id = id;
  }
  if (auto it = kv.find("spec"); it != kv.end()) {
    CRIMSON_ASSIGN_OR_RETURN(out.spec, DecodeExperimentSpec(it->second));
    return out;
  }
  // Pre-Experiment-API "benchmark" row: algorithm name + uniform k.
  auto alg = kv.find("algorithm");
  auto k = kv.find("k");
  if (alg == kv.end() || k == kv.end()) {
    return Status::InvalidArgument(
        StrFormat("cannot decode experiment params '%.*s'",
                  static_cast<int>(params.size()), params.data()));
  }
  CRIMSON_ASSIGN_OR_RETURN(int64_t sample_k, ParseInt64(k->second));
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = static_cast<size_t>(sample_k);
  out.spec.algorithms = {alg->second};
  out.spec.selections = {sel};
  out.spec.replicates = 1;
  out.spec.compute_triplets = false;
  return out;
}

std::vector<ExperimentCell> AggregateCells(
    const ExperimentSpec& spec, const std::vector<BenchmarkRun>& runs) {
  std::vector<ExperimentCell> cells;
  cells.reserve(spec.algorithms.size() * spec.selections.size());
  size_t job = 0;
  for (const std::string& algorithm : spec.algorithms) {
    for (size_t s = 0; s < spec.selections.size(); ++s) {
      ExperimentCell cell;
      cell.algorithm = algorithm;
      cell.selection_index = s;
      cell.min_rf_normalized = 1.0;
      for (size_t rep = 0; rep < spec.replicates; ++rep, ++job) {
        if (job >= runs.size()) break;
        const BenchmarkRun& run = runs[job];
        ++cell.replicates;
        cell.mean_rf_normalized += run.rf.normalized;
        cell.min_rf_normalized =
            std::min(cell.min_rf_normalized, run.rf.normalized);
        cell.max_rf_normalized =
            std::max(cell.max_rf_normalized, run.rf.normalized);
        cell.mean_triplet_fraction += run.triplets.fraction;
        cell.total_seconds += run.sample_seconds + run.project_seconds +
                              run.reconstruct_seconds + run.compare_seconds;
      }
      if (cell.replicates > 0) {
        cell.mean_rf_normalized /= static_cast<double>(cell.replicates);
        cell.mean_triplet_fraction /= static_cast<double>(cell.replicates);
      } else {
        cell.min_rf_normalized = 0;
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::string SummarizeExperiment(const ExperimentReport& report) {
  const ExperimentCell* best = nullptr;
  for (const ExperimentCell& cell : report.cells) {
    if (best == nullptr ||
        cell.mean_rf_normalized < best->mean_rf_normalized) {
      best = &cell;
    }
  }
  return StrFormat(
      "algorithms=%zu selections=%zu replicates=%zu runs=%zu best=%s "
      "rf=%.4f",
      report.spec.algorithms.size(), report.spec.selections.size(),
      report.spec.replicates, report.runs.size(),
      best != nullptr ? best->algorithm.c_str() : "-",
      best != nullptr ? best->mean_rf_normalized : 0.0);
}

std::string RenderExperimentReport(const ExperimentReport& report) {
  std::string out = StrFormat(
      "experiment %lld on '%s': %s\n",
      static_cast<long long>(report.experiment_id),
      report.tree_name.c_str(), SummarizeExperiment(report).c_str());
  for (const ExperimentCell& cell : report.cells) {
    const SelectionSpec& sel = report.spec.selections[cell.selection_index];
    out += StrFormat(
        "  %-18s sel#%zu k=%-5zu reps=%zu rf_norm mean=%.4f "
        "[%.4f, %.4f] triplets=%.4f\n",
        cell.algorithm.c_str(), cell.selection_index,
        sel.kind == SelectionSpec::Kind::kUserList ? sel.species.size()
                                                   : sel.k,
        cell.replicates, cell.mean_rf_normalized, cell.min_rf_normalized,
        cell.max_rf_normalized, cell.mean_triplet_fraction);
  }
  return out;
}

}  // namespace crimson
