// The typed Experiment API value layer. An ExperimentSpec describes a
// whole evaluation workload -- algorithm registry names x a selection
// grid x replicates -- as a serializable value, so experiments can be
// stored in the Experiment Repository and replayed byte-identically
// (Crimson::RerunExperiment). This is the evaluation-side counterpart
// of the typed QueryRequest layer: raw ReconstructionAlgorithm
// references are replaced by registry names, and one dispatch path
// (Crimson::RunExperiment) runs, records, and persists every
// evaluation.

#ifndef CRIMSON_CRIMSON_EXPERIMENT_SPEC_H_
#define CRIMSON_CRIMSON_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "crimson/benchmark_manager.h"

namespace crimson {

/// A full evaluation workload over one gold-standard tree: every
/// algorithm in `algorithms` (registry names, see AlgorithmRegistry)
/// is evaluated against every selection in `selections`, `replicates`
/// times. Jobs are ordered algorithm-major, selection next, replicate
/// innermost; that order defines both the RNG ticket assignment and
/// the persisted run ordinals.
struct ExperimentSpec {
  std::vector<std::string> algorithms;
  std::vector<SelectionSpec> selections;
  size_t replicates = 1;
  /// Adds the O(k^3) triplet-distance score to each run.
  bool compute_triplets = true;

  /// Total number of benchmark runs the spec expands to.
  size_t job_count() const {
    return algorithms.size() * selections.size() * replicates;
  }
};

/// Aggregate over the replicates of one (algorithm, selection) grid
/// cell.
struct ExperimentCell {
  std::string algorithm;       // registry name from the spec
  size_t selection_index = 0;  // into spec.selections
  size_t replicates = 0;
  double mean_rf_normalized = 0;
  double min_rf_normalized = 0;
  double max_rf_normalized = 0;
  double mean_triplet_fraction = 0;  // 0 when triplets were not computed
  double total_seconds = 0;          // summed stage timings of the cell
};

/// The result of running an ExperimentSpec. `runs` holds every
/// BenchmarkRun in job order; `cells` the per-cell aggregates in the
/// same algorithm-major order.
struct ExperimentReport {
  int64_t experiment_id = 0;  // assigned by the Experiment Repository
  std::string tree_name;
  ExperimentSpec spec;
  /// RNG provenance: run i drew from Rng(QuerySeed(seed, base_ticket
  /// + i)). Persisted so RerunExperiment replays byte-identically.
  uint64_t seed = 0;
  uint64_t base_ticket = 0;
  std::vector<BenchmarkRun> runs;
  std::vector<ExperimentCell> cells;
  double total_seconds = 0;
};

/// Validates shape: at least one algorithm and one selection,
/// replicates >= 1, no empty algorithm names.
Status ValidateExperimentSpec(const ExperimentSpec& spec);

/// Serializes a spec as `algs=nj,upgma;reps=3;triplets=1;sels=u:32|
/// t:16:0.5|l:Syn,Lla`. Selection grammar: `u:<k>` uniform, `t:<k>:
/// <time>` with-respect-to-time, `l:<sp1>,<sp2>,...` user list.
/// Algorithm names must not contain ',' or ';'; species names must not
/// contain ',', ';' or '|' (the same CSV limitation the query history
/// encoding has).
std::string EncodeExperimentSpec(const ExperimentSpec& spec);

/// Inverse of EncodeExperimentSpec.
Result<ExperimentSpec> DecodeExperimentSpec(std::string_view encoded);

/// A decoded "benchmark" / "experiment" history entry.
struct DecodedExperimentParams {
  std::string tree_name;
  /// Present for "experiment" entries: the persisted experiment to
  /// replay exactly (stored seed + tickets).
  std::optional<int64_t> experiment_id;
  /// The spec to (re)run when no experiment id is stored.
  ExperimentSpec spec;
};

/// Decodes the `k=v&k=v` history parameter string of a "benchmark" or
/// "experiment" entry. Accepts both the current format (which embeds
/// `spec=...`) and pre-Experiment-API "benchmark" rows
/// (`tree=...&algorithm=...&k=...`), which map onto a 1-replicate
/// uniform-selection spec.
Result<DecodedExperimentParams> DecodeExperimentParams(
    std::string_view params);

/// Per-cell aggregates of `runs` (which must be in `spec` job order).
std::vector<ExperimentCell> AggregateCells(
    const ExperimentSpec& spec, const std::vector<BenchmarkRun>& runs);

/// One-line report summary for the query history ("algorithms=2
/// selections=1 replicates=3 best=neighbor_joining rf=0.1250").
std::string SummarizeExperiment(const ExperimentReport& report);

/// Multi-line human-readable rendering (one row per cell), used by
/// RerunQuery and the examples.
std::string RenderExperimentReport(const ExperimentReport& report);

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_EXPERIMENT_SPEC_H_
