#include "crimson/query_request.h"

#include <map>

#include "common/overloaded.h"
#include "common/string_util.h"
#include "tree/newick.h"

namespace crimson {

namespace {

std::string JoinSpecies(const std::vector<std::string>& species) {
  std::string out;
  for (size_t i = 0; i < species.size(); ++i) {
    if (i) out.push_back(',');
    out += species[i];
  }
  return out;
}

std::vector<std::string> SplitSpecies(std::string_view joined) {
  std::vector<std::string> out;
  for (std::string_view s : StrSplit(joined, ',')) {
    if (!s.empty()) out.emplace_back(s);
  }
  return out;
}

}  // namespace

std::string_view QueryKindName(const QueryRequest& request) {
  return std::visit(
      Overloaded{
          [](const LcaQuery&) { return std::string_view("lca"); },
          [](const ProjectQuery&) { return std::string_view("project"); },
          [](const SampleUniformQuery&) {
            return std::string_view("sample_uniform");
          },
          [](const SampleTimeQuery&) {
            return std::string_view("sample_time");
          },
          [](const CladeQuery&) { return std::string_view("clade"); },
          [](const PatternQuery&) {
            return std::string_view("pattern_match");
          },
      },
      request);
}

std::string SummarizeResult(const QueryResult& result) {
  return std::visit(
      Overloaded{
          [](const LcaAnswer& a) {
            return StrFormat("lca node=%u name=%s", a.node, a.name.c_str());
          },
          [](const ProjectAnswer& a) {
            return StrFormat("projection nodes=%zu", a.projection.size());
          },
          [](const SampleAnswer& a) {
            return StrFormat("sampled %zu species", a.species.size());
          },
          [](const CladeAnswer& a) {
            return StrFormat("clade root=%u nodes=%zu leaves=%zu", a.root,
                             a.node_count, a.leaf_count);
          },
          [](const PatternAnswer& a) {
            return StrFormat("exact=%d rf=%.4f", a.exact ? 1 : 0,
                             a.rf_normalized);
          },
      },
      result);
}

std::string RenderResult(const QueryResult& result) {
  return std::visit(
      Overloaded{
          [](const LcaAnswer& a) {
            return StrFormat("lca node=%u name=%s", a.node, a.name.c_str());
          },
          [](const ProjectAnswer& a) { return WriteNewick(a.projection); },
          [](const SampleAnswer& a) { return JoinSpecies(a.species); },
          [](const CladeAnswer& a) {
            return StrFormat("clade root=%u nodes=%zu", a.root, a.node_count);
          },
          [](const PatternAnswer& a) {
            return StrFormat("exact=%d rf=%.4f", a.exact ? 1 : 0,
                             a.rf_normalized);
          },
      },
      result);
}

std::string EncodeQueryParams(const std::string& tree_name,
                              const QueryRequest& request) {
  return std::visit(
      Overloaded{
          [&](const LcaQuery& q) {
            return StrFormat("tree=%s&a=%s&b=%s", tree_name.c_str(),
                             q.a.c_str(), q.b.c_str());
          },
          [&](const ProjectQuery& q) {
            return StrFormat("tree=%s&species=%s", tree_name.c_str(),
                             JoinSpecies(q.species).c_str());
          },
          [&](const SampleUniformQuery& q) {
            return StrFormat("tree=%s&k=%zu", tree_name.c_str(), q.k);
          },
          [&](const SampleTimeQuery& q) {
            return StrFormat("tree=%s&k=%zu&time=%.17g", tree_name.c_str(),
                             q.k, q.time);
          },
          [&](const CladeQuery& q) {
            return StrFormat("tree=%s&species=%s", tree_name.c_str(),
                             JoinSpecies(q.species).c_str());
          },
          [&](const PatternQuery& q) {
            return StrFormat("tree=%s&pattern=%s&weights=%d",
                             tree_name.c_str(), q.pattern_newick.c_str(),
                             q.match_weights ? 1 : 0);
          },
      },
      request);
}

Result<std::pair<std::string, QueryRequest>> DecodeQueryRequest(
    const std::string& kind, const std::string& params) {
  std::map<std::string, std::string> kv;
  for (std::string_view pair : StrSplit(params, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    kv[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
  }
  std::string tree = kv["tree"];
  if (tree.empty()) {
    return Status::InvalidArgument(
        StrFormat("query params missing tree name: '%s'", params.c_str()));
  }
  if (kind == "lca") {
    return std::make_pair(std::move(tree),
                          QueryRequest(LcaQuery{kv["a"], kv["b"]}));
  }
  if (kind == "project") {
    return std::make_pair(
        std::move(tree), QueryRequest(ProjectQuery{SplitSpecies(kv["species"])}));
  }
  if (kind == "sample_uniform") {
    CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(kv["k"]));
    return std::make_pair(
        std::move(tree),
        QueryRequest(SampleUniformQuery{static_cast<size_t>(k)}));
  }
  if (kind == "sample_time") {
    CRIMSON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(kv["k"]));
    CRIMSON_ASSIGN_OR_RETURN(double t, ParseDouble(kv["time"]));
    return std::make_pair(
        std::move(tree),
        QueryRequest(SampleTimeQuery{static_cast<size_t>(k), t}));
  }
  if (kind == "clade") {
    return std::make_pair(
        std::move(tree), QueryRequest(CladeQuery{SplitSpecies(kv["species"])}));
  }
  if (kind == "pattern_match") {
    return std::make_pair(
        std::move(tree),
        QueryRequest(PatternQuery{kv["pattern"], kv["weights"] == "1"}));
  }
  return Status::Unimplemented(
      StrFormat("cannot decode query kind '%s'", kind.c_str()));
}

}  // namespace crimson
