// The typed query layer of the Crimson session API. Every structure
// query is a value in the QueryRequest sum type; the facade executes
// all of them through one dispatch path (Crimson::Execute), which is
// also the single place where query history is recorded. Because the
// request itself is stored (serialized) in the Query Repository,
// RerunQuery replays the typed value instead of re-parsing per-kind
// strings.

#ifndef CRIMSON_CRIMSON_QUERY_REQUEST_H_
#define CRIMSON_CRIMSON_QUERY_REQUEST_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

// -- requests ---------------------------------------------------------------

/// LCA of two species (paper §2.1).
struct LcaQuery {
  std::string a;
  std::string b;
};

/// Projection of the tree induced by the named species (Fig. 2).
struct ProjectQuery {
  std::vector<std::string> species;
};

/// Uniform random species sample.
struct SampleUniformQuery {
  size_t k = 0;
};

/// Sampling with respect to evolutionary time (paper §2.2).
struct SampleTimeQuery {
  size_t k = 0;
  double time = 0;
};

/// Minimal spanning clade of the named species.
struct CladeQuery {
  std::vector<std::string> species;
};

/// Tree pattern match against a Newick pattern (paper §2.2).
struct PatternQuery {
  std::string pattern_newick;
  bool match_weights = false;
};

using QueryRequest =
    std::variant<LcaQuery, ProjectQuery, SampleUniformQuery, SampleTimeQuery,
                 CladeQuery, PatternQuery>;

/// Stable kind tag ("lca", "project", "sample_uniform", "sample_time",
/// "clade", "pattern_match") -- the Query Repository key, unchanged
/// from the string-API era so old histories stay replayable.
std::string_view QueryKindName(const QueryRequest& request);

// -- results ----------------------------------------------------------------

struct LcaAnswer {
  NodeId node = kNoNode;
  std::string name;
};

struct ProjectAnswer {
  PhyloTree projection;
};

struct SampleAnswer {
  std::vector<std::string> species;
};

struct CladeAnswer {
  NodeId root = kNoNode;
  size_t node_count = 0;
  size_t leaf_count = 0;
};

struct PatternAnswer {
  bool exact = false;
  double rf_normalized = 0.0;  // similarity of pattern vs projection
  PhyloTree projection;
};

using QueryResult =
    std::variant<LcaAnswer, ProjectAnswer, SampleAnswer, CladeAnswer,
                 PatternAnswer>;

/// One-line result summary stored in the query history (identical
/// strings to the pre-handle facade).
std::string SummarizeResult(const QueryResult& result);

/// Full textual rendering, used by RerunQuery: Newick for projections,
/// the comma-joined species list for samples, the summary otherwise.
std::string RenderResult(const QueryResult& result);

// -- history (de)serialization ----------------------------------------------

/// Encodes a request as the history "k=v&k=v" parameter string,
/// byte-compatible with the strings the string-keyed facade wrote, so
/// databases written before the session API replay unchanged.
std::string EncodeQueryParams(const std::string& tree_name,
                              const QueryRequest& request);

/// Decodes a history entry back into (tree name, typed request).
Result<std::pair<std::string, QueryRequest>> DecodeQueryRequest(
    const std::string& kind, const std::string& params);

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_QUERY_REQUEST_H_
