#include "crimson/repositories.h"

#include <algorithm>
#include <chrono>

#include "common/coding.h"
#include "common/log.h"
#include "common/string_util.h"

namespace crimson {

namespace {

// Packed tree blob format version. Bump on layout changes; decoders
// reject unknown versions and LoadTree falls back to the row scan.
constexpr uint32_t kPackedTreeVersion = 1;

}  // namespace

void EncodePackedTree(const PhyloTree& tree, std::string* dst) {
  const size_t n = tree.size();
  PutVarint32(dst, kPackedTreeVersion);
  PutVarint64(dst, n);
  PutVarint64(dst, tree.name_arena().size());
  dst->reserve(dst->size() + n * 16 + tree.name_arena().size());
  for (NodeId p : tree.parents()) PutFixed32(dst, p);
  for (double e : tree.edge_lengths()) PutDouble(dst, e);
  for (uint32_t off : tree.name_offsets()) PutFixed32(dst, off);
  dst->append(tree.name_arena());
}

Result<PhyloTree> DecodePackedTree(Slice blob) {
  uint32_t version = 0;
  uint64_t count = 0, arena_size = 0;
  if (!GetVarint32(&blob, &version) || !GetVarint64(&blob, &count) ||
      !GetVarint64(&blob, &arena_size)) {
    return Status::Corruption("packed tree blob: truncated header");
  }
  if (version != kPackedTreeVersion) {
    return Status::Corruption(
        StrFormat("packed tree blob: unknown version %u", version));
  }
  // Fixed-width columns let the size check precede any allocation.
  if (blob.size() != count * 16 + arena_size) {
    return Status::Corruption("packed tree blob: size mismatch");
  }
  std::vector<NodeId> parents(count);
  std::vector<double> edges(count);
  std::vector<uint32_t> offsets(count);
  for (uint64_t i = 0; i < count; ++i) GetFixed32(&blob, &parents[i]);
  for (uint64_t i = 0; i < count; ++i) GetDouble(&blob, &edges[i]);
  for (uint64_t i = 0; i < count; ++i) GetFixed32(&blob, &offsets[i]);
  std::string arena(blob.data(), blob.size());
  return PhyloTree::FromPacked(std::move(parents), std::move(edges),
                               std::move(offsets), std::move(arena));
}

namespace {

/// nodes/subtrees point-access key: (tree_id << 32) | local id.
int64_t PackKey(int64_t tree_id, uint32_t local) {
  return (tree_id << 32) | static_cast<int64_t>(local);
}

Result<Table> OpenOrCreate(Database* db, const std::string& name,
                           const Schema& schema,
                           const std::vector<IndexSpec>& indexes) {
  CRIMSON_ASSIGN_OR_RETURN(bool exists, db->HasTable(name));
  if (exists) return db->OpenTable(name);
  return db->CreateTable(name, schema, indexes);
}

}  // namespace

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// TreeRepository
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TreeRepository>> TreeRepository::Open(Database* db) {
  auto repo = std::unique_ptr<TreeRepository>(new TreeRepository(db));

  Schema trees_schema({{"tree_id", ColumnType::kInt64},
                       {"name", ColumnType::kString},
                       {"n_nodes", ColumnType::kInt64},
                       {"n_leaves", ColumnType::kInt64},
                       {"f", ColumnType::kInt64},
                       {"max_depth", ColumnType::kInt64}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table trees,
      OpenOrCreate(db, "trees", trees_schema,
                   {{"trees_by_id", "tree_id", /*unique=*/true},
                    {"trees_by_name", "name", /*unique=*/true}}));
  repo->trees_ = std::make_unique<Table>(std::move(trees));

  Schema nodes_schema({{"node_key", ColumnType::kInt64},
                       {"tree_id", ColumnType::kInt64},
                       {"name", ColumnType::kString},
                       {"parent", ColumnType::kInt64},
                       {"edge_length", ColumnType::kDouble},
                       {"root_weight", ColumnType::kDouble},
                       {"subtree", ColumnType::kInt64},
                       {"local_depth", ColumnType::kInt64}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table nodes,
      OpenOrCreate(db, "nodes", nodes_schema,
                   {{"nodes_by_key", "node_key", /*unique=*/true},
                    {"nodes_by_tree", "tree_id", /*unique=*/false},
                    {"nodes_by_name", "name", /*unique=*/false},
                    {"nodes_by_weight", "root_weight", /*unique=*/false}}));
  repo->nodes_ = std::make_unique<Table>(std::move(nodes));

  Schema subtrees_schema({{"subtree_key", ColumnType::kInt64},
                          {"tree_id", ColumnType::kInt64},
                          {"source_node", ColumnType::kInt64},
                          {"root_node", ColumnType::kInt64}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table subtrees,
      OpenOrCreate(db, "subtrees", subtrees_schema,
                   {{"subtrees_by_key", "subtree_key", /*unique=*/true},
                    {"subtrees_by_tree", "tree_id", /*unique=*/false}}));
  repo->subtrees_ = std::make_unique<Table>(std::move(subtrees));

  Schema labels_schema({{"tree_id", ColumnType::kInt64},
                        {"scheme_blob", ColumnType::kBytes}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table labels,
      OpenOrCreate(db, "labels", labels_schema,
                   {{"labels_by_tree", "tree_id", /*unique=*/true}}));
  repo->labels_ = std::make_unique<Table>(std::move(labels));

  Schema tree_blobs_schema({{"tree_id", ColumnType::kInt64},
                            {"tree_blob", ColumnType::kBytes}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table tree_blobs,
      OpenOrCreate(db, "tree_blobs", tree_blobs_schema,
                   {{"tree_blobs_by_tree", "tree_id", /*unique=*/true}}));
  repo->tree_blobs_ = std::make_unique<Table>(std::move(tree_blobs));
  return repo;
}

Result<int64_t> TreeRepository::StoreTree(const std::string& name,
                                          const PhyloTree& tree,
                                          const LayeredDeweyScheme& scheme) {
  if (tree.empty()) {
    return Status::InvalidArgument("cannot store an empty tree");
  }
  // Allocate the next tree id (small table scan).
  int64_t tree_id = 1;
  CRIMSON_RETURN_IF_ERROR(
      trees_->Scan([&](const RecordId&, const Row& row) {
        tree_id = std::max(tree_id, std::get<int64_t>(row[0]) + 1);
        return true;
      }));

  Row meta = {tree_id,
              name,
              static_cast<int64_t>(tree.size()),
              static_cast<int64_t>(tree.LeafCount()),
              static_cast<int64_t>(scheme.f()),
              static_cast<int64_t>(tree.MaxDepth())};
  CRIMSON_RETURN_IF_ERROR(trees_->Insert(meta).status());

  // Batch-encode all node and subtree rows. Node keys pack
  // (tree_id << 32 | node), so arena order already emits sorted key
  // runs for the point-access index -- exactly what BulkAppend wants.
  const bool bulk = tree.size() >= bulk_load_threshold_;
  std::vector<double> weights = tree.RootPathWeights();
  std::vector<Row> node_rows;
  node_rows.reserve(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    node_rows.push_back(
        {PackKey(tree_id, n),
         tree_id,
         std::string(tree.name(n)),
         static_cast<int64_t>(
             n == tree.root() ? -1 : static_cast<int64_t>(tree.parent(n))),
         tree.edge_length(n),
         weights[n],
         static_cast<int64_t>(scheme.SubtreeOf(n)),
         static_cast<int64_t>(scheme.LocalDepth(n))});
  }
  std::vector<Row> subtree_rows;
  subtree_rows.reserve(scheme.NumSubtrees(0));
  for (uint32_t s = 0; s < scheme.NumSubtrees(0); ++s) {
    NodeId src = scheme.SourceOfSubtree(s);
    subtree_rows.push_back(
        {PackKey(tree_id, s), tree_id,
         static_cast<int64_t>(src == kNoNode ? -1
                                             : static_cast<int64_t>(src)),
         static_cast<int64_t>(0)});
  }
  if (bulk) {
    CRIMSON_RETURN_IF_ERROR(nodes_->BulkAppend(node_rows).status());
    CRIMSON_RETURN_IF_ERROR(subtrees_->BulkAppend(subtree_rows).status());
  } else {
    for (const Row& row : node_rows) {
      CRIMSON_RETURN_IF_ERROR(nodes_->Insert(row).status());
    }
    for (const Row& row : subtree_rows) {
      CRIMSON_RETURN_IF_ERROR(subtrees_->Insert(row).status());
    }
  }
  if (persist_labels_) {
    std::string blob;
    scheme.EncodeTo(&blob);
    Row row = {tree_id, std::move(blob)};
    CRIMSON_RETURN_IF_ERROR(labels_->Insert(row).status());
  }
  {
    // Packed tree image: LoadTree decodes this in two memcpy-ish
    // passes instead of re-interning every name from node rows.
    std::string blob;
    EncodePackedTree(tree, &blob);
    Row row = {tree_id, std::move(blob)};
    CRIMSON_RETURN_IF_ERROR(tree_blobs_->Insert(row).status());
  }
  return tree_id;
}

Result<std::string> TreeRepository::LoadSchemeBlob(int64_t tree_id) const {
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> rids,
                           labels_->IndexLookup("labels_by_tree", tree_id));
  if (rids.empty()) {
    return Status::NotFound(StrFormat("no stored labels for tree %lld",
                                      static_cast<long long>(tree_id)));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(labels_->Get(rids[0], &row));
  return std::move(std::get<std::string>(row[1]));
}

Result<LayeredDeweyScheme> TreeRepository::LoadScheme(int64_t tree_id) const {
  CRIMSON_ASSIGN_OR_RETURN(std::string blob, LoadSchemeBlob(tree_id));
  LayeredDeweyScheme scheme;
  CRIMSON_RETURN_IF_ERROR(scheme.DecodeFrom(Slice(blob)));
  return scheme;
}

Result<TreeInfo> TreeRepository::GetTreeInfo(const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> rids,
                           trees_->IndexLookup("trees_by_name", name));
  if (rids.empty()) {
    return Status::NotFound(StrFormat("no tree named '%s'", name.c_str()));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(trees_->Get(rids[0], &row));
  TreeInfo info;
  info.tree_id = std::get<int64_t>(row[0]);
  info.name = std::get<std::string>(row[1]);
  info.n_nodes = std::get<int64_t>(row[2]);
  info.n_leaves = std::get<int64_t>(row[3]);
  info.f = std::get<int64_t>(row[4]);
  info.max_depth = std::get<int64_t>(row[5]);
  return info;
}

Result<std::vector<TreeInfo>> TreeRepository::ListTrees() const {
  std::vector<TreeInfo> out;
  CRIMSON_RETURN_IF_ERROR(trees_->Scan([&](const RecordId&, const Row& row) {
    TreeInfo info;
    info.tree_id = std::get<int64_t>(row[0]);
    info.name = std::get<std::string>(row[1]);
    info.n_nodes = std::get<int64_t>(row[2]);
    info.n_leaves = std::get<int64_t>(row[3]);
    info.f = std::get<int64_t>(row[4]);
    info.max_depth = std::get<int64_t>(row[5]);
    out.push_back(std::move(info));
    return true;
  }));
  std::sort(out.begin(), out.end(),
            [](const TreeInfo& a, const TreeInfo& b) {
              return a.tree_id < b.tree_id;
            });
  return out;
}

Result<PhyloTree> TreeRepository::LoadTree(int64_t tree_id) const {
  // Fast path: the packed blob written by StoreTree. Name bytes land in
  // the arena via one append; no per-node string construction. Absent
  // (pre-blob database) or unusable blobs fall through to the row scan.
  {
    Result<std::vector<RecordId>> rids =
        tree_blobs_->IndexLookup("tree_blobs_by_tree", tree_id);
    if (rids.ok() && !rids->empty()) {
      Row row;
      Status got = tree_blobs_->Get((*rids)[0], &row);
      if (got.ok()) {
        Result<PhyloTree> tree =
            DecodePackedTree(Slice(std::get<std::string>(row[1])));
        if (tree.ok()) return tree;
        CRIMSON_LOG(kWarning)
            << "packed blob for tree " << tree_id << " unusable ("
            << tree.status() << "); rebuilding from node rows";
      }
    }
  }
  // Range scan the point-access index over this tree's key interval:
  // keys are (tree_id << 32 | node), so nodes come back in arena order
  // (parents before children) and the tree rebuilds in one pass.
  std::string lower, upper;
  CRIMSON_RETURN_IF_ERROR(
      nodes_->EncodeKeyFor("nodes_by_key", PackKey(tree_id, 0), &lower));
  CRIMSON_RETURN_IF_ERROR(
      nodes_->EncodeKeyFor("nodes_by_key", PackKey(tree_id + 1, 0), &upper));
  PhyloTree tree;
  Status row_status;
  Status scan_status = nodes_->IndexRangeScan(
      "nodes_by_key", lower, upper, [&](const Slice&, RecordId rid) {
        Row row;
        row_status = nodes_->Get(rid, &row);
        if (!row_status.ok()) return false;
        int64_t parent = std::get<int64_t>(row[3]);
        const std::string& nm = std::get<std::string>(row[2]);
        double edge = std::get<double>(row[4]);
        if (parent < 0) {
          tree.AddRoot(nm, edge);
        } else {
          tree.AddChild(static_cast<NodeId>(parent), nm, edge);
        }
        return true;
      });
  CRIMSON_RETURN_IF_ERROR(row_status);
  CRIMSON_RETURN_IF_ERROR(scan_status);
  if (tree.empty()) {
    return Status::NotFound(StrFormat("no tree with id %lld",
                                      static_cast<long long>(tree_id)));
  }
  CRIMSON_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

Result<NodeId> TreeRepository::FindNodeByName(int64_t tree_id,
                                              const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> rids,
                           nodes_->IndexLookup("nodes_by_name", name));
  for (const RecordId& rid : rids) {
    Row row;
    CRIMSON_RETURN_IF_ERROR(nodes_->Get(rid, &row));
    if (std::get<int64_t>(row[1]) == tree_id) {
      return static_cast<NodeId>(std::get<int64_t>(row[0]) & 0xffffffffLL);
    }
  }
  return Status::NotFound(
      StrFormat("species '%s' not in tree %lld", name.c_str(),
                static_cast<long long>(tree_id)));
}

Result<TreeRepository::NodeRow> TreeRepository::GetNode(int64_t tree_id,
                                                        NodeId node) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      nodes_->IndexLookup("nodes_by_key", PackKey(tree_id, node)));
  if (rids.empty()) {
    return Status::NotFound(StrFormat("node %u not in tree %lld", node,
                                      static_cast<long long>(tree_id)));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(nodes_->Get(rids[0], &row));
  NodeRow out;
  out.node = node;
  int64_t parent = std::get<int64_t>(row[3]);
  out.parent = parent < 0 ? kNoNode : static_cast<NodeId>(parent);
  out.name = std::get<std::string>(row[2]);
  out.edge_length = std::get<double>(row[4]);
  out.root_weight = std::get<double>(row[5]);
  out.subtree = static_cast<uint32_t>(std::get<int64_t>(row[6]));
  out.local_depth = static_cast<uint32_t>(std::get<int64_t>(row[7]));
  return out;
}

Result<std::vector<NodeId>> TreeRepository::NodesInTimeRange(
    int64_t tree_id, double lo, double hi) const {
  std::string lower, upper;
  CRIMSON_RETURN_IF_ERROR(
      nodes_->EncodeKeyFor("nodes_by_weight", lo, &lower));
  CRIMSON_RETURN_IF_ERROR(
      nodes_->EncodeKeyFor("nodes_by_weight", hi, &upper));
  std::vector<NodeId> out;
  Status row_status;
  Status scan_status = nodes_->IndexRangeScan(
      "nodes_by_weight", lower, upper, [&](const Slice&, RecordId rid) {
        Row row;
        row_status = nodes_->Get(rid, &row);
        if (!row_status.ok()) return false;
        if (std::get<int64_t>(row[1]) == tree_id) {
          out.push_back(
              static_cast<NodeId>(std::get<int64_t>(row[0]) & 0xffffffffLL));
        }
        return true;
      });
  CRIMSON_RETURN_IF_ERROR(row_status);
  CRIMSON_RETURN_IF_ERROR(scan_status);
  std::sort(out.begin(), out.end());
  return out;
}

Status TreeRepository::DropTree(int64_t tree_id) {
  // Collect record ids first (deleting during a scan is unsafe).
  std::vector<RecordId> doomed;
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> tree_rids,
                           trees_->IndexLookup("trees_by_id", tree_id));
  for (const RecordId& rid : tree_rids) {
    CRIMSON_RETURN_IF_ERROR(trees_->Delete(rid));
  }
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> node_rids,
                           nodes_->IndexLookup("nodes_by_tree", tree_id));
  for (const RecordId& rid : node_rids) {
    CRIMSON_RETURN_IF_ERROR(nodes_->Delete(rid));
  }
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> sub_rids,
                           subtrees_->IndexLookup("subtrees_by_tree", tree_id));
  for (const RecordId& rid : sub_rids) {
    CRIMSON_RETURN_IF_ERROR(subtrees_->Delete(rid));
  }
  CRIMSON_ASSIGN_OR_RETURN(std::vector<RecordId> label_rids,
                           labels_->IndexLookup("labels_by_tree", tree_id));
  for (const RecordId& rid : label_rids) {
    CRIMSON_RETURN_IF_ERROR(labels_->Delete(rid));
  }
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> blob_rids,
      tree_blobs_->IndexLookup("tree_blobs_by_tree", tree_id));
  for (const RecordId& rid : blob_rids) {
    CRIMSON_RETURN_IF_ERROR(tree_blobs_->Delete(rid));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SpeciesRepository
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SpeciesRepository>> SpeciesRepository::Open(
    Database* db) {
  auto repo = std::unique_ptr<SpeciesRepository>(new SpeciesRepository(db));
  Schema schema({{"tree_id", ColumnType::kInt64},
                 {"species", ColumnType::kString},
                 {"node", ColumnType::kInt64},
                 {"sequence", ColumnType::kBytes}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table t,
      OpenOrCreate(db, "species", schema,
                   {{"species_by_name", "species", /*unique=*/false},
                    {"species_by_tree", "tree_id", /*unique=*/false}}));
  repo->species_ = std::make_unique<Table>(std::move(t));
  return repo;
}

Status SpeciesRepository::Put(int64_t tree_id, const std::string& species,
                              NodeId node, const std::string& sequence) {
  Row row = {tree_id, species,
             static_cast<int64_t>(node == kNoNode
                                      ? -1
                                      : static_cast<int64_t>(node)),
             sequence};
  return species_->Insert(row).status();
}

Status SpeciesRepository::PutBatch(int64_t tree_id,
                                   std::vector<SpeciesEntry> entries) {
  std::vector<Row> rows;
  rows.reserve(entries.size());
  for (SpeciesEntry& e : entries) {
    rows.push_back({tree_id, std::move(e.species),
                    static_cast<int64_t>(
                        e.node == kNoNode ? -1 : static_cast<int64_t>(e.node)),
                    std::move(e.sequence)});
  }
  return species_->BulkAppend(rows).status();
}

Result<std::string> SpeciesRepository::GetSequence(
    const std::string& species) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      species_->IndexLookup("species_by_name", species));
  if (rids.empty()) {
    return Status::NotFound(
        StrFormat("no sequence for species '%s'", species.c_str()));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(species_->Get(rids[0], &row));
  return std::get<std::string>(row[3]);
}

Result<std::map<std::string, std::string>>
SpeciesRepository::SequencesForTree(int64_t tree_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      species_->IndexLookup("species_by_tree", tree_id));
  std::map<std::string, std::string> out;
  for (const RecordId& rid : rids) {
    Row row;
    CRIMSON_RETURN_IF_ERROR(species_->Get(rid, &row));
    out[std::get<std::string>(row[1])] = std::get<std::string>(row[3]);
  }
  return out;
}

Result<std::map<std::string, std::string>> SpeciesRepository::SequencesFor(
    const std::vector<std::string>& species) const {
  std::map<std::string, std::string> out;
  for (const std::string& s : species) {
    CRIMSON_ASSIGN_OR_RETURN(std::string seq, GetSequence(s));
    out[s] = std::move(seq);
  }
  return out;
}

Result<std::map<std::string, std::string>>
SpeciesRepository::SequencesForTreeSubset(
    int64_t tree_id, const std::vector<std::string>& names) const {
  // Name-index probes filtered by tree: GetSequence's "first match"
  // would be wrong here when the same species name exists under
  // several trees. Names with no row for this tree are simply absent
  // from the result (the cracked store records them as missing).
  std::map<std::string, std::string> out;
  for (const std::string& name : names) {
    CRIMSON_ASSIGN_OR_RETURN(
        std::vector<RecordId> rids,
        species_->IndexLookup("species_by_name", name));
    for (const RecordId& rid : rids) {
      Row row;
      CRIMSON_RETURN_IF_ERROR(species_->Get(rid, &row));
      if (std::get<int64_t>(row[0]) != tree_id) continue;
      // Last match wins, matching SequencesForTree's overwrite order.
      out[name] = std::get<std::string>(row[3]);
    }
  }
  return out;
}

Result<uint64_t> SpeciesRepository::CountForTree(int64_t tree_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      species_->IndexLookup("species_by_tree", tree_id));
  return static_cast<uint64_t>(rids.size());
}

Status SpeciesRepository::DropForTree(int64_t tree_id) {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      species_->IndexLookup("species_by_tree", tree_id));
  for (const RecordId& rid : rids) {
    CRIMSON_RETURN_IF_ERROR(species_->Delete(rid));
  }
  return Status::OK();
}

Result<uint64_t> SpeciesRepository::Count() const {
  return species_->row_count();
}

// ---------------------------------------------------------------------------
// ExperimentRepository
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ExperimentRepository>> ExperimentRepository::Open(
    Database* db) {
  auto repo =
      std::unique_ptr<ExperimentRepository>(new ExperimentRepository(db));

  Schema experiments_schema({{"experiment_id", ColumnType::kInt64},
                             {"created", ColumnType::kInt64},
                             {"tree_name", ColumnType::kString},
                             {"spec", ColumnType::kString},
                             {"seed", ColumnType::kInt64},
                             {"base_ticket", ColumnType::kInt64}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table experiments,
      OpenOrCreate(db, "experiments", experiments_schema,
                   {{"experiments_by_id", "experiment_id",
                     /*unique=*/true}}));
  repo->experiments_ = std::make_unique<Table>(std::move(experiments));

  Schema runs_schema({{"run_key", ColumnType::kInt64},
                      {"experiment_id", ColumnType::kInt64},
                      {"ordinal", ColumnType::kInt64},
                      {"algorithm", ColumnType::kString},
                      {"selection_index", ColumnType::kInt64},
                      {"replicate", ColumnType::kInt64},
                      {"sample_size", ColumnType::kInt64},
                      {"rf_distance", ColumnType::kInt64},
                      {"rf_splits_a", ColumnType::kInt64},
                      {"rf_splits_b", ColumnType::kInt64},
                      {"rf_normalized", ColumnType::kDouble},
                      {"triplet_total", ColumnType::kInt64},
                      {"triplet_differing", ColumnType::kInt64},
                      {"triplet_fraction", ColumnType::kDouble},
                      {"seconds", ColumnType::kDouble}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table runs,
      OpenOrCreate(db, "experiment_runs", runs_schema,
                   {{"experiment_runs_by_key", "run_key", /*unique=*/true},
                    {"experiment_runs_by_experiment", "experiment_id",
                     /*unique=*/false}}));
  repo->runs_ = std::make_unique<Table>(std::move(runs));

  Schema cells_schema({{"cell_key", ColumnType::kInt64},
                       {"experiment_id", ColumnType::kInt64},
                       {"ordinal", ColumnType::kInt64},
                       {"algorithm", ColumnType::kString},
                       {"selection_index", ColumnType::kInt64},
                       {"replicates", ColumnType::kInt64},
                       {"mean_rf_normalized", ColumnType::kDouble},
                       {"min_rf_normalized", ColumnType::kDouble},
                       {"max_rf_normalized", ColumnType::kDouble},
                       {"mean_triplet_fraction", ColumnType::kDouble},
                       {"total_seconds", ColumnType::kDouble}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table cells,
      OpenOrCreate(db, "experiment_cells", cells_schema,
                   {{"experiment_cells_by_key", "cell_key", /*unique=*/true},
                    {"experiment_cells_by_experiment", "experiment_id",
                     /*unique=*/false}}));
  repo->cells_ = std::make_unique<Table>(std::move(cells));

  CRIMSON_RETURN_IF_ERROR(
      repo->experiments_->Scan([&](const RecordId&, const Row& row) {
        repo->next_id_ =
            std::max(repo->next_id_, std::get<int64_t>(row[0]) + 1);
        return true;
      }));
  return repo;
}

Result<int64_t> ExperimentRepository::PutExperiment(
    const std::string& tree_name, const std::string& spec, uint64_t seed,
    uint64_t base_ticket) {
  int64_t id = next_id_++;
  Row row = {id,
             NowMicros(),
             tree_name,
             spec,
             static_cast<int64_t>(seed),
             static_cast<int64_t>(base_ticket)};
  CRIMSON_RETURN_IF_ERROR(experiments_->Insert(row).status());
  return id;
}

Status ExperimentRepository::PutRuns(const std::vector<RunRow>& rows) {
  std::vector<Row> encoded;
  encoded.reserve(rows.size());
  for (const RunRow& r : rows) {
    encoded.push_back({PackKey(r.experiment_id,
                               static_cast<uint32_t>(r.ordinal)),
                       r.experiment_id, r.ordinal, r.algorithm,
                       r.selection_index, r.replicate, r.sample_size,
                       r.rf_distance, r.rf_splits_a, r.rf_splits_b,
                       r.rf_normalized, r.triplet_total, r.triplet_differing,
                       r.triplet_fraction, r.seconds});
  }
  return runs_->BulkAppend(encoded).status();
}

Status ExperimentRepository::PutCells(const std::vector<CellRow>& rows) {
  std::vector<Row> encoded;
  encoded.reserve(rows.size());
  for (const CellRow& c : rows) {
    encoded.push_back({PackKey(c.experiment_id,
                               static_cast<uint32_t>(c.ordinal)),
                       c.experiment_id, c.ordinal, c.algorithm,
                       c.selection_index, c.replicates, c.mean_rf_normalized,
                       c.min_rf_normalized, c.max_rf_normalized,
                       c.mean_triplet_fraction, c.total_seconds});
  }
  return cells_->BulkAppend(encoded).status();
}

Result<ExperimentRepository::ExperimentRow>
ExperimentRepository::GetExperiment(int64_t experiment_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      experiments_->IndexLookup("experiments_by_id", experiment_id));
  if (rids.empty()) {
    return Status::NotFound(StrFormat(
        "no experiment %lld", static_cast<long long>(experiment_id)));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(experiments_->Get(rids[0], &row));
  ExperimentRow out;
  out.experiment_id = std::get<int64_t>(row[0]);
  out.created_micros = std::get<int64_t>(row[1]);
  out.tree_name = std::get<std::string>(row[2]);
  out.spec = std::get<std::string>(row[3]);
  out.seed = static_cast<uint64_t>(std::get<int64_t>(row[4]));
  out.base_ticket = static_cast<uint64_t>(std::get<int64_t>(row[5]));
  return out;
}

Result<std::vector<ExperimentRepository::ExperimentRow>>
ExperimentRepository::ListExperiments() const {
  std::vector<ExperimentRow> out;
  CRIMSON_RETURN_IF_ERROR(
      experiments_->Scan([&](const RecordId&, const Row& row) {
        ExperimentRow e;
        e.experiment_id = std::get<int64_t>(row[0]);
        e.created_micros = std::get<int64_t>(row[1]);
        e.tree_name = std::get<std::string>(row[2]);
        e.spec = std::get<std::string>(row[3]);
        e.seed = static_cast<uint64_t>(std::get<int64_t>(row[4]));
        e.base_ticket = static_cast<uint64_t>(std::get<int64_t>(row[5]));
        out.push_back(std::move(e));
        return true;
      }));
  std::sort(out.begin(), out.end(),
            [](const ExperimentRow& a, const ExperimentRow& b) {
              return a.experiment_id < b.experiment_id;
            });
  return out;
}

Result<std::vector<ExperimentRepository::RunRow>>
ExperimentRepository::RunsFor(int64_t experiment_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      runs_->IndexLookup("experiment_runs_by_experiment", experiment_id));
  std::vector<RunRow> out;
  out.reserve(rids.size());
  for (const RecordId& rid : rids) {
    Row row;
    CRIMSON_RETURN_IF_ERROR(runs_->Get(rid, &row));
    RunRow r;
    r.experiment_id = std::get<int64_t>(row[1]);
    r.ordinal = std::get<int64_t>(row[2]);
    r.algorithm = std::get<std::string>(row[3]);
    r.selection_index = std::get<int64_t>(row[4]);
    r.replicate = std::get<int64_t>(row[5]);
    r.sample_size = std::get<int64_t>(row[6]);
    r.rf_distance = std::get<int64_t>(row[7]);
    r.rf_splits_a = std::get<int64_t>(row[8]);
    r.rf_splits_b = std::get<int64_t>(row[9]);
    r.rf_normalized = std::get<double>(row[10]);
    r.triplet_total = std::get<int64_t>(row[11]);
    r.triplet_differing = std::get<int64_t>(row[12]);
    r.triplet_fraction = std::get<double>(row[13]);
    r.seconds = std::get<double>(row[14]);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const RunRow& a, const RunRow& b) {
    return a.ordinal < b.ordinal;
  });
  return out;
}

Result<std::vector<ExperimentRepository::CellRow>>
ExperimentRepository::CellsFor(int64_t experiment_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      cells_->IndexLookup("experiment_cells_by_experiment", experiment_id));
  std::vector<CellRow> out;
  out.reserve(rids.size());
  for (const RecordId& rid : rids) {
    Row row;
    CRIMSON_RETURN_IF_ERROR(cells_->Get(rid, &row));
    CellRow c;
    c.experiment_id = std::get<int64_t>(row[1]);
    c.ordinal = std::get<int64_t>(row[2]);
    c.algorithm = std::get<std::string>(row[3]);
    c.selection_index = std::get<int64_t>(row[4]);
    c.replicates = std::get<int64_t>(row[5]);
    c.mean_rf_normalized = std::get<double>(row[6]);
    c.min_rf_normalized = std::get<double>(row[7]);
    c.max_rf_normalized = std::get<double>(row[8]);
    c.mean_triplet_fraction = std::get<double>(row[9]);
    c.total_seconds = std::get<double>(row[10]);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const CellRow& a, const CellRow& b) {
    return a.ordinal < b.ordinal;
  });
  return out;
}

// ---------------------------------------------------------------------------
// QueryRepository
// ---------------------------------------------------------------------------

Result<std::unique_ptr<QueryRepository>> QueryRepository::Open(Database* db) {
  auto repo = std::unique_ptr<QueryRepository>(new QueryRepository(db));
  Schema schema({{"query_id", ColumnType::kInt64},
                 {"timestamp", ColumnType::kInt64},
                 {"kind", ColumnType::kString},
                 {"params", ColumnType::kString},
                 {"summary", ColumnType::kString}});
  CRIMSON_ASSIGN_OR_RETURN(
      Table t, OpenOrCreate(db, "queries", schema,
                            {{"queries_by_id", "query_id", /*unique=*/true}}));
  repo->queries_ = std::make_unique<Table>(std::move(t));
  CRIMSON_RETURN_IF_ERROR(
      repo->queries_->Scan([&](const RecordId&, const Row& row) {
        repo->next_id_ =
            std::max(repo->next_id_, std::get<int64_t>(row[0]) + 1);
        return true;
      }));
  return repo;
}

Result<int64_t> QueryRepository::Record(const std::string& kind,
                                        const std::string& params,
                                        const std::string& summary) {
  int64_t id = next_id_++;
  Row row = {id, NowMicros(), kind, params, summary};
  CRIMSON_RETURN_IF_ERROR(queries_->Insert(row).status());
  return id;
}

Status QueryRepository::RecordBatch(const std::vector<Entry>& entries) {
  for (const Entry& e : entries) {
    Row row = {e.query_id, e.timestamp_micros, e.kind, e.params, e.summary};
    Status s = queries_->Insert(row).status();
    // Ids are globally unique, so AlreadyExists can only mean this
    // entry reached storage on an earlier, partially-surviving drain
    // (e.g. an abort without a WAL to roll it back) -- skipping it
    // makes re-drains idempotent.
    if (!s.ok() && !s.IsAlreadyExists()) return s;
    next_id_ = std::max(next_id_, e.query_id + 1);
  }
  return Status::OK();
}

Result<std::vector<QueryRepository::Entry>> QueryRepository::History(
    size_t limit) const {
  std::vector<Entry> out;
  CRIMSON_RETURN_IF_ERROR(
      queries_->Scan([&](const RecordId&, const Row& row) {
        Entry e;
        e.query_id = std::get<int64_t>(row[0]);
        e.timestamp_micros = std::get<int64_t>(row[1]);
        e.kind = std::get<std::string>(row[2]);
        e.params = std::get<std::string>(row[3]);
        e.summary = std::get<std::string>(row[4]);
        out.push_back(std::move(e));
        return true;
      }));
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.query_id > b.query_id;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

Result<QueryRepository::Entry> QueryRepository::Get(int64_t query_id) const {
  CRIMSON_ASSIGN_OR_RETURN(
      std::vector<RecordId> rids,
      queries_->IndexLookup("queries_by_id", query_id));
  if (rids.empty()) {
    return Status::NotFound(StrFormat("no query %lld",
                                      static_cast<long long>(query_id)));
  }
  Row row;
  CRIMSON_RETURN_IF_ERROR(queries_->Get(rids[0], &row));
  Entry e;
  e.query_id = std::get<int64_t>(row[0]);
  e.timestamp_micros = std::get<int64_t>(row[1]);
  e.kind = std::get<std::string>(row[2]);
  e.params = std::get<std::string>(row[3]);
  e.summary = std::get<std::string>(row[4]);
  return e;
}

}  // namespace crimson
