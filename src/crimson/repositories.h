// The Repository Manager (paper §2.1, Fig. 3): tree structure and
// species data are stored separately -- queries are structure-based, so
// the Tree Repository holds topology plus the layered-Dewey index in
// relational form, while the Species Repository holds the (large)
// sequence data. The Query Repository records user queries for recall
// and re-run.
//
// Relational layout (all tables live in one storage/Database):
//   trees(tree_id, name*, n_nodes, n_leaves, f, max_depth)
//   nodes(tree_id*, node_key*, name*, parent, ordinal, edge_length,
//         root_weight*, subtree, local_depth)
//     - node_key packs (tree_id << 32 | node_id) for point access
//   subtrees(tree_id*, subtree_id, source_node, root_node)
//   labels(tree_id*, scheme_blob)
//     - the serialized layered-Dewey scheme (all layers), so binding a
//       stored tree deserializes labels instead of relabeling
//   tree_blobs(tree_id*, tree_blob)
//     - the packed column-oriented tree image (parents, edge lengths,
//       name offsets, one contiguous name arena), so OpenTree
//       deserializes without re-interning names; LoadTree falls back
//       to the nodes row scan for databases written before this table
//   species(tree_id, species_name*, node_id, sequence)
//   queries(query_id*, timestamp, kind, params, summary)
//   experiments(experiment_id*, created, tree_name, spec, seed,
//               base_ticket)
//     - the serialized ExperimentSpec plus its RNG provenance, so
//       RerunExperiment replays stored workloads byte-identically
//   experiment_runs(run_key*, experiment_id*, ordinal, algorithm,
//                   selection_index, replicate, sample_size, rf_*,
//                   triplet_*, seconds)
//     - run_key packs (experiment_id << 32 | ordinal)
//   experiment_cells(cell_key*, experiment_id*, algorithm,
//                    selection_index, replicates, rf aggregates,
//                    mean_triplet, seconds)
//   (* = indexed column)
//
// Thread safety: the repositories inherit the storage engine's
// single-writer / multi-reader semantics. The Crimson session holds
// its storage lock exclusive (plus a Database writer epoch) around
// every repository *write*, and shared (plus a read epoch) around
// repository *reads* -- so reads from any number of threads proceed
// in parallel through the latched buffer pool (see crimson.h and
// DESIGN.md "Concurrency").

#ifndef CRIMSON_CRIMSON_REPOSITORIES_H_
#define CRIMSON_CRIMSON_REPOSITORIES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "labeling/layered_dewey.h"
#include "storage/database.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Wall-clock microseconds since the epoch (the repositories' row
/// timestamp source; the session's history buffer stamps entries with
/// it at enqueue time so deferred flushes keep the original times).
int64_t NowMicros();

/// Serializes a tree's packed representation (version, parents, edge
/// lengths, name offsets, raw name arena) into *dst. The inverse of
/// DecodePackedTree; exposed for tests and offline tooling.
void EncodePackedTree(const PhyloTree& tree, std::string* dst);

/// Rebuilds a tree from EncodePackedTree output without re-interning
/// names (links derive O(n) from the parent column).
Result<PhyloTree> DecodePackedTree(Slice blob);

/// Metadata row for a stored tree.
struct TreeInfo {
  int64_t tree_id = 0;
  std::string name;
  int64_t n_nodes = 0;
  int64_t n_leaves = 0;
  int64_t f = 0;          // layered-Dewey parameter used at load time
  int64_t max_depth = 0;
};

/// Stores phylogenetic tree structure plus its layered-Dewey
/// decomposition. One instance per open Database.
class TreeRepository {
 public:
  /// Creates/opens the repository tables inside db.
  static Result<std::unique_ptr<TreeRepository>> Open(Database* db);

  /// Persists a tree (structure + labeling) under a unique name.
  /// Returns the assigned tree id. Trees with at least
  /// bulk_load_threshold nodes take the bulk ingest path: rows are
  /// batch-encoded and appended through Table::BulkAppend (sorted key
  /// runs, bottom-up index builds) instead of per-row Insert.
  Result<int64_t> StoreTree(const std::string& name, const PhyloTree& tree,
                            const LayeredDeweyScheme& scheme);

  /// Node count at which StoreTree switches to the bulk path. Set to
  /// SIZE_MAX to force per-row inserts (benchmarks baseline), 0 to
  /// always bulk-load.
  void set_bulk_load_threshold(size_t threshold) {
    bulk_load_threshold_ = threshold;
  }

  /// Whether StoreTree also persists the serialized layered-Dewey
  /// scheme so OpenTree can skip relabeling (on by default).
  void set_persist_labels(bool persist) { persist_labels_ = persist; }

  /// The serialized labeling persisted by StoreTree, decoded. NotFound
  /// for trees stored without labels (pre-upgrade databases or
  /// persist_labels=false).
  Result<LayeredDeweyScheme> LoadScheme(int64_t tree_id) const;

  /// The raw persisted label blob (callers that hold the storage lock
  /// can fetch here and run the O(n) decode outside it).
  Result<std::string> LoadSchemeBlob(int64_t tree_id) const;

  /// Tree metadata by name.
  Result<TreeInfo> GetTreeInfo(const std::string& name) const;

  /// All stored trees.
  Result<std::vector<TreeInfo>> ListTrees() const;

  /// Reconstructs the full in-memory tree. Prefers the packed blob
  /// written by StoreTree (no per-name re-interning); falls back to the
  /// nodes row scan for pre-blob databases.
  Result<PhyloTree> LoadTree(int64_t tree_id) const;

  /// Point access: node id of a species by name within a tree (uses the
  /// species-name index; paper challenge #1 "random access based on
  /// species names").
  Result<NodeId> FindNodeByName(int64_t tree_id,
                                const std::string& name) const;

  /// Point access: single node row (parent, edge length, root weight)
  /// without loading the tree.
  struct NodeRow {
    NodeId node = kNoNode;
    NodeId parent = kNoNode;
    std::string name;
    double edge_length = 0;
    double root_weight = 0;
    uint32_t subtree = 0;
    uint32_t local_depth = 0;
  };
  Result<NodeRow> GetNode(int64_t tree_id, NodeId node) const;

  /// Nodes whose root-path weight lies in [lo, hi) -- "random access
  /// based on evolutionary time" via the root_weight index. Note: the
  /// index spans all trees; rows from other trees are filtered out.
  Result<std::vector<NodeId>> NodesInTimeRange(int64_t tree_id, double lo,
                                               double hi) const;

  /// Deletes a tree and its rows (loader error-recovery path).
  Status DropTree(int64_t tree_id);

 private:
  explicit TreeRepository(Database* db) : db_(db) {}

  Database* db_;
  std::unique_ptr<Table> trees_;
  std::unique_ptr<Table> nodes_;
  std::unique_ptr<Table> subtrees_;
  std::unique_ptr<Table> labels_;
  std::unique_ptr<Table> tree_blobs_;
  size_t bulk_load_threshold_ = 512;
  bool persist_labels_ = true;
};

/// Stores species data (gene sequences) keyed by species name.
class SpeciesRepository {
 public:
  static Result<std::unique_ptr<SpeciesRepository>> Open(Database* db);

  /// Adds one species' sequence (tree association optional; pass -1 and
  /// kNoNode when unknown).
  Status Put(int64_t tree_id, const std::string& species, NodeId node,
             const std::string& sequence);

  /// One resolved species row for PutBatch.
  struct SpeciesEntry {
    std::string species;
    NodeId node = kNoNode;
    std::string sequence;
  };

  /// Adds many species at once through the bulk storage path
  /// (Table::BulkAppend); equivalent to Put per entry.
  Status PutBatch(int64_t tree_id, std::vector<SpeciesEntry> entries);

  /// Sequence by species name (first match).
  Result<std::string> GetSequence(const std::string& species) const;

  /// All sequences for a tree.
  Result<std::map<std::string, std::string>> SequencesForTree(
      int64_t tree_id) const;

  /// Sequences for a specific species subset (NotFound lists the first
  /// missing species).
  Result<std::map<std::string, std::string>> SequencesFor(
      const std::vector<std::string>& species) const;

  /// Sequences for a name subset *within one tree* (the cracked
  /// store's fetch path). Names without a row for this tree are left
  /// out of the result rather than erroring, and rows from other trees
  /// that share a species name are filtered.
  Result<std::map<std::string, std::string>> SequencesForTreeSubset(
      int64_t tree_id, const std::vector<std::string>& names) const;

  /// Number of species rows for a tree (index-only; no row reads).
  Result<uint64_t> CountForTree(int64_t tree_id) const;

  /// Deletes every species row of a tree (the session DropTree path;
  /// TreeRepository::DropTree only removes structural tables).
  Status DropForTree(int64_t tree_id);

  Result<uint64_t> Count() const;

 private:
  explicit SpeciesRepository(Database* db) : db_(db) {}

  Database* db_;
  std::unique_ptr<Table> species_;
};

/// Persisted evaluation workloads (the Experiment API's storage side):
/// the serialized ExperimentSpec, every per-run BenchmarkRun score
/// row, and the per-cell aggregates. Specs carry their RNG provenance
/// (seed + base ticket) so a stored experiment replays
/// byte-identically on any session over the same database.
class ExperimentRepository {
 public:
  static Result<std::unique_ptr<ExperimentRepository>> Open(Database* db);

  struct ExperimentRow {
    int64_t experiment_id = 0;
    int64_t created_micros = 0;
    std::string tree_name;
    std::string spec;  // EncodeExperimentSpec output
    uint64_t seed = 0;
    uint64_t base_ticket = 0;
  };

  /// One BenchmarkRun's persisted scores. `ordinal` is the job index
  /// in spec order (algorithm-major, selection, replicate innermost).
  struct RunRow {
    int64_t experiment_id = 0;
    int64_t ordinal = 0;
    std::string algorithm;  // the algorithm's self-reported name()
    int64_t selection_index = 0;
    int64_t replicate = 0;
    int64_t sample_size = 0;
    int64_t rf_distance = 0;
    int64_t rf_splits_a = 0;
    int64_t rf_splits_b = 0;
    double rf_normalized = 0;
    int64_t triplet_total = 0;
    int64_t triplet_differing = 0;
    double triplet_fraction = 0;
    double seconds = 0;
  };

  /// Aggregate row per (algorithm, selection) grid cell.
  struct CellRow {
    int64_t experiment_id = 0;
    int64_t ordinal = 0;       // cell index in spec order
    std::string algorithm;     // registry name from the spec
    int64_t selection_index = 0;
    int64_t replicates = 0;
    double mean_rf_normalized = 0;
    double min_rf_normalized = 0;
    double max_rf_normalized = 0;
    double mean_triplet_fraction = 0;
    double total_seconds = 0;
  };

  /// Allocates the next experiment id and stores the spec row.
  Result<int64_t> PutExperiment(const std::string& tree_name,
                                const std::string& spec, uint64_t seed,
                                uint64_t base_ticket);

  /// Stores all run rows of one experiment (bulk append).
  Status PutRuns(const std::vector<RunRow>& rows);

  /// Stores all cell aggregates of one experiment (bulk append).
  Status PutCells(const std::vector<CellRow>& rows);

  Result<ExperimentRow> GetExperiment(int64_t experiment_id) const;

  /// All stored experiments, oldest first.
  Result<std::vector<ExperimentRow>> ListExperiments() const;

  /// Run rows of one experiment in ordinal order.
  Result<std::vector<RunRow>> RunsFor(int64_t experiment_id) const;

  /// Cell rows of one experiment in ordinal order.
  Result<std::vector<CellRow>> CellsFor(int64_t experiment_id) const;

 private:
  explicit ExperimentRepository(Database* db) : db_(db) {}

  Database* db_;
  std::unique_ptr<Table> experiments_;
  std::unique_ptr<Table> runs_;
  std::unique_ptr<Table> cells_;
  int64_t next_id_ = 1;
};

/// Query history: every user-visible query is recorded and can be
/// recalled (paper §2.1: "makes it convenient for users to recall and
/// rerun historical queries").
class QueryRepository {
 public:
  static Result<std::unique_ptr<QueryRepository>> Open(Database* db);

  struct Entry {
    int64_t query_id = 0;
    int64_t timestamp_micros = 0;
    std::string kind;     // "lca", "project", "sample_time", ...
    std::string params;   // human-readable parameter string
    std::string summary;  // result summary
  };

  /// Appends an entry; returns its id.
  Result<int64_t> Record(const std::string& kind, const std::string& params,
                         const std::string& summary);

  /// Appends pre-built entries (ids and timestamps already assigned by
  /// the session's history buffer) in one pass. Idempotent per id:
  /// entries whose id is already stored are skipped, so a drain that
  /// partially survived an unlogged abort can safely re-run. Advances
  /// next_id_ past the largest id seen.
  Status RecordBatch(const std::vector<Entry>& entries);

  /// Most recent `limit` entries, newest first.
  Result<std::vector<Entry>> History(size_t limit = 50) const;

  /// One entry by id.
  Result<Entry> Get(int64_t query_id) const;

  /// The id the next Record call would assign (seeded from a full scan
  /// at Open; the session's history buffer continues the sequence).
  int64_t next_id() const { return next_id_; }

 private:
  explicit QueryRepository(Database* db) : db_(db) {}

  Database* db_;
  std::unique_ptr<Table> queries_;
  int64_t next_id_ = 1;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_REPOSITORIES_H_
