#include "crimson/service.h"

#include <utility>

namespace crimson {

Result<TreeInfo> SessionService::OpenTree(const std::string& name) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, session_->OpenTree(name));
  return session_->GetTreeInfo(ref);
}

Result<TreeInfo> SessionService::StoreNewick(const std::string& name,
                                             const std::string& text,
                                             LoadMode mode) {
  if (mode == LoadMode::kAppendSpeciesData) {
    return Status::InvalidArgument(
        "append-species-data requires a NEXUS document with sequences");
  }
  CRIMSON_ASSIGN_OR_RETURN(SessionLoadReport report,
                           session_->LoadNewick(name, text, mode));
  return session_->GetTreeInfo(report.ref);
}

Result<TreeInfo> SessionService::StoreNexus(const std::string& name,
                                            const std::string& text,
                                            LoadMode mode) {
  if (mode == LoadMode::kAppendSpeciesData) {
    CRIMSON_ASSIGN_OR_RETURN(NexusDocument parsed, ParseNexus(text));
    CRIMSON_RETURN_IF_ERROR(
        session_->AppendSpeciesData(name, parsed.sequences).status());
    return OpenTree(name);
  }
  CRIMSON_ASSIGN_OR_RETURN(SessionLoadReport report,
                           session_->LoadNexus(name, text, mode));
  return session_->GetTreeInfo(report.ref);
}

Result<std::vector<TreeInfo>> SessionService::ListTrees() const {
  return session_->ListTrees();
}

Result<std::vector<QueryRepository::Entry>> SessionService::History(
    size_t limit) const {
  return session_->QueryHistory(limit);
}

Result<QueryResult> SessionService::Execute(const std::string& tree_name,
                                            const QueryRequest& request) {
  CRIMSON_ASSIGN_OR_RETURN(TreeRef ref, session_->OpenTree(tree_name));
  return session_->Execute(ref, request);
}

std::vector<Result<QueryResult>> SessionService::ExecuteBatch(
    const std::string& tree_name, Span<const QueryRequest> requests) {
  Result<TreeRef> ref = session_->OpenTree(tree_name);
  if (!ref.ok()) {
    return std::vector<Result<QueryResult>>(requests.size(), ref.status());
  }
  return session_->ExecuteBatch(*ref, requests);
}

Status SessionService::DropTree(const std::string& name) {
  return session_->DropTree(name);
}

SessionStats SessionService::Stats() const {
  SessionStats stats;
  stats.cache = session_->GetCacheStats();
  stats.pages = session_->database()->page_version_stats();
  stats.metrics = session_->SnapshotMetrics();
  return stats;
}

Status SessionService::Checkpoint() { return session_->Checkpoint(); }

}  // namespace crimson
