// SessionService: the server-facing dispatch seam over a Crimson
// session. The network layer (src/net) speaks in tree *names* and
// typed QueryRequest values; this seam resolves names to TreeRef
// handles and forwards to the session's single Execute/ExecuteBatch
// path, so a remote query takes exactly the code path an in-process
// one does -- same handle cache, same ticketing, same history
// recording -- and wire results are byte-identical to local ones.
//
// Keeping the seam in src/crimson (not src/net) means the transport
// can change (another protocol, sharded fan-out, replication) without
// touching the session, and the session API can evolve behind one
// choke point the server calls.

#ifndef CRIMSON_CRIMSON_SERVICE_H_
#define CRIMSON_CRIMSON_SERVICE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "crimson/crimson.h"

namespace crimson {

/// Point-in-time server-side counters: the session's adaptive cache
/// (result cache + cracked stores, shared across every connection)
/// and the storage engine's MVCC side table, plus the full metrics
/// snapshot (every layer: query, storage, cache, net) the kStats wire
/// frame carries alongside the legacy structs.
struct SessionStats {
  cache::CacheStats cache;
  PageVersions::Stats pages;
  obs::MetricsSnapshot metrics;
};

/// Thread-safe (the underlying session is); one instance serves every
/// server connection.
class SessionService {
 public:
  /// Borrows the session; the caller keeps it alive for the service's
  /// lifetime.
  explicit SessionService(Crimson* session) : session_(session) {}

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  /// Binds a stored tree and returns its metadata.
  [[nodiscard]] Result<TreeInfo> OpenTree(const std::string& name);

  /// Parses + stores a tree document, returning the stored tree's
  /// metadata. kAppendSpeciesData attaches sequences to an existing
  /// tree instead of creating one.
  [[nodiscard]] Result<TreeInfo> StoreNewick(const std::string& name,
                                             const std::string& text,
                                             LoadMode mode);
  [[nodiscard]] Result<TreeInfo> StoreNexus(const std::string& name,
                                            const std::string& text,
                                            LoadMode mode);

  [[nodiscard]] Result<std::vector<TreeInfo>> ListTrees() const;

  [[nodiscard]] Result<std::vector<QueryRepository::Entry>> History(
      size_t limit) const;

  /// One typed query against a named tree.
  [[nodiscard]] Result<QueryResult> Execute(const std::string& tree_name,
                                            const QueryRequest& request);

  /// A pipelined run of queries against one named tree, executed on
  /// the session worker pool. Results are byte-identical to executing
  /// the same list sequentially (the ExecuteBatch contract), which is
  /// what lets the server coalesce pipelined connection traffic.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::string& tree_name, Span<const QueryRequest> requests);

  /// Drops a stored tree (rows, bound handle, cached state).
  [[nodiscard]] Status DropTree(const std::string& name);

  /// Cache + MVCC counters (the kStats wire op; also the drain-time
  /// summary crimson_server logs).
  [[nodiscard]] SessionStats Stats() const;

  /// Durable checkpoint; the server's graceful-drain hook.
  Status Checkpoint();

  /// The session's metrics registry; the server front door resolves
  /// its net.* cells here so remote telemetry lands in the same
  /// registry as the layers below it.
  obs::MetricsRegistry* metrics() const { return session_->metrics(); }

 private:
  Crimson* session_;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_SERVICE_H_
