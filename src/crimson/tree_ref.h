// TreeRef: an opaque, copyable handle to a tree loaded in a Crimson
// session. A TreeRef is bound once (at load/open time) and then used
// for every query against the tree, so the per-query string lookup of
// the old facade disappears. Refs are only meaningful within the
// session that issued them and stay valid for that session's lifetime.

#ifndef CRIMSON_CRIMSON_TREE_REF_H_
#define CRIMSON_CRIMSON_TREE_REF_H_

#include <cstdint>

namespace crimson {

class Crimson;

class TreeRef {
 public:
  /// Default-constructed refs are invalid; obtain real ones from
  /// Crimson::LoadNewick/LoadNexus/LoadTree/OpenTree.
  constexpr TreeRef() = default;

  constexpr bool valid() const { return id_ != 0; }
  constexpr uint64_t id() const { return id_; }

  friend constexpr bool operator==(TreeRef a, TreeRef b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(TreeRef a, TreeRef b) {
    return a.id_ != b.id_;
  }

 private:
  friend class Crimson;
  constexpr explicit TreeRef(uint64_t id) : id_(id) {}

  uint64_t id_ = 0;
};

}  // namespace crimson

#endif  // CRIMSON_CRIMSON_TREE_REF_H_
