#include "labeling/dewey_label.h"

#include <algorithm>

#include "common/coding.h"

namespace crimson {

DeweyLabel DeweyLabel::CommonPrefix(const DeweyLabel& other) const {
  size_t n = CommonPrefixLength(other);
  return DeweyLabel(std::vector<uint32_t>(components_.begin(),
                                          components_.begin() + n));
}

size_t DeweyLabel::CommonPrefixLength(const DeweyLabel& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < n && components_[i] == other.components_[i]) ++i;
  return i;
}

bool DeweyLabel::IsPrefixOf(const DeweyLabel& other) const {
  if (components_.size() > other.components_.size()) return false;
  return CommonPrefixLength(other) == components_.size();
}

int DeweyLabel::Compare(const DeweyLabel& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

void DeweyLabel::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(components_.size()));
  for (uint32_t c : components_) PutVarint32(dst, c);
}

Result<DeweyLabel> DeweyLabel::DecodeFrom(Slice* input) {
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) {
    return Status::Corruption("dewey label: bad length");
  }
  std::vector<uint32_t> comps;
  comps.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    if (!GetVarint32(input, &c)) {
      return Status::Corruption("dewey label: truncated");
    }
    comps.push_back(c);
  }
  return DeweyLabel(std::move(comps));
}

size_t DeweyLabel::EncodedBytes() const {
  size_t bytes = VarintLength(components_.size());
  for (uint32_t c : components_) bytes += VarintLength(c);
  return bytes;
}

std::string DeweyLabel::ToString() const {
  if (components_.empty()) return "()";
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace crimson
