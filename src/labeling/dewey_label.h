// DeweyLabel: a root-to-node path of 1-based child ordinals, as in the
// paper's §2.1 example (Lla = 2.1.1, Spy = 2.1.2). Provides the prefix
// operations that make Dewey labels suit structure queries: the LCA of
// two nodes is the node whose label is the longest common prefix.

#ifndef CRIMSON_LABELING_DEWEY_LABEL_H_
#define CRIMSON_LABELING_DEWEY_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace crimson {

/// Sequence of 1-based child ordinals from the root. The root's label
/// is empty.
class DeweyLabel {
 public:
  DeweyLabel() = default;
  explicit DeweyLabel(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  uint32_t component(size_t i) const { return components_[i]; }

  void Append(uint32_t ordinal) { components_.push_back(ordinal); }
  void Pop() { components_.pop_back(); }

  /// Longest common prefix with another label (the LCA's label).
  DeweyLabel CommonPrefix(const DeweyLabel& other) const;

  /// Length of the longest common prefix.
  size_t CommonPrefixLength(const DeweyLabel& other) const;

  /// True if this label is a prefix of (or equal to) other, i.e. this
  /// node is an ancestor-or-self of other.
  bool IsPrefixOf(const DeweyLabel& other) const;

  /// Document-order comparison (component-wise, shorter prefix first).
  int Compare(const DeweyLabel& other) const;

  /// Varint byte encoding (the storage footprint the paper worries
  /// about on deep trees).
  void EncodeTo(std::string* dst) const;
  static Result<DeweyLabel> DecodeFrom(Slice* input);
  size_t EncodedBytes() const;

  /// "2.1.1" display form; "()" for the root.
  std::string ToString() const;

  bool operator==(const DeweyLabel& other) const {
    return components_ == other.components_;
  }

 private:
  std::vector<uint32_t> components_;
};

}  // namespace crimson

#endif  // CRIMSON_LABELING_DEWEY_LABEL_H_
