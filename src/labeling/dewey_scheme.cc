#include "labeling/dewey_scheme.h"

namespace crimson {

Status DeweyScheme::Build(const PhyloTree& tree) {
  tree_ = &tree;
  labels_.assign(tree.size(), DeweyLabel());
  if (tree.empty()) return Status::OK();
  // Child ordinals are 1-based positions in the sibling chain, exactly
  // as in the paper's example. Arena order (parents before children)
  // lets us build each label from its parent's.
  std::vector<uint32_t> ordinal(tree.size(), 0);
  for (NodeId n = 0; n < tree.size(); ++n) {
    uint32_t ord = 0;
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      ordinal[c] = ++ord;
    }
  }
  for (NodeId n = 1; n < tree.size(); ++n) {
    labels_[n] = labels_[tree.parent(n)];
    labels_[n].Append(ordinal[n]);
  }
  return Status::OK();
}

Result<NodeId> DeweyScheme::Lca(NodeId a, NodeId b) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  if (a >= labels_.size() || b >= labels_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  size_t lcp = labels_[a].CommonPrefixLength(labels_[b]);
  // Walk a up (depth(a) - lcp) steps: its label is a prefix chain.
  NodeId n = a;
  for (size_t i = labels_[a].depth(); i > lcp; --i) n = tree_->parent(n);
  return n;
}

Result<bool> DeweyScheme::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  if (anc >= labels_.size() || n >= labels_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  return labels_[anc].IsPrefixOf(labels_[n]);
}

size_t DeweyScheme::LabelBytes(NodeId n) const {
  return labels_[n].EncodedBytes();
}

NodeId DeweyScheme::NodeForLabel(const DeweyLabel& label) const {
  if (tree_ == nullptr || tree_->empty()) return kNoNode;
  NodeId n = tree_->root();
  for (size_t i = 0; i < label.depth(); ++i) {
    uint32_t ord = label.component(i);
    NodeId c = tree_->first_child(n);
    for (uint32_t k = 1; k < ord && c != kNoNode; ++k) {
      c = tree_->next_sibling(c);
    }
    if (c == kNoNode) return kNoNode;
    n = c;
  }
  return n;
}

}  // namespace crimson
