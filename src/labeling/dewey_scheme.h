// Plain Dewey labeling [11]: each node stores its full root path of
// child ordinals. LCA is a longest-common-prefix computation. The
// scheme the paper starts from -- and whose O(depth) labels it fixes.

#ifndef CRIMSON_LABELING_DEWEY_SCHEME_H_
#define CRIMSON_LABELING_DEWEY_SCHEME_H_

#include <vector>

#include "labeling/dewey_label.h"
#include "labeling/scheme.h"

namespace crimson {

class DeweyScheme final : public LabelingScheme {
 public:
  DeweyScheme() = default;

  std::string name() const override { return "dewey"; }
  Status Build(const PhyloTree& tree) override;
  Result<NodeId> Lca(NodeId a, NodeId b) const override;
  Result<bool> IsAncestorOrSelf(NodeId anc, NodeId n) const override;
  size_t LabelBytes(NodeId n) const override;
  size_t node_count() const override { return labels_.size(); }

  /// The label itself (golden tests check the paper's 2.1.1 examples).
  const DeweyLabel& label(NodeId n) const { return labels_[n]; }

  /// Node whose label equals `label`; kNoNode if out of range.
  NodeId NodeForLabel(const DeweyLabel& label) const;

 private:
  const PhyloTree* tree_ = nullptr;
  std::vector<DeweyLabel> labels_;
};

}  // namespace crimson

#endif  // CRIMSON_LABELING_DEWEY_SCHEME_H_
