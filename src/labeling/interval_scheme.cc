#include "labeling/interval_scheme.h"

namespace crimson {

Status IntervalScheme::Build(const PhyloTree& tree) {
  tree_ = &tree;
  pre_.assign(tree.size(), 0);
  max_pre_.assign(tree.size(), 0);
  if (tree.empty()) return Status::OK();
  uint32_t counter = 0;
  tree.PreOrder([&](NodeId n) {
    pre_[n] = counter++;
    return true;
  });
  // max_pre via post-order accumulation.
  tree.PostOrder([&](NodeId n) {
    uint32_t m = pre_[n];
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      if (max_pre_[c] > m) m = max_pre_[c];
    }
    max_pre_[n] = m;
    return true;
  });
  return Status::OK();
}

Result<NodeId> IntervalScheme::Lca(NodeId a, NodeId b) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  if (a >= pre_.size() || b >= pre_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  // Intervals answer containment, not LCA: climb from the shallower
  // candidate until its interval covers the other node. O(depth).
  NodeId cur = a;
  while (!Contains(cur, b)) cur = tree_->parent(cur);
  return cur;
}

Result<bool> IntervalScheme::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  if (anc >= pre_.size() || n >= pre_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  return Contains(anc, n);
}

Status NaiveScheme::Build(const PhyloTree& tree) {
  tree_ = &tree;
  depth_ = tree.Depths();
  return Status::OK();
}

Result<NodeId> NaiveScheme::Lca(NodeId a, NodeId b) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  if (a >= tree_->size() || b >= tree_->size()) {
    return Status::InvalidArgument("node out of range");
  }
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      a = tree_->parent(a);
    } else {
      b = tree_->parent(b);
    }
  }
  return a;
}

Result<bool> NaiveScheme::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  if (tree_ == nullptr) return Status::FailedPrecondition("not built");
  while (n != kNoNode) {
    if (n == anc) return true;
    if (depth_[n] == 0) break;
    n = tree_->parent(n);
  }
  return false;
}

}  // namespace crimson
