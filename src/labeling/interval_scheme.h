// Interval (pre/post-order) labeling, the classic XML scheme the paper
// cites as related work [2,3]: each node stores its preorder rank and
// the maximum preorder rank in its subtree. Ancestor tests are O(1),
// but LCA has no direct answer -- the scheme must walk up the tree --
// which is exactly the paper's argument for Dewey-style labels in
// phylogenetic workloads.

#ifndef CRIMSON_LABELING_INTERVAL_SCHEME_H_
#define CRIMSON_LABELING_INTERVAL_SCHEME_H_

#include <vector>

#include "labeling/scheme.h"

namespace crimson {

class IntervalScheme final : public LabelingScheme {
 public:
  IntervalScheme() = default;

  std::string name() const override { return "interval"; }
  Status Build(const PhyloTree& tree) override;
  Result<NodeId> Lca(NodeId a, NodeId b) const override;
  Result<bool> IsAncestorOrSelf(NodeId anc, NodeId n) const override;
  size_t LabelBytes(NodeId) const override { return 8; }  // two fixed32
  size_t node_count() const override { return pre_.size(); }

  uint32_t pre(NodeId n) const { return pre_[n]; }
  uint32_t max_descendant_pre(NodeId n) const { return max_pre_[n]; }

 private:
  bool Contains(NodeId anc, NodeId n) const {
    return pre_[anc] <= pre_[n] && pre_[n] <= max_pre_[anc];
  }

  const PhyloTree* tree_ = nullptr;
  std::vector<uint32_t> pre_;
  std::vector<uint32_t> max_pre_;
};

/// Baseline with no index at all: parent-pointer walks (what one gets
/// from the raw tree). LCA and ancestor checks are O(depth).
class NaiveScheme final : public LabelingScheme {
 public:
  NaiveScheme() = default;

  std::string name() const override { return "naive_parent_walk"; }
  Status Build(const PhyloTree& tree) override;
  Result<NodeId> Lca(NodeId a, NodeId b) const override;
  Result<bool> IsAncestorOrSelf(NodeId anc, NodeId n) const override;
  size_t LabelBytes(NodeId) const override { return 0; }
  size_t node_count() const override { return tree_ ? tree_->size() : 0; }

 private:
  const PhyloTree* tree_ = nullptr;
  std::vector<uint32_t> depth_;
};

}  // namespace crimson

#endif  // CRIMSON_LABELING_INTERVAL_SCHEME_H_
