#include "labeling/layered_dewey.h"

#include <cassert>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

// f < 3 is rejected: with f = 2 every internal node becomes its own
// subtree, so a pure chain's layer tree shrinks by only one node per
// layer and the recursion never converges. With f >= 3 a subtree root
// (always internal) keeps all its depth-1 children, so each layer has
// at most half the items of the one below and the layer count is
// logarithmic.
LayeredDeweyScheme::LayeredDeweyScheme(uint32_t f) : f_(f < 3 ? 3 : f) {}

std::string LayeredDeweyScheme::name() const {
  return StrFormat("layered_dewey(f=%u)", f_);
}

void LayeredDeweyScheme::DecomposeLayer(Layer* layer) const {
  size_t n = layer->parent.size();
  layer->ordinal.assign(n, 0);
  layer->subtree.assign(n, 0);
  layer->local_depth.assign(n, 0);
  layer->subtree_source.clear();
  layer->subtree_root.clear();

  // Child ordinals and leaf detection in one pass (parent < child).
  std::vector<uint32_t> child_count(n, 0);
  std::vector<uint32_t> next_ordinal(n, 0);
  for (size_t i = 1; i < n; ++i) ++child_count[layer->parent[i]];
  for (size_t i = 1; i < n; ++i) {
    layer->ordinal[i] = ++next_ordinal[layer->parent[i]];
  }

  // Root starts subtree 0.
  layer->subtree_source.push_back(kNoItem);
  layer->subtree_root.push_back(0);
  layer->num_subtrees = 1;

  for (size_t i = 1; i < n; ++i) {
    uint32_t p = layer->parent[i];
    uint32_t candidate_depth = layer->local_depth[p] + 1;
    bool internal = child_count[i] > 0;
    if (candidate_depth >= f_ - 1 && internal) {
      // Start a new subtree rooted here; remember the split point.
      layer->subtree[i] = layer->num_subtrees++;
      layer->local_depth[i] = 0;
      layer->subtree_source.push_back(p);
      layer->subtree_root.push_back(static_cast<uint32_t>(i));
    } else {
      layer->subtree[i] = layer->subtree[p];
      layer->local_depth[i] = candidate_depth;
    }
  }
}

Status LayeredDeweyScheme::Build(const PhyloTree& tree) {
  layers_.clear();
  if (tree.empty()) return Status::OK();

  // Layer 0: items are tree nodes; the arena guarantees parent < child.
  Layer base;
  base.parent.resize(tree.size());
  base.parent[0] = kNoItem;
  for (NodeId nid = 1; nid < tree.size(); ++nid) {
    base.parent[nid] = tree.parent(nid);
  }
  DecomposeLayer(&base);
  layers_.push_back(std::move(base));

  // Higher layers until a single subtree remains.
  while (layers_.back().num_subtrees > 1) {
    const Layer& below = layers_.back();
    Layer up;
    up.parent.resize(below.num_subtrees);
    up.parent[0] = kNoItem;
    for (uint32_t s = 1; s < below.num_subtrees; ++s) {
      // Parent subtree = subtree containing the source item. Subtree
      // ids increase along preorder of their roots, so parent < child.
      up.parent[s] = below.subtree[below.subtree_source[s]];
      assert(up.parent[s] < s);
    }
    DecomposeLayer(&up);
    layers_.push_back(std::move(up));
    if (layers_.size() > 64) {
      return Status::Internal("layered dewey: runaway layer recursion");
    }
  }
  return Status::OK();
}

namespace {

void PutU32Vector(std::string* dst, const std::vector<uint32_t>& v) {
  PutVarint32(dst, static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) PutVarint32(dst, x);
}

bool GetU32Vector(Slice* input, std::vector<uint32_t>* v) {
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) return false;
  // Sanity bound: every element needs at least one encoded byte.
  if (n > input->size()) return false;
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetVarint32(input, &(*v)[i])) return false;
  }
  return true;
}

constexpr uint32_t kLayeredDeweyFormatVersion = 1;

}  // namespace

void LayeredDeweyScheme::EncodeTo(std::string* dst) const {
  PutVarint32(dst, kLayeredDeweyFormatVersion);
  PutVarint32(dst, f_);
  PutVarint32(dst, static_cast<uint32_t>(layers_.size()));
  for (const Layer& layer : layers_) {
    PutU32Vector(dst, layer.parent);
    PutU32Vector(dst, layer.ordinal);
    PutU32Vector(dst, layer.subtree);
    PutU32Vector(dst, layer.local_depth);
    PutU32Vector(dst, layer.subtree_source);
    PutU32Vector(dst, layer.subtree_root);
    PutVarint32(dst, layer.num_subtrees);
  }
}

Status LayeredDeweyScheme::DecodeFrom(Slice input) {
  uint32_t version = 0, f = 0, n_layers = 0;
  if (!GetVarint32(&input, &version) ||
      version != kLayeredDeweyFormatVersion) {
    return Status::Corruption("layered dewey blob: bad version");
  }
  if (!GetVarint32(&input, &f) || f < 3) {
    return Status::Corruption("layered dewey blob: bad f");
  }
  if (!GetVarint32(&input, &n_layers) || n_layers > 64) {
    return Status::Corruption("layered dewey blob: bad layer count");
  }
  std::vector<Layer> layers(n_layers);
  for (Layer& layer : layers) {
    if (!GetU32Vector(&input, &layer.parent) ||
        !GetU32Vector(&input, &layer.ordinal) ||
        !GetU32Vector(&input, &layer.subtree) ||
        !GetU32Vector(&input, &layer.local_depth) ||
        !GetU32Vector(&input, &layer.subtree_source) ||
        !GetU32Vector(&input, &layer.subtree_root) ||
        !GetVarint32(&input, &layer.num_subtrees)) {
      return Status::Corruption("layered dewey blob: truncated layer");
    }
    size_t n = layer.parent.size();
    if (layer.ordinal.size() != n || layer.subtree.size() != n ||
        layer.local_depth.size() != n ||
        layer.subtree_source.size() != layer.num_subtrees ||
        layer.subtree_root.size() != layer.num_subtrees) {
      return Status::Corruption("layered dewey blob: inconsistent layer");
    }
  }
  if (!input.empty()) {
    return Status::Corruption("layered dewey blob: trailing bytes");
  }
  // Value/structure validation, so a parsable-but-corrupt blob (bit
  // flips on disk) surfaces as Corruption here -- triggering the
  // rebuild fallback -- rather than out-of-bounds indexing at query
  // time. Build's invariants: parents precede children, subtree ids
  // are dense and in range, local depths are bounded by f, each layer
  // has one item per subtree of the layer below, and the top layer is
  // a single subtree.
  for (size_t li = 0; li < layers.size(); ++li) {
    const Layer& layer = layers[li];
    size_t n = layer.parent.size();
    if (n == 0 || layer.num_subtrees == 0 || layer.num_subtrees > n) {
      return Status::Corruption("layered dewey blob: bad layer shape");
    }
    if (layer.parent[0] != kNoItem || layer.subtree_source[0] != kNoItem) {
      return Status::Corruption("layered dewey blob: bad layer root");
    }
    for (size_t i = 1; i < n; ++i) {
      if (layer.parent[i] >= i) {
        return Status::Corruption("layered dewey blob: parent out of range");
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (layer.subtree[i] >= layer.num_subtrees || layer.local_depth[i] >= f) {
        return Status::Corruption("layered dewey blob: label out of range");
      }
    }
    for (uint32_t s = 0; s < layer.num_subtrees; ++s) {
      if ((s > 0 && layer.subtree_source[s] >= n) ||
          layer.subtree_root[s] >= n) {
        return Status::Corruption("layered dewey blob: subtree out of range");
      }
    }
    if (li + 1 < layers.size()) {
      if (layers[li + 1].parent.size() != layer.num_subtrees) {
        return Status::Corruption("layered dewey blob: layer size mismatch");
      }
    } else if (layer.num_subtrees != 1) {
      return Status::Corruption("layered dewey blob: unterminated top layer");
    }
  }
  f_ = f;
  layers_ = std::move(layers);
  return Status::OK();
}

uint32_t LayeredDeweyScheme::WithinSubtreeLca(const Layer& layer, uint32_t a,
                                              uint32_t b) const {
  // Equalize local depths, then walk in lockstep; at most 2(f-1) steps.
  while (layer.local_depth[a] > layer.local_depth[b]) a = layer.parent[a];
  while (layer.local_depth[b] > layer.local_depth[a]) b = layer.parent[b];
  while (a != b) {
    a = layer.parent[a];
    b = layer.parent[b];
  }
  return a;
}

uint32_t LayeredDeweyScheme::ChildOfAncestor(uint32_t layer_idx,
                                             uint32_t item,
                                             uint32_t anc) const {
  const Layer& layer = layers_[layer_idx];
  if (layer.subtree[item] == layer.subtree[anc]) {
    // Both inside one bounded-depth subtree: at most f parent steps.
    while (layer.parent[item] != anc) item = layer.parent[item];
    return item;
  }
  // anc lives in a strictly higher subtree. Find, one layer up, the
  // child of anc's subtree on the path from item's subtree (recursion
  // terminates at the top layer, which has a single subtree).
  uint32_t s_star = ChildOfAncestor(layer_idx + 1, layer.subtree[item],
                                    layer.subtree[anc]);
  // s_star's source is the entry point inside anc's subtree.
  uint32_t src = layer.subtree_source[s_star];
  if (src == anc) return layer.subtree_root[s_star];
  while (layer.parent[src] != anc) src = layer.parent[src];
  return src;
}

uint32_t LayeredDeweyScheme::ClimbIntoSubtree(uint32_t layer_idx, uint32_t a,
                                              uint32_t target) const {
  const Layer& layer = layers_[layer_idx];
  if (layer.subtree[a] == target) return a;
  // At layer k+1, `target` is an item and a proper ancestor of a's
  // subtree; the child of `target` on that path is the subtree whose
  // source is the entry point we want.
  uint32_t s_star =
      ChildOfAncestor(layer_idx + 1, layer.subtree[a], target);
  return layer.subtree_source[s_star];
}

uint32_t LayeredDeweyScheme::LcaAtLayer(uint32_t layer_idx, uint32_t a,
                                        uint32_t b) const {
  const Layer& layer = layers_[layer_idx];
  if (layer.subtree[a] == layer.subtree[b]) {
    return WithinSubtreeLca(layer, a, b);
  }
  // Different subtrees: find the LCA subtree one layer up (items of
  // layer k+1 are exactly the subtrees of layer k), then bring both
  // nodes into that subtree through their source links (paper §2.1),
  // jumping whole layers at a time.
  uint32_t lca_subtree =
      LcaAtLayer(layer_idx + 1, layer.subtree[a], layer.subtree[b]);
  uint32_t a2 = ClimbIntoSubtree(layer_idx, a, lca_subtree);
  uint32_t b2 = ClimbIntoSubtree(layer_idx, b, lca_subtree);
  return WithinSubtreeLca(layer, a2, b2);
}

Result<NodeId> LayeredDeweyScheme::Lca(NodeId a, NodeId b) const {
  if (layers_.empty()) return Status::FailedPrecondition("not built");
  if (a >= node_count() || b >= node_count()) {
    return Status::InvalidArgument("node out of range");
  }
  return static_cast<NodeId>(LcaAtLayer(0, a, b));
}

Result<bool> LayeredDeweyScheme::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  CRIMSON_ASSIGN_OR_RETURN(NodeId l, Lca(anc, n));
  return l == anc;
}

DeweyLabel LayeredDeweyScheme::LocalLabel(NodeId n) const {
  const Layer& layer = layers_[0];
  std::vector<uint32_t> comps(layer.local_depth[n]);
  uint32_t cur = n;
  for (size_t i = comps.size(); i > 0; --i) {
    comps[i - 1] = layer.ordinal[cur];
    cur = layer.parent[cur];
  }
  return DeweyLabel(std::move(comps));
}

size_t LayeredDeweyScheme::LabelBytes(NodeId n) const {
  // Stored label = (subtree id, local Dewey label); the local part has
  // < f components, which is the paper's boundedness claim.
  const Layer& layer = layers_[0];
  size_t bytes = VarintLength(layer.subtree[n]);
  bytes += VarintLength(layer.local_depth[n]);
  uint32_t cur = n;
  for (uint32_t i = 0; i < layer.local_depth[n]; ++i) {
    bytes += VarintLength(layer.ordinal[cur]);
    cur = layer.parent[cur];
  }
  return bytes;
}

}  // namespace crimson
