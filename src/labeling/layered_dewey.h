// Layered Dewey labeling -- Crimson's core contribution (paper §2.1).
//
// Plain Dewey labels grow with depth, which hurts on phylogenetic
// simulation trees (average depth > 1000, up to 10^6 levels). Crimson
// bounds label size by a constant f: the tree is decomposed into
// subtrees of bounded depth ("layer 0"); a "layer 1" tree is built with
// one node per layer-0 subtree (edges mirroring the subtree
// relationships); layers are built recursively until one subtree
// remains. Every node gets a Dewey label *local to its subtree* (length
// < f), plus its subtree id.
//
// Decomposition rule (calibrated against the paper's Figure 4, where
// f=3 splits the sample tree into {root,Syn,P,Bha,Bsu} and {x,Lla,Spy}):
// a node whose local depth would reach f-1 starts a new subtree if it
// is internal; leaves may sit at local depth f-1. Hence every subtree
// spans at most f levels and every local label has < f components.
//
// Each split-off subtree records its "source node": the parent (in the
// layer below) of the subtree's root -- the dotted 6 -> 3 edge in
// Figure 4. LCA across subtrees recurses one layer up, then descends
// through source links, exactly the paper's algorithm.

#ifndef CRIMSON_LABELING_LAYERED_DEWEY_H_
#define CRIMSON_LABELING_LAYERED_DEWEY_H_

#include <cstdint>
#include <vector>

#include "labeling/dewey_label.h"
#include "labeling/scheme.h"

namespace crimson {

class LayeredDeweyScheme final : public LabelingScheme {
 public:
  /// f = maximum levels per subtree (>= 2). The paper's Figure 4 uses 3.
  explicit LayeredDeweyScheme(uint32_t f = 8);

  std::string name() const override;
  Status Build(const PhyloTree& tree) override;
  Result<NodeId> Lca(NodeId a, NodeId b) const override;
  Result<bool> IsAncestorOrSelf(NodeId anc, NodeId n) const override;
  size_t LabelBytes(NodeId n) const override;
  size_t node_count() const override {
    return layers_.empty() ? 0 : layers_[0].parent.size();
  }

  uint32_t f() const { return f_; }

  /// Number of layers (1 for trees shallower than f).
  uint32_t num_layers() const { return static_cast<uint32_t>(layers_.size()); }

  /// Layer-0 subtree id of a tree node.
  uint32_t SubtreeOf(NodeId n) const { return layers_[0].subtree[n]; }

  /// Number of subtrees in a layer.
  uint32_t NumSubtrees(uint32_t layer) const {
    return layers_[layer].num_subtrees;
  }

  /// The source node of a layer-0 subtree: the tree node from which the
  /// subtree was split off (parent of the subtree root); kNoNode for the
  /// subtree containing the tree root.
  NodeId SourceOfSubtree(uint32_t subtree) const {
    uint32_t s = layers_[0].subtree_source[subtree];
    return s == kNoItem ? kNoNode : s;
  }

  /// Local (within-subtree) Dewey label of a node; < f components.
  DeweyLabel LocalLabel(NodeId n) const;

  /// Depth of node n within its subtree (0 = subtree root).
  uint32_t LocalDepth(NodeId n) const { return layers_[0].local_depth[n]; }

  /// Serializes the built scheme (all layers) so a stored tree can be
  /// re-bound without relabeling. The encoding is canonical: two
  /// schemes built over the same tree with the same f encode to the
  /// same bytes.
  void EncodeTo(std::string* dst) const;

  /// Restores a scheme previously written by EncodeTo, replacing any
  /// current state. Corruption on malformed input.
  Status DecodeFrom(Slice input);

 private:
  static constexpr uint32_t kNoItem = 0xffffffffu;

  /// One layer. Items are tree nodes at layer 0, and layer-(k-1)
  /// subtrees at layer k.
  struct Layer {
    std::vector<uint32_t> parent;       // parent item in the layer tree
    std::vector<uint32_t> ordinal;      // 1-based child ordinal
    std::vector<uint32_t> subtree;      // subtree id
    std::vector<uint32_t> local_depth;  // depth within the subtree
    std::vector<uint32_t> subtree_source;  // per subtree: parent item of root
    std::vector<uint32_t> subtree_root;    // per subtree: its root item
    uint32_t num_subtrees = 0;
  };

  /// Decomposes a layer tree (parent[] already set, parent < child)
  /// into subtrees; fills the remaining Layer fields.
  void DecomposeLayer(Layer* layer) const;

  /// LCA of two items within one layer (recursing upward as needed).
  uint32_t LcaAtLayer(uint32_t layer, uint32_t a, uint32_t b) const;

  /// LCA of two items known to share a subtree: O(f) parent walk.
  uint32_t WithinSubtreeLca(const Layer& layer, uint32_t a, uint32_t b) const;

  /// Ancestor-or-self of item `a` that lies inside subtree `target`
  /// (which must contain an ancestor-or-self of `a`). Runs in
  /// O(f * layers) by recursing up the layer hierarchy rather than
  /// walking the source chain one subtree at a time.
  uint32_t ClimbIntoSubtree(uint32_t layer, uint32_t a, uint32_t target) const;

  /// The ancestor-or-self `c` of `item` with parent[layer][c] == anc;
  /// `anc` must be a proper ancestor of `item` in the layer tree.
  uint32_t ChildOfAncestor(uint32_t layer, uint32_t item, uint32_t anc) const;

  uint32_t f_;
  std::vector<Layer> layers_;
};

}  // namespace crimson

#endif  // CRIMSON_LABELING_LAYERED_DEWEY_H_
