#include "labeling/scheme.h"

namespace crimson {

size_t LabelingScheme::TotalLabelBytes() const {
  size_t total = 0;
  for (NodeId n = 0; n < node_count(); ++n) total += LabelBytes(n);
  return total;
}

size_t LabelingScheme::MaxLabelBytes() const {
  size_t best = 0;
  for (NodeId n = 0; n < node_count(); ++n) {
    size_t b = LabelBytes(n);
    if (b > best) best = b;
  }
  return best;
}

}  // namespace crimson
