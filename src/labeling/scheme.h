// LabelingScheme: common interface over the node-labeling strategies
// compared in the paper -- plain Dewey [11], Crimson's layered Dewey
// (the contribution), interval/pre-post encodings [2,3], and the naive
// parent-walk baseline. The query processors and benches are generic
// over this interface.

#ifndef CRIMSON_LABELING_SCHEME_H_
#define CRIMSON_LABELING_SCHEME_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "tree/phylo_tree.h"

namespace crimson {

class LabelingScheme {
 public:
  virtual ~LabelingScheme() = default;

  /// Scheme name for reports ("dewey", "layered_dewey(f=8)", ...).
  virtual std::string name() const = 0;

  /// Builds labels for the tree. The tree must outlive the scheme.
  virtual Status Build(const PhyloTree& tree) = 0;

  /// Least common ancestor of a and b.
  virtual Result<NodeId> Lca(NodeId a, NodeId b) const = 0;

  /// True if anc is an ancestor of (or equal to) n.
  virtual Result<bool> IsAncestorOrSelf(NodeId anc, NodeId n) const = 0;

  /// Per-node label footprint in bytes (as stored).
  virtual size_t LabelBytes(NodeId n) const = 0;

  /// Aggregate label statistics (the quantity the paper bounds by f).
  size_t TotalLabelBytes() const;
  size_t MaxLabelBytes() const;

  /// Number of labeled nodes.
  virtual size_t node_count() const = 0;
};

}  // namespace crimson

#endif  // CRIMSON_LABELING_SCHEME_H_
