#include "net/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/coding.h"
#include "common/random.h"
#include "common/string_util.h"

namespace crimson {
namespace net {

int64_t ComputeRetryBackoffMs(const ClientOptions& options, int attempt,
                              int64_t server_hint_ms) {
  const int64_t base = options.retry_base_ms > 1 ? options.retry_base_ms : 1;
  const int64_t cap = options.retry_max_ms > base ? options.retry_max_ms : base;
  int64_t exp = base;
  for (int i = 0; i < attempt && exp < cap; ++i) exp *= 2;
  if (exp > cap) exp = cap;
  // Equal jitter: keep half the ceiling as a floor so backoff still
  // grows with the attempt number, randomize the rest. The stream is a
  // pure function of (seed, attempt) -- no global RNG state -- so a
  // fixed seed replays the exact schedule.
  uint64_t state = options.retry_jitter_seed ^
                   (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(attempt) + 1));
  const uint64_t r = SplitMix64(&state);
  const int64_t half = exp / 2;
  const int64_t jittered =
      half + static_cast<int64_t>(r % static_cast<uint64_t>(exp - half + 1));
  const int64_t hint = server_hint_ms > 0 ? server_hint_ms : 0;
  const int64_t delay = hint + jittered;
  return delay > 1 ? delay : 1;
}

Result<std::unique_ptr<CrimsonClient>> CrimsonClient::Connect(
    const ClientOptions& options) {
  CRIMSON_ASSIGN_OR_RETURN(Socket sock,
                           ConnectTcp(options.host, options.port));
  std::unique_ptr<CrimsonClient> client(new CrimsonClient(std::move(sock)));
  client->options_ = options;
  if (client->options_.retry_jitter_seed == 0) {
    // Derive a per-connection seed so concurrent clients retrying the
    // same saturated server don't share a jitter stream.
    uint64_t raw = reinterpret_cast<uintptr_t>(client.get()) ^
                   (static_cast<uint64_t>(client->socket_.fd()) << 32) ^
                   options.port;
    client->options_.retry_jitter_seed = SplitMix64(&raw);
  }
  return client;
}

Status CrimsonClient::SendRequest(MessageType type, Slice payload) {
  if (!transport_.ok()) return transport_;
  std::string frame;
  AppendFrame(&frame, type, payload);
  Status s = SendAll(socket_, frame.data(), frame.size());
  if (!s.ok()) transport_ = s;
  return s;
}

Result<Frame> CrimsonClient::ReadFrame() {
  if (!transport_.ok()) return transport_;
  char chunk[64 * 1024];
  for (;;) {
    Slice in(buffer_);
    Frame frame;
    std::string error;
    FrameDecode d =
        DecodeFrame(&in, &frame, &error, options_.max_frame_payload);
    if (d == FrameDecode::kFrame) {
      buffer_.erase(0, buffer_.size() - in.size());
      return frame;
    }
    if (d == FrameDecode::kBad) {
      transport_ = Status::Corruption(
          StrFormat("response stream corrupt: %s", error.c_str()));
      return transport_;
    }
    Result<size_t> got = RecvSome(socket_, chunk, sizeof(chunk));
    if (!got.ok()) {
      transport_ = got.status();
      return transport_;
    }
    if (*got == 0) {
      transport_ = Status::IOError("server closed the connection");
      return transport_;
    }
    buffer_.append(chunk, *got);
  }
}

Result<Frame> CrimsonClient::ExpectType(Frame frame, MessageType ok_type) {
  if (frame.type == ok_type) return frame;
  if (frame.type == MessageType::kError) {
    Slice in(frame.payload);
    Status carried;
    Status decoded = DecodeStatusPayload(&in, &carried);
    if (!decoded.ok()) {
      transport_ = Status::Corruption("undecodable error reply");
      return transport_;
    }
    if (carried.ok()) {
      // An error frame must carry a non-OK status; treat as corruption.
      transport_ = Status::Corruption("error reply carrying OK status");
      return transport_;
    }
    return carried;
  }
  transport_ = Status::Corruption(
      StrFormat("unexpected reply type %u (wanted %u)",
                static_cast<unsigned>(frame.type),
                static_cast<unsigned>(ok_type)));
  return transport_;
}

Result<Frame> CrimsonClient::RoundTrip(MessageType type, Slice payload,
                                       MessageType ok_type) {
  CRIMSON_RETURN_IF_ERROR(SendRequest(type, payload));
  CRIMSON_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  return ExpectType(std::move(frame), ok_type);
}

Result<std::string> CrimsonClient::Ping(const std::string& payload) {
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(MessageType::kPing, payload, MessageType::kPong));
  return frame.payload;
}

Result<TreeInfo> CrimsonClient::OpenTree(const std::string& name) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, name);
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kOpenTree, payload, MessageType::kOpenTreeOk));
  Slice in(frame.payload);
  return DecodeTreeInfo(&in);
}

Result<TreeInfo> CrimsonClient::StoreNewick(const std::string& name,
                                            const std::string& newick,
                                            LoadMode mode) {
  StoreTreeRequest req;
  req.name = name;
  req.format = TreeFormat::kNewick;
  req.mode = mode;
  req.text = newick;
  std::string payload;
  EncodeStoreTreeRequest(&payload, req);
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kStoreTree, payload, MessageType::kStoreTreeOk));
  Slice in(frame.payload);
  return DecodeTreeInfo(&in);
}

Result<TreeInfo> CrimsonClient::StoreNexus(const std::string& name,
                                           const std::string& nexus,
                                           LoadMode mode) {
  StoreTreeRequest req;
  req.name = name;
  req.format = TreeFormat::kNexus;
  req.mode = mode;
  req.text = nexus;
  std::string payload;
  EncodeStoreTreeRequest(&payload, req);
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kStoreTree, payload, MessageType::kStoreTreeOk));
  Slice in(frame.payload);
  return DecodeTreeInfo(&in);
}

Result<std::vector<TreeInfo>> CrimsonClient::ListTrees() {
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kListTrees, Slice(), MessageType::kListTreesOk));
  Slice in(frame.payload);
  return DecodeTreeInfoList(&in);
}

Result<QueryResult> CrimsonClient::Execute(const std::string& tree_name,
                                           const QueryRequest& request) {
  QueryEnvelope env{tree_name, request};
  std::string payload;
  EncodeQueryEnvelope(&payload, env);
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kQuery, payload, MessageType::kQueryOk));
  Slice in(frame.payload);
  return DecodeQueryResultWire(&in);
}

std::vector<Result<QueryResult>> CrimsonClient::ExecuteBatch(
    const std::string& tree_name, Span<const QueryRequest> requests) {
  std::vector<Result<QueryResult>> results;
  results.reserve(requests.size());
  // Pipeline: one write carrying every request frame...
  std::string wire;
  for (size_t i = 0; i < requests.size(); ++i) {
    QueryEnvelope env{tree_name, requests[i]};
    std::string payload;
    EncodeQueryEnvelope(&payload, env);
    AppendFrame(&wire, MessageType::kQuery, payload);
  }
  Status sent = transport_.ok()
                    ? SendAll(socket_, wire.data(), wire.size())
                    : transport_;
  if (!sent.ok()) {
    transport_ = sent;
    results.assign(requests.size(), sent);
    return results;
  }
  // ...then the responses, strictly in request order.
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<Frame> frame = ReadFrame();
    if (frame.ok()) {
      frame = ExpectType(std::move(*frame), MessageType::kQueryOk);
    }
    if (!frame.ok()) {
      results.push_back(frame.status());
      continue;
    }
    Slice in(frame->payload);
    results.push_back(DecodeQueryResultWire(&in));
  }
  return results;
}

Result<QueryResult> CrimsonClient::ExecuteWithRetry(
    const std::string& tree_name, const QueryRequest& request,
    int max_attempts) {
  Result<QueryResult> result = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    result = Execute(tree_name, request);
    if (result.ok() || !result.status().IsUnavailable()) return result;
    if (attempt + 1 >= max_attempts) break;  // out of attempts: don't sleep
    const int64_t delay_ms = ComputeRetryBackoffMs(
        options_, attempt, result.status().retry_after_ms());
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return result;
}

Result<std::vector<QueryRepository::Entry>> CrimsonClient::History(
    size_t limit) {
  std::string payload;
  PutVarint64(&payload, limit);
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kHistory, payload, MessageType::kHistoryOk));
  Slice in(frame.payload);
  return DecodeHistoryEntries(&in);
}

Result<SessionStats> CrimsonClient::ServerStats() {
  CRIMSON_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(MessageType::kStats, Slice(), MessageType::kStatsOk));
  Slice in(frame.payload);
  return DecodeSessionStats(&in);
}

Result<obs::MetricsSnapshot> CrimsonClient::ServerMetrics() {
  CRIMSON_ASSIGN_OR_RETURN(SessionStats stats, ServerStats());
  return std::move(stats.metrics);
}

Status CrimsonClient::Checkpoint() {
  Result<Frame> frame =
      RoundTrip(MessageType::kCheckpoint, Slice(), MessageType::kCheckpointOk);
  return frame.ok() ? Status::OK() : frame.status();
}

}  // namespace net
}  // namespace crimson
