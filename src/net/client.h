// CrimsonClient: a small, typed C++ client for the Crimson wire
// protocol. One client owns one connection and speaks the same
// QueryRequest/QueryResult values as the in-process session API, so
// code written against Crimson::Execute ports to the remote API by
// swapping the session for a client.
//
// Pipelining: ExecuteBatch writes all requests back-to-back before
// reading any response. The server coalesces such runs into one
// ExecuteBatch dispatch; responses come back in request order and are
// byte-identical to issuing the queries one at a time.
//
// Backpressure: when the server is saturated it answers with
// Status::Unavailable carrying retry_after_ms. The client surfaces
// that status verbatim (it does not retry on its own); callers decide
// whether to back off and retry -- see ExecuteWithRetry for the
// canonical loop.
//
// Thread safety: none. A client is one connection with one in-order
// response stream; use one client per thread.

#ifndef CRIMSON_NET_CLIENT_H_
#define CRIMSON_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "crimson/data_loader.h"
#include "crimson/query_request.h"
#include "crimson/repositories.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace crimson {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Frames with larger payloads are treated as stream corruption.
  uint32_t max_frame_payload = kMaxPayloadBytes;
};

class CrimsonClient {
 public:
  static Result<std::unique_ptr<CrimsonClient>> Connect(
      const ClientOptions& options);

  CrimsonClient(const CrimsonClient&) = delete;
  CrimsonClient& operator=(const CrimsonClient&) = delete;

  /// Round-trips an opaque payload; returns the echo.
  [[nodiscard]] Result<std::string> Ping(const std::string& payload = {});

  /// Binds a stored tree on the server; returns its metadata.
  [[nodiscard]] Result<TreeInfo> OpenTree(const std::string& name);

  /// Parses + stores a tree document on the server.
  [[nodiscard]] Result<TreeInfo> StoreNewick(
      const std::string& name, const std::string& newick,
      LoadMode mode = LoadMode::kTreeStructureOnly);
  [[nodiscard]] Result<TreeInfo> StoreNexus(
      const std::string& name, const std::string& nexus,
      LoadMode mode = LoadMode::kTreeWithSpeciesData);

  [[nodiscard]] Result<std::vector<TreeInfo>> ListTrees();

  /// One typed query against a named tree on the server.
  [[nodiscard]] Result<QueryResult> Execute(const std::string& tree_name,
                                            const QueryRequest& request);

  /// Pipelined queries: all requests are written before any response
  /// is read; results come back in request order. On a transport
  /// failure the remaining entries carry that failure.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::string& tree_name, Span<const QueryRequest> requests);

  /// Execute with bounded retry on kUnavailable: sleeps the server's
  /// retry_after_ms hint (or 1ms when absent) between attempts.
  [[nodiscard]] Result<QueryResult> ExecuteWithRetry(
      const std::string& tree_name, const QueryRequest& request,
      int max_attempts = 8);

  /// The server's query history, newest first.
  [[nodiscard]] Result<std::vector<QueryRepository::Entry>> History(
      size_t limit = 50);

  /// Asks the server for a durable checkpoint.
  Status Checkpoint();

  /// Sticky transport status: OK until the connection breaks.
  const Status& transport_status() const { return transport_; }

 private:
  explicit CrimsonClient(Socket socket) : socket_(std::move(socket)) {}

  /// Writes one frame.
  Status SendRequest(MessageType type, Slice payload);
  /// Reads exactly one frame (blocking).
  Result<Frame> ReadFrame();
  /// Sends `payload` as `type` and expects `ok_type` back; a kError
  /// response decodes into its carried Status.
  Result<Frame> RoundTrip(MessageType type, Slice payload,
                          MessageType ok_type);
  /// Interprets a response frame as `ok_type` or a typed error.
  Result<Frame> ExpectType(Frame frame, MessageType ok_type);

  Socket socket_;
  ClientOptions options_;
  std::string buffer_;  // bytes received but not yet framed
  Status transport_;    // sticky; non-OK poisons every later call
};

}  // namespace net
}  // namespace crimson

#endif  // CRIMSON_NET_CLIENT_H_
