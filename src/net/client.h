// CrimsonClient: a small, typed C++ client for the Crimson wire
// protocol. One client owns one connection and speaks the same
// QueryRequest/QueryResult values as the in-process session API, so
// code written against Crimson::Execute ports to the remote API by
// swapping the session for a client.
//
// Pipelining: ExecuteBatch writes all requests back-to-back before
// reading any response. The server coalesces such runs into one
// ExecuteBatch dispatch; responses come back in request order and are
// byte-identical to issuing the queries one at a time.
//
// Backpressure: when the server is saturated it answers with
// Status::Unavailable carrying retry_after_ms. The client surfaces
// that status verbatim (it does not retry on its own); callers decide
// whether to back off and retry -- see ExecuteWithRetry for the
// canonical loop. The retry loop sleeps a capped exponential backoff
// with deterministic seeded jitter (ComputeRetryBackoffMs) on top of
// the server's hint, so colliding clients spread out instead of
// re-stampeding the server in lockstep.
//
// Thread safety: none. A client is one connection with one in-order
// response stream; use one client per thread.

#ifndef CRIMSON_NET_CLIENT_H_
#define CRIMSON_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "crimson/data_loader.h"
#include "crimson/query_request.h"
#include "crimson/repositories.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace crimson {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Frames with larger payloads are treated as stream corruption.
  uint32_t max_frame_payload = kMaxPayloadBytes;
  /// ExecuteWithRetry backoff: first-attempt ceiling in milliseconds.
  /// The ceiling doubles per attempt, clamped to retry_max_ms.
  int64_t retry_base_ms = 10;
  /// ExecuteWithRetry backoff: per-attempt ceiling cap in milliseconds.
  int64_t retry_max_ms = 2000;
  /// Seed for the backoff jitter. 0 (the default) derives a
  /// per-connection seed at Connect so concurrent clients decorrelate;
  /// any other value makes the retry schedule fully deterministic
  /// (tests, replay).
  uint64_t retry_jitter_seed = 0;
};

/// The delay ExecuteWithRetry sleeps after a kUnavailable response on
/// `attempt` (0-based) when the server hinted `server_hint_ms` (<= 0
/// when absent). Pure function of its arguments: the jitter stream is
/// derived from options.retry_jitter_seed and the attempt number, so a
/// fixed seed yields a fixed schedule. The result is
///   max(hint, 0) + equal-jitter(exp)   where
///   exp = min(retry_base_ms << attempt, retry_max_ms)
/// and equal-jitter draws uniformly from [exp/2, exp]. Always >= 1.
int64_t ComputeRetryBackoffMs(const ClientOptions& options, int attempt,
                              int64_t server_hint_ms);

class CrimsonClient {
 public:
  static Result<std::unique_ptr<CrimsonClient>> Connect(
      const ClientOptions& options);

  CrimsonClient(const CrimsonClient&) = delete;
  CrimsonClient& operator=(const CrimsonClient&) = delete;

  /// Round-trips an opaque payload; returns the echo.
  [[nodiscard]] Result<std::string> Ping(const std::string& payload = {});

  /// Binds a stored tree on the server; returns its metadata.
  [[nodiscard]] Result<TreeInfo> OpenTree(const std::string& name);

  /// Parses + stores a tree document on the server.
  [[nodiscard]] Result<TreeInfo> StoreNewick(
      const std::string& name, const std::string& newick,
      LoadMode mode = LoadMode::kTreeStructureOnly);
  [[nodiscard]] Result<TreeInfo> StoreNexus(
      const std::string& name, const std::string& nexus,
      LoadMode mode = LoadMode::kTreeWithSpeciesData);

  [[nodiscard]] Result<std::vector<TreeInfo>> ListTrees();

  /// One typed query against a named tree on the server.
  [[nodiscard]] Result<QueryResult> Execute(const std::string& tree_name,
                                            const QueryRequest& request);

  /// Pipelined queries: all requests are written before any response
  /// is read; results come back in request order. On a transport
  /// failure the remaining entries carry that failure.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::string& tree_name, Span<const QueryRequest> requests);

  /// Execute with bounded retry on kUnavailable: between attempts,
  /// sleeps the server's retry_after_ms hint plus capped exponential
  /// backoff with seeded jitter (see ComputeRetryBackoffMs and the
  /// retry_* options). Does not sleep after the final attempt.
  [[nodiscard]] Result<QueryResult> ExecuteWithRetry(
      const std::string& tree_name, const QueryRequest& request,
      int max_attempts = 8);

  /// The server's query history, newest first.
  [[nodiscard]] Result<std::vector<QueryRepository::Entry>> History(
      size_t limit = 50);

  /// The server's cache + MVCC counters (a point-in-time snapshot).
  [[nodiscard]] Result<SessionStats> ServerStats();

  /// The server's full metrics snapshot -- every layer (query kinds,
  /// storage, cache, net) with latency histograms. Same wire exchange
  /// as ServerStats; this accessor just returns the registry view.
  [[nodiscard]] Result<obs::MetricsSnapshot> ServerMetrics();

  /// Asks the server for a durable checkpoint.
  Status Checkpoint();

  /// Sticky transport status: OK until the connection breaks.
  const Status& transport_status() const { return transport_; }

 private:
  explicit CrimsonClient(Socket socket) : socket_(std::move(socket)) {}

  /// Writes one frame.
  Status SendRequest(MessageType type, Slice payload);
  /// Reads exactly one frame (blocking).
  Result<Frame> ReadFrame();
  /// Sends `payload` as `type` and expects `ok_type` back; a kError
  /// response decodes into its carried Status.
  Result<Frame> RoundTrip(MessageType type, Slice payload,
                          MessageType ok_type);
  /// Interprets a response frame as `ok_type` or a typed error.
  Result<Frame> ExpectType(Frame frame, MessageType ok_type);

  Socket socket_;
  ClientOptions options_;
  std::string buffer_;  // bytes received but not yet framed
  Status transport_;    // sticky; non-OK poisons every later call
};

}  // namespace net
}  // namespace crimson

#endif  // CRIMSON_NET_CLIENT_H_
