#include "net/protocol.h"

#include <utility>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/overloaded.h"
#include "common/string_util.h"

namespace crimson {
namespace net {

namespace {

// Variant tags, frozen at protocol version 1.
enum class RequestTag : uint8_t {
  kLca = 0,
  kProject = 1,
  kSampleUniform = 2,
  kSampleTime = 3,
  kClade = 4,
  kPattern = 5,
};

enum class ResultTag : uint8_t {
  kLca = 0,
  kProject = 1,
  kSample = 2,
  kClade = 3,
  kPattern = 4,
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      StrFormat("wire decode: truncated or malformed %s", what));
}

bool GetByte(Slice* in, uint8_t* v) {
  if (in->empty()) return false;
  *v = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return true;
}

void PutString(std::string* dst, std::string_view s) {
  PutLengthPrefixedSlice(dst, Slice(s));
}

bool GetString(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  *out = s.ToString();
  return true;
}

/// Species lists: varint count + length-prefixed names. The count is
/// bounded by the remaining payload (>= 1 byte per entry) before any
/// allocation, so a hostile count cannot balloon memory.
void PutStringList(std::string* dst, const std::vector<std::string>& v) {
  PutVarint64(dst, v.size());
  for (const auto& s : v) PutString(dst, s);
}

bool GetStringList(Slice* in, std::vector<std::string>* out) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  if (n > in->size()) return false;
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(in, &s)) return false;
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace

// -- framing ----------------------------------------------------------------

void AppendFrame(std::string* dst, MessageType type, Slice payload) {
  PutFixed16(dst, kFrameMagic);
  dst->push_back(static_cast<char>(kProtocolVersion));
  dst->push_back(static_cast<char>(type));
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Crc32(payload.data(), payload.size()));
  dst->append(payload.data(), payload.size());
}

FrameDecode DecodeFrame(Slice* input, Frame* frame, std::string* error,
                        uint32_t max_payload) {
  if (input->size() < kFrameHeaderSize) return FrameDecode::kNeedMore;
  const char* h = input->data();
  const uint16_t magic = DecodeFixed16(h);
  if (magic != kFrameMagic) {
    *error = StrFormat("bad frame magic 0x%04x", magic);
    return FrameDecode::kBad;
  }
  const uint8_t version = static_cast<uint8_t>(h[2]);
  if (version == 0 || version > kProtocolVersion) {
    *error = StrFormat("unsupported protocol version %u", version);
    return FrameDecode::kBad;
  }
  const uint32_t len = DecodeFixed32(h + 4);
  if (len > max_payload) {
    *error = StrFormat("frame payload %u exceeds limit %u", len, max_payload);
    return FrameDecode::kBad;
  }
  if (input->size() < kFrameHeaderSize + len) return FrameDecode::kNeedMore;
  const uint32_t crc = DecodeFixed32(h + 8);
  const char* payload = h + kFrameHeaderSize;
  if (Crc32(payload, len) != crc) {
    *error = "frame CRC mismatch";
    return FrameDecode::kBad;
  }
  frame->type = static_cast<MessageType>(h[3]);
  frame->payload.assign(payload, len);
  input->remove_prefix(kFrameHeaderSize + len);
  return FrameDecode::kFrame;
}

// -- query requests ---------------------------------------------------------

void EncodeQueryRequest(std::string* dst, const QueryRequest& request) {
  std::visit(
      Overloaded{
          [&](const LcaQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kLca));
            PutString(dst, q.a);
            PutString(dst, q.b);
          },
          [&](const ProjectQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kProject));
            PutStringList(dst, q.species);
          },
          [&](const SampleUniformQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kSampleUniform));
            PutVarint64(dst, q.k);
          },
          [&](const SampleTimeQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kSampleTime));
            PutVarint64(dst, q.k);
            PutDouble(dst, q.time);
          },
          [&](const CladeQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kClade));
            PutStringList(dst, q.species);
          },
          [&](const PatternQuery& q) {
            dst->push_back(static_cast<char>(RequestTag::kPattern));
            PutString(dst, q.pattern_newick);
            dst->push_back(q.match_weights ? 1 : 0);
          },
      },
      request);
}

Result<QueryRequest> DecodeQueryRequestWire(Slice* in) {
  uint8_t tag = 0;
  if (!GetByte(in, &tag)) return Truncated("query request tag");
  switch (static_cast<RequestTag>(tag)) {
    case RequestTag::kLca: {
      LcaQuery q;
      if (!GetString(in, &q.a) || !GetString(in, &q.b)) {
        return Truncated("lca query");
      }
      return QueryRequest(std::move(q));
    }
    case RequestTag::kProject: {
      ProjectQuery q;
      if (!GetStringList(in, &q.species)) return Truncated("project query");
      return QueryRequest(std::move(q));
    }
    case RequestTag::kSampleUniform: {
      uint64_t k = 0;
      if (!GetVarint64(in, &k)) return Truncated("sample_uniform query");
      return QueryRequest(SampleUniformQuery{static_cast<size_t>(k)});
    }
    case RequestTag::kSampleTime: {
      uint64_t k = 0;
      double time = 0;
      if (!GetVarint64(in, &k) || !GetDouble(in, &time)) {
        return Truncated("sample_time query");
      }
      return QueryRequest(SampleTimeQuery{static_cast<size_t>(k), time});
    }
    case RequestTag::kClade: {
      CladeQuery q;
      if (!GetStringList(in, &q.species)) return Truncated("clade query");
      return QueryRequest(std::move(q));
    }
    case RequestTag::kPattern: {
      PatternQuery q;
      uint8_t weights = 0;
      if (!GetString(in, &q.pattern_newick) || !GetByte(in, &weights)) {
        return Truncated("pattern query");
      }
      q.match_weights = weights != 0;
      return QueryRequest(std::move(q));
    }
  }
  return Status::InvalidArgument(
      StrFormat("wire decode: unknown query request tag %u", tag));
}

void EncodeQueryEnvelope(std::string* dst, const QueryEnvelope& env) {
  PutString(dst, env.tree_name);
  EncodeQueryRequest(dst, env.request);
}

Result<QueryEnvelope> DecodeQueryEnvelope(Slice* in) {
  QueryEnvelope env;
  if (!GetString(in, &env.tree_name)) return Truncated("query tree name");
  CRIMSON_ASSIGN_OR_RETURN(env.request, DecodeQueryRequestWire(in));
  return env;
}

// -- trees ------------------------------------------------------------------

// Arena-order codec. AddChild both appends to the arena and appends to
// the parent's sibling chain, so arena order always agrees with
// sibling order -- rebuilding by arena index reproduces the tree
// exactly (parents strictly precede children).
void EncodeTree(std::string* dst, const PhyloTree& tree) {
  PutVarint64(dst, tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    // parent+1 so the root's "no parent" encodes as 0.
    PutVarint32(dst, tree.parent(n) == kNoNode ? 0 : tree.parent(n) + 1);
    PutString(dst, tree.name(n));
    PutDouble(dst, tree.edge_length(n));
  }
}

Result<PhyloTree> DecodeTree(Slice* in) {
  uint64_t count = 0;
  if (!GetVarint64(in, &count)) return Truncated("tree node count");
  // Each node needs >= 10 payload bytes (parent varint + empty name's
  // length byte + 8-byte edge length); reject hostile counts before
  // reserving anything.
  if (count > in->size() / 10 + 1) {
    return Status::InvalidArgument(
        StrFormat("wire decode: tree claims %llu nodes, payload too small",
                  static_cast<unsigned long long>(count)));
  }
  PhyloTree tree;
  // The name arena can never exceed the remaining payload, so one
  // up-front reservation covers both columns and label bytes.
  tree.Reserve(count, in->size());
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t parent_plus1 = 0;
    std::string name;
    double edge = 0;
    if (!GetVarint32(in, &parent_plus1) || !GetString(in, &name) ||
        !GetDouble(in, &edge)) {
      return Truncated("tree node");
    }
    if (name.find('\0') != std::string::npos) {
      return Status::InvalidArgument(
          "wire decode: tree node name contains NUL");
    }
    if (i == 0) {
      if (parent_plus1 != 0) {
        return Status::InvalidArgument("wire decode: tree root has a parent");
      }
      tree.AddRoot(std::move(name), edge);
    } else {
      if (parent_plus1 == 0 || parent_plus1 > i) {
        return Status::InvalidArgument(
            "wire decode: tree node parent out of order");
      }
      tree.AddChild(parent_plus1 - 1, std::move(name), edge);
    }
  }
  tree.ShrinkToFit();  // the payload-sized reserve above overshoots
  return tree;
}

// -- query results ----------------------------------------------------------

void EncodeQueryResult(std::string* dst, const QueryResult& result) {
  std::visit(
      Overloaded{
          [&](const LcaAnswer& a) {
            dst->push_back(static_cast<char>(ResultTag::kLca));
            PutFixed32(dst, a.node);
            PutString(dst, a.name);
          },
          [&](const ProjectAnswer& a) {
            dst->push_back(static_cast<char>(ResultTag::kProject));
            EncodeTree(dst, a.projection);
          },
          [&](const SampleAnswer& a) {
            dst->push_back(static_cast<char>(ResultTag::kSample));
            PutStringList(dst, a.species);
          },
          [&](const CladeAnswer& a) {
            dst->push_back(static_cast<char>(ResultTag::kClade));
            PutFixed32(dst, a.root);
            PutVarint64(dst, a.node_count);
            PutVarint64(dst, a.leaf_count);
          },
          [&](const PatternAnswer& a) {
            dst->push_back(static_cast<char>(ResultTag::kPattern));
            dst->push_back(a.exact ? 1 : 0);
            PutDouble(dst, a.rf_normalized);
            EncodeTree(dst, a.projection);
          },
      },
      result);
}

Result<QueryResult> DecodeQueryResultWire(Slice* in) {
  uint8_t tag = 0;
  if (!GetByte(in, &tag)) return Truncated("query result tag");
  switch (static_cast<ResultTag>(tag)) {
    case ResultTag::kLca: {
      LcaAnswer a;
      if (!GetFixed32(in, &a.node) || !GetString(in, &a.name)) {
        return Truncated("lca answer");
      }
      return QueryResult(std::move(a));
    }
    case ResultTag::kProject: {
      ProjectAnswer a;
      CRIMSON_ASSIGN_OR_RETURN(a.projection, DecodeTree(in));
      return QueryResult(std::move(a));
    }
    case ResultTag::kSample: {
      SampleAnswer a;
      if (!GetStringList(in, &a.species)) return Truncated("sample answer");
      return QueryResult(std::move(a));
    }
    case ResultTag::kClade: {
      CladeAnswer a;
      uint64_t nodes = 0, leaves = 0;
      if (!GetFixed32(in, &a.root) || !GetVarint64(in, &nodes) ||
          !GetVarint64(in, &leaves)) {
        return Truncated("clade answer");
      }
      a.node_count = static_cast<size_t>(nodes);
      a.leaf_count = static_cast<size_t>(leaves);
      return QueryResult(std::move(a));
    }
    case ResultTag::kPattern: {
      PatternAnswer a;
      uint8_t exact = 0;
      if (!GetByte(in, &exact) || !GetDouble(in, &a.rf_normalized)) {
        return Truncated("pattern answer");
      }
      a.exact = exact != 0;
      CRIMSON_ASSIGN_OR_RETURN(a.projection, DecodeTree(in));
      return QueryResult(std::move(a));
    }
  }
  return Status::InvalidArgument(
      StrFormat("wire decode: unknown query result tag %u", tag));
}

// -- tree info / store / history --------------------------------------------

void EncodeTreeInfo(std::string* dst, const TreeInfo& info) {
  PutVarint64(dst, static_cast<uint64_t>(info.tree_id));
  PutString(dst, info.name);
  PutVarint64(dst, static_cast<uint64_t>(info.n_nodes));
  PutVarint64(dst, static_cast<uint64_t>(info.n_leaves));
  PutVarint64(dst, static_cast<uint64_t>(info.f));
  PutVarint64(dst, static_cast<uint64_t>(info.max_depth));
}

Result<TreeInfo> DecodeTreeInfo(Slice* in) {
  TreeInfo info;
  uint64_t id = 0, nodes = 0, leaves = 0, f = 0, depth = 0;
  if (!GetVarint64(in, &id) || !GetString(in, &info.name) ||
      !GetVarint64(in, &nodes) || !GetVarint64(in, &leaves) ||
      !GetVarint64(in, &f) || !GetVarint64(in, &depth)) {
    return Truncated("tree info");
  }
  info.tree_id = static_cast<int64_t>(id);
  info.n_nodes = static_cast<int64_t>(nodes);
  info.n_leaves = static_cast<int64_t>(leaves);
  info.f = static_cast<int64_t>(f);
  info.max_depth = static_cast<int64_t>(depth);
  return info;
}

void EncodeTreeInfoList(std::string* dst, const std::vector<TreeInfo>& infos) {
  PutVarint64(dst, infos.size());
  for (const auto& info : infos) EncodeTreeInfo(dst, info);
}

Result<std::vector<TreeInfo>> DecodeTreeInfoList(Slice* in) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return Truncated("tree info count");
  if (n > in->size()) return Truncated("tree info count");
  std::vector<TreeInfo> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CRIMSON_ASSIGN_OR_RETURN(TreeInfo info, DecodeTreeInfo(in));
    out.push_back(std::move(info));
  }
  return out;
}

void EncodeStoreTreeRequest(std::string* dst, const StoreTreeRequest& req) {
  PutString(dst, req.name);
  dst->push_back(static_cast<char>(req.format));
  dst->push_back(static_cast<char>(req.mode));
  PutString(dst, req.text);
}

Result<StoreTreeRequest> DecodeStoreTreeRequest(Slice* in) {
  StoreTreeRequest req;
  uint8_t format = 0, mode = 0;
  if (!GetString(in, &req.name) || !GetByte(in, &format) ||
      !GetByte(in, &mode) || !GetString(in, &req.text)) {
    return Truncated("store tree request");
  }
  if (format > static_cast<uint8_t>(TreeFormat::kNexus)) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unknown tree format %u", format));
  }
  if (mode > static_cast<uint8_t>(LoadMode::kAppendSpeciesData)) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unknown load mode %u", mode));
  }
  req.format = static_cast<TreeFormat>(format);
  req.mode = static_cast<LoadMode>(mode);
  return req;
}

void EncodeHistoryEntries(std::string* dst,
                          const std::vector<QueryRepository::Entry>& entries) {
  PutVarint64(dst, entries.size());
  for (const auto& e : entries) {
    PutVarint64(dst, static_cast<uint64_t>(e.query_id));
    PutVarint64(dst, static_cast<uint64_t>(e.timestamp_micros));
    PutString(dst, e.kind);
    PutString(dst, e.params);
    PutString(dst, e.summary);
  }
}

Result<std::vector<QueryRepository::Entry>> DecodeHistoryEntries(Slice* in) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return Truncated("history count");
  if (n > in->size()) return Truncated("history count");
  std::vector<QueryRepository::Entry> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QueryRepository::Entry e;
    uint64_t id = 0, ts = 0;
    if (!GetVarint64(in, &id) || !GetVarint64(in, &ts) ||
        !GetString(in, &e.kind) || !GetString(in, &e.params) ||
        !GetString(in, &e.summary)) {
      return Truncated("history entry");
    }
    e.query_id = static_cast<int64_t>(id);
    e.timestamp_micros = static_cast<int64_t>(ts);
    out.push_back(std::move(e));
  }
  return out;
}

// -- session stats ----------------------------------------------------------

namespace {

/// Overlays the legacy fixed-key counters onto the merged dictionary.
/// Applied after the registry snapshot so the structs stay the wire
/// source of truth for these 24 names -- the registry's crack.*
/// mirrors are cumulative across evaluation-state drops, while the
/// struct aggregates walk the *live* states (the pre-registry wire
/// semantics).
void OverlayLegacyCounters(const SessionStats& stats,
                           std::map<std::string, uint64_t>* counters) {
  const cache::CacheStats& c = stats.cache;
  const PageVersions::Stats& p = stats.pages;
  const std::pair<const char*, uint64_t> legacy[] = {
      {"cache.hits", c.hits},
      {"cache.misses", c.misses},
      {"cache.insertions", c.insertions},
      {"cache.evictions", c.evictions},
      {"cache.invalidations", c.invalidations},
      {"cache.stale_skips", c.stale_skips},
      {"cache.bypassed", c.bypassed},
      {"cache.entries", c.entries},
      {"cache.bytes_used", c.bytes_used},
      {"cache.budget_bytes", c.budget_bytes},
      {"crack.stores", c.crack_stores},
      {"crack.pieces", c.crack_pieces},
      {"crack.loaded_pieces", c.crack_loaded_pieces},
      {"crack.sequences_loaded", c.crack_sequences_loaded},
      {"crack.sequences_total", c.crack_sequences_total},
      {"crack.fetches", c.crack_fetches},
      {"crack.batches", c.crack_batches},
      {"crack.piece_hits", c.crack_piece_hits},
      {"pages.captured_pages", p.captured_pages},
      {"pages.version_hits", p.version_hits},
      {"pages.versions_dropped", p.versions_dropped},
      {"pages.live_versions", p.live_versions},
      {"pages.active_snapshots", p.active_snapshots},
      {"pages.committed_epoch", p.committed_epoch},
  };
  for (const auto& [key, value] : legacy) (*counters)[key] = value;
}

/// Projects the legacy fixed keys out of the decoded dictionary into
/// the structs (absent keys stay 0 -- the old decode contract).
void FillLegacyStructs(SessionStats* stats) {
  const obs::MetricsSnapshot& m = stats->metrics;
  cache::CacheStats& c = stats->cache;
  PageVersions::Stats& p = stats->pages;
  c.hits = m.counter("cache.hits");
  c.misses = m.counter("cache.misses");
  c.insertions = m.counter("cache.insertions");
  c.evictions = m.counter("cache.evictions");
  c.invalidations = m.counter("cache.invalidations");
  c.stale_skips = m.counter("cache.stale_skips");
  c.bypassed = m.counter("cache.bypassed");
  c.entries = m.counter("cache.entries");
  c.bytes_used = m.counter("cache.bytes_used");
  c.budget_bytes = m.counter("cache.budget_bytes");
  c.crack_stores = m.counter("crack.stores");
  c.crack_pieces = m.counter("crack.pieces");
  c.crack_loaded_pieces = m.counter("crack.loaded_pieces");
  c.crack_sequences_loaded = m.counter("crack.sequences_loaded");
  c.crack_sequences_total = m.counter("crack.sequences_total");
  c.crack_fetches = m.counter("crack.fetches");
  c.crack_batches = m.counter("crack.batches");
  c.crack_piece_hits = m.counter("crack.piece_hits");
  p.captured_pages = m.counter("pages.captured_pages");
  p.version_hits = m.counter("pages.version_hits");
  p.versions_dropped = m.counter("pages.versions_dropped");
  p.live_versions = m.counter("pages.live_versions");
  p.active_snapshots = m.counter("pages.active_snapshots");
  p.committed_epoch = m.counter("pages.committed_epoch");
}

}  // namespace

void EncodeSessionStats(std::string* dst, const SessionStats& stats) {
  // One sorted dictionary carrying every registry counter and gauge,
  // with the 24 legacy fixed keys overlaid (see OverlayLegacyCounters).
  // Sorted-map iteration makes the encoding deterministic: a decoded
  // snapshot re-encodes byte-identically.
  std::map<std::string, uint64_t> counters = stats.metrics.counters;
  OverlayLegacyCounters(stats, &counters);
  PutVarint64(dst, counters.size());
  for (const auto& [key, value] : counters) {
    PutString(dst, key);
    PutVarint64(dst, value);
  }
  // Histogram section, appended after the dictionary: pre-histogram
  // decoders stop before it, pre-histogram encoders omit it, and this
  // decoder treats its absence as zero histograms -- no version bump.
  // Each histogram is self-describing: its inclusive upper bounds
  // (last one UINT64_MAX, the overflow bucket) travel with the counts.
  PutVarint64(dst, stats.metrics.histograms.size());
  for (const auto& [key, h] : stats.metrics.histograms) {
    PutString(dst, key);
    PutVarint64(dst, h.bounds.size());
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      PutVarint64(dst, h.bounds[i]);
      PutVarint64(dst, i < h.counts.size() ? h.counts[i] : 0);
    }
    PutVarint64(dst, h.count);
    PutVarint64(dst, h.sum);
  }
}

Result<SessionStats> DecodeSessionStats(Slice* in) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return Truncated("stats counter count");
  if (n > in->size()) return Truncated("stats counter count");
  SessionStats stats;
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    uint64_t value = 0;
    if (!GetString(in, &key) || !GetVarint64(in, &value)) {
      return Truncated("stats counter");
    }
    // Every key is retained in the generic snapshot (unknown names
    // included, so re-encoding reproduces the payload); the legacy
    // structs are projected out below.
    stats.metrics.counters[std::move(key)] = value;
  }
  FillLegacyStructs(&stats);
  if (in->empty()) return stats;  // Pre-histogram payload.
  uint64_t hn = 0;
  if (!GetVarint64(in, &hn)) return Truncated("stats histogram count");
  if (hn > in->size()) return Truncated("stats histogram count");
  for (uint64_t i = 0; i < hn; ++i) {
    std::string key;
    uint64_t buckets = 0;
    if (!GetString(in, &key) || !GetVarint64(in, &buckets)) {
      return Truncated("stats histogram");
    }
    if (buckets > in->size()) return Truncated("stats histogram buckets");
    obs::HistogramSnapshot h;
    h.bounds.reserve(buckets);
    h.counts.reserve(buckets);
    for (uint64_t b = 0; b < buckets; ++b) {
      uint64_t bound = 0, count = 0;
      if (!GetVarint64(in, &bound) || !GetVarint64(in, &count)) {
        return Truncated("stats histogram bucket");
      }
      h.bounds.push_back(bound);
      h.counts.push_back(count);
    }
    if (!GetVarint64(in, &h.count) || !GetVarint64(in, &h.sum)) {
      return Truncated("stats histogram totals");
    }
    stats.metrics.histograms.emplace(std::move(key), std::move(h));
  }
  return stats;
}

// -- status -----------------------------------------------------------------

void EncodeStatusPayload(std::string* dst, const Status& status) {
  PutVarint32(dst, static_cast<uint32_t>(status.code()));
  PutString(dst, std::string(status.message()));
  PutVarint64(dst, static_cast<uint64_t>(status.retry_after_ms()));
}

Status DecodeStatusPayload(Slice* in, Status* out) {
  uint32_t code = 0;
  std::string message;
  uint64_t retry_after = 0;
  if (!GetVarint32(in, &code) || !GetString(in, &message) ||
      !GetVarint64(in, &retry_after)) {
    return Truncated("status payload");
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unknown status code %u", code));
  }
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      *out = Status::OK();
      break;
    case StatusCode::kInvalidArgument:
      *out = Status::InvalidArgument(message);
      break;
    case StatusCode::kNotFound:
      *out = Status::NotFound(message);
      break;
    case StatusCode::kAlreadyExists:
      *out = Status::AlreadyExists(message);
      break;
    case StatusCode::kCorruption:
      *out = Status::Corruption(message);
      break;
    case StatusCode::kIOError:
      *out = Status::IOError(message);
      break;
    case StatusCode::kOutOfRange:
      *out = Status::OutOfRange(message);
      break;
    case StatusCode::kFailedPrecondition:
      *out = Status::FailedPrecondition(message);
      break;
    case StatusCode::kUnimplemented:
      *out = Status::Unimplemented(message);
      break;
    case StatusCode::kInternal:
      *out = Status::Internal(message);
      break;
    case StatusCode::kResourceExhausted:
      *out = Status::ResourceExhausted(message);
      break;
    case StatusCode::kUnavailable:
      *out = Status::Unavailable(message, static_cast<int64_t>(retry_after));
      break;
  }
  return Status::OK();
}

}  // namespace net
}  // namespace crimson
