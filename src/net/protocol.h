// The Crimson wire protocol: a length-prefixed, CRC-framed binary
// protocol over which a remote client drives a Crimson session.
//
// Every message is one frame:
//
//   [0..2)   magic 0xC51E (fixed16)
//   [2]      protocol version (u8)
//   [3]      message type (u8)
//   [4..8)   payload length (fixed32)
//   [8..12)  CRC32 of the payload (fixed32)
//   [12..)   payload
//
// Framing reuses the storage engine's little-endian codecs
// (common/coding.h) and CRC (common/crc32.h), so a frame is validated
// the same way a WAL record is: length-bounded first, checksummed
// second, decoded last. Decoders never trust a byte: every read is
// bounds-checked and every failure maps to a typed error, so a
// malformed, truncated, torn, or adversarial stream can produce at
// worst a clean error reply or disconnect -- never a crash.
//
// Versioning rules: the magic and the header layout are frozen.
// `kProtocolVersion` bumps whenever an existing payload encoding
// changes shape; adding a new message type keeps the version (old
// servers answer unknown types with kUnimplemented). A server rejects
// frames whose version is newer than its own with kError /
// kFailedPrecondition, and the error payload encoding itself is
// frozen at version 1 so any client can always decode rejections.
//
// Request/response pairing is strictly one frame in, one frame out, in
// order -- which is what lets clients pipeline: N requests written
// back-to-back yield N responses in the same order (the server may
// coalesce consecutive pipelined queries into one ExecuteBatch; the
// response bytes are identical to sequential execution either way).

#ifndef CRIMSON_NET_PROTOCOL_H_
#define CRIMSON_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "crimson/data_loader.h"
#include "crimson/query_request.h"
#include "crimson/repositories.h"
#include "crimson/service.h"
#include "tree/phylo_tree.h"

namespace crimson {
namespace net {

inline constexpr uint16_t kFrameMagic = 0xC51E;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
/// Hard ceiling on payload bytes; oversized frames are rejected before
/// any allocation happens. Servers may configure a lower limit.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class MessageType : uint8_t {
  // Requests.
  kPing = 1,
  kOpenTree = 2,
  kStoreTree = 3,
  kListTrees = 4,
  kQuery = 5,
  kHistory = 6,
  kCheckpoint = 7,
  kStats = 8,
  // Responses.
  kPong = 64,
  kOpenTreeOk = 65,
  kStoreTreeOk = 66,
  kListTreesOk = 67,
  kQueryOk = 68,
  kHistoryOk = 69,
  kCheckpointOk = 70,
  kError = 71,
  kStatsOk = 72,
};

/// One decoded frame: the type byte plus its (CRC-verified) payload.
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Appends one whole frame (header + payload) to `dst`.
void AppendFrame(std::string* dst, MessageType type, Slice payload);

enum class FrameDecode {
  kFrame,     // one frame decoded and consumed from the input
  kNeedMore,  // input is a valid frame prefix; read more bytes
  kBad,       // stream corrupt (bad magic/version/length/CRC)
};

/// Attempts to decode one frame from the front of `input`. kFrame
/// consumes the frame's bytes and fills `*frame`; kNeedMore consumes
/// nothing; kBad consumes nothing and describes the damage in `*error`
/// (the connection is unrecoverable: framing has lost sync).
FrameDecode DecodeFrame(Slice* input, Frame* frame, std::string* error,
                        uint32_t max_payload = kMaxPayloadBytes);

// -- typed payload codecs ---------------------------------------------------
//
// Encoders are infallible; decoders take a Slice cursor, advance it
// past the decoded value, and return InvalidArgument on any
// truncated/malformed byte without crashing. Decoders do not check for
// trailing garbage -- callers that require a fully-consumed payload
// check `in->empty()` afterwards.

/// Tree document format carried by a kStoreTree request.
enum class TreeFormat : uint8_t { kNewick = 0, kNexus = 1 };

/// kQuery request payload: tree name + typed request.
struct QueryEnvelope {
  std::string tree_name;
  QueryRequest request;
};

/// kStoreTree request payload.
struct StoreTreeRequest {
  std::string name;
  TreeFormat format = TreeFormat::kNewick;
  LoadMode mode = LoadMode::kTreeStructureOnly;
  std::string text;
};

void EncodeQueryRequest(std::string* dst, const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequestWire(Slice* in);

void EncodeQueryEnvelope(std::string* dst, const QueryEnvelope& env);
Result<QueryEnvelope> DecodeQueryEnvelope(Slice* in);

void EncodeQueryResult(std::string* dst, const QueryResult& result);
Result<QueryResult> DecodeQueryResultWire(Slice* in);

/// Exact structural tree codec: arena order, names, bit-exact edge
/// lengths. Round-trips any PhyloTree byte-identically (re-encoding
/// the decoded tree yields the same bytes).
void EncodeTree(std::string* dst, const PhyloTree& tree);
Result<PhyloTree> DecodeTree(Slice* in);

void EncodeTreeInfo(std::string* dst, const TreeInfo& info);
Result<TreeInfo> DecodeTreeInfo(Slice* in);

void EncodeTreeInfoList(std::string* dst, const std::vector<TreeInfo>& infos);
Result<std::vector<TreeInfo>> DecodeTreeInfoList(Slice* in);

void EncodeStoreTreeRequest(std::string* dst, const StoreTreeRequest& req);
Result<StoreTreeRequest> DecodeStoreTreeRequest(Slice* in);

void EncodeHistoryEntries(std::string* dst,
                          const std::vector<QueryRepository::Entry>& entries);
Result<std::vector<QueryRepository::Entry>> DecodeHistoryEntries(Slice* in);

/// kStatsOk payload: a self-describing counter dictionary (varint
/// count, then per counter a length-prefixed dotted key and a varint
/// value) followed by a histogram section (varint count, then per
/// histogram a length-prefixed key, varint bucket count, (bound,
/// count) varint pairs -- the last bound is UINT64_MAX, the overflow
/// bucket -- and varint total count and sum). Decoders retain every
/// counter key in SessionStats::metrics (unknown names included, so a
/// decoded snapshot re-encodes byte-identically), project the legacy
/// fixed keys into the cache/pages structs (absent keys stay 0), and
/// treat a missing histogram section as empty -- so either side can
/// gain counters or histograms without a version bump.
void EncodeSessionStats(std::string* dst, const SessionStats& stats);
Result<SessionStats> DecodeSessionStats(Slice* in);

/// kError payload: status code + message + retry-after hint. The
/// decoded Status reproduces code, message, and (for kUnavailable)
/// retry_after_ms. The return value reports decode success; the
/// decoded status itself lands in `*out`.
void EncodeStatusPayload(std::string* dst, const Status& status);
Status DecodeStatusPayload(Slice* in, Status* out);

}  // namespace net
}  // namespace crimson

#endif  // CRIMSON_NET_PROTOCOL_H_
