#include "net/server.h"

#include <chrono>
#include <utility>

#include "common/coding.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace crimson {
namespace net {

/// One accepted connection: its socket, its serving thread, and a done
/// flag the accept loop uses to reap finished slots.
struct CrimsonServer::Connection {
  Socket socket;
  std::thread thread;
  std::atomic<bool> done{false};
};

CrimsonServer::CrimsonServer(SessionService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  // The server writes into the session's registry, so one kStats frame
  // (or one crimson_stats dump) shows every layer of this process.
  obs::MetricsRegistry* reg = service_->metrics();
  connections_accepted_ = reg->GetCounter("net.connections_accepted");
  connections_rejected_ = reg->GetCounter("net.connections_rejected");
  frames_received_ = reg->GetCounter("net.frames_received");
  queries_executed_ = reg->GetCounter("net.queries_executed");
  batches_executed_ = reg->GetCounter("net.batches_executed");
  queries_rejected_ = reg->GetCounter("net.queries_rejected");
  protocol_errors_ = reg->GetCounter("net.protocol_errors");
  retry_afters_ = reg->GetCounter("net.retry_afters_sent");
  admission_wait_us_ = reg->GetHistogram("net.admission_wait_us");
  query_run_us_ = reg->GetHistogram("net.op.query_run_us");
  static constexpr const char* kOpNames[8] = {
      "ping",    "open_tree",  "store_tree", "list_trees",
      nullptr /* query: query_run_us_ */, "history", "checkpoint", "stats"};
  for (size_t i = 0; i < 8; ++i) {
    op_us_[i] = kOpNames[i] == nullptr
                    ? nullptr
                    : reg->GetHistogram(StrFormat("net.op.%s_us", kOpNames[i]));
  }
}

obs::Histogram* CrimsonServer::OpHistogram(MessageType type) const {
  const size_t idx = static_cast<size_t>(type) - 1;
  return idx < 8 ? op_us_[idx] : nullptr;
}

Result<std::unique_ptr<CrimsonServer>> CrimsonServer::Start(
    SessionService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("server requires a session service");
  }
  if (options.max_exec_concurrency == 0 || options.max_connections == 0 ||
      options.max_pipeline_batch == 0 || options.max_inflight_queries == 0) {
    return Status::InvalidArgument("server bounds must be >= 1");
  }
  std::unique_ptr<CrimsonServer> server(new CrimsonServer(service, options));
  CRIMSON_ASSIGN_OR_RETURN(server->listener_,
                           ListenTcp(options.host, options.port));
  CRIMSON_ASSIGN_OR_RETURN(server->port_, BoundPort(server->listener_));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

CrimsonServer::~CrimsonServer() { Shutdown(); }

Status CrimsonServer::Shutdown() {
  if (shut_down_.exchange(true)) return Status::OK();
  stopping_.store(true);
  // Wake the accept loop; further connects fail at the socket layer.
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Half-close every connection's read side: blocked reads wake with
  // EOF, already-buffered requests still execute, and their responses
  // still flush before the serving thread exits.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.ShutdownRead();
  }
  JoinConnections(/*all=*/true);
  // Everything in flight has drained; make the session durable.
  return service_->Checkpoint();
}

ServerStats CrimsonServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_->value();
  s.connections_rejected = connections_rejected_->value();
  s.frames_received = frames_received_->value();
  s.queries_executed = queries_executed_->value();
  s.batches_executed = batches_executed_->value();
  s.queries_rejected_unavailable = queries_rejected_->value();
  s.protocol_errors = protocol_errors_->value();
  s.retry_afters_sent = retry_afters_->value();
  return s;
}

void CrimsonServer::JoinConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> reaped;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (all) {
      reaped.swap(conns_);
    } else {
      for (size_t i = 0; i < conns_.size();) {
        if (conns_[i]->done.load()) {
          reaped.push_back(std::move(conns_[i]));
          conns_[i] = std::move(conns_.back());
          conns_.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  for (auto& conn : reaped) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void CrimsonServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Socket> accepted = AcceptTcp(listener_);
    if (!accepted.ok()) {
      if (stopping_.load()) break;
      // Transient accept failure (e.g. EMFILE): back off briefly
      // instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    JoinConnections(/*all=*/false);
    size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active = conns_.size();
    }
    if (active >= options_.max_connections) {
      // Turn the connection away before allocating any serving state.
      connections_rejected_->Increment();
      retry_afters_->Increment();
      std::string out;
      AppendError(&out,
                  Status::Unavailable(
                      StrFormat("connection pool full (%zu active)", active),
                      options_.retry_after_ms));
      SendAll(*accepted, out.data(), out.size());
      continue;  // Socket closes as `accepted` goes out of scope.
    }
    connections_accepted_->Increment();
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*accepted);
    // Bounded blocking reads so serving threads notice Shutdown even
    // on idle connections.
    SetRecvTimeout(conn->socket, options_.poll_interval_ms);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void CrimsonServer::ServeConnection(Connection* conn) {
  std::string buffer;
  char chunk[64 * 1024];
  bool closing = false;
  while (!closing) {
    Result<size_t> got = RecvSome(conn->socket, chunk, sizeof(chunk));
    if (!got.ok()) {
      if (got.status().IsUnavailable()) {
        // Receive timeout: just a stop-flag check point.
        if (!stopping_.load()) continue;
        closing = true;
      } else {
        closing = true;  // Hard socket error.
      }
    } else if (*got == 0) {
      // Clean EOF (client close or drain half-close): fall through to
      // process whatever complete frames are still buffered.
      closing = true;
    } else {
      buffer.append(chunk, *got);
    }

    // Drain every complete frame currently buffered.
    std::vector<Frame> frames;
    Slice in(buffer);
    std::string frame_error;
    bool bad_stream = false;
    for (;;) {
      Frame f;
      FrameDecode d =
          DecodeFrame(&in, &f, &frame_error, options_.max_frame_payload);
      if (d == FrameDecode::kFrame) {
        frames.push_back(std::move(f));
        continue;
      }
      if (d == FrameDecode::kBad) bad_stream = true;
      break;
    }
    buffer.erase(0, buffer.size() - in.size());
    frames_received_->Add(frames.size());

    std::string out;
    size_t i = 0;
    while (i < frames.size()) {
      if (frames[i].type == MessageType::kQuery) {
        i = DispatchQueries(frames, i, &out);
      } else {
        HandleFrame(frames[i], &out);
        ++i;
      }
    }
    if (bad_stream) {
      // Framing has lost sync; a typed error is the last thing this
      // connection can meaningfully carry.
      protocol_errors_->Increment();
      AppendError(&out, Status::Corruption(StrFormat(
                            "protocol error: %s", frame_error.c_str())));
      closing = true;
    }
    if (!out.empty() &&
        !SendAll(conn->socket, out.data(), out.size()).ok()) {
      closing = true;
    }
  }
  conn->socket.Close();
  conn->done.store(true);
}

size_t CrimsonServer::DispatchQueries(const std::vector<Frame>& frames,
                                      size_t i, std::string* out) {
  std::string tree_name;
  std::vector<QueryRequest> run;
  while (i < frames.size() && frames[i].type == MessageType::kQuery &&
         run.size() < options_.max_pipeline_batch) {
    Slice payload(frames[i].payload);
    Result<QueryEnvelope> env = DecodeQueryEnvelope(&payload);
    if (!env.ok() || !payload.empty()) {
      // Flush what we have (order!) then answer this frame with a
      // typed error; the connection stays usable.
      if (!run.empty()) {
        ExecuteQueryRun(tree_name, run, out);
        run.clear();
      }
      protocol_errors_->Increment();
      AppendError(out, env.ok() ? Status::InvalidArgument(
                                      "trailing bytes after query payload")
                                : env.status());
      ++i;
      continue;
    }
    if (run.empty()) {
      tree_name = env->tree_name;
    } else if (env->tree_name != tree_name) {
      break;  // Different tree: flush this run, start a new one.
    }
    run.push_back(std::move(env->request));
    ++i;
  }
  if (!run.empty()) ExecuteQueryRun(tree_name, run, out);
  return i;
}

void CrimsonServer::ExecuteQueryRun(const std::string& tree_name,
                                    const std::vector<QueryRequest>& run,
                                    std::string* out) {
  const size_t n = run.size();
  WallTimer run_timer;
  // Installs this connection thread's trace context before admission,
  // so the slot wait below is attributed to the query this thread ends
  // up running (ExecuteBatch's pool includes the caller); the session
  // resets the context per query.
  obs::ScopedTrace trace;
  // Admission control: bound waiting + executing queries globally.
  size_t admitted = admitted_.fetch_add(n);
  if (admitted + n > options_.max_inflight_queries) {
    admitted_.fetch_sub(n);
    queries_rejected_->Add(n);
    retry_afters_->Add(n);
    Status reject = Status::Unavailable(
        StrFormat("server saturated: %zu queries in flight", admitted),
        options_.retry_after_ms);
    for (size_t k = 0; k < n; ++k) AppendError(out, reject);
    return;
  }
  {
    obs::SpanTimer wait_span(obs::Stage::kAdmissionWait);
    WallTimer wait_timer;
    AcquireExecSlot();
    admission_wait_us_->Observe(
        static_cast<uint64_t>(wait_timer.ElapsedMicros()));
  }
  if (options_.inject_query_delay_us > 0) {
    // Deterministic stand-in for query compute (bench/test only).
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(options_.inject_query_delay_us) *
        static_cast<int64_t>(n)));
  }
  std::vector<Result<QueryResult>> results = service_->ExecuteBatch(
      tree_name, Span<const QueryRequest>(run.data(), run.size()));
  ReleaseExecSlot();
  admitted_.fetch_sub(n);
  batches_executed_->Increment();
  queries_executed_->Add(n);
  query_run_us_->Observe(static_cast<uint64_t>(run_timer.ElapsedMicros()));
  for (const Result<QueryResult>& r : results) {
    if (!r.ok()) {
      AppendError(out, r.status());
      continue;
    }
    std::string payload;
    EncodeQueryResult(&payload, *r);
    AppendFrame(out, MessageType::kQueryOk, payload);
  }
}

void CrimsonServer::HandleFrame(const Frame& frame, std::string* out) {
  // Per-op wire latency (decode + service call + response encode);
  // observed on every exit path of the switch below.
  struct OpScope {
    obs::Histogram* hist;
    WallTimer timer;
    ~OpScope() {
      if (hist != nullptr) {
        hist->Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
      }
    }
  } op_scope{OpHistogram(frame.type), {}};
  Slice in(frame.payload);
  switch (frame.type) {
    case MessageType::kPing: {
      AppendFrame(out, MessageType::kPong, frame.payload);
      return;
    }
    case MessageType::kOpenTree: {
      Slice name;
      if (!GetLengthPrefixedSlice(&in, &name) || !in.empty()) {
        protocol_errors_->Increment();
        AppendError(out,
                    Status::InvalidArgument("malformed open-tree payload"));
        return;
      }
      Result<TreeInfo> info = service_->OpenTree(name.ToString());
      if (!info.ok()) {
        AppendError(out, info.status());
        return;
      }
      std::string payload;
      EncodeTreeInfo(&payload, *info);
      AppendFrame(out, MessageType::kOpenTreeOk, payload);
      return;
    }
    case MessageType::kStoreTree: {
      Result<StoreTreeRequest> req = DecodeStoreTreeRequest(&in);
      if (!req.ok() || !in.empty()) {
        protocol_errors_->Increment();
        AppendError(out, req.ok() ? Status::InvalidArgument(
                                        "trailing bytes after store payload")
                                  : req.status());
        return;
      }
      Result<TreeInfo> info =
          req->format == TreeFormat::kNewick
              ? service_->StoreNewick(req->name, req->text, req->mode)
              : service_->StoreNexus(req->name, req->text, req->mode);
      if (!info.ok()) {
        AppendError(out, info.status());
        return;
      }
      std::string payload;
      EncodeTreeInfo(&payload, *info);
      AppendFrame(out, MessageType::kStoreTreeOk, payload);
      return;
    }
    case MessageType::kListTrees: {
      Result<std::vector<TreeInfo>> infos = service_->ListTrees();
      if (!infos.ok()) {
        AppendError(out, infos.status());
        return;
      }
      std::string payload;
      EncodeTreeInfoList(&payload, *infos);
      AppendFrame(out, MessageType::kListTreesOk, payload);
      return;
    }
    case MessageType::kHistory: {
      uint64_t limit = 0;
      if (!GetVarint64(&in, &limit) || !in.empty()) {
        protocol_errors_->Increment();
        AppendError(out,
                    Status::InvalidArgument("malformed history payload"));
        return;
      }
      Result<std::vector<QueryRepository::Entry>> entries =
          service_->History(static_cast<size_t>(limit));
      if (!entries.ok()) {
        AppendError(out, entries.status());
        return;
      }
      std::string payload;
      EncodeHistoryEntries(&payload, *entries);
      AppendFrame(out, MessageType::kHistoryOk, payload);
      return;
    }
    case MessageType::kStats: {
      if (!in.empty()) {
        protocol_errors_->Increment();
        AppendError(out, Status::InvalidArgument("malformed stats payload"));
        return;
      }
      std::string payload;
      EncodeSessionStats(&payload, service_->Stats());
      AppendFrame(out, MessageType::kStatsOk, payload);
      return;
    }
    case MessageType::kCheckpoint: {
      Status s = service_->Checkpoint();
      if (!s.ok()) {
        AppendError(out, s);
        return;
      }
      AppendFrame(out, MessageType::kCheckpointOk, Slice());
      return;
    }
    default: {
      protocol_errors_->Increment();
      AppendError(out, Status::Unimplemented(StrFormat(
                           "unexpected message type %u",
                           static_cast<unsigned>(frame.type))));
      return;
    }
  }
}

void CrimsonServer::AppendError(std::string* out, const Status& status) {
  std::string payload;
  EncodeStatusPayload(&payload, status);
  AppendFrame(out, MessageType::kError, payload);
}

void CrimsonServer::AcquireExecSlot() {
  std::unique_lock<std::mutex> lock(exec_mu_);
  exec_cv_.wait(lock,
                [this] { return exec_in_use_ < options_.max_exec_concurrency; });
  ++exec_in_use_;
}

void CrimsonServer::ReleaseExecSlot() {
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    --exec_in_use_;
  }
  exec_cv_.notify_one();
}

}  // namespace net
}  // namespace crimson
