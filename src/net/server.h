// CrimsonServer: the network front door. Multiplexes many client
// connections onto one Crimson session through the SessionService
// dispatch seam.
//
// Architecture: an accept loop with a bounded connection pool
// (thread-per-connection; connections beyond the bound are turned away
// with kUnavailable + retry-after before any state is allocated), a
// per-connection decode loop that drains every complete frame the
// socket has buffered, and a coalescing dispatcher that folds
// consecutive pipelined queries against the same tree into one
// ExecuteBatch call on the session worker pool -- so a client that
// pipelines N queries pays one dispatch, yet the response bytes are
// identical to sequential execution (the ExecuteBatch contract).
//
// Admission control: at most `max_exec_concurrency` query batches
// execute at once (a semaphore bounds the compute the server will do
// concurrently) and at most `max_inflight_queries` admitted queries
// may be waiting or executing. Arrivals beyond that are rejected
// immediately with Status::Unavailable carrying `retry_after_ms` --
// bounded queues and a typed retry signal instead of unbounded
// buffering, so p99 stays bounded when the pool saturates. (Clients
// honor the hint: CrimsonClient::ExecuteWithRetry adds it to a
// seeded-jitter capped exponential backoff, so a rejected fleet does
// not stampede back in lockstep.)
//
// Query latency during stores: queries admitted here never queue
// behind a StoreTree/AppendSpecies from another connection. The
// session's read path runs against an MVCC snapshot of the last
// committed state (DESIGN.md "Concurrency"), so a bulk store holds
// the writer lock without stalling concurrent query execution -- and
// recording those queries' history rows is an in-memory buffered
// append drained by the next write transaction, not a write of its
// own.
//
// Shutdown: Shutdown() (the SIGTERM path in crimson_server) stops the
// accept loop, half-closes every connection's read side so in-flight
// requests finish and their responses still flush, joins all
// connection threads, and then checkpoints the session through the
// service -- a graceful drain, not an abort.

#ifndef CRIMSON_NET_SERVER_H_
#define CRIMSON_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crimson/service.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace crimson {
namespace net {

struct ServerOptions {
  /// Bind address; loopback by default.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via CrimsonServer::port).
  uint16_t port = 0;
  /// Connection pool bound; further connects are rejected with
  /// kUnavailable + retry-after and closed.
  size_t max_connections = 64;
  /// Frames with larger payloads are rejected as corrupt.
  uint32_t max_frame_payload = 16u << 20;
  /// Coalescing cap: at most this many consecutive pipelined queries
  /// fold into one ExecuteBatch dispatch.
  size_t max_pipeline_batch = 64;
  /// Admission bound: maximum queries admitted (waiting + executing)
  /// across all connections before arrivals are rejected.
  size_t max_inflight_queries = 128;
  /// Concurrent query-batch executions (the server-side worker bound).
  size_t max_exec_concurrency = 8;
  /// Backoff hint attached to every kUnavailable rejection.
  int retry_after_ms = 20;
  /// Granularity at which blocked connection reads re-check the stop
  /// flag.
  int poll_interval_ms = 100;
  /// Deterministic per-query execution delay (microseconds), injected
  /// inside an execution slot. Test/bench knob modelling query compute
  /// so saturation behavior is reproducible across machines; 0 in
  /// production.
  int inject_query_delay_us = 0;
};

/// Monotonic counters, readable at any time (values are snapshots).
/// Backed by the session registry's net.* cells (one source of truth:
/// the same values ride the kStats wire frame), projected into this
/// struct for existing callers.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t frames_received = 0;
  uint64_t queries_executed = 0;
  uint64_t batches_executed = 0;
  uint64_t queries_rejected_unavailable = 0;
  uint64_t protocol_errors = 0;
  uint64_t retry_afters_sent = 0;
};

class CrimsonServer {
 public:
  /// Binds, starts the accept loop, and returns a running server. The
  /// service (and its session) must outlive the server.
  static Result<std::unique_ptr<CrimsonServer>> Start(
      SessionService* service, const ServerOptions& options = {});

  /// Shuts down (gracefully) if still running.
  ~CrimsonServer();

  CrimsonServer(const CrimsonServer&) = delete;
  CrimsonServer& operator=(const CrimsonServer&) = delete;

  /// The bound port (useful with ephemeral binds).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, let in-flight requests finish and
  /// flush, join every connection, checkpoint the session. Idempotent.
  Status Shutdown();

  ServerStats stats() const;

 private:
  CrimsonServer(SessionService* service, ServerOptions options);

  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Coalesces the run of pipelined kQuery frames starting at `i` and
  /// executes it; returns the index one past the run.
  size_t DispatchQueries(const std::vector<Frame>& frames, size_t i,
                         std::string* out);
  /// Handles one decoded non-query frame, appending response frame(s)
  /// to `out`.
  void HandleFrame(const Frame& frame, std::string* out);
  /// Executes a coalesced run of same-tree pipelined queries.
  void ExecuteQueryRun(const std::string& tree_name,
                       const std::vector<QueryRequest>& run, std::string* out);
  void AppendError(std::string* out, const Status& status);
  /// Blocks until an execution slot is free (bounded wait: admission
  /// caps how many callers can be queued here).
  void AcquireExecSlot();
  void ReleaseExecSlot();
  /// Reaps finished connection slots; with `all`, joins everything.
  void JoinConnections(bool all);

  SessionService* service_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  /// Admitted queries (waiting for a slot or executing).
  std::atomic<size_t> admitted_{0};
  /// Counting semaphore for execution slots.
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  size_t exec_in_use_ = 0;

  /// The per-op kStats.. kCheckpoint latency histogram, or null for
  /// types without one (queries go through query_run_us_ instead).
  obs::Histogram* OpHistogram(MessageType type) const;

  // Stats: net.* cells in the session registry, resolved once at
  // construction (relaxed atomics; stats() snapshots them and the
  // kStats frame carries them).
  obs::Counter* connections_accepted_;
  obs::Counter* connections_rejected_;
  obs::Counter* frames_received_;
  obs::Counter* queries_executed_;
  obs::Counter* batches_executed_;
  obs::Counter* queries_rejected_;
  obs::Counter* protocol_errors_;
  obs::Counter* retry_afters_;
  obs::Histogram* admission_wait_us_;  // net.admission_wait_us
  obs::Histogram* query_run_us_;       // net.op.query_run_us (per batch)
  obs::Histogram* op_us_[8];           // net.op.<op>_us, non-query ops
};

}  // namespace net
}  // namespace crimson

#endif  // CRIMSON_NET_SERVER_H_
