#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/string_util.h"

namespace crimson {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: '%s'", host.c_str()));
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog) {
  CRIMSON_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(sock.fd(), backlog) != 0) return Errno("listen");
  return sock;
}

Result<uint16_t> BoundPort(const Socket& listener) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptTcp(const Socket& listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  CRIMSON_ASSIGN_OR_RETURN(
      sockaddr_in addr, ResolveV4(host.empty() ? "localhost" : host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  for (;;) {
    if (connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return Errno("connect");
  }
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SendAll(const Socket& sock, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(sock.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<size_t> RecvSome(const Socket& sock, char* buf, size_t n) {
  for (;;) {
    ssize_t r = ::recv(sock.fd(), buf, n, 0);
    if (r >= 0) return static_cast<size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("recv timeout");
    }
    return Errno("recv");
  }
}

Status SetRecvTimeout(const Socket& sock, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace crimson
