// Minimal blocking TCP helpers for the network layer: an RAII socket
// wrapper plus listen/accept/connect and whole-buffer send. IPv4
// loopback/any only -- the server is a front door for the storage
// engine, not a general-purpose networking library.

#ifndef CRIMSON_NET_SOCKET_H_
#define CRIMSON_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace crimson {
namespace net {

/// Owning file-descriptor wrapper. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

  /// Half-closes both directions, waking any thread blocked in
  /// recv/accept on this socket. Safe to call from another thread.
  void ShutdownBoth();

  /// Half-closes the read side only: a blocked recv wakes with EOF but
  /// pending responses can still be written (the graceful-drain path).
  void ShutdownRead();

 private:
  int fd_ = -1;
};

/// Listening socket bound to `host`:`port` (port 0 = ephemeral; read
/// the assignment back via BoundPort).
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog = 128);

/// The port a listening socket is bound to.
Result<uint16_t> BoundPort(const Socket& listener);

/// Blocks for one inbound connection. Fails once the listener has been
/// shut down or closed.
Result<Socket> AcceptTcp(const Socket& listener);

/// Blocking connect; enables TCP_NODELAY (the protocol is
/// request/response, Nagle only adds latency).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all n bytes (retrying short writes and EINTR; SIGPIPE is
/// suppressed per-call).
Status SendAll(const Socket& sock, const char* data, size_t n);

/// Reads up to n bytes; 0 means clean EOF. A receive timeout set via
/// SetRecvTimeout surfaces as kUnavailable (caller decides whether to
/// poll again).
Result<size_t> RecvSome(const Socket& sock, char* buf, size_t n);

/// Bounds every subsequent blocking recv on the socket.
Status SetRecvTimeout(const Socket& sock, int timeout_ms);

}  // namespace net
}  // namespace crimson

#endif  // CRIMSON_NET_SOCKET_H_
