#include "obs/metrics.h"

#include <algorithm>

namespace crimson {
namespace obs {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target observation (1-based, interpolated).
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = seen + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      if (bounds[i] == UINT64_MAX) return std::max(lower, 0.0);
      const double upper = static_cast<double>(bounds[i]);
      const double into =
          counts[i] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(std::max(into, 0.0), 1.0);
    }
    seen = next;
  }
  // All mass below rank (rounding); report the top finite edge.
  for (size_t i = bounds.size(); i-- > 0;) {
    if (bounds[i] != UINT64_MAX) return static_cast<double>(bounds[i]);
  }
  return 0.0;
}

double HistogramSnapshot::BucketWidth(double value) const {
  double lower = 0.0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    const double upper = bounds[i] == UINT64_MAX
                             ? static_cast<double>(bounds[i == 0 ? 0 : i - 1])
                             : static_cast<double>(bounds[i]);
    if (value <= upper || bounds[i] == UINT64_MAX) {
      return std::max(upper - lower, 1.0);
    }
    lower = upper;
  }
  return 1.0;
}

namespace {

std::vector<uint64_t> WithOverflow(const std::vector<uint64_t>& bounds) {
  std::vector<uint64_t> out = bounds;
  if (out.empty() || out.back() != UINT64_MAX) out.push_back(UINT64_MAX);
  return out;
}

}  // namespace

Histogram::Histogram(const std::vector<uint64_t>& bounds)
    : bounds_(WithOverflow(bounds.empty() ? DefaultLatencyBoundsUs() : bounds)),
      cells_(new std::atomic<uint64_t>[bounds_.size()]) {
  for (size_t i = 0; i < bounds_.size(); ++i) cells_[i].store(0);
}

void Histogram::Observe(uint64_t value) {
  // Upper-bound binary search: first bucket whose inclusive upper edge
  // holds the value. The UINT64_MAX overflow edge guarantees a hit.
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  cells_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.resize(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    out.counts[i] = cells_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

const std::vector<uint64_t>& Histogram::DefaultLatencyBoundsUs() {
  // Exponential 1us .. 1048576us (~1s); overflow appended by the ctor.
  static const std::vector<uint64_t>* bounds = [] {
    auto* b = new std::vector<uint64_t>;
    for (uint64_t edge = 1; edge <= (1ull << 20); edge <<= 1) {
      b->push_back(edge);
    }
    return b;
  }();
  return *bounds;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.counter = std::make_unique<Counter>();
    return it->second.counter.get();
  }
  if (it->second.counter) return it->second.counter.get();
  orphan_counters_.push_back(std::make_unique<Counter>());
  return orphan_counters_.back().get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.gauge = std::make_unique<Gauge>();
    return it->second.gauge.get();
  }
  if (it->second.gauge) return it->second.gauge.get();
  orphan_gauges_.push_back(std::make_unique<Gauge>());
  return orphan_gauges_.back().get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{}).first;
    it->second.histogram = std::make_unique<Histogram>(bounds);
    return it->second.histogram.get();
  }
  if (it->second.histogram) return it->second.histogram.get();
  orphan_histograms_.push_back(std::make_unique<Histogram>(bounds));
  return orphan_histograms_.back().get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cell] : cells_) {
    if (cell.counter) out.counters[name] = cell.counter->value();
    if (cell.gauge) out.counters[name] = cell.gauge->value();
    if (cell.histogram) out.histograms[name] = cell.histogram->Snapshot();
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked singleton: instrumented components may log through it
  // during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace obs
}  // namespace crimson
