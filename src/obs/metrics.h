// The unified observability registry (ROADMAP: see DESIGN.md
// "Observability"): named monotonic counters, gauges, and fixed-bucket
// latency histograms with lock-free atomic cells.
//
// Design rules:
//   - Registration (name -> cell lookup) is rare and takes a mutex;
//     instrumented call sites resolve their cells ONCE (at construction
//     / open time) and afterwards touch only relaxed std::atomic
//     cells, so the hot path pays one uncontended atomic RMW per
//     update and never a lock or a map probe.
//   - Cells are never deleted: a Counter*/Gauge*/Histogram* returned by
//     a registry stays valid for the registry's lifetime, which is why
//     call sites may cache the raw pointer.
//   - Snapshots are point-in-time copies into plain sorted maps, which
//     is what makes the wire encoding deterministic (byte-identical
//     re-encode of a decoded snapshot; see net/protocol.cc).
//
// Scoping: every Crimson session owns one registry (its storage
// engine, cache, and any server front door all write into it), so
// concurrent sessions in one process -- the unit-test norm -- never
// contaminate each other's counters. Components constructed without a
// registry fall back to the process-wide MetricsRegistry::Default().
//
// The Noop* twins mirror the update API with empty inline bodies;
// bench_metrics compiles its hot loop against both to gate the
// instrumentation overhead (<= 2%).

#ifndef CRIMSON_OBS_METRICS_H_
#define CRIMSON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crimson {
namespace obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A point-in-time level (entries, bytes, epochs); last write wins.
class Gauge {
 public:
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time copy of one histogram: inclusive upper bounds per
/// bucket (the last bound is UINT64_MAX, the overflow bucket), the
/// per-bucket counts, and the total count/sum. Self-describing: the
/// bounds travel with the counts, so a decoder needs no schema.
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Estimated value at percentile `p` in [0, 100], linearly
  /// interpolated inside the containing bucket. The overflow bucket
  /// reports its lower edge (the last finite bound) -- a floor, since
  /// the true values are unbounded above. 0 when empty.
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Width of the bucket that contains `value` (the percentile
  /// agreement tolerance in bench_metrics).
  double BucketWidth(double value) const;
};

/// Fixed-bucket histogram: one atomic cell per bucket plus sum/count.
/// Observe is lock-free and wait-free; Snapshot is a relaxed read of
/// every cell (counts observed mid-burst may be torn *across* cells,
/// never within one -- fine for telemetry).
class Histogram {
 public:
  /// `bounds` are strictly increasing inclusive upper edges; an
  /// overflow bucket (UINT64_MAX) is appended implicitly.
  explicit Histogram(const std::vector<uint64_t>& bounds);

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;

  /// The default latency scale: exponential 1us .. ~1s, 21 buckets
  /// plus overflow. Sub-microsecond resolution is below what the span
  /// timers can measure; queries beyond a second land in overflow.
  static const std::vector<uint64_t>& DefaultLatencyBoundsUs();

 private:
  const std::vector<uint64_t> bounds_;  // includes the UINT64_MAX edge
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of a whole registry. Counters and gauges are
/// merged into one value map (both are just named uint64 readings on
/// the wire); sorted maps make the encoding deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  const HistogramSnapshot* histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Looks up or creates the named cell. The returned pointer is
  /// stable for the registry's lifetime; resolve once, cache, update
  /// lock-free. A name is one kind only -- re-requesting it as a
  /// different kind returns a fresh detached cell (excluded from
  /// snapshots) rather than crashing.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` applies only on first creation (empty = the default
  /// latency scale).
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<uint64_t>& bounds = {});

  MetricsSnapshot Snapshot() const;

  /// The process-wide registry, for components constructed without an
  /// explicit one.
  static MetricsRegistry& Default();

 private:
  struct Cell {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Cell, std::less<>> cells_;
  /// Kind-mismatch fallbacks; alive but never snapshotted.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
};

// -- no-op twins (bench_metrics overhead baseline) --------------------------

struct NoopCounter {
  void Increment() {}
  void Add(uint64_t) {}
};

struct NoopHistogram {
  void Observe(uint64_t) {}
};

struct NoopRegistry {
  NoopCounter* GetCounter(std::string_view) { return &counter_; }
  NoopHistogram* GetHistogram(std::string_view) { return &histogram_; }
  NoopCounter counter_;
  NoopHistogram histogram_;
};

}  // namespace obs
}  // namespace crimson

#endif  // CRIMSON_OBS_METRICS_H_
