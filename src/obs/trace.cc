#include "obs/trace.h"

#include <cstdio>

namespace crimson {
namespace obs {

namespace {
thread_local TraceContext* g_current = nullptr;
}  // namespace

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmissionWait:
      return "admission_wait";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kEvalBuild:
      return "eval_build";
    case Stage::kStorageRead:
      return "storage_read";
    case Stage::kLabelDecode:
      return "label_decode";
    case Stage::kHistoryEnqueue:
      return "history_enqueue";
    case Stage::kExecute:
      return "execute";
  }
  return "unknown";
}

std::string TraceContext::Breakdown() const {
  std::string out;
  for (size_t i = 0; i < kStageCount; ++i) {
    if (span_us_[i] == 0) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(StageName(static_cast<Stage>(i)));
    char buf[32];
    snprintf(buf, sizeof(buf), "=%lldus",
             static_cast<long long>(span_us_[i]));
    out.append(buf);
  }
  return out;
}

void TraceContext::Reset() {
  for (size_t i = 0; i < kStageCount; ++i) span_us_[i] = 0;
  timer_.Restart();
}

TraceContext* TraceContext::Current() { return g_current; }

ScopedTrace::ScopedTrace() {
  if (g_current == nullptr) {
    g_current = &local_;
    ctx_ = &local_;
    owner_ = true;
  } else {
    ctx_ = g_current;
    owner_ = false;
  }
}

ScopedTrace::~ScopedTrace() {
  if (owner_) g_current = nullptr;
}

}  // namespace obs
}  // namespace crimson
