// Per-query trace spans. A TraceContext rides the executing thread
// (thread-local, no allocation, no locking) and accumulates
// microseconds per pipeline stage; Crimson::Execute publishes the
// finished breakdown into the per-stage histograms and, when the
// query ran over the slow-query threshold, into one structured log
// line (see CrimsonOptions::slow_query_micros).
//
// Threading model: ScopedTrace installs a stack-allocated context on
// the current thread if none is active, and *reuses* the active one
// otherwise -- so a server connection thread can open a context before
// admission control, and the session Execute running on that same
// thread (ExecuteBatch's ParallelFor includes the caller) attributes
// the admission wait to the query. Worker threads without an installed
// context get their own from Execute's ScopedTrace. SpanTimer is a
// strict no-op when no context is active, which keeps every
// instrumented call site unconditional.

#ifndef CRIMSON_OBS_TRACE_H_
#define CRIMSON_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/timer.h"

namespace crimson {
namespace obs {

/// The instrumented stages of one query's life. Order is the wire /
/// log order; kStageCount must track the enum.
enum class Stage : uint8_t {
  kAdmissionWait = 0,  // server: waiting for an execution slot
  kCacheLookup,        // result-cache probe (hit or miss)
  kEvalBuild,          // EvalState materialization / cracked fetch
  kStorageRead,        // storage-read section (snapshot reads)
  kLabelDecode,        // persisted layered-Dewey label decode
  kHistoryEnqueue,     // history-buffer append (+ opportunistic flush)
  kExecute,            // pure query compute on the bound handle
};

inline constexpr size_t kStageCount = 7;

/// Stable lowercase stage name ("admission_wait", ...); doubles as the
/// per-stage histogram suffix (query.stage.<name>_us).
std::string_view StageName(Stage stage);

class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  void Add(Stage stage, int64_t us) {
    if (us > 0) span_us_[static_cast<size_t>(stage)] += us;
  }
  int64_t span_us(Stage stage) const {
    return span_us_[static_cast<size_t>(stage)];
  }
  /// Wall micros since construction or the last Reset.
  int64_t total_us() const { return timer_.ElapsedMicros(); }

  /// "cache_lookup=12us execute=340us" -- nonzero spans only, stage
  /// order, for the slow-query log.
  std::string Breakdown() const;

  /// Clears spans and restarts the clock. Execute resets the context
  /// after publishing, so a reused (connection-thread) context starts
  /// each query of a pipelined run clean.
  void Reset();

  /// The context installed on this thread, or nullptr.
  static TraceContext* Current();

 private:
  friend class ScopedTrace;

  int64_t span_us_[kStageCount] = {0};
  WallTimer timer_;
};

/// Installs a TraceContext on this thread for the enclosing scope, or
/// adopts the already-installed one (nested scopes share it).
class ScopedTrace {
 public:
  ScopedTrace();
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  TraceContext* context() { return ctx_; }
  /// True when this scope installed the context (outermost scope).
  bool owner() const { return owner_; }

 private:
  TraceContext local_;
  TraceContext* ctx_;
  bool owner_;
};

/// RAII span: adds the scope's elapsed micros to `stage` on the
/// thread's active context; no-op without one. Movable so guards that
/// carry one (StorageReadGuard) stay movable; the moved-from timer is
/// disarmed.
class SpanTimer {
 public:
  explicit SpanTimer(Stage stage)
      : ctx_(TraceContext::Current()), stage_(stage) {}
  SpanTimer(SpanTimer&& other) noexcept
      : ctx_(other.ctx_), stage_(other.stage_), timer_(other.timer_) {
    other.ctx_ = nullptr;
  }
  SpanTimer& operator=(SpanTimer&& other) noexcept {
    if (this != &other) {
      Finish();
      ctx_ = other.ctx_;
      stage_ = other.stage_;
      timer_ = other.timer_;
      other.ctx_ = nullptr;
    }
    return *this;
  }
  ~SpanTimer() { Finish(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  void Finish() {
    if (ctx_ != nullptr) ctx_->Add(stage_, timer_.ElapsedMicros());
    ctx_ = nullptr;
  }

  TraceContext* ctx_;
  Stage stage_;
  WallTimer timer_;
};

}  // namespace obs
}  // namespace crimson

#endif  // CRIMSON_OBS_TRACE_H_
