#include "query/clade.h"

#include "query/lca.h"

namespace crimson {

Result<Clade> MinimalSpanningClade(const PhyloTree& tree,
                                   const LabelingScheme& scheme,
                                   const std::vector<NodeId>& leaves) {
  Clade clade;
  CRIMSON_ASSIGN_OR_RETURN(clade.root, LcaOfSet(scheme, leaves));
  tree.PreOrder(
      [&](NodeId n) {
        clade.nodes.push_back(n);
        return true;
      },
      clade.root);
  return clade;
}

}  // namespace crimson
