// Minimal spanning clade (paper §2.2): the set of nodes in the subtree
// rooted at the LCA of a given leaf set.

#ifndef CRIMSON_QUERY_CLADE_H_
#define CRIMSON_QUERY_CLADE_H_

#include <vector>

#include "labeling/scheme.h"
#include "tree/phylo_tree.h"

namespace crimson {

struct Clade {
  NodeId root = kNoNode;
  /// Every node in the subtree rooted at `root`, in pre-order.
  std::vector<NodeId> nodes;
};

/// Computes the minimal spanning clade of `leaves` (non-empty).
Result<Clade> MinimalSpanningClade(const PhyloTree& tree,
                                   const LabelingScheme& scheme,
                                   const std::vector<NodeId>& leaves);

}  // namespace crimson

#endif  // CRIMSON_QUERY_CLADE_H_
