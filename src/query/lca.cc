#include "query/lca.h"

namespace crimson {

Result<NodeId> LcaOfSet(const LabelingScheme& scheme,
                        const std::vector<NodeId>& nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("LCA of empty node set");
  }
  NodeId acc = nodes[0];
  for (size_t i = 1; i < nodes.size(); ++i) {
    CRIMSON_ASSIGN_OR_RETURN(acc, scheme.Lca(acc, nodes[i]));
  }
  return acc;
}

}  // namespace crimson
