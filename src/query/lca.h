// Set-LCA helper built on any LabelingScheme.

#ifndef CRIMSON_QUERY_LCA_H_
#define CRIMSON_QUERY_LCA_H_

#include <vector>

#include "labeling/scheme.h"

namespace crimson {

/// LCA of a non-empty set of nodes (left fold of pairwise LCA).
Result<NodeId> LcaOfSet(const LabelingScheme& scheme,
                        const std::vector<NodeId>& nodes);

}  // namespace crimson

#endif  // CRIMSON_QUERY_LCA_H_
