#include "query/pattern_match.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Canonical form of a subtree for unordered comparison. Only leaf
/// names participate (internal labels are bookkeeping, not biology);
/// edge weights are quantized by eps when use_weights is set.
std::string CanonicalShape(const PhyloTree& t, NodeId n, double eps,
                           bool use_weights, bool is_root) {
  std::string weight;
  if (use_weights && !is_root) {
    long long q = eps > 0 ? std::llround(t.edge_length(n) / eps)
                          : std::llround(t.edge_length(n) * 1e9);
    weight = ":" + std::to_string(q);
  }
  if (t.is_leaf(n)) {
    return "L[" + t.name(n) + weight + "]";
  }
  std::vector<std::string> kids;
  for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
    kids.push_back(CanonicalShape(t, c, eps, use_weights, false));
  }
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  for (const std::string& k : kids) out += k;
  out += ")";
  out += weight;
  return out;
}

}  // namespace

PatternMatcher::PatternMatcher(const TreeProjector* projector)
    : projector_(projector) {
  const PhyloTree& t = projector_->tree();
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.is_leaf(n) && !t.name(n).empty()) {
      leaf_by_name_.emplace(t.name(n), n);
    }
  }
}

Result<PhyloTree> PatternMatcher::ProjectPattern(
    const PhyloTree& pattern) const {
  std::vector<NodeId> targets;
  for (NodeId n = 0; n < pattern.size(); ++n) {
    if (!pattern.is_leaf(n)) continue;
    auto it = leaf_by_name_.find(pattern.name(n));
    if (it == leaf_by_name_.end()) {
      return Status::NotFound(
          StrFormat("pattern leaf '%s' not in target tree",
                    pattern.name(n).c_str()));
    }
    targets.push_back(it->second);
  }
  return projector_->Project(std::move(targets));
}

Result<PatternMatcher::MatchResult> PatternMatcher::Match(
    const PhyloTree& pattern, double eps, bool match_weights) const {
  MatchResult result;
  CRIMSON_ASSIGN_OR_RETURN(result.projection, ProjectPattern(pattern));
  const std::string proj_canon = CanonicalShape(
      result.projection, result.projection.root(), eps, match_weights, true);
  const std::string pat_canon =
      CanonicalShape(pattern, pattern.root(), eps, match_weights, true);
  result.exact = proj_canon == pat_canon;
  return result;
}

}  // namespace crimson
