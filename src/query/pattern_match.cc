#include "query/pattern_match.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Canonical form of a subtree for unordered comparison. Only leaf
/// names participate (internal labels are bookkeeping, not biology);
/// edge weights are quantized by eps when use_weights is set.
std::string CanonicalShape(const PhyloTree& t, NodeId n, double eps,
                           bool use_weights, bool is_root) {
  std::string weight;
  if (use_weights && !is_root) {
    long long q = eps > 0 ? std::llround(t.edge_length(n) / eps)
                          : std::llround(t.edge_length(n) * 1e9);
    weight = ":" + std::to_string(q);
  }
  if (t.is_leaf(n)) {
    std::string out = "L[";
    out += t.name(n);
    out += weight;
    out += "]";
    return out;
  }
  std::vector<std::string> kids;
  for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
    kids.push_back(CanonicalShape(t, c, eps, use_weights, false));
  }
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  for (const std::string& k : kids) out += k;
  out += ")";
  out += weight;
  return out;
}

}  // namespace

PatternMatcher::PatternMatcher(const TreeProjector* projector,
                               const NameIndex* name_index)
    : projector_(projector), name_index_(name_index) {
  if (name_index_ == nullptr) {
    owned_index_ =
        std::make_unique<NameIndex>(NameIndex::Build(projector_->tree()));
    name_index_ = owned_index_.get();
  }
}

Result<PhyloTree> PatternMatcher::ProjectPattern(
    const PhyloTree& pattern) const {
  const PhyloTree& target = projector_->tree();
  std::vector<NodeId> targets;
  for (NodeId n = 0; n < pattern.size(); ++n) {
    if (!pattern.is_leaf(n)) continue;
    // Unnamed pattern leaves can never anchor (the index only carries
    // non-empty leaf names, like the old per-matcher map).
    NodeId leaf = pattern.name(n).empty()
                      ? kNoNode
                      : name_index_->FindLeaf(target, pattern.name(n));
    if (leaf == kNoNode) {
      return Status::NotFound(
          StrFormat("pattern leaf '%s' not in target tree",
                    std::string(pattern.name(n)).c_str()));
    }
    targets.push_back(leaf);
  }
  return projector_->Project(std::move(targets));
}

Result<PatternMatcher::MatchResult> PatternMatcher::Match(
    const PhyloTree& pattern, double eps, bool match_weights) const {
  MatchResult result;
  CRIMSON_ASSIGN_OR_RETURN(result.projection, ProjectPattern(pattern));
  const std::string proj_canon = CanonicalShape(
      result.projection, result.projection.root(), eps, match_weights, true);
  const std::string pat_canon =
      CanonicalShape(pattern, pattern.root(), eps, match_weights, true);
  result.exact = proj_canon == pat_canon;
  return result;
}

}  // namespace crimson
