// Tree pattern match (paper §2.2): does a given pattern tree occur in
// the target tree as the projection induced by the pattern's leaves?
// Exact match compares the projected tree with the pattern (unordered,
// names + topology + edge weights); approximate match exposes the
// projection so callers can score similarity (e.g. Robinson-Foulds in
// src/recon).

#ifndef CRIMSON_QUERY_PATTERN_MATCH_H_
#define CRIMSON_QUERY_PATTERN_MATCH_H_

#include <memory>
#include <string>

#include "query/projection.h"
#include "tree/name_index.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reusable matcher over one target tree. Leaf anchoring goes through a
/// NameIndex — either one shared by the caller (the session builds one
/// per bound tree) or one built privately at construction. Immutable
/// after construction; Match/ProjectPattern are const, so one matcher
/// may be shared across threads.
class PatternMatcher {
 public:
  /// projector must outlive the matcher (and owns the target tree ref).
  /// If `name_index` is non-null it must be built over the projector's
  /// tree and outlive the matcher; otherwise the matcher builds its own.
  explicit PatternMatcher(const TreeProjector* projector,
                          const NameIndex* name_index = nullptr);

  /// Projects the target tree over the pattern's leaf names. Fails with
  /// NotFound if some pattern leaf does not exist in the target.
  /// Duplicate leaf names in the target anchor to the first leaf in
  /// arena order.
  Result<PhyloTree> ProjectPattern(const PhyloTree& pattern) const;

  struct MatchResult {
    bool exact = false;
    /// The projection induced by the pattern's leaves (for similarity
    /// scoring on non-exact matches).
    PhyloTree projection;
  };

  /// Exact structural match: the projection must equal the pattern as
  /// an unordered weighted tree. `eps` bounds edge-weight differences;
  /// with match_weights=false only names + topology are compared.
  Result<MatchResult> Match(const PhyloTree& pattern, double eps = 1e-9,
                            bool match_weights = true) const;

 private:
  const TreeProjector* projector_;
  const NameIndex* name_index_;          // the index actually used
  std::unique_ptr<NameIndex> owned_index_;  // set when none was shared
};

}  // namespace crimson

#endif  // CRIMSON_QUERY_PATTERN_MATCH_H_
