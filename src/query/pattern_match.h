// Tree pattern match (paper §2.2): does a given pattern tree occur in
// the target tree as the projection induced by the pattern's leaves?
// Exact match compares the projected tree with the pattern (unordered,
// names + topology + edge weights); approximate match exposes the
// projection so callers can score similarity (e.g. Robinson-Foulds in
// src/recon).

#ifndef CRIMSON_QUERY_PATTERN_MATCH_H_
#define CRIMSON_QUERY_PATTERN_MATCH_H_

#include <string>
#include <unordered_map>

#include "query/projection.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reusable matcher over one target tree; builds the leaf-name lookup
/// once. Immutable after construction; Match/ProjectPattern are const,
/// so one matcher may be shared across threads.
class PatternMatcher {
 public:
  /// projector must outlive the matcher (and owns the target tree ref).
  explicit PatternMatcher(const TreeProjector* projector);

  /// Projects the target tree over the pattern's leaf names. Fails with
  /// NotFound if some pattern leaf does not exist in the target.
  Result<PhyloTree> ProjectPattern(const PhyloTree& pattern) const;

  struct MatchResult {
    bool exact = false;
    /// The projection induced by the pattern's leaves (for similarity
    /// scoring on non-exact matches).
    PhyloTree projection;
  };

  /// Exact structural match: the projection must equal the pattern as
  /// an unordered weighted tree. `eps` bounds edge-weight differences;
  /// with match_weights=false only names + topology are compared.
  Result<MatchResult> Match(const PhyloTree& pattern, double eps = 1e-9,
                            bool match_weights = true) const;

 private:
  const TreeProjector* projector_;
  std::unordered_map<std::string, NodeId> leaf_by_name_;
};

}  // namespace crimson

#endif  // CRIMSON_QUERY_PATTERN_MATCH_H_
