#include "query/projection.h"

#include <algorithm>

#include "common/string_util.h"

namespace crimson {

TreeProjector::TreeProjector(const PhyloTree* tree,
                             const LabelingScheme* scheme)
    : tree_(tree),
      scheme_(scheme),
      preorder_(tree->PreOrderRanks()),
      depth_(tree->Depths()),
      root_weight_(tree->RootPathWeights()) {}

Result<PhyloTree> TreeProjector::Project(std::vector<NodeId> leaves) const {
  PhyloTree out;
  if (leaves.empty()) return out;
  for (NodeId n : leaves) {
    if (n >= tree_->size()) {
      return Status::InvalidArgument("projection: node out of range");
    }
    if (!tree_->is_leaf(n)) {
      return Status::InvalidArgument(
          StrFormat("projection: node %u is not a leaf", n));
    }
  }

  // Pre-order sort, then dedup.
  std::sort(leaves.begin(), leaves.end(), [&](NodeId a, NodeId b) {
    return preorder_[a] < preorder_[b];
  });
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());

  if (leaves.size() == 1) {
    out.AddRoot(tree_->name(leaves[0]), 0.0);
    return out;
  }

  // Intermediate nodes: parent links are discovered as the rightmost
  // path collapses, so build in a temp arena and convert at the end.
  struct Tmp {
    NodeId orig;
    int parent = -1;
  };
  std::vector<Tmp> tmp;
  tmp.reserve(2 * leaves.size());
  std::vector<int> stack;  // rightmost path, indexes into tmp

  tmp.push_back({leaves[0], -1});
  stack.push_back(0);

  for (size_t i = 1; i < leaves.size(); ++i) {
    NodeId x = leaves[i];
    CRIMSON_ASSIGN_OR_RETURN(NodeId l,
                             scheme_->Lca(tmp[stack.back()].orig, x));
    // Pop everything strictly deeper than l, wiring parents as we go.
    int last_popped = -1;
    while (!stack.empty() && depth_[tmp[stack.back()].orig] > depth_[l]) {
      int v = stack.back();
      stack.pop_back();
      if (!stack.empty() && depth_[tmp[stack.back()].orig] > depth_[l]) {
        tmp[v].parent = stack.back();
      } else {
        last_popped = v;  // attaches to l (created or found below)
      }
    }
    int l_idx;
    if (!stack.empty() && tmp[stack.back()].orig == l) {
      l_idx = stack.back();
    } else {
      l_idx = static_cast<int>(tmp.size());
      tmp.push_back({l, -1});
      if (!stack.empty()) {
        // l slots between the stack top (an ancestor) and the popped
        // chain; its parent is resolved when it is popped later.
      }
      stack.push_back(l_idx);
    }
    if (last_popped >= 0) tmp[last_popped].parent = l_idx;
    tmp.push_back({x, -1});
    stack.push_back(static_cast<int>(tmp.size()) - 1);
  }
  // Drain the stack: each element's parent is the one below it.
  while (stack.size() > 1) {
    int v = stack.back();
    stack.pop_back();
    tmp[v].parent = stack.back();
  }
  int root_idx = stack[0];

  // Convert to a PhyloTree. Children must be added parent-first; tmp
  // indices are not topologically ordered (LCAs are created after their
  // children), so do a BFS from the root over a child adjacency built
  // in one pass. Child order follows pre-order of the original nodes to
  // keep output deterministic.
  std::vector<std::vector<int>> children(tmp.size());
  for (size_t i = 0; i < tmp.size(); ++i) {
    if (tmp[i].parent >= 0) children[tmp[i].parent].push_back(static_cast<int>(i));
  }
  for (auto& kids : children) {
    std::sort(kids.begin(), kids.end(), [&](int a, int b) {
      return preorder_[tmp[a].orig] < preorder_[tmp[b].orig];
    });
  }
  std::vector<NodeId> new_id(tmp.size(), kNoNode);
  new_id[root_idx] = out.AddRoot(tree_->name(tmp[root_idx].orig), 0.0);
  std::vector<int> queue = {root_idx};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int v = queue[qi];
    for (int c : children[v]) {
      double edge = root_weight_[tmp[c].orig] - root_weight_[tmp[v].orig];
      new_id[c] = out.AddChild(new_id[v], tree_->name(tmp[c].orig), edge);
      queue.push_back(c);
    }
  }
  return out;
}

}  // namespace crimson
