// Tree projection (paper §1 Fig. 1-2 and §2.2): given a tree T and a
// subset S of its leaves, produce the tree induced by S -- every node
// has >= 2 children (unary original nodes are merged, edge weights
// summed), edge weights are path-weight differences, and the projection
// root is the LCA of S.
//
// Algorithm (the paper's): sort S in pre-order of T; insert nodes left
// to right, maintaining the rightmost path of the growing projection on
// a stack; each insertion computes one LCA between the new leaf and the
// current rightmost leaf via the labeling scheme.

#ifndef CRIMSON_QUERY_PROJECTION_H_
#define CRIMSON_QUERY_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "labeling/scheme.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reusable projector; precomputes pre-order ranks, depths, and root
/// path weights of the source tree once (O(n)), then answers each
/// projection in O(|S| log |S| + |S| * lca_cost). Immutable after
/// construction; Project is const and allocates only locals, so one
/// projector may be shared across threads.
class TreeProjector {
 public:
  /// Both arguments must outlive the projector; scheme must be built
  /// over *tree.
  TreeProjector(const PhyloTree* tree, const LabelingScheme* scheme);

  /// Projects the tree induced by the given leaves (duplicates are
  /// ignored). Fails if any node is not a leaf of the source tree.
  Result<PhyloTree> Project(std::vector<NodeId> leaves) const;

  const PhyloTree& tree() const { return *tree_; }

 private:
  const PhyloTree* tree_;
  const LabelingScheme* scheme_;
  std::vector<uint32_t> preorder_;
  std::vector<uint32_t> depth_;
  std::vector<double> root_weight_;
};

}  // namespace crimson

#endif  // CRIMSON_QUERY_PROJECTION_H_
