#include "query/sampling.h"

#include <algorithm>

#include "common/string_util.h"

namespace crimson {

Sampler::Sampler(const PhyloTree* tree)
    : tree_(tree),
      leaves_(tree->Leaves()),
      root_weight_(tree->RootPathWeights()) {}

Result<std::vector<NodeId>> Sampler::SampleUniform(size_t k, Rng* rng) const {
  if (k > leaves_.size()) {
    return Status::InvalidArgument(
        StrFormat("sample size %zu exceeds leaf count %zu", k,
                  leaves_.size()));
  }
  std::vector<uint64_t> idx = rng->SampleWithoutReplacement(leaves_.size(), k);
  std::vector<NodeId> out;
  out.reserve(k);
  for (uint64_t i : idx) out.push_back(leaves_[i]);
  return out;
}

std::vector<NodeId> Sampler::TimeFrontier(double time) const {
  // DFS from the root; stop descending at the first node whose weight
  // exceeds `time` (minimality).
  std::vector<NodeId> frontier;
  if (tree_->empty()) return frontier;
  std::vector<NodeId> stack = {tree_->root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (root_weight_[n] > time) {
      frontier.push_back(n);
      continue;
    }
    for (NodeId c = tree_->first_child(n); c != kNoNode;
         c = tree_->next_sibling(c)) {
      stack.push_back(c);
    }
  }
  // DFS with an explicit stack reverses sibling order; normalize to
  // pre-order for deterministic output.
  std::vector<uint32_t> rank = tree_->PreOrderRanks();
  std::sort(frontier.begin(), frontier.end(),
            [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
  return frontier;
}

std::vector<NodeId> Sampler::LeavesUnder(NodeId node) const {
  std::vector<NodeId> out;
  tree_->PreOrder(
      [&](NodeId n) {
        if (tree_->is_leaf(n)) out.push_back(n);
        return true;
      },
      node);
  return out;
}

Result<std::vector<NodeId>> Sampler::SampleWithRespectToTime(
    size_t k, double time, Rng* rng) const {
  std::vector<NodeId> frontier = TimeFrontier(time);
  if (frontier.empty()) {
    return Status::NotFound(
        StrFormat("no node has root-path weight > %g", time));
  }
  // Quotas: floor(k/|F|) per frontier node, remainder spread over a
  // random subset of frontier nodes.
  std::vector<size_t> quota(frontier.size(), k / frontier.size());
  size_t remainder = k % frontier.size();
  if (remainder > 0) {
    std::vector<uint64_t> extra =
        rng->SampleWithoutReplacement(frontier.size(), remainder);
    for (uint64_t e : extra) ++quota[e];
  }

  std::vector<NodeId> out;
  out.reserve(k);
  size_t shortfall = 0;
  std::vector<NodeId> spare;  // unchosen leaves, for shortfall refills
  for (size_t i = 0; i < frontier.size(); ++i) {
    std::vector<NodeId> pool = LeavesUnder(frontier[i]);
    size_t take = std::min(quota[i], pool.size());
    shortfall += quota[i] - take;
    std::vector<uint64_t> idx =
        rng->SampleWithoutReplacement(pool.size(), take);
    std::vector<bool> chosen(pool.size(), false);
    for (uint64_t j : idx) {
      out.push_back(pool[j]);
      chosen[j] = true;
    }
    for (size_t j = 0; j < pool.size(); ++j) {
      if (!chosen[j]) spare.push_back(pool[j]);
    }
  }
  // Subtrees smaller than their quota: refill from the remaining pool
  // so the caller still gets k species when possible.
  if (shortfall > 0) {
    if (spare.size() < shortfall) {
      return Status::InvalidArgument(
          StrFormat("only %zu leaves below the time-%g frontier, need %zu",
                    out.size() + spare.size(), time, k));
    }
    std::vector<uint64_t> idx =
        rng->SampleWithoutReplacement(spare.size(), shortfall);
    for (uint64_t j : idx) out.push_back(spare[j]);
  }
  return out;
}

}  // namespace crimson
