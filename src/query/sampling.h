// Species sampling (paper §2.2): uniform random leaf samples, and
// "sampling a set of species with respect to a given time" -- find the
// frontier of minimal nodes whose root-path weight exceeds t, then draw
// evenly from the leaf sets under each frontier node. These samples
// feed the Benchmark Manager's projection + reconstruction pipeline.

#ifndef CRIMSON_QUERY_SAMPLING_H_
#define CRIMSON_QUERY_SAMPLING_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reusable sampler over one tree (precomputes leaves and weights).
/// Immutable after construction: all query methods are const and draw
/// randomness only from the caller-supplied Rng, so one Sampler may be
/// shared by any number of threads (each with its own Rng).
class Sampler {
 public:
  explicit Sampler(const PhyloTree* tree);

  /// k distinct leaves uniformly at random. k must not exceed the leaf
  /// count.
  Result<std::vector<NodeId>> SampleUniform(size_t k, Rng* rng) const;

  /// The paper's time-respecting sample: the frontier F of minimal
  /// nodes with root-path weight > time is computed; k draws are spread
  /// as evenly as possible over the frontier subtrees (k/|F| each,
  /// remainder to random frontier nodes), sampling uniformly among the
  /// leaves under each chosen node. Fails if fewer than k leaves lie
  /// under the frontier, or the frontier is empty.
  Result<std::vector<NodeId>> SampleWithRespectToTime(size_t k, double time,
                                                      Rng* rng) const;

  /// Minimal nodes (in pre-order) whose root-path weight exceeds
  /// `time`; exposed for tests (paper example: t=1 on the Fig. 1 tree
  /// gives {Bha, x, Syn, Bsu}).
  std::vector<NodeId> TimeFrontier(double time) const;

  /// All leaves under `node` (pre-order).
  std::vector<NodeId> LeavesUnder(NodeId node) const;

  const std::vector<NodeId>& leaves() const { return leaves_; }

 private:
  const PhyloTree* tree_;
  std::vector<NodeId> leaves_;
  std::vector<double> root_weight_;
};

}  // namespace crimson

#endif  // CRIMSON_QUERY_SAMPLING_H_
