#include "recon/algorithm.h"

#include <utility>

#include "common/string_util.h"
#include "recon/nj.h"
#include "recon/upgma.h"

namespace crimson {

namespace {

class NjAlgorithm final : public ReconstructionAlgorithm {
 public:
  explicit NjAlgorithm(DistanceCorrection c) : correction_(c) {}
  std::string name() const override { return "neighbor_joining"; }
  Result<PhyloTree> Reconstruct(
      const std::map<std::string, std::string>& sequences) const override {
    CRIMSON_ASSIGN_OR_RETURN(DistanceMatrix m,
                             ComputeDistanceMatrix(sequences, correction_));
    return NeighborJoining(m);
  }

 private:
  DistanceCorrection correction_;
};

class UpgmaAlgorithm final : public ReconstructionAlgorithm {
 public:
  explicit UpgmaAlgorithm(DistanceCorrection c) : correction_(c) {}
  std::string name() const override { return "upgma"; }
  Result<PhyloTree> Reconstruct(
      const std::map<std::string, std::string>& sequences) const override {
    CRIMSON_ASSIGN_OR_RETURN(DistanceMatrix m,
                             ComputeDistanceMatrix(sequences, correction_));
    return Upgma(m);
  }

 private:
  DistanceCorrection correction_;
};

}  // namespace

std::unique_ptr<ReconstructionAlgorithm> MakeNjAlgorithm(
    DistanceCorrection correction) {
  return std::make_unique<NjAlgorithm>(correction);
}

std::unique_ptr<ReconstructionAlgorithm> MakeUpgmaAlgorithm(
    DistanceCorrection correction) {
  return std::make_unique<UpgmaAlgorithm>(correction);
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static auto* registry = new AlgorithmRegistry();
  return *registry;
}

AlgorithmRegistry::AlgorithmRegistry() {
  factories_["nj"] = [] { return MakeNjAlgorithm(DistanceCorrection::kJC69); };
  // Alias under the algorithm's self-reported name so pre-registry
  // "benchmark" history rows (which stored name()) stay replayable.
  factories_["neighbor_joining"] = factories_["nj"];
  factories_["upgma"] = [] {
    return MakeUpgmaAlgorithm(DistanceCorrection::kJC69);
  };
}

Status AlgorithmRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty() || !factory) {
    return Status::InvalidArgument("algorithm registration needs a non-empty "
                                   "name and a factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    return Status::AlreadyExists(
        StrFormat("algorithm '%s' is already registered", name.c_str()));
  }
  return Status::OK();
}

Result<std::unique_ptr<ReconstructionAlgorithm>> AlgorithmRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound(
          StrFormat("no reconstruction algorithm registered as '%s'",
                    name.c_str()));
    }
    factory = it->second;
  }
  std::unique_ptr<ReconstructionAlgorithm> algorithm = factory();
  if (algorithm == nullptr) {
    return Status::Internal(
        StrFormat("factory for algorithm '%s' returned null", name.c_str()));
  }
  return algorithm;
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace crimson
