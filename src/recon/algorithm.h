// Reconstruction algorithms as named, pluggable components. The
// ReconstructionAlgorithm interface (formerly declared next to the
// BenchmarkManager) lives in the recon layer so that the algorithm
// *registry* -- the lookup table the typed Experiment API stores
// algorithm references through -- does not depend on the session
// layer. Specs persist registry names, not object references, which is
// what makes stored experiments replayable.

#ifndef CRIMSON_RECON_ALGORITHM_H_
#define CRIMSON_RECON_ALGORITHM_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "recon/distance.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// A tree inference algorithm under evaluation. Implementations exist
/// for NJ and UPGMA; users plug in their own.
///
/// Thread-safety contract: Reconstruct is const and must be safe to
/// call concurrently on one instance -- the Experiment API shares one
/// instance per algorithm name across all replicate workers.
class ReconstructionAlgorithm {
 public:
  virtual ~ReconstructionAlgorithm() = default;
  virtual std::string name() const = 0;
  /// Builds a tree whose leaves are exactly the keys of `sequences`.
  virtual Result<PhyloTree> Reconstruct(
      const std::map<std::string, std::string>& sequences) const = 0;
};

/// Distance-based algorithms shipped with Crimson.
std::unique_ptr<ReconstructionAlgorithm> MakeNjAlgorithm(
    DistanceCorrection correction = DistanceCorrection::kJC69);
std::unique_ptr<ReconstructionAlgorithm> MakeUpgmaAlgorithm(
    DistanceCorrection correction = DistanceCorrection::kJC69);

/// Name -> factory table for reconstruction algorithms. Experiment
/// specs reference algorithms by registry name, so anything stored in
/// an ExperimentSpec (and hence in the experiments table) must be
/// registered here to be runnable and replayable.
///
/// Pre-registered names: "nj" (alias "neighbor_joining") and "upgma",
/// both with JC69 distance correction. Thread-safe.
class AlgorithmRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ReconstructionAlgorithm>()>;

  /// The process-wide registry used by the Crimson session.
  static AlgorithmRegistry& Global();

  /// Registers a user factory under `name`. AlreadyExists if the name
  /// is taken (including the built-in names). The factory must produce
  /// algorithms satisfying the const-thread-safety contract above.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the algorithm registered under `name`; NotFound for
  /// unregistered names.
  Result<std::unique_ptr<ReconstructionAlgorithm>> Create(
      const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  AlgorithmRegistry();  // pre-registers the built-ins

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace crimson

#endif  // CRIMSON_RECON_ALGORITHM_H_
