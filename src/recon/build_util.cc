#include "recon/build_util.h"

namespace crimson {

PhyloTree BuildNodesToTree(const std::vector<BuildNode>& nodes,
                           int root_index) {
  PhyloTree out;
  if (root_index < 0 || nodes.empty()) return out;
  out.Reserve(nodes.size());
  std::vector<NodeId> map(nodes.size(), kNoNode);
  map[root_index] = out.AddRoot(nodes[root_index].name, 0.0);
  std::vector<int> queue = {root_index};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int v = queue[qi];
    for (int c : nodes[v].children) {
      map[c] = out.AddChild(map[v], nodes[c].name, nodes[c].edge_length);
      queue.push_back(c);
    }
  }
  return out;
}

}  // namespace crimson
