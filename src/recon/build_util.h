// Shared helper for reconstruction algorithms that assemble trees
// bottom-up (children exist before parents), which the parent-first
// PhyloTree arena cannot express directly.

#ifndef CRIMSON_RECON_BUILD_UTIL_H_
#define CRIMSON_RECON_BUILD_UTIL_H_

#include <string>
#include <vector>

#include "tree/phylo_tree.h"

namespace crimson {

/// Scratch node for bottom-up construction.
struct BuildNode {
  std::string name;
  double edge_length = 0.0;
  std::vector<int> children;
};

/// Converts a BuildNode forest (rooted at root_index) into a PhyloTree
/// via BFS, preserving child order.
PhyloTree BuildNodesToTree(const std::vector<BuildNode>& nodes,
                           int root_index);

}  // namespace crimson

#endif  // CRIMSON_RECON_BUILD_UTIL_H_
