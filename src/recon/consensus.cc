#include "recon/consensus.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "recon/build_util.h"

namespace crimson {

namespace {

using Bits = std::vector<uint64_t>;

size_t PopCount(const Bits& b) {
  size_t c = 0;
  for (uint64_t w : b) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool IsSubset(const Bits& a, const Bits& b) {  // a subset of b
  for (size_t w = 0; w < a.size(); ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

/// Collects every internal cluster (leaf set under an internal node,
/// excluding the root's full set) of a rooted tree.
Status CollectClusters(const PhyloTree& tree,
                       const std::unordered_map<std::string, uint32_t>& index,
                       std::vector<Bits>* out) {
  size_t words = (index.size() + 63) / 64;
  std::vector<Bits> sets(tree.size());
  Status status;
  tree.PostOrder([&](NodeId n) {
    Bits& bits = sets[n];
    bits.assign(words, 0);
    if (tree.is_leaf(n)) {
      auto it = index.find(std::string(tree.name(n)));
      if (it == index.end()) {
        status = Status::InvalidArgument(
            StrFormat("leaf '%s' missing from shared set",
                      std::string(tree.name(n)).c_str()));
        return false;
      }
      bits[it->second / 64] |= 1ULL << (it->second % 64);
      return true;
    }
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      for (size_t w = 0; w < words; ++w) bits[w] |= sets[c][w];
      sets[c].clear();
      sets[c].shrink_to_fit();
    }
    size_t count = PopCount(bits);
    if (n != tree.root() && count >= 2 && count < index.size()) {
      out->push_back(bits);
    }
    return true;
  });
  return status;
}

}  // namespace

Result<PhyloTree> MajorityRuleConsensus(const std::vector<PhyloTree>& trees,
                                        double threshold) {
  if (trees.empty()) {
    return Status::InvalidArgument("consensus of zero trees");
  }
  // Shared leaf index from the first tree.
  std::unordered_map<std::string, uint32_t> index;
  std::vector<std::string> names;
  for (NodeId n = 0; n < trees[0].size(); ++n) {
    if (trees[0].is_leaf(n)) {
      if (!index.emplace(trees[0].name(n), index.size()).second) {
        return Status::InvalidArgument("duplicate leaf name");
      }
      names.emplace_back(trees[0].name(n));
    }
  }
  size_t n_leaves = index.size();
  size_t words = (n_leaves + 63) / 64;

  // Count cluster occurrences across the profile.
  std::unordered_map<std::string, size_t> counts;
  std::unordered_map<std::string, Bits> bits_of;
  for (const PhyloTree& t : trees) {
    if (t.LeafCount() != n_leaves) {
      return Status::InvalidArgument("trees have different leaf sets");
    }
    std::vector<Bits> clusters;
    CRIMSON_RETURN_IF_ERROR(CollectClusters(t, index, &clusters));
    for (Bits& b : clusters) {
      std::string key(reinterpret_cast<const char*>(b.data()),
                      words * sizeof(uint64_t));
      ++counts[key];
      bits_of.emplace(std::move(key), std::move(b));
    }
  }
  const double cutoff = threshold * static_cast<double>(trees.size());
  struct Kept {
    Bits bits;
    size_t size;
    double support;
  };
  std::vector<Kept> kept;
  for (const auto& [key, count] : counts) {
    if (static_cast<double>(count) > cutoff) {
      kept.push_back({bits_of[key], PopCount(bits_of[key]),
                      static_cast<double>(count) /
                          static_cast<double>(trees.size())});
    }
  }
  // Majority clusters are pairwise compatible (each pair is either
  // disjoint or nested), so attaching each cluster below the smallest
  // strict superset yields the unique consensus tree. Sorting by size
  // descending makes every superset available before its subsets.
  std::sort(kept.begin(), kept.end(),
            [](const Kept& a, const Kept& b) { return a.size > b.size; });

  std::vector<BuildNode> nodes;
  BuildNode root_node;
  int root = 0;
  nodes.push_back(std::move(root_node));
  std::vector<int> cluster_node(kept.size());
  std::vector<const Bits*> node_bits = {nullptr};  // per build node

  for (size_t i = 0; i < kept.size(); ++i) {
    // Find the smallest already-placed cluster containing this one:
    // scan previous kept clusters in descending size; the last superset
    // found is the tightest.
    int parent = root;
    for (size_t j = 0; j < i; ++j) {
      if (kept[j].size > kept[i].size &&
          IsSubset(kept[i].bits, kept[j].bits)) {
        parent = cluster_node[j];
      } else if (kept[j].size == kept[i].size &&
                 kept[i].bits == kept[j].bits) {
        return Status::Internal("duplicate majority cluster");
      }
    }
    BuildNode bn;
    bn.edge_length = kept[i].support;
    int idx = static_cast<int>(nodes.size());
    nodes.push_back(std::move(bn));
    nodes[parent].children.push_back(idx);
    cluster_node[i] = idx;
    node_bits.push_back(&kept[i].bits);
  }
  // Attach each leaf under the smallest kept cluster containing it.
  for (size_t leaf = 0; leaf < n_leaves; ++leaf) {
    int parent = root;
    size_t best_size = n_leaves + 1;
    for (size_t i = 0; i < kept.size(); ++i) {
      if ((kept[i].bits[leaf / 64] >> (leaf % 64)) & 1ULL) {
        if (kept[i].size < best_size) {
          best_size = kept[i].size;
          parent = cluster_node[i];
        }
      }
    }
    BuildNode bn;
    bn.name = names[leaf];
    bn.edge_length = 1.0;
    int idx = static_cast<int>(nodes.size());
    nodes.push_back(std::move(bn));
    nodes[parent].children.push_back(idx);
  }
  return BuildNodesToTree(nodes, root);
}

}  // namespace crimson
