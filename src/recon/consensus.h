// Majority-rule consensus tree (paper reference [1], Amenta, Clarke &
// St. John 2003): given a profile of rooted trees over the same leaf
// set, keep the clusters that appear in more than half of the trees --
// such clusters are pairwise compatible, so they assemble into a unique
// tree. Used to summarize replicate reconstruction runs in the
// Benchmark Manager.

#ifndef CRIMSON_RECON_CONSENSUS_H_
#define CRIMSON_RECON_CONSENSUS_H_

#include <vector>

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Builds the majority-rule consensus of `trees` (all over the same
/// leaf-name set; at least one tree). `threshold` is the inclusion
/// fraction: a cluster is kept when count > threshold * |trees|
/// (default strict majority). Edge lengths in the output carry the
/// cluster's support fraction (a common convention for consensus
/// trees).
Result<PhyloTree> MajorityRuleConsensus(const std::vector<PhyloTree>& trees,
                                        double threshold = 0.5);

}  // namespace crimson

#endif  // CRIMSON_RECON_CONSENSUS_H_
