#include "recon/distance.h"

#include <cmath>

#include "common/string_util.h"

namespace crimson {

namespace {

bool IsPurineChar(char c) { return c == 'A' || c == 'G'; }

}  // namespace

Result<double> PDistance(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        StrFormat("sequence length mismatch: %zu vs %zu", a.size(),
                  b.size()));
  }
  if (a.empty()) {
    return Status::InvalidArgument("empty sequences");
  }
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

Result<double> CorrectedDistance(const std::string& a, const std::string& b,
                                 DistanceCorrection correction,
                                 double saturation_cap) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("sequence length mismatch");
  }
  if (a.empty()) {
    return Status::InvalidArgument("empty sequences");
  }
  switch (correction) {
    case DistanceCorrection::kPDistance:
      return PDistance(a, b);
    case DistanceCorrection::kJC69: {
      CRIMSON_ASSIGN_OR_RETURN(double p, PDistance(a, b));
      double arg = 1.0 - 4.0 * p / 3.0;
      if (arg <= 0) return saturation_cap;
      double d = -0.75 * std::log(arg);
      return d > saturation_cap ? saturation_cap : d;
    }
    case DistanceCorrection::kK80: {
      size_t transitions = 0, transversions = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i]) continue;
        if (IsPurineChar(a[i]) == IsPurineChar(b[i])) {
          ++transitions;
        } else {
          ++transversions;
        }
      }
      double n = static_cast<double>(a.size());
      double p = static_cast<double>(transitions) / n;
      double q = static_cast<double>(transversions) / n;
      double arg1 = 1.0 - 2.0 * p - q;
      double arg2 = 1.0 - 2.0 * q;
      if (arg1 <= 0 || arg2 <= 0) return saturation_cap;
      double d = -0.5 * std::log(arg1) - 0.25 * std::log(arg2);
      return d > saturation_cap ? saturation_cap : d;
    }
  }
  return Status::Internal("unknown distance correction");
}

Result<DistanceMatrix> ComputeDistanceMatrix(
    const std::map<std::string, std::string>& sequences,
    DistanceCorrection correction, double saturation_cap) {
  if (sequences.size() < 2) {
    return Status::InvalidArgument(
        "distance matrix needs at least two taxa");
  }
  DistanceMatrix m;
  m.names.reserve(sequences.size());
  std::vector<const std::string*> seqs;
  for (const auto& [name, seq] : sequences) {
    m.names.push_back(name);
    seqs.push_back(&seq);
  }
  size_t n = m.names.size();
  m.d.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      CRIMSON_ASSIGN_OR_RETURN(
          double dist,
          CorrectedDistance(*seqs[i], *seqs[j], correction, saturation_cap));
      m.d[i][j] = dist;
      m.d[j][i] = dist;
    }
  }
  return m;
}

}  // namespace crimson
