// Evolutionary distance estimation from aligned sequences; input to
// the distance-based reconstruction algorithms (UPGMA, NJ) that the
// Benchmark Manager evaluates.

#ifndef CRIMSON_RECON_DISTANCE_H_
#define CRIMSON_RECON_DISTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace crimson {

/// Symmetric pairwise distance matrix with taxon names.
struct DistanceMatrix {
  std::vector<std::string> names;
  /// d[i][j]; d[i][i] == 0.
  std::vector<std::vector<double>> d;

  size_t size() const { return names.size(); }
};

enum class DistanceCorrection {
  kPDistance,  // raw fraction of differing sites
  kJC69,       // Jukes-Cantor correction
  kK80,        // Kimura two-parameter correction
};

/// Proportion of differing sites between two equal-length sequences.
Result<double> PDistance(const std::string& a, const std::string& b);

/// Model-corrected distance between two sequences. Saturated pairs
/// (where the correction diverges) are clamped to `saturation_cap`.
Result<double> CorrectedDistance(const std::string& a, const std::string& b,
                                 DistanceCorrection correction,
                                 double saturation_cap = 5.0);

/// Builds the full matrix from taxon -> sequence. All sequences must
/// have equal length; at least two taxa required.
Result<DistanceMatrix> ComputeDistanceMatrix(
    const std::map<std::string, std::string>& sequences,
    DistanceCorrection correction,
    double saturation_cap = 5.0);

}  // namespace crimson

#endif  // CRIMSON_RECON_DISTANCE_H_
