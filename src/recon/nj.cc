#include "recon/nj.h"

#include <algorithm>
#include <limits>

#include "recon/build_util.h"

namespace crimson {

Result<PhyloTree> NeighborJoining(const DistanceMatrix& matrix) {
  size_t n = matrix.size();
  if (n < 2) {
    return Status::InvalidArgument("NJ needs at least two taxa");
  }
  std::vector<BuildNode> nodes;
  nodes.reserve(2 * n);
  std::vector<int> active;     // indexes into `nodes`
  std::vector<std::vector<double>> d = matrix.d;  // working copy
  std::vector<int> slot;       // active cluster -> row in d
  for (size_t i = 0; i < n; ++i) {
    BuildNode leaf;
    leaf.name = matrix.names[i];
    nodes.push_back(std::move(leaf));
    active.push_back(static_cast<int>(i));
    slot.push_back(static_cast<int>(i));
  }
  // Row storage grows as clusters are created; D is indexed by slot id.
  auto dist = [&](int a, int b) -> double { return d[a][b]; };

  while (active.size() > 2) {
    size_t m = active.size();
    // Row sums r_i over the active set.
    std::vector<double> r(m, 0.0);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        if (i != j) r[i] += dist(slot[active[i]] , slot[active[j]]);
      }
    }
    // Q-criterion minimization.
    double best_q = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        double q = (static_cast<double>(m) - 2.0) *
                       dist(slot[active[i]], slot[active[j]]) -
                   r[i] - r[j];
        if (q < best_q) {
          best_q = q;
          bi = i;
          bj = j;
        }
      }
    }
    int a = active[bi], b = active[bj];
    double dab = dist(slot[a], slot[b]);
    // Branch lengths to the new internal node u.
    double la = 0.5 * dab +
                (r[bi] - r[bj]) / (2.0 * (static_cast<double>(m) - 2.0));
    double lb = dab - la;
    la = std::max(0.0, la);
    lb = std::max(0.0, lb);
    nodes[a].edge_length = la;
    nodes[b].edge_length = lb;
    BuildNode u;
    u.children = {a, b};
    int u_idx = static_cast<int>(nodes.size());
    nodes.push_back(std::move(u));

    // New distance row: d(u,k) = (d(a,k) + d(b,k) - d(a,b)) / 2.
    size_t new_slot = d.size();
    std::vector<double> row(new_slot + 1, 0.0);
    for (auto& existing : d) existing.push_back(0.0);
    d.push_back(std::move(row));
    for (size_t k = 0; k < m; ++k) {
      if (k == bi || k == bj) continue;
      int c = active[k];
      double duk =
          0.5 * (dist(slot[a], slot[c]) + dist(slot[b], slot[c]) - dab);
      d[new_slot][slot[c]] = duk;
      d[slot[c]][new_slot] = duk;
    }
    // Replace a,b by u in the active set.
    if (bj != m - 1) std::swap(active[bj], active[m - 1]);
    active.pop_back();
    active[bi == m - 1 ? bj : bi] = u_idx;
    slot.push_back(static_cast<int>(new_slot));
    if (static_cast<size_t>(u_idx) != slot.size() - 1) {
      return Status::Internal("NJ bookkeeping error");
    }
  }

  // Two clusters left: join them under a root, splitting the distance.
  int a = active[0], b = active[1];
  double dab = dist(slot[a], slot[b]);
  nodes[a].edge_length = std::max(0.0, dab / 2.0);
  nodes[b].edge_length = std::max(0.0, dab / 2.0);
  BuildNode root;
  root.children = {a, b};
  int root_idx = static_cast<int>(nodes.size());
  nodes.push_back(std::move(root));
  return BuildNodesToTree(nodes, root_idx);
}

}  // namespace crimson
