// Neighbor-Joining (Saitou & Nei 1987): the standard distance-based
// phylogeny reconstruction algorithm, statistically consistent without
// a molecular clock. One of the algorithms Crimson's Benchmark Manager
// evaluates against gold-standard projections.

#ifndef CRIMSON_RECON_NJ_H_
#define CRIMSON_RECON_NJ_H_

#include "common/result.h"
#include "recon/distance.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reconstructs a tree from a distance matrix (>= 2 taxa). The result
/// is the NJ tree rooted arbitrarily at the final join; negative branch
/// length estimates are clamped to zero (standard practice). O(n^3).
Result<PhyloTree> NeighborJoining(const DistanceMatrix& matrix);

}  // namespace crimson

#endif  // CRIMSON_RECON_NJ_H_
