#include "recon/rf_distance.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Collects the non-trivial bipartitions of a tree as canonicalized
/// bitset strings. A split is canonical when leaf 0's side is zeroed
/// out (flipping if necessary) so the two orientations compare equal.
Status CollectSplits(const PhyloTree& tree,
                     const std::unordered_map<std::string, uint32_t>& index,
                     std::unordered_set<std::string>* out) {
  size_t n_leaves = index.size();
  size_t words = (n_leaves + 63) / 64;
  // Bottom-up leaf sets, freed as soon as the parent consumes them.
  std::vector<std::vector<uint64_t>> sets(tree.size());
  Status status;
  tree.PostOrder([&](NodeId n) {
    auto& bits = sets[n];
    bits.assign(words, 0);
    if (tree.is_leaf(n)) {
      auto it = index.find(std::string(tree.name(n)));
      if (it == index.end()) {
        status = Status::InvalidArgument(
            StrFormat("leaf '%s' missing from the shared leaf set",
                      std::string(tree.name(n)).c_str()));
        return false;
      }
      bits[it->second / 64] |= (1ULL << (it->second % 64));
      return true;
    }
    size_t count = 0;
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      for (size_t w = 0; w < words; ++w) bits[w] |= sets[c][w];
      sets[c].clear();
      sets[c].shrink_to_fit();
    }
    for (size_t w = 0; w < words; ++w) {
      count += static_cast<size_t>(__builtin_popcountll(bits[w]));
    }
    // Non-trivial split: 2 <= |side| <= n-2, and skip the root edge.
    if (n != tree.root() && count >= 2 && count <= n_leaves - 2) {
      std::vector<uint64_t> canon = bits;
      if (canon[0] & 1ULL) {
        // Flip to the side not containing leaf 0.
        for (size_t w = 0; w < words; ++w) canon[w] = ~canon[w];
        // Mask tail bits beyond n_leaves.
        size_t tail = n_leaves % 64;
        if (tail != 0) canon[words - 1] &= (1ULL << tail) - 1;
      }
      out->emplace(reinterpret_cast<const char*>(canon.data()),
                   words * sizeof(uint64_t));
    }
    return true;
  });
  return status;
}

}  // namespace

Result<RfResult> RobinsonFoulds(const PhyloTree& a, const PhyloTree& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("RF distance of empty tree");
  }
  // Shared leaf index from tree a; verify uniqueness and set equality.
  std::unordered_map<std::string, uint32_t> index;
  uint32_t next = 0;
  Status status;
  a.PreOrder([&](NodeId n) {
    if (!a.is_leaf(n)) return true;
    if (!index.emplace(a.name(n), next).second) {
      status = Status::InvalidArgument(
          StrFormat("duplicate leaf name '%s'", std::string(a.name(n)).c_str()));
      return false;
    }
    ++next;
    return true;
  });
  CRIMSON_RETURN_IF_ERROR(status);
  size_t b_leaves = b.LeafCount();
  if (b_leaves != index.size()) {
    return Status::InvalidArgument(
        StrFormat("leaf sets differ in size: %zu vs %zu", index.size(),
                  b_leaves));
  }

  std::unordered_set<std::string> splits_a, splits_b;
  CRIMSON_RETURN_IF_ERROR(CollectSplits(a, index, &splits_a));
  CRIMSON_RETURN_IF_ERROR(CollectSplits(b, index, &splits_b));

  size_t common = 0;
  for (const std::string& s : splits_a) {
    if (splits_b.count(s)) ++common;
  }
  RfResult r;
  r.splits_a = splits_a.size();
  r.splits_b = splits_b.size();
  r.distance = splits_a.size() + splits_b.size() - 2 * common;
  size_t denom = splits_a.size() + splits_b.size();
  r.normalized = denom == 0
                     ? 0.0
                     : static_cast<double>(r.distance) /
                           static_cast<double>(denom);
  return r;
}

}  // namespace crimson
