// Robinson-Foulds (bipartition) distance: the standard topological
// disagreement measure between two trees over the same leaf set, and
// the score the Benchmark Manager reports when comparing reconstructed
// trees to gold-standard projections. Trees are compared as unrooted:
// every internal edge induces a bipartition of the leaves.

#ifndef CRIMSON_RECON_RF_DISTANCE_H_
#define CRIMSON_RECON_RF_DISTANCE_H_

#include <cstdint>

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

struct RfResult {
  /// |splits(A) ^ splits(B)| (symmetric difference).
  size_t distance = 0;
  /// Non-trivial splits in each tree.
  size_t splits_a = 0;
  size_t splits_b = 0;
  /// distance / (splits_a + splits_b); 0 when both trees are stars.
  double normalized = 0.0;
};

/// Computes the unrooted RF distance. Both trees must have identical
/// non-empty leaf-name sets with unique names.
Result<RfResult> RobinsonFoulds(const PhyloTree& a, const PhyloTree& b);

}  // namespace crimson

#endif  // CRIMSON_RECON_RF_DISTANCE_H_
