#include "recon/triplet.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Per-tree precomputation: leaf ids in shared order plus an LCA-depth
/// oracle, so each triple resolves in O(1).
struct TripletOracle {
  std::vector<uint32_t> depth;
  std::vector<NodeId> parent;
  std::vector<NodeId> leaves;  // indexed by shared leaf ordinal

  /// Depth of LCA(a, b) by parent walk.
  uint32_t LcaDepth(NodeId a, NodeId b) const {
    while (a != b) {
      if (depth[a] >= depth[b]) {
        a = parent[a];
      } else {
        b = parent[b];
      }
    }
    return depth[a];
  }

  /// 0: (a,b) closest; 1: (a,c); 2: (b,c); 3: unresolved (tie).
  int Resolve(size_t a, size_t b, size_t c) const {
    uint32_t ab = LcaDepth(leaves[a], leaves[b]);
    uint32_t ac = LcaDepth(leaves[a], leaves[c]);
    uint32_t bc = LcaDepth(leaves[b], leaves[c]);
    if (ab > ac && ab > bc) return 0;
    if (ac > ab && ac > bc) return 1;
    if (bc > ab && bc > ac) return 2;
    return 3;
  }
};

Result<TripletOracle> BuildOracle(
    const PhyloTree& t,
    const std::unordered_map<std::string, size_t>& index) {
  TripletOracle o;
  o.depth = t.Depths();
  o.parent.resize(t.size());
  for (NodeId n = 0; n < t.size(); ++n) o.parent[n] = t.parent(n);
  o.leaves.assign(index.size(), kNoNode);
  for (NodeId n = 0; n < t.size(); ++n) {
    if (!t.is_leaf(n)) continue;
    auto it = index.find(std::string(t.name(n)));
    if (it == index.end()) {
      return Status::InvalidArgument(
          StrFormat("leaf '%s' not in shared set", std::string(t.name(n)).c_str()));
    }
    if (o.leaves[it->second] != kNoNode) {
      return Status::InvalidArgument(
          StrFormat("duplicate leaf '%s'", std::string(t.name(n)).c_str()));
    }
    o.leaves[it->second] = n;
  }
  for (NodeId leaf : o.leaves) {
    if (leaf == kNoNode) {
      return Status::InvalidArgument("leaf sets differ");
    }
  }
  return o;
}

}  // namespace

Result<TripletResult> TripletDistance(const PhyloTree& a,
                                      const PhyloTree& b) {
  std::unordered_map<std::string, size_t> index;
  for (NodeId n = 0; n < a.size(); ++n) {
    if (a.is_leaf(n)) index.emplace(std::string(a.name(n)), index.size());
  }
  if (index.size() < 3) {
    return Status::InvalidArgument("triplet distance needs >= 3 leaves");
  }
  if (b.LeafCount() != index.size()) {
    return Status::InvalidArgument("leaf sets differ in size");
  }
  CRIMSON_ASSIGN_OR_RETURN(TripletOracle oa, BuildOracle(a, index));
  CRIMSON_ASSIGN_OR_RETURN(TripletOracle ob, BuildOracle(b, index));

  TripletResult r;
  size_t k = index.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      for (size_t l = j + 1; l < k; ++l) {
        ++r.total;
        if (oa.Resolve(i, j, l) != ob.Resolve(i, j, l)) ++r.differing;
      }
    }
  }
  r.fraction = r.total == 0
                   ? 0.0
                   : static_cast<double>(r.differing) /
                         static_cast<double>(r.total);
  return r;
}

}  // namespace crimson
