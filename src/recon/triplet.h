// Rooted triplet distance: the fraction of leaf triples {a,b,c} whose
// rooted topology ("which pair is closest") differs between two trees.
// Finer-grained than RF for rooted comparisons; used as a secondary
// benchmark score. Naive O(k^3) over the sampled leaf set -- intended
// for the benchmark-sized inputs (k up to a few hundred).

#ifndef CRIMSON_RECON_TRIPLET_H_
#define CRIMSON_RECON_TRIPLET_H_

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

struct TripletResult {
  uint64_t total = 0;      // C(k, 3)
  uint64_t differing = 0;  // triples resolved differently
  double fraction = 0.0;
};

/// Compares all leaf triples of two trees over the same leaf set.
Result<TripletResult> TripletDistance(const PhyloTree& a, const PhyloTree& b);

}  // namespace crimson

#endif  // CRIMSON_RECON_TRIPLET_H_
