#include "recon/upgma.h"

#include <limits>

#include "recon/build_util.h"

namespace crimson {

Result<PhyloTree> Upgma(const DistanceMatrix& matrix) {
  size_t n = matrix.size();
  if (n < 2) {
    return Status::InvalidArgument("UPGMA needs at least two taxa");
  }
  struct Cluster {
    int node;        // index into build nodes
    size_t size;     // number of taxa
    double height;   // ultrametric height of the cluster root
    int slot;        // row in the working distance matrix
  };
  std::vector<BuildNode> nodes;
  nodes.reserve(2 * n);
  std::vector<Cluster> active;
  std::vector<std::vector<double>> d = matrix.d;
  for (size_t i = 0; i < n; ++i) {
    BuildNode leaf;
    leaf.name = matrix.names[i];
    nodes.push_back(std::move(leaf));
    active.push_back({static_cast<int>(i), 1, 0.0, static_cast<int>(i)});
  }

  while (active.size() > 1) {
    size_t m = active.size();
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        double dij = d[active[i].slot][active[j].slot];
        if (dij < best) {
          best = dij;
          bi = i;
          bj = j;
        }
      }
    }
    Cluster a = active[bi];
    Cluster b = active[bj];
    double height = best / 2.0;
    nodes[a.node].edge_length = height - a.height;
    nodes[b.node].edge_length = height - b.height;
    BuildNode u;
    u.children = {a.node, b.node};
    int u_idx = static_cast<int>(nodes.size());
    nodes.push_back(std::move(u));

    // Size-weighted average distances to the merged cluster.
    size_t new_slot = d.size();
    for (auto& row : d) row.push_back(0.0);
    d.emplace_back(new_slot + 1, 0.0);
    for (size_t k = 0; k < m; ++k) {
      if (k == bi || k == bj) continue;
      const Cluster& c = active[k];
      double davg = (d[a.slot][c.slot] * static_cast<double>(a.size) +
                     d[b.slot][c.slot] * static_cast<double>(b.size)) /
                    static_cast<double>(a.size + b.size);
      d[new_slot][c.slot] = davg;
      d[c.slot][new_slot] = davg;
    }
    Cluster merged{u_idx, a.size + b.size, height,
                   static_cast<int>(new_slot)};
    // Remove bj first (larger index), then replace bi.
    active.erase(active.begin() + static_cast<long>(bj));
    active[bi] = merged;
  }
  return BuildNodesToTree(nodes, active[0].node);
}

}  // namespace crimson
