// UPGMA (average-linkage hierarchical clustering): the classic
// clock-assuming reconstruction baseline. Produces an ultrametric
// rooted tree; systematically wrong when lineage rates vary, which the
// Benchmark Manager experiment (E11) demonstrates against NJ.

#ifndef CRIMSON_RECON_UPGMA_H_
#define CRIMSON_RECON_UPGMA_H_

#include "common/result.h"
#include "recon/distance.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Reconstructs an ultrametric tree from a distance matrix (>= 2
/// taxa). O(n^3).
Result<PhyloTree> Upgma(const DistanceMatrix& matrix);

}  // namespace crimson

#endif  // CRIMSON_RECON_UPGMA_H_
