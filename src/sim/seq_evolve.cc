#include "sim/seq_evolve.h"

#include <cmath>

#include "common/string_util.h"

namespace crimson {

namespace {

inline bool IsPurine(int b) { return b == 0 || b == 2; }  // A or G

inline int BaseIndex(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return -1;
  }
}

}  // namespace

SequenceEvolver::SequenceEvolver(const SeqEvolveOptions& options)
    : options_(options) {
  // JC69/K80 are HKY85 special cases (uniform frequencies; kappa=1 for
  // JC69), so a single parameterization drives everything.
  if (options_.model == SubstModel::kJC69) {
    options_.kappa = 1.0;
    pi_ = {0.25, 0.25, 0.25, 0.25};
  } else if (options_.model == SubstModel::kK80) {
    pi_ = {0.25, 0.25, 0.25, 0.25};
  } else {
    pi_ = options_.base_freqs;
  }
  const double pi_a = pi_[0], pi_c = pi_[1], pi_g = pi_[2], pi_t = pi_[3];
  const double pi_r = pi_a + pi_g;
  const double pi_y = pi_c + pi_t;
  // Normalize so a branch of length 1 is one expected substitution per
  // site: beta = 1 / (2 kappa (pi_A pi_G + pi_C pi_T) + 2 pi_R pi_Y).
  beta_ = 1.0 / (2.0 * options_.kappa * (pi_a * pi_g + pi_c * pi_t) +
                 2.0 * pi_r * pi_y);
}

Result<SequenceEvolver> SequenceEvolver::Create(
    const SeqEvolveOptions& options) {
  if (options.seq_length == 0) {
    return Status::InvalidArgument("seq_length must be > 0");
  }
  if (options.mu <= 0) {
    return Status::InvalidArgument("mu must be > 0");
  }
  if (options.kappa <= 0) {
    return Status::InvalidArgument("kappa must be > 0");
  }
  if (options.model == SubstModel::kHKY85) {
    double sum = 0;
    for (double f : options.base_freqs) {
      if (f <= 0) {
        return Status::InvalidArgument("base frequencies must be positive");
      }
      sum += f;
    }
    if (std::fabs(sum - 1.0) > 1e-9) {
      return Status::InvalidArgument(
          StrFormat("base frequencies sum to %.12f, expected 1", sum));
    }
  }
  return SequenceEvolver(options);
}

TransitionMatrix SequenceEvolver::Transition(double t) const {
  // HKY85 closed form (Felsenstein 2004 eq. 13.9 parameterization).
  const double kappa = options_.kappa;
  const double d = beta_ * options_.mu * (t < 0 ? 0 : t);
  const double e1 = std::exp(-d);
  const double pi_r = pi_[0] + pi_[2];
  const double pi_y = pi_[1] + pi_[3];
  TransitionMatrix p;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double pij = pi_[j];
      const double group = IsPurine(j) ? pi_r : pi_y;
      const double a_j = 1.0 + group * (kappa - 1.0);
      const double e2 = std::exp(-d * a_j);
      if (i == j) {
        p[i][j] = pij + pij * (1.0 / group - 1.0) * e1 +
                  ((group - pij) / group) * e2;
      } else if (IsPurine(i) == IsPurine(j)) {
        // Transition (A<->G or C<->T).
        p[i][j] = pij + pij * (1.0 / group - 1.0) * e1 - (pij / group) * e2;
      } else {
        // Transversion.
        p[i][j] = pij * (1.0 - e1);
      }
    }
  }
  return p;
}

std::string SequenceEvolver::SampleRootSequence(size_t length,
                                                Rng* rng) const {
  std::string seq(length, 'A');
  const double c0 = pi_[0];
  const double c1 = c0 + pi_[1];
  const double c2 = c1 + pi_[2];
  for (size_t i = 0; i < length; ++i) {
    double u = rng->NextDouble();
    seq[i] = u < c0 ? 'A' : u < c1 ? 'C' : u < c2 ? 'G' : 'T';
  }
  return seq;
}

std::string SequenceEvolver::MutateAlong(const std::string& parent,
                                         double branch, Rng* rng) const {
  TransitionMatrix p = Transition(branch);
  // Cumulative rows for O(1) categorical sampling per site.
  double cum[4][3];
  for (int i = 0; i < 4; ++i) {
    cum[i][0] = p[i][0];
    cum[i][1] = cum[i][0] + p[i][1];
    cum[i][2] = cum[i][1] + p[i][2];
  }
  std::string child(parent.size(), 'A');
  for (size_t s = 0; s < parent.size(); ++s) {
    int i = BaseIndex(parent[s]);
    double u = rng->NextDouble();
    child[s] = u < cum[i][0]   ? 'A'
               : u < cum[i][1] ? 'C'
               : u < cum[i][2] ? 'G'
                               : 'T';
  }
  return child;
}

Result<std::vector<std::string>> SequenceEvolver::EvolveAllNodes(
    const PhyloTree& tree, Rng* rng) const {
  if (tree.empty()) {
    return Status::InvalidArgument("cannot evolve over an empty tree");
  }
  std::vector<std::string> seqs(tree.size());
  seqs[tree.root()] = SampleRootSequence(options_.seq_length, rng);
  // Arena order: parents precede children, so a flat loop suffices and
  // no recursion touches deep trees.
  for (NodeId n = 1; n < tree.size(); ++n) {
    seqs[n] = MutateAlong(seqs[tree.parent(n)], tree.edge_length(n), rng);
  }
  return seqs;
}

Result<std::map<std::string, std::string>> SequenceEvolver::EvolveLeaves(
    const PhyloTree& tree, Rng* rng) const {
  CRIMSON_ASSIGN_OR_RETURN(std::vector<std::string> all,
                           EvolveAllNodes(tree, rng));
  std::map<std::string, std::string> out;
  for (NodeId n = 0; n < tree.size(); ++n) {
    if (tree.is_leaf(n)) out[std::string(tree.name(n))] = std::move(all[n]);
  }
  return out;
}

}  // namespace crimson
