// Sequence evolution along a phylogeny -- the "complex sequence
// evolution models" half of the CIPRes gold standard (paper §1). A root
// sequence is drawn from the model's stationary distribution and
// mutated down every branch with the model's transition matrix
// P(t) = exp(Qt), using the closed forms for JC69, K80 and HKY85.

#ifndef CRIMSON_SIM_SEQ_EVOLVE_H_
#define CRIMSON_SIM_SEQ_EVOLVE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Nucleotide order used throughout: A=0, C=1, G=2, T=3.
inline constexpr char kDnaAlphabet[5] = "ACGT";

enum class SubstModel {
  kJC69,   // equal rates, uniform frequencies
  kK80,    // transition/transversion ratio kappa, uniform frequencies
  kHKY85,  // kappa + arbitrary base frequencies
};

struct SeqEvolveOptions {
  SubstModel model = SubstModel::kJC69;
  /// Sites per sequence.
  size_t seq_length = 1000;
  /// Overall substitution rate scaling (branch length multiplier).
  double mu = 1.0;
  /// Transition/transversion rate ratio (K80, HKY85).
  double kappa = 2.0;
  /// Stationary base frequencies A,C,G,T (HKY85); must sum to 1.
  std::array<double, 4> base_freqs = {0.25, 0.25, 0.25, 0.25};
};

/// 4x4 row-stochastic matrix: P[i][j] = Pr(j at branch end | i at start).
using TransitionMatrix = std::array<std::array<double, 4>, 4>;

class SequenceEvolver {
 public:
  /// Validates options (frequencies, rates) on construction via Create.
  static Result<SequenceEvolver> Create(const SeqEvolveOptions& options);

  const SeqEvolveOptions& options() const { return options_; }

  /// Transition probabilities for a branch of length t (in expected
  /// substitutions per site after mu scaling). Rows sum to 1.
  TransitionMatrix Transition(double t) const;

  /// Evolves sequences for every node; result[i] is node i's sequence.
  Result<std::vector<std::string>> EvolveAllNodes(const PhyloTree& tree,
                                                  Rng* rng) const;

  /// Leaf name -> sequence (the species data Crimson stores).
  Result<std::map<std::string, std::string>> EvolveLeaves(
      const PhyloTree& tree, Rng* rng) const;

  /// Draws a fresh sequence from the stationary distribution.
  std::string SampleRootSequence(size_t length, Rng* rng) const;

 private:
  explicit SequenceEvolver(const SeqEvolveOptions& options);

  std::string MutateAlong(const std::string& parent, double branch,
                          Rng* rng) const;

  SeqEvolveOptions options_;
  // Derived HKY85 quantities (also cover JC69/K80 as special cases).
  std::array<double, 4> pi_;
  double beta_ = 1.0;  // rate normalizer so branch lengths are in
                       // expected substitutions per site
};

}  // namespace crimson

#endif  // CRIMSON_SIM_SEQ_EVOLVE_H_
