#include "sim/tree_sim.h"

#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Rebuilds `tree` keeping only the subtree spanned by `keep_leaves`,
/// collapsing unary internal nodes (their edge lengths are summed).
PhyloTree PruneToLeaves(const PhyloTree& tree,
                        const std::vector<NodeId>& keep_leaves) {
  std::vector<uint8_t> keep(tree.size(), 0);
  for (NodeId leaf : keep_leaves) keep[leaf] = 1;
  // Mark ancestors of kept leaves.
  for (NodeId leaf : keep_leaves) {
    NodeId n = leaf;
    while (n != kNoNode && n != tree.root()) {
      n = tree.parent(n);
      if (keep[n]) break;
      keep[n] = 1;
    }
  }
  if (!keep_leaves.empty()) keep[tree.root()] = 1;

  // Count kept children per kept node to identify unary chains.
  PhyloTree out;
  if (keep_leaves.empty()) return out;
  std::vector<NodeId> map(tree.size(), kNoNode);
  // new parent under which a node's kept descendants attach, plus the
  // accumulated edge length through collapsed unary nodes.
  struct Pending {
    NodeId src;
    NodeId dst_parent;  // node in `out`
    double carried;     // edge length accumulated from collapsed chain
  };
  // Root handling: descend from the root through unary kept chains; the
  // projection root is the first kept node with >= 2 kept children or a
  // kept leaf.
  auto kept_children = [&](NodeId n) {
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      if (keep[c]) kids.push_back(c);
    }
    return kids;
  };
  NodeId top = tree.root();
  while (true) {
    std::vector<NodeId> kids = kept_children(top);
    if (kids.size() == 1 && !tree.is_leaf(top)) {
      top = kids[0];
    } else {
      break;
    }
  }
  map[top] = out.AddRoot(tree.name(top), 0.0);
  std::vector<Pending> stack;
  for (NodeId c : kept_children(top)) {
    stack.push_back({c, map[top], tree.edge_length(c)});
  }
  while (!stack.empty()) {
    Pending p = stack.back();
    stack.pop_back();
    std::vector<NodeId> kids = kept_children(p.src);
    if (kids.size() == 1) {
      // Unary: collapse into the child, summing edge weights.
      stack.push_back(
          {kids[0], p.dst_parent, p.carried + tree.edge_length(kids[0])});
      continue;
    }
    NodeId dst = out.AddChild(p.dst_parent, tree.name(p.src), p.carried);
    map[p.src] = dst;
    for (NodeId c : kids) {
      stack.push_back({c, dst, tree.edge_length(c)});
    }
  }
  return out;
}

}  // namespace

Result<PhyloTree> SimulateYule(const YuleOptions& options, Rng* rng) {
  if (options.n_leaves < 1) {
    return Status::InvalidArgument("yule: n_leaves must be >= 1");
  }
  if (options.birth_rate <= 0) {
    return Status::InvalidArgument("yule: birth_rate must be > 0");
  }
  PhyloTree tree;
  tree.Reserve(2 * options.n_leaves);
  NodeId root = tree.AddRoot("");
  struct Lineage {
    NodeId node;
    double born;
  };
  std::vector<Lineage> active = {{root, 0.0}};
  double now = 0.0;
  while (active.size() < options.n_leaves) {
    now += rng->Exponential(options.birth_rate *
                            static_cast<double>(active.size()));
    size_t pick = static_cast<size_t>(rng->Uniform(active.size()));
    Lineage parent = active[pick];
    // The lineage speciates: its node becomes internal; the edge above
    // it spans [born, now].
    tree.set_edge_length(parent.node, now - parent.born);
    NodeId a = tree.AddChild(parent.node, "", 0.0);
    NodeId b = tree.AddChild(parent.node, "", 0.0);
    active[pick] = {a, now};
    active.push_back({b, now});
  }
  // Terminate all extant lineages at the same final time (ultrametric).
  double extra = rng->Exponential(options.birth_rate *
                                  static_cast<double>(active.size()));
  double t_end = now + extra;
  for (size_t i = 0; i < active.size(); ++i) {
    tree.set_edge_length(active[i].node, t_end - active[i].born);
    tree.set_name(active[i].node,
                  StrFormat("%s%zu", options.leaf_prefix, i));
  }
  // Root edge length is 0 by convention.
  tree.set_edge_length(root, 0.0);
  return tree;
}

Result<PhyloTree> SimulateBirthDeath(const BirthDeathOptions& options,
                                     Rng* rng) {
  if (options.n_leaves < 1) {
    return Status::InvalidArgument("birth-death: n_leaves must be >= 1");
  }
  if (options.birth_rate <= options.death_rate) {
    return Status::InvalidArgument(
        "birth-death: requires birth_rate > death_rate");
  }
  for (int attempt = 0; attempt < options.max_restarts; ++attempt) {
    PhyloTree tree;
    tree.Reserve(4 * options.n_leaves);
    NodeId root = tree.AddRoot("");
    struct Lineage {
      NodeId node;
      double born;
    };
    std::vector<Lineage> active = {{root, 0.0}};
    std::vector<NodeId> extinct;
    double now = 0.0;
    const double total_rate = options.birth_rate + options.death_rate;
    bool died_out = false;
    while (active.size() < options.n_leaves) {
      now += rng->Exponential(total_rate * static_cast<double>(active.size()));
      size_t pick = static_cast<size_t>(rng->Uniform(active.size()));
      Lineage lin = active[pick];
      bool is_birth = rng->NextDouble() <
                      options.birth_rate / total_rate;
      tree.set_edge_length(lin.node, now - lin.born);
      if (is_birth) {
        NodeId a = tree.AddChild(lin.node, "", 0.0);
        NodeId b = tree.AddChild(lin.node, "", 0.0);
        active[pick] = {a, now};
        active.push_back({b, now});
      } else {
        tree.set_name(lin.node, StrFormat("%s%zu", options.extinct_prefix,
                                          extinct.size()));
        extinct.push_back(lin.node);
        active.erase(active.begin() + static_cast<long>(pick));
        if (active.empty()) {
          died_out = true;
          break;
        }
      }
    }
    if (died_out) continue;
    double t_end =
        now + rng->Exponential(total_rate * static_cast<double>(active.size()));
    std::vector<NodeId> extant;
    for (size_t i = 0; i < active.size(); ++i) {
      tree.set_edge_length(active[i].node, t_end - active[i].born);
      tree.set_name(active[i].node,
                    StrFormat("%s%zu", options.leaf_prefix, i));
      extant.push_back(active[i].node);
    }
    tree.set_edge_length(root, 0.0);
    if (!options.prune_extinct) return tree;
    PhyloTree pruned = PruneToLeaves(tree, extant);
    CRIMSON_RETURN_IF_ERROR(pruned.Validate());
    return pruned;
  }
  return Status::Internal(
      "birth-death process died out in every restart attempt");
}

void PerturbBranchRates(PhyloTree* tree, double spread, Rng* rng) {
  if (spread < 1.0) spread = 1.0;
  const double log_spread = std::log(spread);
  for (NodeId n = 1; n < tree->size(); ++n) {
    double u = rng->NextDouble() * 2.0 - 1.0;  // [-1, 1)
    double mult = std::exp(u * log_spread);
    tree->set_edge_length(n, tree->edge_length(n) * mult);
  }
}

}  // namespace crimson
