// Stochastic tree simulation -- the substitute for CIPRes's curated
// gold-standard mega-tree (see DESIGN.md substitutions). Yule (pure
// birth) and birth-death branching processes generate trees whose
// storage/query behaviour matches the paper's regime: millions of
// nodes, average depth well beyond XML documents.

#ifndef CRIMSON_SIM_TREE_SIM_H_
#define CRIMSON_SIM_TREE_SIM_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

struct YuleOptions {
  /// Number of extant species (leaves) to grow to. Must be >= 1.
  uint32_t n_leaves = 100;
  /// Speciation rate (per lineage per unit time).
  double birth_rate = 1.0;
  /// Prefix for leaf names ("S0", "S1", ...).
  const char* leaf_prefix = "S";
};

/// Simulates a Yule (pure-birth) tree. The result is ultrametric: all
/// leaves end at the same evolutionary time.
Result<PhyloTree> SimulateYule(const YuleOptions& options, Rng* rng);

struct BirthDeathOptions {
  /// Extant species to reach before stopping. Must be >= 1.
  uint32_t n_leaves = 100;
  double birth_rate = 1.0;
  /// Extinction rate; must be < birth_rate for the process to be
  /// supercritical.
  double death_rate = 0.3;
  /// Remove extinct lineages (and collapse unary nodes) so only the
  /// reconstructed tree of extant species remains. When false, extinct
  /// tips stay in the tree (named with `extinct_prefix`).
  bool prune_extinct = true;
  /// Attempts before giving up when the process keeps dying out.
  int max_restarts = 64;
  const char* leaf_prefix = "S";
  const char* extinct_prefix = "X";
};

/// Simulates a birth-death tree. With pruning enabled the returned tree
/// is generally non-ultrametric in shape statistics relevant to
/// reconstruction benchmarks (UPGMA's clock assumption is violated by
/// pruned birth-death trees with rate variation; see bench E11).
Result<PhyloTree> SimulateBirthDeath(const BirthDeathOptions& options,
                                     Rng* rng);

/// Applies per-branch rate multipliers drawn log-uniformly from
/// [1/spread, spread], breaking the molecular clock. spread >= 1.
void PerturbBranchRates(PhyloTree* tree, double spread, Rng* rng);

}  // namespace crimson

#endif  // CRIMSON_SIM_TREE_SIM_H_
