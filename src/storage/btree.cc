#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

namespace {

constexpr uint32_t kNodeHeaderSize = 12;
constexpr uint32_t kSlotSize = 2;

PageType NodeType(const char* d) { return static_cast<PageType>(d[0]); }
void SetNodeType(char* d, PageType t) { d[0] = static_cast<char>(t); }
uint16_t NumCells(const char* d) { return DecodeFixed16(d + 2); }
void SetNumCells(char* d, uint16_t n) { EncodeFixed16(d + 2, n); }
uint16_t CellAreaStart(const char* d) { return DecodeFixed16(d + 4); }
void SetCellAreaStart(char* d, uint16_t v) { EncodeFixed16(d + 4, v); }
uint16_t DeadBytes(const char* d) { return DecodeFixed16(d + 6); }
void SetDeadBytes(char* d, uint16_t v) { EncodeFixed16(d + 6, v); }
// Leaf: right sibling. Internal: rightmost child.
PageId Link(const char* d) { return DecodeFixed32(d + 8); }
void SetLink(char* d, PageId id) { EncodeFixed32(d + 8, id); }

uint16_t CellOffset(const char* d, int i) {
  return DecodeFixed16(d + kNodeHeaderSize + kSlotSize * i);
}
void SetCellOffset(char* d, int i, uint16_t off) {
  EncodeFixed16(d + kNodeHeaderSize + kSlotSize * i, off);
}

void FormatNode(char* d, PageType type) {
  memset(d, 0, kPageSize);
  SetNodeType(d, type);
  SetNumCells(d, 0);
  SetCellAreaStart(d, static_cast<uint16_t>(kPageSize));
  SetDeadBytes(d, 0);
  SetLink(d, kInvalidPageId);
}

struct LeafCell {
  Slice key;
  Slice value;
  uint32_t size = 0;  // total encoded size
};

struct InternalCell {
  Slice key;
  PageId child = kInvalidPageId;
  uint32_t size = 0;
};

LeafCell ParseLeafCell(const char* d, uint16_t off) {
  LeafCell c;
  Slice in(d + off, kPageSize - off);
  const char* begin = in.data();
  uint32_t klen = 0, vlen = 0;
  GetVarint32(&in, &klen);
  c.key = Slice(in.data(), klen);
  in.remove_prefix(klen);
  GetVarint32(&in, &vlen);
  c.value = Slice(in.data(), vlen);
  in.remove_prefix(vlen);
  c.size = static_cast<uint32_t>(in.data() - begin);
  return c;
}

InternalCell ParseInternalCell(const char* d, uint16_t off) {
  InternalCell c;
  Slice in(d + off, kPageSize - off);
  const char* begin = in.data();
  uint32_t klen = 0;
  GetVarint32(&in, &klen);
  c.key = Slice(in.data(), klen);
  in.remove_prefix(klen);
  c.child = DecodeFixed32(in.data());
  in.remove_prefix(4);
  c.size = static_cast<uint32_t>(in.data() - begin);
  return c;
}

Slice CellKey(const char* d, int i) {
  uint16_t off = CellOffset(d, i);
  if (NodeType(d) == PageType::kBTreeLeaf) return ParseLeafCell(d, off).key;
  return ParseInternalCell(d, off).key;
}

/// First index i in [0, n) with cell_key(i) >= key; n if none.
int LowerBound(const char* d, const Slice& key) {
  int lo = 0, hi = NumCells(d);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CellKey(d, mid).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index i with cell_key(i) > key; n if none.
int UpperBound(const char* d, const Slice& key) {
  int lo = 0, hi = NumCells(d);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CellKey(d, mid).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child to descend into when *inserting* `key`: first cell with
/// key < cell_key routes left; otherwise the rightmost child. Keys equal
/// to a separator go right, so duplicate inserts append to the run.
int ChildIndexFor(const char* d, const Slice& key) {
  return UpperBound(d, key);
}

/// Child to descend into when *searching* for the first entry >= `key`.
/// A duplicate run that straddled a split leaves keys equal to the
/// separator in the left subtree, so reads must take the leftmost child
/// whose separator is >= key (LowerBound), not the insert route --
/// otherwise Seek/Get/Delete skip the run's leading entries.
int SeekChildIndexFor(const char* d, const Slice& key) {
  return LowerBound(d, key);
}

PageId ChildAt(const char* d, int idx) {
  if (idx >= NumCells(d)) return Link(d);
  return ParseInternalCell(d, CellOffset(d, idx)).child;
}

uint32_t FreeContiguous(const char* d) {
  return CellAreaStart(d) -
         (kNodeHeaderSize + kSlotSize * NumCells(d));
}

void EncodeLeafCellTo(const Slice& key, const Slice& value,
                      std::string* cell) {
  cell->clear();
  PutVarint32(cell, static_cast<uint32_t>(key.size()));
  cell->append(key.data(), key.size());
  PutVarint32(cell, static_cast<uint32_t>(value.size()));
  cell->append(value.data(), value.size());
}

std::string EncodeLeafCell(const Slice& key, const Slice& value) {
  std::string cell;
  EncodeLeafCellTo(key, value, &cell);
  return cell;
}

void EncodeInternalCellTo(const Slice& key, PageId child, std::string* cell) {
  cell->clear();
  PutVarint32(cell, static_cast<uint32_t>(key.size()));
  cell->append(key.data(), key.size());
  PutFixed32(cell, child);
}

std::string EncodeInternalCell(const Slice& key, PageId child) {
  std::string cell;
  EncodeInternalCellTo(key, child, &cell);
  return cell;
}

/// Rewrites the cell area tightly, reclaiming dead bytes.
void CompactNode(char* d) {
  uint16_t n = NumCells(d);
  std::vector<std::string> cells(n);
  bool leaf = NodeType(d) == PageType::kBTreeLeaf;
  for (int i = 0; i < n; ++i) {
    uint16_t off = CellOffset(d, i);
    uint32_t size = leaf ? ParseLeafCell(d, off).size
                         : ParseInternalCell(d, off).size;
    cells[i].assign(d + off, size);
  }
  uint16_t write = static_cast<uint16_t>(kPageSize);
  for (int i = 0; i < n; ++i) {
    write = static_cast<uint16_t>(write - cells[i].size());
    memcpy(d + write, cells[i].data(), cells[i].size());
    SetCellOffset(d, i, write);
  }
  SetCellAreaStart(d, write);
  SetDeadBytes(d, 0);
}

/// Inserts an encoded cell at slot position pos. Returns false if the
/// node lacks space even after compaction.
bool InsertCellInPlace(char* d, int pos, const std::string& cell) {
  uint32_t needed = static_cast<uint32_t>(cell.size()) + kSlotSize;
  if (FreeContiguous(d) < needed) {
    if (FreeContiguous(d) + DeadBytes(d) < needed) return false;
    CompactNode(d);
    if (FreeContiguous(d) < needed) return false;
  }
  uint16_t n = NumCells(d);
  uint16_t write = static_cast<uint16_t>(CellAreaStart(d) - cell.size());
  memcpy(d + write, cell.data(), cell.size());
  // Shift the slot directory to open position pos.
  memmove(d + kNodeHeaderSize + kSlotSize * (pos + 1),
          d + kNodeHeaderSize + kSlotSize * pos,
          kSlotSize * (n - pos));
  SetCellOffset(d, pos, write);
  SetNumCells(d, static_cast<uint16_t>(n + 1));
  SetCellAreaStart(d, write);
  return true;
}

/// Removes the cell at slot pos (space becomes dead bytes).
void RemoveCellAt(char* d, int pos) {
  uint16_t n = NumCells(d);
  uint16_t off = CellOffset(d, pos);
  bool leaf = NodeType(d) == PageType::kBTreeLeaf;
  uint32_t size =
      leaf ? ParseLeafCell(d, off).size : ParseInternalCell(d, off).size;
  memmove(d + kNodeHeaderSize + kSlotSize * pos,
          d + kNodeHeaderSize + kSlotSize * (pos + 1),
          kSlotSize * (n - pos - 1));
  SetNumCells(d, static_cast<uint16_t>(n - 1));
  SetDeadBytes(d, static_cast<uint16_t>(DeadBytes(d) + size));
}

/// Rewrites a leaf from scratch with the given entries.
void RebuildLeaf(char* d, const std::vector<std::pair<std::string, std::string>>& entries,
                 PageId sibling) {
  FormatNode(d, PageType::kBTreeLeaf);
  SetLink(d, sibling);
  for (size_t i = 0; i < entries.size(); ++i) {
    std::string cell = EncodeLeafCell(entries[i].first, entries[i].second);
    bool ok = InsertCellInPlace(d, static_cast<int>(i), cell);
    assert(ok);
    (void)ok;
  }
}

void RebuildInternal(char* d,
                     const std::vector<std::pair<std::string, PageId>>& entries,
                     PageId rightmost) {
  FormatNode(d, PageType::kBTreeInternal);
  SetLink(d, rightmost);
  for (size_t i = 0; i < entries.size(); ++i) {
    std::string cell = EncodeInternalCell(entries[i].first, entries[i].second);
    bool ok = InsertCellInPlace(d, static_cast<int>(i), cell);
    assert(ok);
    (void)ok;
  }
}

/// Chooses a split point in [1, n-1] near n/2, preferring not to break a
/// run of equal keys across the boundary (so duplicate runs stay within
/// one node whenever possible).
size_t ChooseSplitPoint(const std::vector<std::string>& keys) {
  size_t n = keys.size();
  assert(n >= 2);
  size_t mid = std::max<size_t>(1, n / 2);
  for (size_t cut = mid; cut <= n - 1; ++cut) {
    if (keys[cut - 1] != keys[cut]) return cut;
  }
  for (size_t cut = mid; cut >= 1; --cut) {
    if (keys[cut - 1] != keys[cut]) return cut;
  }
  return mid;  // every key equal: a straddle is unavoidable
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / anchor management
// ---------------------------------------------------------------------------

Result<BTree> BTree::Create(BufferPool* pool) {
  CRIMSON_RETURN_IF_ERROR(pool->RequireWritable());
  PageId root_id;
  {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard root, pool->New(&root_id));
    FormatNode(root.data(), PageType::kBTreeLeaf);
    root.MarkDirty();
  }
  PageId anchor_id;
  {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard anchor, pool->New(&anchor_id));
    char* d = anchor.data();
    memset(d, 0, kPageSize);
    SetNodeType(d, PageType::kBTreeAnchor);
    EncodeFixed32(d + 1, root_id);
    anchor.MarkDirty();
  }
  return BTree(pool, anchor_id);
}

Result<BTree> BTree::Open(BufferPool* pool, PageId anchor) {
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(anchor));
  if (NodeType(guard.data()) != PageType::kBTreeAnchor) {
    return Status::Corruption(
        StrFormat("page %u is not a btree anchor", anchor));
  }
  return BTree(pool, anchor);
}

Result<PageId> BTree::Root() const {
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(anchor_));
  if (NodeType(guard.data()) != PageType::kBTreeAnchor) {
    return Status::Corruption("btree anchor corrupted");
  }
  return static_cast<PageId>(DecodeFixed32(guard.data() + 1));
}

Status BTree::SetRoot(PageId root) {
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                           pool_->Fetch(anchor_, PageIntent::kWrite));
  EncodeFixed32(guard.data() + 1, root);
  guard.MarkDirty();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::Insert(const Slice& key, const Slice& value, bool unique) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  if (key.size() > kMaxKeySize) {
    return Status::InvalidArgument(
        StrFormat("key too large (%zu > %zu)", key.size(), kMaxKeySize));
  }
  if (value.size() > kMaxValueSize) {
    return Status::InvalidArgument(
        StrFormat("value too large (%zu > %zu)", value.size(), kMaxValueSize));
  }
  CRIMSON_ASSIGN_OR_RETURN(PageId root, Root());
  std::optional<SplitResult> split;
  CRIMSON_RETURN_IF_ERROR(InsertInto(root, key, value, unique, &split));
  if (split.has_value()) {
    // Grow a new root above the old one.
    PageId new_root_id;
    CRIMSON_ASSIGN_OR_RETURN(PageGuard new_root, pool_->New(&new_root_id));
    FormatNode(new_root.data(), PageType::kBTreeInternal);
    SetLink(new_root.data(), split->right);
    std::string cell = EncodeInternalCell(split->separator, root);
    bool ok = InsertCellInPlace(new_root.data(), 0, cell);
    if (!ok) return Status::Internal("new root cell does not fit");
    new_root.MarkDirty();
    CRIMSON_RETURN_IF_ERROR(SetRoot(new_root_id));
  }
  return Status::OK();
}

Status BTree::InsertInto(PageId node, const Slice& key, const Slice& value,
                         bool unique, std::optional<SplitResult>* split) {
  // Write intent even for routing nodes: a child split mutates them.
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                           pool_->Fetch(node, PageIntent::kWrite));
  char* d = guard.data();

  if (NodeType(d) == PageType::kBTreeLeaf) {
    int pos = LowerBound(d, key);
    if (unique && pos < NumCells(d) && CellKey(d, pos) == key) {
      return Status::AlreadyExists("duplicate key");
    }
    std::string cell = EncodeLeafCell(key, value);
    if (InsertCellInPlace(d, pos, cell)) {
      guard.MarkDirty();
      return Status::OK();
    }
    // Overflow: gather, insert, redistribute across two leaves.
    uint16_t n = NumCells(d);
    std::vector<std::pair<std::string, std::string>> entries;
    entries.reserve(n + 1);
    for (int i = 0; i < n; ++i) {
      LeafCell c = ParseLeafCell(d, CellOffset(d, i));
      entries.emplace_back(c.key.ToString(), c.value.ToString());
    }
    entries.insert(entries.begin() + pos,
                   {key.ToString(), value.ToString()});
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    for (auto& e : entries) keys.push_back(e.first);
    size_t cut = ChooseSplitPoint(keys);

    PageId right_id;
    CRIMSON_ASSIGN_OR_RETURN(PageGuard right, pool_->New(&right_id));
    PageId old_sibling = Link(d);
    std::vector<std::pair<std::string, std::string>> left_entries(
        entries.begin(), entries.begin() + cut);
    std::vector<std::pair<std::string, std::string>> right_entries(
        entries.begin() + cut, entries.end());
    RebuildLeaf(d, left_entries, right_id);
    RebuildLeaf(right.data(), right_entries, old_sibling);
    guard.MarkDirty();
    right.MarkDirty();
    SplitResult r;
    r.separator = right_entries.front().first;
    r.right = right_id;
    *split = std::move(r);
    return Status::OK();
  }

  if (NodeType(d) != PageType::kBTreeInternal) {
    return Status::Corruption(StrFormat("page %u is not a btree node", node));
  }

  int child_idx = ChildIndexFor(d, key);
  PageId child = ChildAt(d, child_idx);
  std::optional<SplitResult> child_split;
  CRIMSON_RETURN_IF_ERROR(
      InsertInto(child, key, value, unique, &child_split));
  if (!child_split.has_value()) return Status::OK();

  // The child split into (child=left, right) with separator s: route
  // keys < s to left by inserting cell (s, left) at child_idx, and point
  // the old slot at right.
  if (child_idx >= NumCells(d)) {
    SetLink(d, child_split->right);
  } else {
    uint16_t off = CellOffset(d, child_idx);
    InternalCell c = ParseInternalCell(d, off);
    // Child pointer is the trailing fixed32 of the cell.
    EncodeFixed32(d + off + (c.size - 4), child_split->right);
  }
  std::string cell = EncodeInternalCell(child_split->separator, child);
  if (InsertCellInPlace(d, child_idx, cell)) {
    guard.MarkDirty();
    return Status::OK();
  }

  // Internal node overflow: gather entries, insert, split, promote middle.
  uint16_t n = NumCells(d);
  std::vector<std::pair<std::string, PageId>> entries;
  entries.reserve(n + 1);
  for (int i = 0; i < n; ++i) {
    InternalCell c = ParseInternalCell(d, CellOffset(d, i));
    entries.emplace_back(c.key.ToString(), c.child);
  }
  entries.insert(entries.begin() + child_idx,
                 {child_split->separator, child});
  PageId rightmost = Link(d);

  size_t mid = entries.size() / 2;
  std::string promoted = entries[mid].first;
  PageId mid_child = entries[mid].second;

  std::vector<std::pair<std::string, PageId>> left_entries(
      entries.begin(), entries.begin() + mid);
  std::vector<std::pair<std::string, PageId>> right_entries(
      entries.begin() + mid + 1, entries.end());

  PageId right_id;
  CRIMSON_ASSIGN_OR_RETURN(PageGuard right, pool_->New(&right_id));
  RebuildInternal(d, left_entries, mid_child);
  RebuildInternal(right.data(), right_entries, rightmost);
  guard.MarkDirty();
  right.MarkDirty();

  SplitResult r;
  r.separator = std::move(promoted);
  r.right = right_id;
  *split = std::move(r);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

Result<bool> BTree::Empty() const {
  CRIMSON_ASSIGN_OR_RETURN(PageId root, Root());
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(root));
  const char* d = guard.data();
  return NodeType(d) == PageType::kBTreeLeaf && NumCells(d) == 0;
}

Status BTree::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<std::pair<Slice, Slice>> slices;
  slices.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    slices.emplace_back(Slice(key), Slice(value));
  }
  return BulkLoad(slices);
}

Status BTree::BulkLoad(const std::vector<std::pair<Slice, Slice>>& entries) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  CRIMSON_ASSIGN_OR_RETURN(bool empty, Empty());
  if (!empty) {
    return Status::FailedPrecondition("bulk load requires an empty btree");
  }
  if (entries.empty()) return Status::OK();
  CRIMSON_ASSIGN_OR_RETURN(PageId old_root, Root());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first.size() > kMaxKeySize) {
      return Status::InvalidArgument(
          StrFormat("key too large (%zu > %zu)", entries[i].first.size(),
                    kMaxKeySize));
    }
    if (entries[i].second.size() > kMaxValueSize) {
      return Status::InvalidArgument(
          StrFormat("value too large (%zu > %zu)", entries[i].second.size(),
                    kMaxValueSize));
    }
    if (i > 0 && entries[i].first.compare(entries[i - 1].first) < 0) {
      return Status::InvalidArgument("bulk load input is not sorted");
    }
  }

  // Headroom left in every bulk-built node so a trickle of later
  // inserts does not split every page immediately.
  constexpr uint32_t kReserve = kPageSize / 10;

  // One finished node of the level under construction: the smallest key
  // in its subtree plus its page id.
  struct NodeRef {
    std::string min_key;
    PageId page = kInvalidPageId;
  };

  // ---- leaf level: pack entries left-to-right, chain siblings -----------
  // Duplicate-key runs are kept within one leaf whenever they fit
  // (only closing the current leaf early, never splitting the run),
  // mirroring ChooseSplitPoint on the insert path -- so a *later*
  // Insert of the same key lands at the run head exactly as it would
  // in an insert-built tree. Runs bigger than a leaf straddle, which
  // is unavoidable on either path.
  const uint32_t kLeafCapacity = kPageSize - kNodeHeaderSize;
  auto leaf_cell_bytes = [](const std::pair<Slice, Slice>& e) {
    return static_cast<uint64_t>(VarintLength(e.first.size())) +
           e.first.size() + VarintLength(e.second.size()) + e.second.size();
  };
  std::vector<NodeRef> level;
  PageId prev_leaf = kInvalidPageId;
  PageGuard leaf;    // current open leaf; invalid between leaves
  int pos = 0;
  std::string cell;  // reused encode buffer
  size_t i = 0;
  while (i < entries.size()) {
    // [i, run_end) share one key.
    size_t run_end = i + 1;
    uint64_t run_bytes = leaf_cell_bytes(entries[i]) + kSlotSize;
    while (run_end < entries.size() &&
           entries[run_end].first == entries[i].first) {
      run_bytes += leaf_cell_bytes(entries[run_end]) + kSlotSize;
      ++run_end;
    }
    if (leaf.valid() && run_bytes + kReserve <= kLeafCapacity &&
        FreeContiguous(leaf.data()) < run_bytes + kReserve) {
      leaf.MarkDirty();
      leaf.Release();
    }
    for (; i < run_end; ++i) {
      EncodeLeafCellTo(entries[i].first, entries[i].second, &cell);
      uint32_t needed = static_cast<uint32_t>(cell.size()) + kSlotSize;
      if (leaf.valid() && pos > 0 &&
          FreeContiguous(leaf.data()) < needed + kReserve) {
        leaf.MarkDirty();
        leaf.Release();
      }
      if (!leaf.valid()) {
        PageId leaf_id;
        CRIMSON_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New(&leaf_id));
        leaf = std::move(fresh);
        FormatNode(leaf.data(), PageType::kBTreeLeaf);
        level.push_back({entries[i].first.ToString(), leaf_id});
        if (prev_leaf != kInvalidPageId) {
          CRIMSON_ASSIGN_OR_RETURN(
              PageGuard prev, pool_->Fetch(prev_leaf, PageIntent::kWrite));
          SetLink(prev.data(), leaf_id);
          prev.MarkDirty();
        }
        prev_leaf = leaf_id;
        pos = 0;
      }
      if (!InsertCellInPlace(leaf.data(), pos, cell)) {
        return Status::Internal("bulk load: cell does not fit in a new page");
      }
      ++pos;
    }
  }
  leaf.MarkDirty();
  leaf.Release();

  // ---- internal levels: stitch parents over the level below -------------
  // A node over children c0..ck holds cells (c1.min, c0), (c2.min, c1),
  // ..., (ck.min, c(k-1)) with Link = ck -- the exact routing invariant
  // the insert path maintains ("keys < separator go left").
  while (level.size() > 1) {
    std::vector<NodeRef> parents;
    size_t j = 0;
    while (j < level.size()) {
      PageId node_id;
      CRIMSON_ASSIGN_OR_RETURN(PageGuard node, pool_->New(&node_id));
      char* d = node.data();
      FormatNode(d, PageType::kBTreeInternal);
      parents.push_back({level[j].min_key, node_id});
      size_t pending = j;  // child routed by the next cell (or by Link)
      ++j;
      int pos = 0;
      while (j < level.size()) {
        EncodeInternalCellTo(level[j].min_key, level[pending].page, &cell);
        uint32_t needed = static_cast<uint32_t>(cell.size()) + kSlotSize;
        if (pos > 0 && FreeContiguous(d) < needed + kReserve) break;
        if (!InsertCellInPlace(d, pos, cell)) {
          return Status::Internal(
              "bulk load: internal cell does not fit in a new page");
        }
        pending = j;
        ++pos;
        ++j;
      }
      SetLink(d, level[pending].page);
      node.MarkDirty();
    }
    level = std::move(parents);
  }
  CRIMSON_RETURN_IF_ERROR(SetRoot(level[0].page));
  // The empty leaf the tree was created with is no longer reachable.
  return pool_->Free(old_root);
}

// ---------------------------------------------------------------------------
// Get / Delete / Count
// ---------------------------------------------------------------------------

Status BTree::Get(const Slice& key, std::string* value) const {
  CRIMSON_ASSIGN_OR_RETURN(PageId node, Root());
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
    const char* d = guard.data();
    if (NodeType(d) == PageType::kBTreeInternal) {
      node = ChildAt(d, SeekChildIndexFor(d, key));
      continue;
    }
    if (NodeType(d) != PageType::kBTreeLeaf) {
      return Status::Corruption("not a btree node");
    }
    // The leaf holding the first entry >= key may end before the key
    // (the subtree left of an equal separator); hop to the sibling.
    PageGuard lg = std::move(guard);
    int pos = LowerBound(lg.data(), key);
    while (true) {
      const char* ld = lg.data();
      if (pos >= NumCells(ld)) {
        PageId next = Link(ld);
        if (next == kInvalidPageId) return Status::NotFound("key not in index");
        CRIMSON_ASSIGN_OR_RETURN(lg, pool_->Fetch(next));
        pos = 0;
        continue;
      }
      LeafCell c = ParseLeafCell(ld, CellOffset(ld, pos));
      if (c.key != key) return Status::NotFound("key not in index");
      value->assign(c.value.data(), c.value.size());
      return Status::OK();
    }
  }
}

Status BTree::Delete(const Slice& key, const Slice* value) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  CRIMSON_ASSIGN_OR_RETURN(PageId node, Root());
  // Descend to the leaf that contains the first occurrence. Write
  // intent throughout: the fetched node may turn out to be the leaf
  // this call mutates.
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                             pool_->Fetch(node, PageIntent::kWrite));
    char* d = guard.data();
    if (NodeType(d) == PageType::kBTreeInternal) {
      node = ChildAt(d, SeekChildIndexFor(d, key));
      continue;
    }
    if (NodeType(d) != PageType::kBTreeLeaf) {
      return Status::Corruption("not a btree node");
    }
    // Scan this leaf and right siblings while keys match.
    PageGuard lg = std::move(guard);
    int pos = LowerBound(lg.data(), key);
    while (true) {
      char* ld = lg.data();
      if (pos >= NumCells(ld)) {
        PageId next = Link(ld);
        if (next == kInvalidPageId) return Status::NotFound("key not found");
        CRIMSON_ASSIGN_OR_RETURN(lg, pool_->Fetch(next, PageIntent::kWrite));
        pos = 0;
        continue;
      }
      LeafCell c = ParseLeafCell(ld, CellOffset(ld, pos));
      if (c.key != key) return Status::NotFound("key not found");
      if (value == nullptr || c.value == *value) {
        RemoveCellAt(ld, pos);
        lg.MarkDirty();
        return Status::OK();
      }
      ++pos;
    }
  }
}

Result<uint64_t> BTree::Count() const {
  uint64_t n = 0;
  Iterator it = NewIterator();
  CRIMSON_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    ++n;
    CRIMSON_RETURN_IF_ERROR(it.Next());
  }
  return n;
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

Status BTree::Iterator::DescendToLeaf(const Slice* target) {
  CRIMSON_ASSIGN_OR_RETURN(PageId node, tree_->Root());
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(node));
    const char* d = guard.data();
    if (NodeType(d) == PageType::kBTreeInternal) {
      int idx = target ? SeekChildIndexFor(d, *target) : 0;
      node = ChildAt(d, idx);
      continue;
    }
    if (NodeType(d) != PageType::kBTreeLeaf) {
      return Status::Corruption("not a btree node");
    }
    leaf_ = node;
    pos_ = target ? LowerBound(d, *target) : 0;
    return Status::OK();
  }
}

Status BTree::Iterator::LoadPosition() {
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(leaf_));
    const char* d = guard.data();
    if (pos_ < NumCells(d)) {
      LeafCell c = ParseLeafCell(d, CellOffset(d, pos_));
      key_.assign(c.key.data(), c.key.size());
      value_.assign(c.value.data(), c.value.size());
      valid_ = true;
      return Status::OK();
    }
    PageId next = Link(d);
    if (next == kInvalidPageId) {
      valid_ = false;
      return Status::OK();
    }
    leaf_ = next;
    pos_ = 0;
  }
}

Status BTree::Iterator::Seek(const Slice& target) {
  CRIMSON_RETURN_IF_ERROR(DescendToLeaf(&target));
  return LoadPosition();
}

Status BTree::Iterator::SeekToFirst() {
  CRIMSON_RETURN_IF_ERROR(DescendToLeaf(nullptr));
  return LoadPosition();
}

Status BTree::Iterator::Next() {
  if (!valid_) return Status::FailedPrecondition("iterator not valid");
  ++pos_;
  return LoadPosition();
}

}  // namespace crimson
