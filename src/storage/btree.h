// B+Tree index over the buffer pool. Variable-length keys and values,
// duplicate keys allowed (callers may enforce uniqueness), range scans
// via Iterator.
//
// A tree is addressed by a stable *anchor page* that stores the current
// root page id; root splits update the anchor so handles never change.
//
// Node layout (kBTreeLeaf / kBTreeInternal):
//   [0]      page type
//   [1]      unused
//   [2..4)   num_cells        (fixed16)
//   [4..6)   cell_area_start  (fixed16; cells grow down from kPageSize)
//   [6..8)   dead_bytes       (fixed16; fragmentation from deletions)
//   [8..12)  leaf: right sibling page id / internal: rightmost child
//   [12..)   slot directory, 2 bytes per cell (offset of cell)
//
// Cell format:
//   leaf:     varint32 klen | key | varint32 vlen | value
//   internal: varint32 klen | key | fixed32 child
// Internal semantics: cell (k_i, c_i) routes keys < k_i into c_i after
// all earlier cells failed; i.e. search picks the first i with
// key < k_i and descends c_i, falling back to the rightmost child.
// Deletion is lazy (no merging); pages never shrink but slots are
// reclaimed by in-page compaction.

#ifndef CRIMSON_STORAGE_BTREE_H_
#define CRIMSON_STORAGE_BTREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace crimson {

/// B+Tree handle. Read operations (Get/Empty/Count/Iterator) are safe
/// from any number of threads under the buffer pool's shared frame
/// latches; mutations belong to the single writer (Database writer
/// epoch) and take exclusive latches on the pages they touch.
class BTree {
 public:
  /// Maximum key/value sizes, chosen so several cells fit per page.
  static constexpr size_t kMaxKeySize = 1024;
  static constexpr size_t kMaxValueSize = 1024;

  /// Creates an empty tree; returns the anchor page id as the handle.
  static Result<BTree> Create(BufferPool* pool);

  /// Opens an existing tree by its anchor page id.
  static Result<BTree> Open(BufferPool* pool, PageId anchor);

  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  PageId anchor() const { return anchor_; }

  /// Inserts a key/value pair. With unique=true fails with AlreadyExists
  /// if the key is present.
  Status Insert(const Slice& key, const Slice& value, bool unique = false);

  /// Bulk-loads sorted entries into an *empty* tree: leaves are packed
  /// left-to-right and internal levels are stitched bottom-up, so no
  /// page ever splits. Entries must be sorted by key; duplicate keys
  /// are laid out in the order given (note that repeated Insert
  /// *prepends* to a duplicate run, so reproducing an insert-built
  /// tree means passing ties in reverse insertion order).
  /// FailedPrecondition if the tree already has entries;
  /// InvalidArgument on unsorted or oversized input. Slices must stay
  /// valid for the duration of the call.
  Status BulkLoad(const std::vector<std::pair<Slice, Slice>>& entries);

  /// Convenience overload over owned strings.
  Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// True if the tree has no entries (single empty leaf root).
  Result<bool> Empty() const;

  /// Fetches the first value with exactly this key.
  Status Get(const Slice& key, std::string* value) const;

  /// Removes the first entry with exactly this key (and, if `value` is
  /// given, matching value). NotFound if absent.
  Status Delete(const Slice& key, const Slice* value = nullptr);

  /// Number of entries (maintained lazily via full scan).
  Result<uint64_t> Count() const;

  /// Forward iterator over key order. Holds a pin on the current leaf.
  class Iterator {
   public:
    /// Positions at the first entry with key >= target.
    Status Seek(const Slice& target);
    /// Positions at the smallest key.
    Status SeekToFirst();
    bool Valid() const { return valid_; }
    /// Advances; invalidates at end.
    Status Next();
    Slice key() const { return Slice(key_); }
    Slice value() const { return Slice(value_); }

   private:
    friend class BTree;
    explicit Iterator(const BTree* tree) : tree_(tree) {}

    Status LoadPosition();
    Status DescendToLeaf(const Slice* target);

    const BTree* tree_;
    PageId leaf_ = kInvalidPageId;
    int pos_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  BTree(BufferPool* pool, PageId anchor) : pool_(pool), anchor_(anchor) {}

  struct SplitResult {
    std::string separator;   // first key of the right node (leaf) or
                             // promoted middle key (internal)
    PageId right = kInvalidPageId;
  };

  Result<PageId> Root() const;
  Status SetRoot(PageId root);

  /// Recursive insert; fills *split when the child overflowed.
  Status InsertInto(PageId node, const Slice& key, const Slice& value,
                    bool unique, std::optional<SplitResult>* split);

  Status SplitLeaf(PageGuard* guard, SplitResult* out);
  Status SplitInternal(PageGuard* guard, SplitResult* out);

  BufferPool* pool_;
  PageId anchor_;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_BTREE_H_
