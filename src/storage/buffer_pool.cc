#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

char* PageGuard::data() {
  assert(valid());
  // Snapshot-backed guards are read-only by contract (kRead intent;
  // MarkDirty asserts): the non-const view exists only because the
  // read paths up the stack take char*.
  if (snapshot_ != nullptr) return const_cast<char*>(snapshot_->data());
  return pool_->frames_[frame_].data.data();
}

const char* PageGuard::data() const {
  assert(valid());
  if (snapshot_ != nullptr) return snapshot_->data();
  return pool_->frames_[frame_].data.data();
}

void PageGuard::MarkDirty() {
  assert(valid());
  assert(snapshot_ == nullptr && "MarkDirty on a snapshot-backed guard");
  assert(intent_ == PageIntent::kWrite &&
         "MarkDirty on a read-latched guard");
  pool_->OnDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, intent_);
    pool_ = nullptr;
  }
  snapshot_.reset();
}

BufferPool::BufferPool(Pager* pager, size_t capacity, WalContext* wal_ctx,
                       PageVersions* versions, obs::MetricsRegistry* metrics)
    : pager_(pager), wal_ctx_(wal_ctx), versions_(versions) {
  assert(capacity >= 8 && "buffer pool needs at least 8 frames");
  if (metrics != nullptr) {
    hits_ctr_ = metrics->GetCounter("storage.pool.hits");
    misses_ctr_ = metrics->GetCounter("storage.pool.misses");
    evictions_ctr_ = metrics->GetCounter("storage.pool.evictions");
    writebacks_ctr_ = metrics->GetCounter("storage.pool.dirty_writebacks");
  }
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data.resize(kPageSize);
    frames_[i].latch = std::make_unique<std::shared_mutex>();
    free_frames_.push_back(capacity - 1 - i);  // hand out low indices first
  }
}

void BufferPool::Unpin(size_t frame_index, PageIntent intent) {
  Frame& f = frames_[frame_index];
  // Latch first, pin second: once the pin drops the frame may be
  // evicted and repurposed, and a repurposed frame's latch must be
  // free (eviction only picks pin_count == 0 frames, whose latches
  // are by construction unheld).
  if (intent == PageIntent::kWrite) {
    f.latch->unlock();
  } else {
    f.latch->unlock_shared();
  }
  std::lock_guard<std::mutex> lock(mu_);
  assert(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0) {
    if (f.valid) {
      lru_.push_front(frame_index);
      f.lru_pos = lru_.begin();
      f.in_lru = true;
    } else {
      // The frame went invalid while pinned (its installer's disk read
      // failed under waiters); the last waiter returns it to the free
      // list.
      free_frames_.push_back(frame_index);
    }
  }
}

void BufferPool::OnDirty(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame_index];
  f.dirty = true;
  // Content changed: any previously logged image is stale.
  f.page_lsn = 0;
  if (wal_enabled()) {
    assert(wal_ctx_->txn_active &&
           "page dirtied outside a transaction with durability on");
    if (wal_ctx_->txn_active) wal_ctx_->dirty_pages.insert(f.page_id);
  }
}

Status BufferPool::RequireWritable() const {
  if (wal_enabled() && !wal_ctx_->txn_active) {
    return Status::FailedPrecondition(
        "durability is enabled: mutations must run inside a transaction "
        "(Database::Begin)");
  }
  return Status::OK();
}

bool BufferPool::PinnedByTxn(const Frame& f) const {
  return wal_enabled() && wal_ctx_->txn_active && f.dirty &&
         f.page_id < wal_ctx_->txn_base_page_count;
}

Status BufferPool::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  if (wal_enabled()) {
    // Log-before-data: the frame's after-image must be in the log
    // before the data page hits the file.
    if (frame.page_lsn == 0) {
      CRIMSON_ASSIGN_OR_RETURN(
          frame.page_lsn,
          wal_ctx_->wal->AppendPageImage(frame.page_id, frame.data.data()));
    }
    // ... and durable, unless the page is brand-new in the active
    // transaction (unreachable from the committed header, so a torn
    // write here can never corrupt committed state).
    const bool new_in_txn = wal_ctx_->txn_active &&
                            frame.page_id >= wal_ctx_->txn_base_page_count;
    if (!new_in_txn) {
      CRIMSON_RETURN_IF_ERROR(
          wal_ctx_->wal->Sync(frame.page_lsn, /*group=*/true));
    }
  }
  CRIMSON_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
  frame.dirty = false;
  ++stats_.dirty_writebacks;
  if (writebacks_ctr_) writebacks_ctr_->Increment();
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrameLocked() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Scan from the LRU end, skipping frames the active transaction must
  // keep resident (no-steal for pre-existing pages).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Frame& f = frames_[idx];
    assert(f.pin_count == 0 && f.valid);
    if (PinnedByTxn(f)) continue;
    CRIMSON_RETURN_IF_ERROR(WriteBack(f));
    lru_.erase(f.lru_pos);
    f.in_lru = false;
    page_table_.erase(f.page_id);
    f.valid = false;
    ++stats_.evictions;
    if (evictions_ctr_) evictions_ctr_->Increment();
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all frames pinned or held by the active "
      "transaction");
}

Result<size_t> BufferPool::InstallFrameLocked(PageId id) {
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, GetVictimFrameLocked());
  Frame& f = frames_[idx];
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.page_lsn = 0;
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  // The installer claims the content latch exclusively *before* the
  // mapping escapes mu_: a victim frame's latch is by construction
  // free (pin_count was 0), so this cannot block, and any thread that
  // finds the new mapping waits on the latch until the installer has
  // put the content in place (disk read, zero-fill, ...).
  bool latched = f.latch->try_lock();
  assert(latched && "victim frame latch must be free");
  (void)latched;
  return idx;
}

PageGuard BufferPool::PinAndLatch(std::unique_lock<std::mutex> lock,
                                  size_t idx, PageId id, PageIntent intent) {
  Frame& f = frames_[idx];
  if (f.pin_count == 0 && f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pin_count;
  // The pin keeps the frame from being evicted or repurposed, so the
  // latch can be taken without the table mutex; a kWrite acquisition
  // blocks here until concurrent readers of this page drain.
  lock.unlock();
  if (intent == PageIntent::kWrite) {
    f.latch->lock();
  } else {
    f.latch->lock_shared();
  }
  return PageGuard(this, idx, id, intent);
}

Result<PageGuard> BufferPool::Fetch(PageId id, PageIntent intent) {
  const bool snapshot_reads =
      versions_ != nullptr && intent == PageIntent::kRead;
  if (snapshot_reads) {
    // Lock-free pre-resolution: threads with no snapshot (including the
    // writer) fall straight through to the frame path; a snapshot
    // reader whose page already changed gets the captured image with no
    // frame, pin, or latch at all.
    std::shared_ptr<const std::vector<char>> img;
    if (versions_->ResolveForThread(id, &img) ==
        PageVersions::Resolution::kUseVersion) {
      return PageGuard(std::move(img), id);
    }
  }
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      size_t idx = it->second;
      ++stats_.hits;
      if (hits_ctr_) hits_ctr_->Increment();
      PageGuard guard = PinAndLatch(std::move(lock), idx, id, intent);
      // A pinned frame can only go invalid if its installer's disk
      // read failed while this thread waited on the latch (both reads
      // below are ordered by that latch handoff); retry the fetch.
      Frame& f = frames_[idx];
      if (!f.valid || f.page_id != id) continue;  // guard releases
      if (intent == PageIntent::kWrite && versions_ != nullptr) {
        // First exclusive take of a committed page in this transaction:
        // capture its pre-image before the caller mutates it. Under the
        // exclusive latch the content is exactly the committed bytes.
        versions_->MaybeCapture(id, f.data.data());
      } else if (snapshot_reads) {
        // The writer may have captured this page between the pre-
        // resolution above and our shared latch; re-check so a snapshot
        // reader never sees the writer's in-place mutation.
        std::shared_ptr<const std::vector<char>> img;
        if (versions_->ResolveForThread(id, &img) ==
            PageVersions::Resolution::kUseVersion) {
          return PageGuard(std::move(img), id);  // frame guard releases
        }
      }
      return guard;
    }
    ++stats_.misses;
    if (misses_ctr_) misses_ctr_->Increment();
    CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrameLocked(id));
    Frame& f = frames_[idx];
    lock.unlock();
    // Disk read with no pool lock held, so cold misses from different
    // threads overlap; the exclusive latch taken at install blocks
    // threads that find the new mapping until the content is in place.
    Status read = pager_->ReadPage(id, f.data.data());
    if (!read.ok()) {
      std::lock_guard<std::mutex> relock(mu_);
      page_table_.erase(id);
      f.valid = false;  // published to waiters by the latch handoff
      f.latch->unlock();
      assert(f.pin_count > 0);
      --f.pin_count;
      if (f.pin_count == 0) free_frames_.push_back(idx);
      return read;
    }
    if (intent == PageIntent::kRead) {
      // std::shared_mutex has no downgrade: release and retake shared.
      // A writer slipping into the gap just means newer content --
      // indistinguishable from arriving a moment later.
      f.latch->unlock();
      f.latch->lock_shared();
      if (snapshot_reads) {
        std::shared_ptr<const std::vector<char>> img;
        if (versions_->ResolveForThread(id, &img) ==
            PageVersions::Resolution::kUseVersion) {
          PageGuard drop(this, idx, id, intent);  // releases frame
          return PageGuard(std::move(img), id);
        }
      }
    } else if (versions_ != nullptr) {
      // Cold-miss write fetch: the bytes just read are the committed
      // image (a no-steal pool never spills a txn-dirtied committed
      // page); capture before the caller mutates.
      versions_->MaybeCapture(id, f.data.data());
    }
    return PageGuard(this, idx, id, intent);
  }
}

Result<PageGuard> BufferPool::NewWal(PageId* out_id) {
  CRIMSON_RETURN_IF_ERROR(RequireWritable());
  if (pager_->freelist_head() != kInvalidPageId) {
    // Pop the freelist through the cache: the head node may have been
    // formatted by this very transaction and exist only in the pool.
    PageId id = pager_->freelist_head();
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                             Fetch(id, PageIntent::kWrite));
    if (static_cast<PageType>(guard.data()[0]) != PageType::kFree) {
      return Status::Corruption(
          StrFormat("freelist page %u is not marked free", id));
    }
    PageId next = DecodeFixed32(guard.data() + 1);
    CRIMSON_RETURN_IF_ERROR(pager_->DeferredSetFreelistHead(next));
    memset(guard.data(), 0, kPageSize);
    guard.MarkDirty();
    *out_id = id;
    return guard;
  }
  CRIMSON_ASSIGN_OR_RETURN(PageId id, pager_->DeferredAllocateFromExtension());
  std::unique_lock<std::mutex> lock(mu_);
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrameLocked(id));
  Frame& f = frames_[idx];
  memset(f.data.data(), 0, kPageSize);
  lock.unlock();
  PageGuard guard(this, idx, id, PageIntent::kWrite);
  guard.MarkDirty();
  *out_id = id;
  return guard;
}

Result<PageGuard> BufferPool::New(PageId* out_id) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (wal_enabled()) return NewWal(out_id);
  CRIMSON_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  std::unique_lock<std::mutex> lock(mu_);
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrameLocked(id));
  Frame& f = frames_[idx];
  memset(f.data.data(), 0, kPageSize);
  f.dirty = true;  // zeroed content must reach disk
  lock.unlock();
  *out_id = id;
  return PageGuard(this, idx, id, PageIntent::kWrite);
}

Status BufferPool::CaptureBeforeFree(PageId id) {
  if (versions_ == nullptr || !versions_->WouldCapture(id)) {
    return Status::OK();
  }
  std::vector<char> pre(kPageSize);
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    if (it != page_table_.end() && frames_[it->second].valid) {
      // No latch needed: the single writer is this thread, so nobody
      // else can be mutating the frame, and its content is the newest
      // committed image (newer than disk if dirty from a prior txn).
      memcpy(pre.data(), frames_[it->second].data.data(), kPageSize);
      have = true;
    }
  }
  if (!have) {
    CRIMSON_RETURN_IF_ERROR(pager_->ReadPage(id, pre.data()));
  }
  versions_->MaybeCapture(id, pre.data());
  return Status::OK();
}

Status BufferPool::FreeWal(PageId id) {
  CRIMSON_RETURN_IF_ERROR(RequireWritable());
  if (id == kHeaderPageId || id >= pager_->page_count()) {
    return Status::InvalidArgument(StrFormat("cannot free page %u", id));
  }
  // The free clobbers the page into a freelist node without a kWrite
  // Fetch of its old content: snapshot its committed image first.
  CRIMSON_RETURN_IF_ERROR(CaptureBeforeFree(id));
  // Format the freelist node in the cache (its old content is
  // irrelevant, so a victim frame is installed without a disk read);
  // the commit logs and force-writes it like any other page.
  size_t idx;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      idx = it->second;
      if (frames_[idx].pin_count > 0) {
        return Status::FailedPrecondition(
            StrFormat("freeing pinned page %u", id));
      }
      if (frames_[idx].in_lru) {
        lru_.erase(frames_[idx].lru_pos);
        frames_[idx].in_lru = false;
      }
      ++frames_[idx].pin_count;
      // Resident frame, pin was 0: its latch is free (see
      // InstallFrameLocked, which latches the fresh-install case).
      bool latched = frames_[idx].latch->try_lock();
      assert(latched && "unpinned frame latch must be free");
      (void)latched;
    } else {
      CRIMSON_ASSIGN_OR_RETURN(idx, InstallFrameLocked(id));
    }
  }
  {
    PageGuard guard(this, idx, id, PageIntent::kWrite);
    memset(guard.data(), 0, kPageSize);
    guard.data()[0] = static_cast<char>(PageType::kFree);
    EncodeFixed32(guard.data() + 1, pager_->freelist_head());
    guard.MarkDirty();
  }
  return pager_->DeferredSetFreelistHead(id);
}

Status BufferPool::Free(PageId id) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (wal_enabled()) return FreeWal(id);
  CRIMSON_RETURN_IF_ERROR(CaptureBeforeFree(id));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame& f = frames_[it->second];
      if (f.pin_count > 0) {
        return Status::FailedPrecondition(
            StrFormat("freeing pinned page %u", id));
      }
      if (f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      f.valid = false;
      f.dirty = false;
      free_frames_.push_back(it->second);
      page_table_.erase(it);
    }
  }
  return pager_->FreePage(id);
}

Status BufferPool::LogTxnPages() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (!wal_enabled() || !wal_ctx_->txn_active) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (PageId id : wal_ctx_->dirty_pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;  // spilled: image already logged
    Frame& f = frames_[it->second];
    if (!f.valid || !f.dirty || f.page_lsn != 0) continue;
    CRIMSON_ASSIGN_OR_RETURN(
        f.page_lsn, wal_ctx_->wal->AppendPageImage(id, f.data.data()));
  }
  return Status::OK();
}

Status BufferPool::ForceTxnPages(const std::set<PageId>& pages) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  for (PageId id : pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;  // spilled: already on disk
    Frame& f = frames_[it->second];
    if (!f.valid || !f.dirty) continue;
    CRIMSON_RETURN_IF_ERROR(pager_->WritePage(id, f.data.data()));
    f.dirty = false;
    ++stats_.dirty_writebacks;
    if (writebacks_ctr_) writebacks_ctr_->Increment();
  }
  return Status::OK();
}

Status BufferPool::DiscardTxnPages() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (wal_ctx_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (PageId id : wal_ctx_->dirty_pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::Internal(
          StrFormat("aborting transaction with page %u still pinned", id));
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.valid = false;
    f.dirty = false;
    f.page_lsn = 0;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.valid) {
      CRIMSON_RETURN_IF_ERROR(WriteBack(f));
    }
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = BufferPoolStats();
}

}  // namespace crimson
