#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

char* PageGuard::data() {
  assert(valid());
  return pool_->frames_[frame_].data.data();
}

const char* PageGuard::data() const {
  assert(valid());
  return pool_->frames_[frame_].data.data();
}

void PageGuard::MarkDirty() {
  assert(valid());
  pool_->OnDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity, WalContext* wal_ctx)
    : pager_(pager), wal_ctx_(wal_ctx) {
  assert(capacity >= 8 && "buffer pool needs at least 8 frames");
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data.resize(kPageSize);
    free_frames_.push_back(capacity - 1 - i);  // hand out low indices first
  }
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0 && f.valid) {
    lru_.push_front(frame_index);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::OnDirty(size_t frame_index) {
  Frame& f = frames_[frame_index];
  f.dirty = true;
  // Content changed: any previously logged image is stale.
  f.page_lsn = 0;
  if (wal_enabled()) {
    assert(wal_ctx_->txn_active &&
           "page dirtied outside a transaction with durability on");
    if (wal_ctx_->txn_active) wal_ctx_->dirty_pages.insert(f.page_id);
  }
}

Status BufferPool::RequireWritable() const {
  if (wal_enabled() && !wal_ctx_->txn_active) {
    return Status::FailedPrecondition(
        "durability is enabled: mutations must run inside a transaction "
        "(Database::Begin)");
  }
  return Status::OK();
}

bool BufferPool::PinnedByTxn(const Frame& f) const {
  return wal_enabled() && wal_ctx_->txn_active && f.dirty &&
         f.page_id < wal_ctx_->txn_base_page_count;
}

Status BufferPool::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  if (wal_enabled()) {
    // Log-before-data: the frame's after-image must be in the log
    // before the data page hits the file.
    if (frame.page_lsn == 0) {
      CRIMSON_ASSIGN_OR_RETURN(
          frame.page_lsn,
          wal_ctx_->wal->AppendPageImage(frame.page_id, frame.data.data()));
    }
    // ... and durable, unless the page is brand-new in the active
    // transaction (unreachable from the committed header, so a torn
    // write here can never corrupt committed state).
    const bool new_in_txn = wal_ctx_->txn_active &&
                            frame.page_id >= wal_ctx_->txn_base_page_count;
    if (!new_in_txn) {
      CRIMSON_RETURN_IF_ERROR(
          wal_ctx_->wal->Sync(frame.page_lsn, /*group=*/true));
    }
  }
  CRIMSON_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
  frame.dirty = false;
  ++stats_.dirty_writebacks;
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Scan from the LRU end, skipping frames the active transaction must
  // keep resident (no-steal for pre-existing pages).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Frame& f = frames_[idx];
    assert(f.pin_count == 0 && f.valid);
    if (PinnedByTxn(f)) continue;
    CRIMSON_RETURN_IF_ERROR(WriteBack(f));
    lru_.erase(f.lru_pos);
    f.in_lru = false;
    page_table_.erase(f.page_id);
    f.valid = false;
    ++stats_.evictions;
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all frames pinned or held by the active "
      "transaction");
}

Result<size_t> BufferPool::InstallFrame(PageId id) {
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.page_lsn = 0;
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  return idx;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, idx, id);
  }
  ++stats_.misses;
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrame(id));
  Frame& f = frames_[idx];
  Status s = pager_->ReadPage(id, f.data.data());
  if (!s.ok()) {
    page_table_.erase(id);
    f.valid = false;
    f.pin_count = 0;
    free_frames_.push_back(idx);
    return s;
  }
  return PageGuard(this, idx, id);
}

Result<PageGuard> BufferPool::NewWal(PageId* out_id) {
  CRIMSON_RETURN_IF_ERROR(RequireWritable());
  if (pager_->freelist_head() != kInvalidPageId) {
    // Pop the freelist through the cache: the head node may have been
    // formatted by this very transaction and exist only in the pool.
    PageId id = pager_->freelist_head();
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, Fetch(id));
    if (static_cast<PageType>(guard.data()[0]) != PageType::kFree) {
      return Status::Corruption(
          StrFormat("freelist page %u is not marked free", id));
    }
    PageId next = DecodeFixed32(guard.data() + 1);
    CRIMSON_RETURN_IF_ERROR(pager_->DeferredSetFreelistHead(next));
    memset(guard.data(), 0, kPageSize);
    guard.MarkDirty();
    *out_id = id;
    return guard;
  }
  CRIMSON_ASSIGN_OR_RETURN(PageId id, pager_->DeferredAllocateFromExtension());
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrame(id));
  Frame& f = frames_[idx];
  memset(f.data.data(), 0, kPageSize);
  PageGuard guard(this, idx, id);
  guard.MarkDirty();
  *out_id = id;
  return guard;
}

Result<PageGuard> BufferPool::New(PageId* out_id) {
  if (wal_enabled()) return NewWal(out_id);
  CRIMSON_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, InstallFrame(id));
  Frame& f = frames_[idx];
  memset(f.data.data(), 0, kPageSize);
  f.dirty = true;  // zeroed content must reach disk
  *out_id = id;
  return PageGuard(this, idx, id);
}

Status BufferPool::FreeWal(PageId id) {
  CRIMSON_RETURN_IF_ERROR(RequireWritable());
  if (id == kHeaderPageId || id >= pager_->page_count()) {
    return Status::InvalidArgument(StrFormat("cannot free page %u", id));
  }
  // Format the freelist node in the cache (its old content is
  // irrelevant, so a victim frame is installed without a disk read);
  // the commit logs and force-writes it like any other page.
  size_t idx;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    idx = it->second;
    if (frames_[idx].pin_count > 0) {
      return Status::FailedPrecondition(
          StrFormat("freeing pinned page %u", id));
    }
    if (frames_[idx].in_lru) {
      lru_.erase(frames_[idx].lru_pos);
      frames_[idx].in_lru = false;
    }
    ++frames_[idx].pin_count;
  } else {
    CRIMSON_ASSIGN_OR_RETURN(idx, InstallFrame(id));
  }
  {
    PageGuard guard(this, idx, id);
    memset(guard.data(), 0, kPageSize);
    guard.data()[0] = static_cast<char>(PageType::kFree);
    EncodeFixed32(guard.data() + 1, pager_->freelist_head());
    guard.MarkDirty();
  }
  return pager_->DeferredSetFreelistHead(id);
}

Status BufferPool::Free(PageId id) {
  if (wal_enabled()) return FreeWal(id);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::FailedPrecondition(
          StrFormat("freeing pinned page %u", id));
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.valid = false;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return pager_->FreePage(id);
}

Status BufferPool::LogTxnPages() {
  if (!wal_enabled() || !wal_ctx_->txn_active) return Status::OK();
  for (PageId id : wal_ctx_->dirty_pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;  // spilled: image already logged
    Frame& f = frames_[it->second];
    if (!f.valid || !f.dirty || f.page_lsn != 0) continue;
    CRIMSON_ASSIGN_OR_RETURN(
        f.page_lsn, wal_ctx_->wal->AppendPageImage(id, f.data.data()));
  }
  return Status::OK();
}

Status BufferPool::ForceTxnPages(const std::set<PageId>& pages) {
  for (PageId id : pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;  // spilled: already on disk
    Frame& f = frames_[it->second];
    if (!f.valid || !f.dirty) continue;
    CRIMSON_RETURN_IF_ERROR(pager_->WritePage(id, f.data.data()));
    f.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::OK();
}

Status BufferPool::DiscardTxnPages() {
  if (wal_ctx_ == nullptr) return Status::OK();
  for (PageId id : wal_ctx_->dirty_pages) {
    auto it = page_table_.find(id);
    if (it == page_table_.end()) continue;
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::Internal(
          StrFormat("aborting transaction with page %u still pinned", id));
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.valid = false;
    f.dirty = false;
    f.page_lsn = 0;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.valid) {
      CRIMSON_RETURN_IF_ERROR(WriteBack(f));
    }
  }
  return Status::OK();
}

}  // namespace crimson
