#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace crimson {

char* PageGuard::data() {
  assert(valid());
  return pool_->frames_[frame_].data.data();
}

const char* PageGuard::data() const {
  assert(valid());
  return pool_->frames_[frame_].data.data();
}

void PageGuard::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  assert(capacity >= 8 && "buffer pool needs at least 8 frames");
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data.resize(kPageSize);
    free_frames_.push_back(capacity - 1 - i);  // hand out low indices first
  }
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0 && f.valid) {
    lru_.push_front(frame_index);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::WriteBack(Frame& frame) {
  if (frame.dirty) {
    CRIMSON_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
    frame.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  size_t idx = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[idx];
  f.in_lru = false;
  assert(f.pin_count == 0 && f.valid);
  CRIMSON_RETURN_IF_ERROR(WriteBack(f));
  page_table_.erase(f.page_id);
  f.valid = false;
  ++stats_.evictions;
  return idx;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, idx, id);
  }
  ++stats_.misses;
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  Status s = pager_->ReadPage(id, f.data.data());
  if (!s.ok()) {
    free_frames_.push_back(idx);
    return s;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, id);
}

Result<PageGuard> BufferPool::New(PageId* out_id) {
  CRIMSON_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  CRIMSON_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  memset(f.data.data(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;  // zeroed content must reach disk
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  *out_id = id;
  return PageGuard(this, idx, id);
}

Status BufferPool::Free(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::FailedPrecondition(
          StrFormat("freeing pinned page %u", id));
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.valid = false;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return pager_->FreePage(id);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.valid) {
      CRIMSON_RETURN_IF_ERROR(WriteBack(f));
    }
  }
  return pager_->Flush();
}

}  // namespace crimson
