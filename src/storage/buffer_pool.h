// BufferPool: fixed-capacity page cache with LRU eviction and pin
// counting. All higher layers (heap files, B+Trees) access pages through
// PageGuard handles obtained here.
//
// The paper's "database challenge #1" argues that gold-standard trees are
// huge while individual queries touch small portions, making buffered
// random access (not main-memory structures) the right design; the buffer
// pool is where that trade-off lives, and bench_storage measures it.

#ifndef CRIMSON_STORAGE_BUFFER_POOL_H_
#define CRIMSON_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace crimson {

class BufferPool;

/// RAII pin on a cached page. While a PageGuard is alive the frame
/// cannot be evicted. Call MarkDirty() after mutating data().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageId page_id)
      : pool_(pool), frame_(frame_index), page_id_(page_id) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      page_id_ = other.page_id_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  char* data();
  const char* data() const;

  /// Records that the caller mutated the page; it will be written back
  /// on eviction or flush.
  void MarkDirty();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// Cache statistics (cumulative).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Page cache over a Pager. Single-threaded by design (Crimson's demo
/// workload is a loader plus an interactive reader).
class BufferPool {
 public:
  /// capacity = number of resident pages.
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, reading it from disk on miss. The guard pins it.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a brand-new page (zeroed) and pins it.
  Result<PageGuard> New(PageId* out_id);

  /// Frees a page back to the pager; the page must not be pinned.
  Status Free(PageId id);

  /// Writes back all dirty pages and syncs the file.
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }
  size_t capacity() const { return frames_.size(); }
  Pager* pager() { return pager_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    std::vector<char> data;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && valid
    bool in_lru = false;
  };

  void Unpin(size_t frame_index);
  Result<size_t> GetVictimFrame();
  Status WriteBack(Frame& frame);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;        // front = most recent
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_BUFFER_POOL_H_
