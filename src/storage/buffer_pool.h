// BufferPool: fixed-capacity page cache with LRU eviction, pin
// counting, and per-frame reader-writer latches. All higher layers
// (heap files, B+Trees) access pages through PageGuard handles obtained
// here.
//
// The paper's "database challenge #1" argues that gold-standard trees are
// huge while individual queries touch small portions, making buffered
// random access (not main-memory structures) the right design; the buffer
// pool is where that trade-off lives, and bench_storage measures it.
//
// Concurrency (see DESIGN.md "Concurrency"):
//  - The frame table (page_table_, LRU list, free list, pin counts,
//    dirty bits, stats) is guarded by an internal mutex held only for
//    short map/list operations.
//  - Every frame carries a reader-writer latch. Fetch(id, kRead) pins
//    the frame and holds the latch shared; Fetch(id, kWrite) (and New)
//    hold it exclusive. Any number of readers share a page; a writer
//    excludes them for that page only.
//  - A cold miss installs the mapping first: the installer claims the
//    victim frame's latch exclusively under the table mutex, then
//    releases the mutex and reads from disk straight into the frame.
//    Misses from different threads overlap -- the property
//    bench_concurrent_reads gates on -- while threads that find the
//    in-flight mapping block on the latch until the content lands.
//  - Structural multi-step mutations (New/Free and the transaction
//    hooks) additionally serialize behind a writer mutex; the engine
//    above already guarantees a single writer via Database's epochs.

#ifndef CRIMSON_STORAGE_BUFFER_POOL_H_
#define CRIMSON_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/page_versions.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace crimson {

class BufferPool;

/// Declared access mode of a page pin. Readers share the frame latch;
/// a writer holds it exclusively (and is the only mode that may call
/// MarkDirty).
enum class PageIntent { kRead, kWrite };

/// Shared WAL/transaction state between the Database (which drives
/// Begin/Commit/Abort) and the BufferPool (which tracks dirty pages
/// and enforces log-before-data). Null wal = durability off, legacy
/// behavior throughout. Mutated only by the single writer; readers
/// that trigger evictions observe it under the Database read epoch,
/// which excludes the writer.
struct WalContext {
  Wal* wal = nullptr;
  bool txn_active = false;
  uint64_t txn_id = 0;
  /// Pages >= this id were allocated by the active transaction: they
  /// are unreachable from the committed on-disk state, so the pool may
  /// spill them to disk mid-transaction (after logging their image)
  /// when a huge transaction -- e.g. a bulk load -- outgrows the pool.
  /// Pre-existing pages dirtied by the transaction must stay resident
  /// until commit (no-steal), preserving the committed bytes on disk.
  uint32_t txn_base_page_count = 0;
  /// Every page the active transaction dirtied (ordered: commit logs
  /// images deterministically).
  std::set<PageId> dirty_pages;
};

/// RAII pin on a cached page. While a PageGuard is alive the frame
/// cannot be evicted and its latch is held in the guard's declared
/// mode. Call MarkDirty() after mutating data() (kWrite guards only).
///
/// A kRead guard may instead be *snapshot-backed*: when the calling
/// thread holds a read snapshot (Database::BeginRead) and the page was
/// mutated since, Fetch returns a guard over the captured committed
/// image -- no frame, no pin, no latch, so it never contends with the
/// writer. Such guards are read-only (MarkDirty asserts).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageId page_id,
            PageIntent intent)
      : pool_(pool), frame_(frame_index), page_id_(page_id),
        intent_(intent) {}
  /// Snapshot-backed read guard over a captured page image.
  PageGuard(std::shared_ptr<const std::vector<char>> snapshot, PageId page_id)
      : page_id_(page_id), intent_(PageIntent::kRead),
        snapshot_(std::move(snapshot)) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      page_id_ = other.page_id_;
      intent_ = other.intent_;
      snapshot_ = std::move(other.snapshot_);
      other.pool_ = nullptr;
      other.snapshot_.reset();
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr || snapshot_ != nullptr; }
  PageId page_id() const { return page_id_; }
  PageIntent intent() const { return intent_; }

  char* data();
  const char* data() const;

  /// Records that the caller mutated the page; it will be written back
  /// on eviction or flush. Requires a kWrite guard.
  void MarkDirty();

  /// Drops the latch and pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  PageIntent intent_ = PageIntent::kRead;
  /// Non-null for snapshot-backed guards: the immutable captured image
  /// this guard reads instead of a frame.
  std::shared_ptr<const std::vector<char>> snapshot_;
};

/// Cache statistics (cumulative).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Page cache over a Pager. Thread-safe: any number of reader threads
/// may Fetch concurrently (including cold misses); mutations assume
/// the engine's single-writer discipline (Database writer epochs) but
/// are additionally serialized behind an internal writer mutex so
/// pool-level races cannot corrupt the frame table.
///
/// With a WalContext attached, the pool is the WAL capture point:
/// every mutation in the engine flows through PageGuard::MarkDirty, so
/// the context's dirty set is exactly the transaction's write set, and
/// WriteBack enforces the log-before-data rule via per-frame page_lsn
/// (a dirty frame's after-image must be in the durable log before the
/// data page is written).
class BufferPool {
 public:
  /// capacity = number of resident pages. wal_ctx may be null
  /// (durability off) and must outlive the pool. versions may be null
  /// (no snapshot reads: every Fetch sees live frames) and must
  /// outlive the pool; with it attached, the pool is the MVCC capture
  /// and resolution point (see page_versions.h). `metrics` (optional)
  /// receives cumulative storage.pool.* counter mirrors -- stats() and
  /// ResetStats() keep their per-pool semantics regardless.
  BufferPool(Pager* pager, size_t capacity, WalContext* wal_ctx = nullptr,
             PageVersions* versions = nullptr,
             obs::MetricsRegistry* metrics = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, reading it from disk on miss. The guard pins it
  /// and holds its frame latch in the requested mode; kWrite blocks
  /// until concurrent readers of that page release their guards.
  /// With a PageVersions table attached: a kWrite fetch captures the
  /// page's committed image on the transaction's first take, and a
  /// kRead fetch from a thread holding a read snapshot resolves
  /// against it -- returning a snapshot-backed guard (no frame, no
  /// latch) when the page changed since the snapshot.
  Result<PageGuard> Fetch(PageId id, PageIntent intent = PageIntent::kRead);

  /// Allocates a brand-new page (zeroed) and pins it (kWrite).
  Result<PageGuard> New(PageId* out_id);

  /// Frees a page back to the pager; the page must not be pinned.
  Status Free(PageId id);

  /// Writes back all dirty pages. (Header write + file sync are the
  /// caller's job -- Database::Flush orders data pages first.)
  Status FlushAll();

  /// FailedPrecondition when durability is on but no transaction is
  /// active: mutations outside a Txn would bypass crash recovery.
  /// Mutation entry points (BTree, HeapFile, Table) call this first.
  Status RequireWritable() const;

  // -- transaction hooks (driven by Database) ------------------------------

  /// Appends after-images of the active transaction's dirty pages that
  /// are still resident (spilled pages already logged theirs).
  Status LogTxnPages();

  /// Writes the transaction's resident dirty pages to the database
  /// file (no sync) and marks them clean. Call after the commit record
  /// is durable.
  Status ForceTxnPages(const std::set<PageId>& pages);

  /// Abort: invalidates every frame the transaction dirtied, so later
  /// fetches reread the committed bytes from disk.
  Status DiscardTxnPages();

  BufferPoolStats stats() const;
  void ResetStats();
  size_t capacity() const { return frames_.size(); }
  Pager* pager() { return pager_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    Lsn page_lsn = 0;  // lsn of the logged image of this content; 0 = none
    std::vector<char> data;
    /// Content latch: shared by kRead guards, exclusive for kWrite.
    /// Uncontended whenever pin_count is 0 (guards hold it while
    /// pinned), so eviction never blocks on it.
    std::unique_ptr<std::shared_mutex> latch;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && valid
    bool in_lru = false;
  };

  void Unpin(size_t frame_index, PageIntent intent);
  void OnDirty(size_t frame_index);
  /// Pins frame `idx` (mu_ held via `lock`), releases the table mutex,
  /// then acquires the frame latch -- so a blocked latch never holds
  /// up unrelated fetches.
  PageGuard PinAndLatch(std::unique_lock<std::mutex> lock, size_t idx,
                        PageId id, PageIntent intent);
  Result<size_t> GetVictimFrameLocked();
  Status WriteBack(Frame& frame);
  bool wal_enabled() const { return wal_ctx_ != nullptr && wal_ctx_->wal; }
  /// True when the frame must stay resident until commit (dirtied
  /// pre-existing page of the active transaction; see WalContext).
  bool PinnedByTxn(const Frame& f) const;
  Result<PageGuard> NewWal(PageId* out_id);
  Status FreeWal(PageId id);
  /// MVCC pre-image capture for a page about to be freed/clobbered
  /// without a kWrite Fetch: copies the committed bytes from the
  /// resident frame, or from disk when not resident.
  Status CaptureBeforeFree(PageId id);
  /// Installs `id` into a victim frame (pinned, not latched) without
  /// reading the file. mu_ must be held.
  Result<size_t> InstallFrameLocked(PageId id);

  Pager* pager_;
  WalContext* wal_ctx_;
  PageVersions* versions_;
  std::vector<Frame> frames_;

  /// Guards the frame table: page_table_, lru_, free_frames_, frame
  /// metadata (pin counts, dirty/valid flags), and stats_. Held for
  /// map/list operations and for the write-back of a *dirty* eviction
  /// victim (a deliberate simplification: releasing mu_ mid-eviction
  /// would need an "evicting" frame state and a re-check; dirty
  /// evictions are rare on the read paths this PR parallelizes, since
  /// steady-state read working sets are clean). Never held while a
  /// caller computes on page content, and never during a cold-miss
  /// disk read.
  mutable std::mutex mu_;
  /// Serializes multi-step structural mutations (New/Free, transaction
  /// hooks). Always acquired before mu_.
  std::mutex writer_mu_;

  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;        // front = most recent
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
  /// Telemetry mirrors (null without a registry); bumped under mu_
  /// alongside stats_, never reset.
  obs::Counter* hits_ctr_ = nullptr;
  obs::Counter* misses_ctr_ = nullptr;
  obs::Counter* evictions_ctr_ = nullptr;
  obs::Counter* writebacks_ctr_ = nullptr;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_BUFFER_POOL_H_
