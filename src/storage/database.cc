#include "storage/database.h"

#include "common/string_util.h"
#include "storage/file.h"

namespace crimson {

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> file, OpenPosixFile(path));
  return Build(std::move(file), options);
}

Result<std::unique_ptr<Database>> Database::OpenInMemory(
    const DatabaseOptions& options) {
  return Build(NewMemFile(), options);
}

Result<std::unique_ptr<Database>> Database::Build(
    std::unique_ptr<File> file, const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database());
  CRIMSON_ASSIGN_OR_RETURN(db->pager_, Pager::Open(std::move(file)));
  db->pool_ = std::make_unique<BufferPool>(db->pager_.get(),
                                           options.buffer_pool_pages);
  if (db->pager_->catalog_root() == kInvalidPageId) {
    CRIMSON_ASSIGN_OR_RETURN(BTree catalog, BTree::Create(db->pool_.get()));
    CRIMSON_RETURN_IF_ERROR(db->pager_->SetCatalogRoot(catalog.anchor()));
  }
  return db;
}

Result<BTree> Database::CatalogTree() const {
  return BTree::Open(pool_.get(), pager_->catalog_root());
}

Result<Table> Database::CreateTable(const std::string& name,
                                    const Schema& schema,
                                    const std::vector<IndexSpec>& indexes) {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string existing;
  Status lookup = catalog.Get(Slice(name), &existing);
  if (lookup.ok()) {
    return Status::AlreadyExists(StrFormat("table %s exists", name.c_str()));
  }
  if (!lookup.IsNotFound()) return lookup;

  TableDef def;
  def.name = name;
  def.schema = schema;
  CRIMSON_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  def.heap_first_page = heap.first_page();
  for (const IndexSpec& spec : indexes) {
    int col = schema.FindColumn(spec.column);
    if (col < 0) {
      return Status::InvalidArgument(
          StrFormat("index %s references unknown column %s",
                    spec.name.c_str(), spec.column.c_str()));
    }
    CRIMSON_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
    IndexDef idx;
    idx.name = spec.name;
    idx.column = col;
    idx.unique = spec.unique;
    idx.anchor = tree.anchor();
    def.indexes.push_back(std::move(idx));
  }

  std::string encoded;
  def.EncodeTo(&encoded);
  CRIMSON_RETURN_IF_ERROR(
      catalog.Insert(Slice(name), Slice(encoded), /*unique=*/true));
  return Table::Open(pool_.get(), std::move(def));
}

Result<Table> Database::OpenTable(const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string encoded;
  Status s = catalog.Get(Slice(name), &encoded);
  if (s.IsNotFound()) {
    return Status::NotFound(StrFormat("no table named %s", name.c_str()));
  }
  CRIMSON_RETURN_IF_ERROR(s);
  CRIMSON_ASSIGN_OR_RETURN(TableDef def, TableDef::DecodeFrom(Slice(encoded)));
  return Table::Open(pool_.get(), std::move(def));
}

Result<bool> Database::HasTable(const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string encoded;
  Status s = catalog.Get(Slice(name), &encoded);
  if (s.ok()) return true;
  if (s.IsNotFound()) return false;
  return s;
}

Result<std::vector<std::string>> Database::ListTables() const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::vector<std::string> names;
  BTree::Iterator it = catalog.NewIterator();
  CRIMSON_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    names.push_back(it.key().ToString());
    CRIMSON_RETURN_IF_ERROR(it.Next());
  }
  return names;
}

Status Database::Flush() { return pool_->FlushAll(); }

}  // namespace crimson
