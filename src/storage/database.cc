#include "storage/database.h"

#include "common/log.h"
#include "common/string_util.h"
#include "storage/file.h"
#include "storage/recovery.h"

namespace crimson {

Status Txn::Commit() {
  if (db_ == nullptr) return Status::OK();
  Database* db = db_;
  db_ = nullptr;
  return db->CommitTxn();
}

void Txn::Abort() {
  if (db_ == nullptr) return;
  Database* db = db_;
  db_ = nullptr;
  db->AbortTxn();
}

void Database::ReadTxn::End() {
  if (db_ == nullptr) return;
  const Database* db = db_;
  db_ = nullptr;
  db->versions_.Unregister(token_);
  token_ = 0;
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           options.env.open_file(path));
  return Build(std::move(file), options, path);
}

Result<std::unique_ptr<Database>> Database::OpenInMemory(
    const DatabaseOptions& options) {
  if (options.durability != Durability::kOff) {
    return Status::InvalidArgument(
        "in-memory databases cannot be durable; use Database::Open");
  }
  return Build(NewMemFile(), options, /*path=*/"");
}

Result<std::unique_ptr<Database>> Database::Build(
    std::unique_ptr<File> file, const DatabaseOptions& options,
    const std::string& path) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  const bool want_wal =
      options.durability != Durability::kOff && !path.empty();
  if (!path.empty()) {
    // Replay a leftover WAL even when this open is not durable:
    // committed transactions of the previous (durable) run must not be
    // lost just because the reader runs with durability off.
    const std::string wal_base = path + "-wal";
    CRIMSON_ASSIGN_OR_RETURN(bool has_wal,
                             WalExists(wal_base, options.env));
    if (has_wal) {
      CRIMSON_RETURN_IF_ERROR(
          RecoverFromWal(wal_base, options.env, file.get()).status());
    }
    if (want_wal) {
      WalOptions wal_opts;
      wal_opts.segment_bytes = options.wal_segment_bytes;
      CRIMSON_ASSIGN_OR_RETURN(db->wal_,
                               Wal::Open(wal_base, options.env, wal_opts));
      db->wal_ctx_.wal = db->wal_.get();
    } else if (has_wal) {
      // The recovered state is in the database file (synced by the
      // replay); drop the log so a later durable open cannot replay it
      // over newer non-WAL writes.
      CRIMSON_RETURN_IF_ERROR(Wal::RemoveLog(wal_base, options.env));
    }
  }
  CRIMSON_ASSIGN_OR_RETURN(
      db->pager_, Pager::Open(std::move(file), /*deferred_header=*/want_wal));
  if (options.metrics != nullptr) {
    db->versions_.BindMetrics(options.metrics);
    if (db->wal_) db->wal_->BindMetrics(options.metrics);
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->pager_.get(), options.buffer_pool_pages,
      db->wal_ ? &db->wal_ctx_ : nullptr, &db->versions_, options.metrics);
  if (db->pager_->catalog_root() == kInvalidPageId) {
    CRIMSON_ASSIGN_OR_RETURN(Txn txn, db->Begin());
    CRIMSON_ASSIGN_OR_RETURN(BTree catalog, BTree::Create(db->pool_.get()));
    CRIMSON_RETURN_IF_ERROR(db->pager_->SetCatalogRoot(catalog.anchor()));
    CRIMSON_RETURN_IF_ERROR(txn.Commit());
  }
  return db;
}

Result<Txn> Database::Begin() {
  if (writer_thread_.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    return Status::FailedPrecondition(
        "a transaction is already active (no nesting)");
  }
  // Enter the writer epoch: waits for a concurrent transaction /
  // Flush / Checkpoint to finish, then excludes them. Readers are not
  // involved -- they run against snapshots.
  epoch_mu_.lock();
  writer_thread_.store(std::this_thread::get_id(),
                       std::memory_order_release);
  writer_active_.store(true, std::memory_order_release);
  // Open MVCC capture in every durability mode: even a non-durable
  // transaction mutates pages in place, and concurrent snapshot
  // readers must keep seeing the pre-transaction images.
  versions_.BeginTxn(pager_->page_count());
  if (wal_ != nullptr) {
    wal_ctx_.txn_active = true;
    wal_ctx_.txn_id = next_txn_id_++;
    wal_ctx_.txn_base_page_count = pager_->page_count();
    wal_ctx_.dirty_pages.clear();
    txn_header_snapshot_ = pager_->snapshot();
    txn_wal_mark_ = wal_->mark();
  }
  return Txn(this);
}

Database::ReadTxn Database::BeginRead() const {
  PageVersions::Snapshot snap = versions_.RegisterSnapshot();
  ReadTxn txn(this);
  txn.token_ = snap.token;
  return txn;
}

void Database::ReleaseWriterEpoch() {
  writer_active_.store(false, std::memory_order_release);
  writer_thread_.store(std::thread::id(), std::memory_order_release);
  epoch_mu_.unlock();
}

Status Database::CommitTxn() {
  // Non-durable transaction: nothing was logged; the commit just
  // closes the writer epoch (dirty pages reach disk via eviction or
  // Flush, exactly the legacy discipline).
  if (wal_ == nullptr) {
    versions_.SealTxn();
    ReleaseWriterEpoch();
    return Status::OK();
  }
  if (!wal_ctx_.txn_active) {
    versions_.SealTxn();
    ReleaseWriterEpoch();
    return Status::FailedPrecondition("no active transaction to commit");
  }
  // Read-only transaction: nothing to log, nothing to sync.
  if (wal_ctx_.dirty_pages.empty() && !pager_->header_dirty()) {
    wal_ctx_.txn_active = false;
    versions_.SealTxn();
    ReleaseWriterEpoch();
    return Status::OK();
  }
  // 1. Log every after-image plus the header, then the commit record.
  // 2. Make the log durable (the group-commit knob picks the sync
  //    discipline). Until this point any failure aborts cleanly.
  Status s = [&]() -> Status {
    CRIMSON_RETURN_IF_ERROR(pool_->LogTxnPages());
    CRIMSON_RETURN_IF_ERROR(
        wal_->AppendHeaderImage(pager_->page_count(), pager_->freelist_head(),
                                pager_->catalog_root())
            .status());
    CRIMSON_ASSIGN_OR_RETURN(Lsn commit_lsn,
                             wal_->AppendCommit(wal_ctx_.txn_id));
    return wal_->Sync(commit_lsn,
                      options_.durability == Durability::kGroupCommit);
  }();
  if (!s.ok()) {
    AbortTxn();
    return s;
  }
  // The transaction is durable from here on, so Commit reports
  // success regardless of what follows: if a data-file write below
  // fails, the pool still holds the dirty frames (a later eviction
  // re-syncs page_lsn and retries), the header stays flagged dirty,
  // and recovery has the redo -- consistency is never at risk.
  wal_ctx_.txn_active = false;
  // Publish to readers: snapshots taken from here on see this
  // transaction's state; older snapshots keep resolving to the
  // captured pre-images.
  versions_.SealTxn();
  std::set<PageId> pages;
  pages.swap(wal_ctx_.dirty_pages);
  Status lazy = pool_->ForceTxnPages(pages);
  if (lazy.ok()) lazy = pager_->WriteHeaderIfDirty();
  // Leave the epoch before a possible auto-checkpoint: Checkpoint
  // re-enters it exclusively on its own.
  ReleaseWriterEpoch();
  if (lazy.ok() && options_.wal_checkpoint_bytes > 0 &&
      wal_->size_bytes() > options_.wal_checkpoint_bytes) {
    lazy = Checkpoint();
  }
  if (!lazy.ok()) {
    CRIMSON_LOG(kWarning)
        << "post-commit writeback deferred (txn is durable): " << lazy;
  }
  return Status::OK();
}

void Database::AbortTxn() {
  if (wal_ == nullptr || !wal_ctx_.txn_active) {
    // Without a WAL there is no rollback: the mutations stick (legacy
    // behavior), so visibility-wise this is a commit -- seal so
    // snapshots taken after it see the mutated state.
    versions_.SealTxn();
    ReleaseWriterEpoch();
    return;
  }
  Status discard = pool_->DiscardTxnPages();
  if (!discard.ok()) {
    CRIMSON_LOG(kError) << "transaction abort: " << discard;
  }
  pager_->Restore(txn_header_snapshot_);
  Status rewind = wal_->Rewind(txn_wal_mark_);
  if (!rewind.ok()) {
    CRIMSON_LOG(kError) << "transaction abort: WAL rewind failed ("
                        << rewind << "); the log is now read-only";
  }
  wal_ctx_.txn_active = false;
  wal_ctx_.dirty_pages.clear();
  // Drop the aborted captures last: until the frames/disk are restored
  // above, concurrent snapshot readers must keep hitting the versions.
  versions_.DropTxn();
  ReleaseWriterEpoch();
}

Result<BTree> Database::CatalogTree() const {
  return BTree::Open(pool_.get(), pager_->catalog_root());
}

Result<Table> Database::CreateTable(const std::string& name,
                                    const Schema& schema,
                                    const std::vector<IndexSpec>& indexes) {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string existing;
  Status lookup = catalog.Get(Slice(name), &existing);
  if (lookup.ok()) {
    return Status::AlreadyExists(StrFormat("table %s exists", name.c_str()));
  }
  if (!lookup.IsNotFound()) return lookup;

  TableDef def;
  def.name = name;
  def.schema = schema;
  CRIMSON_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  def.heap_first_page = heap.first_page();
  for (const IndexSpec& spec : indexes) {
    int col = schema.FindColumn(spec.column);
    if (col < 0) {
      return Status::InvalidArgument(
          StrFormat("index %s references unknown column %s",
                    spec.name.c_str(), spec.column.c_str()));
    }
    CRIMSON_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
    IndexDef idx;
    idx.name = spec.name;
    idx.column = col;
    idx.unique = spec.unique;
    idx.anchor = tree.anchor();
    def.indexes.push_back(std::move(idx));
  }

  std::string encoded;
  def.EncodeTo(&encoded);
  CRIMSON_RETURN_IF_ERROR(
      catalog.Insert(Slice(name), Slice(encoded), /*unique=*/true));
  return Table::Open(pool_.get(), std::move(def));
}

Result<Table> Database::OpenTable(const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string encoded;
  Status s = catalog.Get(Slice(name), &encoded);
  if (s.IsNotFound()) {
    return Status::NotFound(StrFormat("no table named %s", name.c_str()));
  }
  CRIMSON_RETURN_IF_ERROR(s);
  CRIMSON_ASSIGN_OR_RETURN(TableDef def, TableDef::DecodeFrom(Slice(encoded)));
  return Table::Open(pool_.get(), std::move(def));
}

Result<bool> Database::HasTable(const std::string& name) const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::string encoded;
  Status s = catalog.Get(Slice(name), &encoded);
  if (s.ok()) return true;
  if (s.IsNotFound()) return false;
  return s;
}

Result<std::vector<std::string>> Database::ListTables() const {
  CRIMSON_ASSIGN_OR_RETURN(BTree catalog, CatalogTree());
  std::vector<std::string> names;
  BTree::Iterator it = catalog.NewIterator();
  CRIMSON_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    names.push_back(it.key().ToString());
    CRIMSON_RETURN_IF_ERROR(it.Next());
  }
  return names;
}

Status Database::Flush() {
  if (wal_ != nullptr) return Checkpoint();
  if (writer_thread_.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    return Status::FailedPrecondition("cannot flush inside a transaction");
  }
  std::unique_lock<std::shared_mutex> epoch(epoch_mu_);
  // Data pages must reach the file before the header sync: a header
  // that advertises pages whose bytes never landed is corruption.
  CRIMSON_RETURN_IF_ERROR(pool_->FlushAll());
  return pager_->Flush();
}

Status Database::Checkpoint() {
  if (writer_thread_.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    return Status::FailedPrecondition(
        "cannot checkpoint inside a transaction");
  }
  std::unique_lock<std::shared_mutex> epoch(epoch_mu_);
  CRIMSON_RETURN_IF_ERROR(pool_->FlushAll());
  CRIMSON_RETURN_IF_ERROR(pager_->Flush());  // header write + fdatasync
  if (wal_ != nullptr) {
    CRIMSON_RETURN_IF_ERROR(wal_->Reset());
  }
  return Status::OK();
}

}  // namespace crimson
