// Database: top of the storage engine. Owns the file, pager, buffer
// pool, and catalog, and hands out Table handles by name.

#ifndef CRIMSON_STORAGE_DATABASE_H_
#define CRIMSON_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace crimson {

struct DatabaseOptions {
  /// Buffer pool capacity in pages (default 1024 pages = 8 MiB).
  size_t buffer_pool_pages = 1024;
};

/// Column spec used when creating a table.
struct IndexSpec {
  std::string name;
  std::string column;  // column name in the schema
  bool unique = false;
};

/// Embedded single-user database. Not thread-safe.
class Database {
 public:
  /// Opens (or creates) an on-disk database.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, const DatabaseOptions& options = {});

  /// Opens a fully in-memory database (tests, benches).
  static Result<std::unique_ptr<Database>> OpenInMemory(
      const DatabaseOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table with the given schema and secondary indexes.
  Result<Table> CreateTable(const std::string& name, const Schema& schema,
                            const std::vector<IndexSpec>& indexes = {});

  /// Opens an existing table.
  Result<Table> OpenTable(const std::string& name) const;

  /// True if the catalog has this table.
  Result<bool> HasTable(const std::string& name) const;

  /// Names of all tables.
  Result<std::vector<std::string>> ListTables() const;

  /// Writes back all dirty pages and syncs.
  Status Flush();

  BufferPool* buffer_pool() { return pool_.get(); }
  const BufferPoolStats& stats() const { return pool_->stats(); }

 private:
  Database() = default;

  static Result<std::unique_ptr<Database>> Build(
      std::unique_ptr<File> file, const DatabaseOptions& options);

  Result<BTree> CatalogTree() const;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_DATABASE_H_
