// Database: top of the storage engine. Owns the file, pager, buffer
// pool, write-ahead log, and catalog, and hands out Table handles by
// name.
//
// Durability model (see DESIGN.md "Durability & recovery"):
//  - kOff: no WAL, no transactions; today's behavior and file format.
//  - kCommit / kGroupCommit: every mutation runs inside an explicit
//    Txn (Begin/Commit). Commit appends the transaction's page
//    after-images plus a commit record to the WAL and fsyncs it before
//    any data page reaches the database file; kGroupCommit lets
//    concurrent committers share one fsync. Database::Open replays the
//    committed WAL prefix left by a crash before reading the header.
//
// Concurrency model (see DESIGN.md "Concurrency"): single writer,
// many readers, MVCC snapshot reads. Begin() opens a *writer epoch*
// (exclusive among writers/Flush/Checkpoint) regardless of durability;
// BeginRead() registers a *read snapshot* pinned at the last committed
// epoch -- it never blocks and never excludes the writer. While a
// transaction mutates pages in place, the buffer pool captures each
// page's committed pre-image into a PageVersions side table; readers
// holding a snapshot resolve Fetch(id, kRead) against it, so they
// observe the committed state as of their BeginRead byte-for-byte even
// mid-StoreTree. Any number of threads may run B+Tree descents, heap
// reads, and table lookups concurrently.

#ifndef CRIMSON_STORAGE_DATABASE_H_
#define CRIMSON_STORAGE_DATABASE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_versions.h"
#include "storage/pager.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace crimson {

/// Commit-durability discipline of a database.
enum class Durability {
  /// No write-ahead log; a crash can corrupt the database (legacy).
  kOff,
  /// Every Txn::Commit fsyncs the log before returning.
  kCommit,
  /// Like kCommit, but concurrent committers coalesce behind one
  /// fsync (identical durability, higher commit throughput).
  kGroupCommit,
};

struct DatabaseOptions {
  /// Buffer pool capacity in pages (default 1024 pages = 8 MiB).
  size_t buffer_pool_pages = 1024;
  /// Crash-durability discipline (on-disk databases only).
  Durability durability = Durability::kOff;
  /// WAL segment rotation size.
  uint64_t wal_segment_bytes = 4ull << 20;
  /// Auto-checkpoint once the WAL exceeds this size (0 = only explicit
  /// Checkpoint()/Flush() truncate the log).
  uint64_t wal_checkpoint_bytes = 16ull << 20;
  /// Filesystem hooks; tests substitute fault-injecting environments.
  StorageEnv env = PosixStorageEnv();
  /// Observability registry the engine mirrors its cumulative counters
  /// into (storage.pool.*, storage.wal.*, pages.*); null = not
  /// mirrored. The struct accessors (stats(), page_version_stats())
  /// stay per-instance either way. Must outlive the database.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Column spec used when creating a table.
struct IndexSpec {
  std::string name;
  std::string column;  // column name in the schema
  bool unique = false;
};

class Database;

/// Move-only transaction handle. Holds the database's writer epoch for
/// its lifetime: readers (BeginRead) are excluded until Commit/Abort.
/// With durability off nothing is logged, but the epoch still applies,
/// so call sites are uniform across modes. Destruction without Commit
/// aborts: the pool discards the transaction's dirty frames, the pager
/// restores its header snapshot, and the WAL rewinds -- the database
/// reverts to the pre-Begin state.
class Txn {
 public:
  Txn() = default;
  Txn(Txn&& other) noexcept { *this = std::move(other); }
  Txn& operator=(Txn&& other) noexcept {
    if (this != &other) {
      Abort();
      db_ = other.db_;
      other.db_ = nullptr;
    }
    return *this;
  }
  ~Txn() { Abort(); }

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  /// Makes the transaction durable. After Commit returns OK the
  /// changes survive any crash; after an error before the log sync the
  /// transaction is rolled back. Releases the writer epoch.
  Status Commit();

  /// Rolls the transaction back (idempotent; no-op after Commit).
  void Abort();

  bool active() const { return db_ != nullptr; }

 private:
  friend class Database;
  explicit Txn(Database* db) : db_(db) {}

  Database* db_ = nullptr;
};

/// Embedded single-writer / multi-reader database.
class Database {
 public:
  /// Move-only read snapshot. While alive, page reads issued from the
  /// owning thread observe the committed state as of BeginRead -- a
  /// concurrent writer neither blocks this reader nor becomes visible
  /// to it. Readers never exclude each other or the writer.
  ///
  /// Threading: queries must run on the thread that called BeginRead
  /// (snapshot resolution is thread-local), but End() / destruction is
  /// safe from any thread -- the registry entry is dropped immediately
  /// and the origin thread's stale stack slot is purged lazily.
  /// Self-move-assignment and repeated End() are no-ops.
  class ReadTxn {
   public:
    ReadTxn() = default;
    ReadTxn(ReadTxn&& other) noexcept { *this = std::move(other); }
    ReadTxn& operator=(ReadTxn&& other) noexcept {
      if (this != &other) {
        End();
        db_ = other.db_;
        token_ = other.token_;
        other.db_ = nullptr;
        other.token_ = 0;
      }
      return *this;
    }
    ~ReadTxn() { End(); }

    ReadTxn(const ReadTxn&) = delete;
    ReadTxn& operator=(const ReadTxn&) = delete;

    /// Releases the snapshot (idempotent; any thread).
    void End();

    bool active() const { return db_ != nullptr; }

   private:
    friend class Database;
    explicit ReadTxn(const Database* db) : db_(db) {}

    const Database* db_ = nullptr;
    uint64_t token_ = 0;
  };

  /// Opens (or creates) an on-disk database. With durability on (or a
  /// leftover WAL from a durable run), committed WAL records are
  /// replayed before the header is read.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, const DatabaseOptions& options = {});

  /// Opens a fully in-memory database (tests, benches). Durability
  /// must be kOff: there is no medium to recover from.
  static Result<std::unique_ptr<Database>> OpenInMemory(
      const DatabaseOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table with the given schema and secondary indexes.
  Result<Table> CreateTable(const std::string& name, const Schema& schema,
                            const std::vector<IndexSpec>& indexes = {});

  /// Opens an existing table.
  Result<Table> OpenTable(const std::string& name) const;

  /// True if the catalog has this table.
  Result<bool> HasTable(const std::string& name) const;

  /// Names of all tables.
  Result<std::vector<std::string>> ListTables() const;

  /// Begins a write transaction, entering the writer epoch. One writer
  /// at a time (a second Begin from another thread waits; from the
  /// same thread it fails -- no nesting). Readers do NOT block the
  /// writer, nor vice versa: live ReadTxns keep resolving against
  /// their snapshots while the transaction mutates. With durability
  /// off the transaction logs nothing but still provides the writer
  /// exclusion.
  [[nodiscard]] Result<Txn> Begin();

  /// Registers a read snapshot pinned at the last committed epoch.
  /// Never blocks -- not even while a write transaction is open (the
  /// snapshot then simply predates that transaction's mutations).
  /// Storage-engine readers (table lookups, scans, tree descents) hold
  /// one of these so their page accesses are snapshot-consistent.
  [[nodiscard]] ReadTxn BeginRead() const;

  /// True while a write transaction is open.
  bool in_txn() const { return writer_active_.load(std::memory_order_acquire); }

  /// True when this database runs with a write-ahead log.
  bool durable() const { return wal_ != nullptr; }

  /// Writes back all dirty pages, then syncs the header -- data pages
  /// always reach the file before the header sync. With durability on
  /// this is a full Checkpoint. Takes the writer epoch.
  Status Flush();

  /// Durable truncation point: flushes everything, fsyncs the database
  /// file, and truncates the WAL. FailedPrecondition inside a Txn.
  Status Checkpoint();

  BufferPool* buffer_pool() { return pool_.get(); }
  Wal* wal() { return wal_.get(); }
  BufferPoolStats stats() const { return pool_->stats(); }
  /// MVCC side-table counters (captures, version hits, live chains).
  PageVersions::Stats page_version_stats() const { return versions_.stats(); }
  /// The committed epoch alone (no chain walk; the query cache stamps
  /// entries with it on every cacheable miss).
  uint64_t committed_epoch() const { return versions_.committed_epoch(); }

 private:
  friend class Txn;

  Database() = default;

  static Result<std::unique_ptr<Database>> Build(
      std::unique_ptr<File> file, const DatabaseOptions& options,
      const std::string& path);

  Result<BTree> CatalogTree() const;
  Status CommitTxn();
  void AbortTxn();
  void ReleaseWriterEpoch();

  DatabaseOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<Wal> wal_;
  WalContext wal_ctx_;
  /// MVCC page-version side table; declared before pool_ so it
  /// outlives the pool that captures into / resolves against it.
  mutable PageVersions versions_;
  std::unique_ptr<BufferPool> pool_;
  uint64_t next_txn_id_ = 1;
  Pager::HeaderSnapshot txn_header_snapshot_;
  Wal::Mark txn_wal_mark_;

  /// Serializes writers against each other and against Flush/
  /// Checkpoint. Readers no longer touch it: BeginRead registers a
  /// snapshot in versions_ instead.
  mutable std::shared_mutex epoch_mu_;
  /// Thread currently inside the writer epoch (detects same-thread
  /// nested Begin, which would otherwise self-deadlock).
  std::atomic<std::thread::id> writer_thread_{};
  std::atomic<bool> writer_active_{false};
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_DATABASE_H_
