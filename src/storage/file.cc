#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"

namespace crimson {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) close(fd_);
  }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread");
      }
      if (r == 0) return Status::IOError("short read (EOF)");
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t w = pwrite(fd_, data + done, n - done,
                         static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite");
      }
      done += static_cast<size_t>(w);
    }
    if (offset + n > size_) size_ = offset + n;
    return Status::OK();
  }

  Status Sync() override {
    if (fdatasync(fd_) != 0) return ErrnoStatus("fdatasync");
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

  Status Truncate(uint64_t new_size) override {
    if (ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
      return ErrnoStatus("ftruncate");
    }
    size_ = new_size;
    return Status::OK();
  }

  void set_size(uint64_t s) { size_ = s; }

 private:
  int fd_;
  uint64_t size_ = 0;
};

// Internally synchronized (reads shared, writes exclusive): the buffer
// pool issues cold-miss reads without holding any pool lock, so
// concurrent reads must not race a write-back resizing the backing
// vector. PosixFile gets the same property from pread/pwrite.
class MemFile final : public File {
 public:
  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (offset + n > data_.size()) {
      return Status::IOError(
          StrFormat("mem read past EOF (off=%llu n=%zu size=%zu)",
                    static_cast<unsigned long long>(offset), n, data_.size()));
    }
    memcpy(scratch, data_.data() + offset, n);
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (offset + n > data_.size()) data_.resize(offset + n);
    memcpy(data_.data() + offset, data, n);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return data_.size();
  }

  Status Truncate(uint64_t new_size) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    data_.resize(new_size);
    return Status::OK();
  }

 private:
  mutable std::shared_mutex mu_;
  std::vector<char> data_;
};

}  // namespace

Result<std::unique_ptr<File>> OpenPosixFile(const std::string& path) {
  int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return ErrnoStatus("fstat " + path);
  }
  auto file = std::make_unique<PosixFile>(fd);
  file->set_size(static_cast<uint64_t>(st.st_size));
  return std::unique_ptr<File>(std::move(file));
}

Status RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

std::unique_ptr<File> NewMemFile() { return std::make_unique<MemFile>(); }

StorageEnv PosixStorageEnv() {
  StorageEnv env;
  env.open_file = [](const std::string& path) { return OpenPosixFile(path); };
  env.file_exists = [](const std::string& path) -> Result<bool> {
    struct stat st;
    if (stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT) return false;
    return ErrnoStatus("stat " + path);
  };
  env.remove_file = [](const std::string& path) { return RemoveFile(path); };
  env.sync_dir = [](const std::string& path) -> Status {
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty()) dir = "/";
    int fd = open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir " + dir);
    Status s;
    if (fsync(fd) != 0) s = ErrnoStatus("fsync dir " + dir);
    close(fd);
    return s;
  };
  return env;
}

}  // namespace crimson
