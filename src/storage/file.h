// Block-file abstraction underneath the pager. Two implementations:
// PosixFile (on-disk) and MemFile (in-memory, for tests and benches that
// want to isolate CPU cost from the filesystem).

#ifndef CRIMSON_STORAGE_FILE_H_
#define CRIMSON_STORAGE_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crimson {

/// Random-access byte file. Concurrent Reads are safe, and Reads may
/// run concurrently with Writes to disjoint offsets (the buffer pool
/// issues cold-miss reads without holding its own locks). Concurrent
/// Writes are serialized by the caller.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly n bytes at offset into scratch. Fails with IOError on
  /// short read.
  virtual Status Read(uint64_t offset, size_t n, char* scratch) const = 0;

  /// Writes exactly n bytes at offset, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  /// Forces written data to stable storage (no-op for MemFile).
  virtual Status Sync() = 0;

  /// Current file size in bytes.
  virtual uint64_t Size() const = 0;

  /// Grows the file to at least new_size bytes (zero-filled).
  virtual Status Truncate(uint64_t new_size) = 0;
};

/// Opens (creating if necessary) an on-disk file.
Result<std::unique_ptr<File>> OpenPosixFile(const std::string& path);

/// Deletes a file from the filesystem (used by tests).
Status RemoveFile(const std::string& path);

/// Creates an empty in-memory file.
std::unique_ptr<File> NewMemFile();

/// Minimal filesystem interface used wherever the storage engine opens
/// files by name (the database file, WAL segments). Tests substitute a
/// fault-injecting or memory-backed environment to simulate crashes at
/// arbitrary write/sync boundaries (see tests/storage/fault_injection.h).
struct StorageEnv {
  /// Opens the file, creating it if absent.
  std::function<Result<std::unique_ptr<File>>(const std::string&)> open_file;
  /// True if a file exists at the path.
  std::function<Result<bool>(const std::string&)> file_exists;
  /// Removes the file (OK if already absent).
  std::function<Status(const std::string&)> remove_file;
  /// Durably persists the directory entry of `path` (fsync of the
  /// parent directory; needed after creating or deleting WAL segments).
  std::function<Status(const std::string&)> sync_dir;
};

/// The default environment over the real filesystem.
StorageEnv PosixStorageEnv();

}  // namespace crimson

#endif  // CRIMSON_STORAGE_FILE_H_
