// Block-file abstraction underneath the pager. Two implementations:
// PosixFile (on-disk) and MemFile (in-memory, for tests and benches that
// want to isolate CPU cost from the filesystem).

#ifndef CRIMSON_STORAGE_FILE_H_
#define CRIMSON_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crimson {

/// Random-access byte file. Not thread-safe; the buffer pool serializes
/// access.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly n bytes at offset into scratch. Fails with IOError on
  /// short read.
  virtual Status Read(uint64_t offset, size_t n, char* scratch) const = 0;

  /// Writes exactly n bytes at offset, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  /// Forces written data to stable storage (no-op for MemFile).
  virtual Status Sync() = 0;

  /// Current file size in bytes.
  virtual uint64_t Size() const = 0;

  /// Grows the file to at least new_size bytes (zero-filled).
  virtual Status Truncate(uint64_t new_size) = 0;
};

/// Opens (creating if necessary) an on-disk file.
Result<std::unique_ptr<File>> OpenPosixFile(const std::string& path);

/// Deletes a file from the filesystem (used by tests).
Status RemoveFile(const std::string& path);

/// Creates an empty in-memory file.
std::unique_ptr<File> NewMemFile();

}  // namespace crimson

#endif  // CRIMSON_STORAGE_FILE_H_
