#include "storage/heap_file.h"

#include <cstring>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

namespace {

uint16_t NumSlots(const char* page) { return DecodeFixed16(page + 2); }
void SetNumSlots(char* page, uint16_t n) { EncodeFixed16(page + 2, n); }
uint16_t RecordAreaStart(const char* page) { return DecodeFixed16(page + 4); }
void SetRecordAreaStart(char* page, uint16_t v) { EncodeFixed16(page + 4, v); }
PageId NextPage(const char* page) { return DecodeFixed32(page + 8); }
void SetNextPage(char* page, PageId id) { EncodeFixed32(page + 8, id); }

}  // namespace

void HeapFile::FormatHeapPage(char* data) {
  memset(data, 0, kPageSize);
  data[0] = static_cast<char>(PageType::kHeap);
  SetNumSlots(data, 0);
  static_assert(kPageSize <= 0xffff, "record offsets are fixed16");
  SetRecordAreaStart(data, static_cast<uint16_t>(kPageSize));
  SetNextPage(data, kInvalidPageId);
}

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  CRIMSON_RETURN_IF_ERROR(pool->RequireWritable());
  PageId id;
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool->New(&id));
  FormatHeapPage(guard.data());
  guard.MarkDirty();
  HeapFile hf(pool, id);
  hf.tail_page_ = id;
  return hf;
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  HeapFile hf(pool, first_page);
  // Walk the chain to find the tail and count live records.
  PageId cur = first_page;
  while (cur != kInvalidPageId) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(cur));
    if (static_cast<PageType>(guard.data()[0]) != PageType::kHeap) {
      return Status::Corruption(
          StrFormat("page %u in heap chain is not a heap page", cur));
    }
    uint16_t slots = NumSlots(guard.data());
    for (uint16_t s = 0; s < slots; ++s) {
      const char* slot = guard.data() + kHeaderSize + s * kSlotSize;
      if (DecodeFixed16(slot) != kTombstoneOffset) ++hf.record_count_;
    }
    PageId next = NextPage(guard.data());
    if (next == kInvalidPageId) hf.tail_page_ = cur;
    cur = next;
  }
  return hf;
}

Result<PageId> HeapFile::WriteOverflowChain(const Slice& record) {
  PageId first = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t off = 0;
  while (off < record.size()) {
    size_t chunk = std::min<size_t>(kOverflowCapacity, record.size() - off);
    PageId id;
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->New(&id));
    char* d = guard.data();
    d[0] = static_cast<char>(PageType::kOverflow);
    EncodeFixed32(d + 1, kInvalidPageId);
    EncodeFixed16(d + 5, static_cast<uint16_t>(chunk));
    memcpy(d + kOverflowHeaderSize, record.data() + off, chunk);
    guard.MarkDirty();
    if (prev != kInvalidPageId) {
      CRIMSON_ASSIGN_OR_RETURN(PageGuard pg,
                               pool_->Fetch(prev, PageIntent::kWrite));
      EncodeFixed32(pg.data() + 1, id);
      pg.MarkDirty();
    } else {
      first = id;
    }
    prev = id;
    off += chunk;
  }
  return first;
}

Status HeapFile::FreeOverflowChain(PageId first) {
  PageId cur = first;
  while (cur != kInvalidPageId) {
    PageId next;
    {
      CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
      if (static_cast<PageType>(guard.data()[0]) != PageType::kOverflow) {
        return Status::Corruption(
            StrFormat("page %u in overflow chain is not overflow", cur));
      }
      next = DecodeFixed32(guard.data() + 1);
    }
    CRIMSON_RETURN_IF_ERROR(pool_->Free(cur));
    cur = next;
  }
  return Status::OK();
}

Result<RecordId> HeapFile::InsertPayload(const char* payload, uint16_t len,
                                         bool overflow_stub) {
  // Try the tail page first; extend the chain if it cannot fit.
  for (int attempt = 0; attempt < 2; ++attempt) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                             pool_->Fetch(tail_page_, PageIntent::kWrite));
    char* d = guard.data();
    uint16_t slots = NumSlots(d);
    uint32_t dir_end = kHeaderSize + (slots + 1u) * kSlotSize;
    uint16_t area_start = RecordAreaStart(d);
    if (dir_end + len <= area_start && slots < 0x7fff) {
      uint16_t new_start = static_cast<uint16_t>(area_start - len);
      memcpy(d + new_start, payload, len);
      char* slot = d + kHeaderSize + slots * kSlotSize;
      EncodeFixed16(slot, new_start);
      EncodeFixed16(slot + 2,
                    static_cast<uint16_t>(len | (overflow_stub ? kOverflowFlag
                                                               : 0)));
      SetNumSlots(d, static_cast<uint16_t>(slots + 1));
      SetRecordAreaStart(d, new_start);
      guard.MarkDirty();
      ++record_count_;
      return RecordId{guard.page_id(), slots};
    }
    if (attempt == 1) break;
    // Chain a fresh page.
    PageId new_id;
    CRIMSON_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New(&new_id));
    FormatHeapPage(fresh.data());
    fresh.MarkDirty();
    SetNextPage(d, new_id);
    guard.MarkDirty();
    tail_page_ = new_id;
  }
  return Status::Internal("record does not fit in a fresh heap page");
}

Result<RecordId> HeapFile::Insert(const Slice& record) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  if (record.size() <= kMaxInlineRecord) {
    return InsertPayload(record.data(), static_cast<uint16_t>(record.size()),
                         /*overflow_stub=*/false);
  }
  CRIMSON_ASSIGN_OR_RETURN(PageId first, WriteOverflowChain(record));
  char stub[kOverflowStubSize];
  EncodeFixed32(stub, first);
  EncodeFixed64(stub + 4, record.size());
  return InsertPayload(stub, kOverflowStubSize, /*overflow_stub=*/true);
}

Status HeapFile::Get(const RecordId& id, std::string* out) const {
  CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id.page));
  const char* d = guard.data();
  if (static_cast<PageType>(d[0]) != PageType::kHeap) {
    return Status::Corruption(StrFormat("page %u is not a heap page", id.page));
  }
  if (id.slot >= NumSlots(d)) {
    return Status::NotFound(StrFormat("slot %u out of range", id.slot));
  }
  const char* slot = d + kHeaderSize + id.slot * kSlotSize;
  uint16_t offset = DecodeFixed16(slot);
  if (offset == kTombstoneOffset) return Status::NotFound("record deleted");
  uint16_t raw_len = DecodeFixed16(slot + 2);
  bool is_stub = (raw_len & kOverflowFlag) != 0;
  uint16_t len = raw_len & ~kOverflowFlag;
  if (!is_stub) {
    out->assign(d + offset, len);
    return Status::OK();
  }
  // Follow the overflow chain.
  if (len != kOverflowStubSize) {
    return Status::Corruption("bad overflow stub size");
  }
  PageId cur = DecodeFixed32(d + offset);
  uint64_t total = DecodeFixed64(d + offset + 4);
  out->clear();
  out->reserve(total);
  while (cur != kInvalidPageId) {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard og, pool_->Fetch(cur));
    const char* od = og.data();
    if (static_cast<PageType>(od[0]) != PageType::kOverflow) {
      return Status::Corruption("broken overflow chain");
    }
    uint16_t chunk = DecodeFixed16(od + 5);
    out->append(od + kOverflowHeaderSize, chunk);
    cur = DecodeFixed32(od + 1);
  }
  if (out->size() != total) {
    return Status::Corruption(
        StrFormat("overflow chain length %zu != recorded %llu", out->size(),
                  static_cast<unsigned long long>(total)));
  }
  return Status::OK();
}

Status HeapFile::Delete(const RecordId& id) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  PageId overflow_first = kInvalidPageId;
  {
    CRIMSON_ASSIGN_OR_RETURN(PageGuard guard,
                             pool_->Fetch(id.page, PageIntent::kWrite));
    char* d = guard.data();
    if (static_cast<PageType>(d[0]) != PageType::kHeap) {
      return Status::Corruption(
          StrFormat("page %u is not a heap page", id.page));
    }
    if (id.slot >= NumSlots(d)) {
      return Status::NotFound(StrFormat("slot %u out of range", id.slot));
    }
    char* slot = d + kHeaderSize + id.slot * kSlotSize;
    uint16_t offset = DecodeFixed16(slot);
    if (offset == kTombstoneOffset) {
      return Status::NotFound("record already deleted");
    }
    uint16_t raw_len = DecodeFixed16(slot + 2);
    if (raw_len & kOverflowFlag) {
      overflow_first = DecodeFixed32(d + offset);
    }
    // Tombstone sentinel in the offset field (a real offset is always
    // < kPageSize); the record space is not reclaimed.
    EncodeFixed16(slot, kTombstoneOffset);
    guard.MarkDirty();
    --record_count_;
  }
  if (overflow_first != kInvalidPageId) {
    CRIMSON_RETURN_IF_ERROR(FreeOverflowChain(overflow_first));
  }
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(const RecordId&, const Slice&)>& fn) const {
  PageId cur = first_page_;
  std::string big;  // reassembly buffer for overflow records
  while (cur != kInvalidPageId) {
    PageId next = kInvalidPageId;
    // Inline records are delivered under the page guard; an overflow
    // stub forces the guard to drop first, because Get() re-fetches
    // this same page and recursively latching one frame's
    // shared_mutex on one thread is undefined behavior. The page is
    // re-fetched (a cache hit) and the slot walk resumes -- the
    // single-writer epoch guarantees the page cannot change between
    // the two guards.
    uint16_t s = 0;
    for (;;) {
      CRIMSON_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
      const char* d = guard.data();
      next = NextPage(d);
      uint16_t slots = NumSlots(d);
      bool resume = false;
      for (; s < slots; ++s) {
        const char* slot = d + kHeaderSize + s * kSlotSize;
        if (DecodeFixed16(slot) == kTombstoneOffset) continue;
        uint16_t raw_len = DecodeFixed16(slot + 2);
        RecordId rid{cur, s};
        if ((raw_len & kOverflowFlag) == 0) {
          uint16_t offset = DecodeFixed16(slot);
          if (!fn(rid, Slice(d + offset, raw_len))) return Status::OK();
        } else {
          guard.Release();  // d is dead from here
          CRIMSON_RETURN_IF_ERROR(Get(rid, &big));
          if (!fn(rid, Slice(big))) return Status::OK();
          ++s;
          resume = true;
          break;
        }
      }
      if (!resume) break;
    }
    cur = next;
  }
  return Status::OK();
}

}  // namespace crimson
