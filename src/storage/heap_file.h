// HeapFile: unordered record storage over chained slotted pages, with
// overflow chains for records larger than a page (species sequences can
// run to thousands of characters; paper §1).
//
// Page layout (kHeap):
//   [0]      page type
//   [1]      unused
//   [2..4)   num_slots            (fixed16)
//   [4..6)   record_area_start    (fixed16; records grow down from kPageSize)
//   [6..8)   unused
//   [8..12)  next heap page id    (fixed32; 0 terminates the chain)
//   [12..)   slot directory, 4 bytes per slot: offset fixed16, len fixed16
//            - offset == 0xffff        -> tombstone (deleted record)
//            - len & 0x8000           -> overflow stub (12-byte payload:
//                                        first overflow page fixed32 +
//                                        total length fixed64)
//
// Overflow page layout (kOverflow):
//   [0]      page type
//   [1..5)   next overflow page id (fixed32)
//   [5..7)   payload length        (fixed16)
//   [7..)    payload bytes

#ifndef CRIMSON_STORAGE_HEAP_FILE_H_
#define CRIMSON_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace crimson {

/// Stable address of a heap record.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
  bool valid() const { return page != kInvalidPageId; }

  /// 48-bit packing used when record ids are stored inside index values.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Unpack(uint64_t v) {
    RecordId r;
    r.page = static_cast<PageId>(v >> 16);
    r.slot = static_cast<uint16_t>(v & 0xffff);
    return r;
  }
};

/// Unordered record file. Get/Scan are safe from any number of
/// threads under the buffer pool's shared frame latches; mutations
/// belong to the single writer (Database writer epoch).
class HeapFile {
 public:
  /// Creates a new heap file; returns its first page id (the handle that
  /// must be remembered, e.g. in the catalog).
  static Result<HeapFile> Create(BufferPool* pool);

  /// Opens an existing heap file rooted at first_page.
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  HeapFile(HeapFile&& other) noexcept
      : pool_(other.pool_),
        first_page_(other.first_page_),
        tail_page_(other.tail_page_),
        record_count_(other.record_count_.load(std::memory_order_relaxed)) {}
  HeapFile& operator=(HeapFile&& other) noexcept {
    pool_ = other.pool_;
    first_page_ = other.first_page_;
    tail_page_ = other.tail_page_;
    record_count_.store(other.record_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  PageId first_page() const { return first_page_; }

  /// Appends a record; any size is accepted (large records spill to
  /// overflow pages).
  Result<RecordId> Insert(const Slice& record);

  /// Reads a record into *out. NotFound for tombstones/invalid ids.
  Status Get(const RecordId& id, std::string* out) const;

  /// Tombstones the record and releases any overflow chain.
  Status Delete(const RecordId& id);

  /// Calls fn(id, record) for every live record, in page order.
  /// Iteration stops early if fn returns false.
  Status Scan(
      const std::function<bool(const RecordId&, const Slice&)>& fn) const;

  /// Number of live records (maintained in memory; recomputed on
  /// Open). Atomic so readers may poll it while the single writer
  /// inserts/deletes concurrently.
  uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }

 private:
  HeapFile(BufferPool* pool, PageId first_page)
      : pool_(pool), first_page_(first_page) {}

  static constexpr uint32_t kHeaderSize = 12;
  static constexpr uint32_t kSlotSize = 4;
  static constexpr uint16_t kOverflowFlag = 0x8000;
  static constexpr uint16_t kTombstoneOffset = 0xffff;
  static constexpr uint32_t kOverflowStubSize = 12;
  // Records up to this size are stored inline in a heap page.
  static constexpr uint32_t kMaxInlineRecord = 2048;
  static constexpr uint32_t kOverflowHeaderSize = 7;
  static constexpr uint32_t kOverflowCapacity = kPageSize - kOverflowHeaderSize;

  static void FormatHeapPage(char* data);
  Result<RecordId> InsertPayload(const char* payload, uint16_t len,
                                 bool overflow_stub);
  Result<PageId> WriteOverflowChain(const Slice& record);
  Status FreeOverflowChain(PageId first);

  BufferPool* pool_;
  PageId first_page_;
  PageId tail_page_ = kInvalidPageId;  // append hint (writer-only)
  std::atomic<uint64_t> record_count_{0};
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_HEAP_FILE_H_
