// Order-preserving key encodings for B+Tree indexes: memcmp order on
// the encoded bytes equals the natural order of the value. Used for the
// species-name index (raw bytes), the time index (doubles), and node-id
// indexes (u64).

#ifndef CRIMSON_STORAGE_KEY_CODEC_H_
#define CRIMSON_STORAGE_KEY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace crimson {

/// Appends a big-endian u64 (memcmp order == numeric order).
inline void AppendU64Key(std::string* dst, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline uint64_t DecodeU64Key(const char* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(src[i]);
  }
  return v;
}

/// Appends a double such that memcmp order equals numeric order
/// (including negatives; NaNs sort above +inf and are not meaningful).
inline void AppendDoubleKey(std::string* dst, double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  if (bits & (1ULL << 63)) {
    bits = ~bits;  // negative: reverse order of magnitudes
  } else {
    bits |= (1ULL << 63);  // positive: sort above negatives
  }
  AppendU64Key(dst, bits);
}

inline double DecodeDoubleKey(const char* src) {
  uint64_t bits = DecodeU64Key(src);
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  double d;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Convenience single-value encoders.
inline std::string U64Key(uint64_t v) {
  std::string s;
  AppendU64Key(&s, v);
  return s;
}

inline std::string DoubleKey(double d) {
  std::string s;
  AppendDoubleKey(&s, d);
  return s;
}

inline std::string StringKey(std::string_view v) { return std::string(v); }

}  // namespace crimson

#endif  // CRIMSON_STORAGE_KEY_CODEC_H_
