// Page constants and the database file header layout.
//
// A Crimson database file is an array of fixed-size pages. Page 0 is the
// header page; all other pages are heap pages, B+Tree pages, or free
// pages chained on a freelist.

#ifndef CRIMSON_STORAGE_PAGE_H_
#define CRIMSON_STORAGE_PAGE_H_

#include <cstdint>

namespace crimson {

/// Fixed page size. 8 KiB balances record fan-out against buffer-pool
/// granularity; the value is baked into database files.
inline constexpr uint32_t kPageSize = 8192;

/// Page identifier (index into the file). kInvalidPageId doubles as
/// "null pointer" in on-page links.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0;  // page 0 is the header page
inline constexpr PageId kHeaderPageId = 0;

/// On-page type tag (first byte of every non-header page).
enum class PageType : uint8_t {
  kFree = 0,
  kHeap = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
  kOverflow = 4,
  kBTreeAnchor = 5,
};

/// Database file header (stored at offset 0 of page 0).
///   [0..8)   magic "CRIMSON1"
///   [8..12)  page size
///   [12..16) page count (including header)
///   [16..20) freelist head page id (0 = empty)
///   [20..24) catalog btree root page id (0 = absent)
inline constexpr char kDbMagic[8] = {'C', 'R', 'I', 'M', 'S', 'O', 'N', '1'};
inline constexpr uint32_t kHeaderMagicOffset = 0;
inline constexpr uint32_t kHeaderPageSizeOffset = 8;
inline constexpr uint32_t kHeaderPageCountOffset = 12;
inline constexpr uint32_t kHeaderFreelistOffset = 16;
inline constexpr uint32_t kHeaderCatalogRootOffset = 20;

/// FNV-1a 64-bit hash, used for page checksums and test fixtures.
inline uint64_t Fnv1a64(const char* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace crimson

#endif  // CRIMSON_STORAGE_PAGE_H_
