#include "storage/page_versions.h"

#include <algorithm>
#include <cassert>

namespace crimson {

namespace {

/// One entry per snapshot this thread currently holds, innermost last.
/// Entries are owner-qualified so several databases in one process
/// (tests open many) never see each other's snapshots. An entry whose
/// token is gone from the owner's registry (ended on another thread)
/// is purged lazily during resolution.
struct ThreadSnapshotEntry {
  const PageVersions* owner;
  uint64_t token;
};

thread_local std::vector<ThreadSnapshotEntry> t_snapshots;

}  // namespace

void PageVersions::BeginTxn(uint32_t base_page_count) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(!txn_active_ && "write transaction already open");
  txn_active_ = true;
  txn_base_page_count_ = base_page_count;
  capture_epoch_ = committed_epoch_;
  writer_thread_ = std::this_thread::get_id();
  txn_captured_.clear();
}

void PageVersions::SealTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!txn_active_) return;
  txn_active_ = false;
  writer_thread_ = std::thread::id();
  txn_captured_.clear();
  ++committed_epoch_;
  GcLocked();
}

void PageVersions::DropTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!txn_active_) return;
  txn_active_ = false;
  writer_thread_ = std::thread::id();
  // The aborted transaction's captures are the newest entry of each
  // chain they touched (tagged capture_epoch_); with the frames/disk
  // restored to those very bytes, the entries are redundant.
  for (PageId id : txn_captured_) {
    auto it = versions_.find(id);
    if (it == versions_.end()) continue;
    auto& chain = it->second;
    while (!chain.empty() && chain.back().valid_through == capture_epoch_) {
      chain.pop_back();
      ++stats_.versions_dropped;
      if (dropped_ctr_) dropped_ctr_->Increment();
    }
    if (chain.empty()) versions_.erase(it);
  }
  txn_captured_.clear();
  GcLocked();
}

void PageVersions::MaybeCapture(PageId id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!txn_active_ || id >= txn_base_page_count_) return;
  if (!txn_captured_.insert(id).second) return;  // already captured
  auto image = std::make_shared<std::vector<char>>(data, data + kPageSize);
  Version v;
  v.valid_through = capture_epoch_;
  v.data = std::move(image);
  auto& chain = versions_[id];
  assert(chain.empty() || chain.back().valid_through < capture_epoch_);
  chain.push_back(std::move(v));
  ++stats_.captured_pages;
  if (captured_ctr_) captured_ctr_->Increment();
}

bool PageVersions::WouldCapture(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_active_ && id < txn_base_page_count_ &&
         txn_captured_.count(id) == 0;
}

PageVersions::Snapshot PageVersions::RegisterSnapshot() {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.token = next_token_++;
    snap.epoch = committed_epoch_;
    active_.emplace(snap.token, snap.epoch);
  }
  t_snapshots.push_back({this, snap.token});
  return snap;
}

void PageVersions::Unregister(uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(token);
    GcLocked();
  }
  // Pop from this thread's stack when ended where it began (the common
  // case); a cross-thread End leaves the origin entry for lazy purge.
  for (auto it = t_snapshots.rbegin(); it != t_snapshots.rend(); ++it) {
    if (it->owner == this && it->token == token) {
      t_snapshots.erase(std::next(it).base());
      break;
    }
  }
}

PageVersions::Resolution PageVersions::ResolveForThread(
    PageId id, std::shared_ptr<const std::vector<char>>* out) {
  // Lock-free fast path: no snapshot of this table on this thread
  // (covers the writer thread and every non-transactional reader).
  bool any = false;
  for (const ThreadSnapshotEntry& e : t_snapshots) {
    if (e.owner == this) {
      any = true;
      break;
    }
  }
  if (!any) return Resolution::kNoSnapshot;

  std::lock_guard<std::mutex> lock(mu_);
  if (txn_active_ && writer_thread_ == std::this_thread::get_id()) {
    // The writer reads its own uncommitted mutations, snapshots held
    // by this thread notwithstanding.
    return Resolution::kNoSnapshot;
  }
  // Innermost snapshot still live in the registry; purge stale entries
  // (ReadTxns ended on another thread) as they surface.
  uint64_t epoch = 0;
  bool found = false;
  for (auto it = t_snapshots.end(); it != t_snapshots.begin();) {
    --it;
    if (it->owner != this) continue;
    auto live = active_.find(it->token);
    if (live == active_.end()) {
      it = t_snapshots.erase(it);
      continue;
    }
    epoch = live->second;
    found = true;
    break;
  }
  if (!found) return Resolution::kNoSnapshot;

  auto it = versions_.find(id);
  if (it == versions_.end()) return Resolution::kUseFrame;
  // Smallest valid_through >= snapshot epoch: the image the page held
  // when the snapshot's epoch was the committed state.
  for (const Version& v : it->second) {
    if (v.valid_through >= epoch) {
      *out = v.data;
      ++stats_.version_hits;
      if (version_hits_ctr_) version_hits_ctr_->Increment();
      return Resolution::kUseVersion;
    }
  }
  return Resolution::kUseFrame;
}

void PageVersions::GcLocked() {
  // An entry tagged E serves snapshots S <= E; keep it while such a
  // snapshot is live or the committed epoch has not moved past E (a
  // snapshot registered right now would pin committed_epoch_).
  uint64_t floor = committed_epoch_;
  for (const auto& [token, epoch] : active_) {
    floor = std::min(floor, epoch);
  }
  for (auto it = versions_.begin(); it != versions_.end();) {
    auto& chain = it->second;
    size_t keep = 0;
    while (keep < chain.size() && chain[keep].valid_through < floor) ++keep;
    if (keep > 0) {
      stats_.versions_dropped += keep;
      if (dropped_ctr_) dropped_ctr_->Add(keep);
      chain.erase(chain.begin(), chain.begin() + keep);
    }
    if (chain.empty()) {
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageVersions::BindMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  captured_ctr_ = registry->GetCounter("pages.captured_pages");
  version_hits_ctr_ = registry->GetCounter("pages.version_hits");
  dropped_ctr_ = registry->GetCounter("pages.versions_dropped");
}

PageVersions::Stats PageVersions::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.live_versions = 0;
  for (const auto& [id, chain] : versions_) s.live_versions += chain.size();
  s.active_snapshots = active_.size();
  s.committed_epoch = committed_epoch_;
  return s;
}

}  // namespace crimson
