// PageVersions: the MVCC side table that gives read transactions a
// true snapshot while the single writer mutates pages in place.
//
// Model. Committed state advances in *epochs*: sealing the active
// write transaction bumps committed_epoch. A read transaction
// registers a snapshot pinned at the committed epoch of its BeginRead;
// the writer, on first taking a page exclusively (Fetch kWrite, or a
// Free), captures a copy of that page's last *committed* image into a
// per-page version chain tagged valid_through = the epoch the image
// was current for. A reader at snapshot S resolving page P picks the
// chain entry with the smallest valid_through >= S -- the bytes P held
// when S was the committed state -- and falls back to the live frame
// when no entry qualifies (the page has not changed since S).
//
// Scope and invariants:
//  - Versions are purely in-memory. They never reach the WAL or the
//    data file, so crash recovery replays only committed page images
//    and cannot observe them (snapshot_read_test drives a crash point
//    through an active snapshot to pin this down).
//  - Capture happens before the first mutation of a page per
//    transaction, under that page's exclusive frame latch, so a
//    version is always a committed image, never a torn one.
//  - Pages allocated by the active transaction (id >= the page count
//    at Begin) are unreachable from any snapshot-consistent root and
//    are never captured.
//  - The writer thread bypasses resolution entirely: inside its own
//    transaction it must read its own uncommitted writes.
//  - Snapshots are tracked per thread (a thread-local stack) so the
//    buffer pool can resolve a plain Fetch(id, kRead) with no API
//    change up the stack. Ending a ReadTxn on a different thread than
//    its BeginRead is allowed: the registry entry (which gates
//    visibility and GC) is removed immediately; the origin thread's
//    stale stack entry is purged lazily on its next resolution.
//
// Garbage collection: a chain entry tagged E is needed only while some
// active snapshot S <= E exists or the epoch has not advanced past it;
// Seal/Unregister drop everything older than
// min(active snapshot epochs, committed_epoch).
//
// Thread safety: fully thread-safe; one short internal mutex guards
// the chains, the snapshot registry, and the epoch counter.

#ifndef CRIMSON_STORAGE_PAGE_VERSIONS_H_
#define CRIMSON_STORAGE_PAGE_VERSIONS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/page.h"

namespace crimson {

class PageVersions {
 public:
  /// One registered read snapshot. The token identifies it in the
  /// registry; the epoch is the committed epoch it pinned.
  struct Snapshot {
    uint64_t token = 0;
    uint64_t epoch = 0;
  };

  /// Outcome of resolving a page read against the caller's snapshot.
  enum class Resolution {
    /// No snapshot on this thread (or the caller is the writer):
    /// read the live frame, current semantics.
    kNoSnapshot,
    /// Snapshot active, but the page is unchanged since it: the live
    /// frame (or disk) holds the right bytes.
    kUseFrame,
    /// Snapshot active and the page changed since: use the returned
    /// captured image.
    kUseVersion,
  };

  struct Stats {
    uint64_t captured_pages = 0;   // pre-images copied, cumulative
    uint64_t version_hits = 0;     // reads served from a version
    uint64_t versions_dropped = 0; // GC'd entries, cumulative
    uint64_t live_versions = 0;    // chain entries currently held
    uint64_t active_snapshots = 0;
    uint64_t committed_epoch = 0;
  };

  PageVersions() = default;
  PageVersions(const PageVersions&) = delete;
  PageVersions& operator=(const PageVersions&) = delete;

  // -- writer side (driven by Database::Begin/Commit/Abort) ----------------

  /// Opens capture for a write transaction on the calling thread.
  /// Pages >= base_page_count are transaction-new and never captured.
  void BeginTxn(uint32_t base_page_count);

  /// Makes the transaction's mutations visible: bumps the committed
  /// epoch (its captures stay to serve older snapshots) and GCs.
  /// No-op when no transaction is open.
  void SealTxn();

  /// Rolled-back transaction: removes the images it captured (the
  /// engine restores the frames/disk to exactly those bytes, so the
  /// live path is again correct for every snapshot). No-op when no
  /// transaction is open.
  void DropTxn();

  /// Captures `data` (kPageSize bytes, the page's committed image) for
  /// `id` if the active transaction has not captured it yet. No-op
  /// outside a transaction or for transaction-new pages.
  void MaybeCapture(PageId id, const char* data);

  /// True when MaybeCapture(id, ...) would copy -- lets callers that
  /// must fetch the committed bytes from disk first (page frees of
  /// non-resident pages) skip the read when capture is a no-op.
  bool WouldCapture(PageId id);

  // -- reader side ---------------------------------------------------------

  /// Registers a snapshot at the current committed epoch and pushes it
  /// on the calling thread's snapshot stack.
  Snapshot RegisterSnapshot();

  /// Removes a snapshot from the registry (any thread) and from the
  /// calling thread's stack if present there.
  void Unregister(uint64_t token);

  /// Resolves a read of `id` against the calling thread's innermost
  /// live snapshot of this table. On kUseVersion, *out holds the
  /// captured image (shared, immutable).
  Resolution ResolveForThread(PageId id,
                              std::shared_ptr<const std::vector<char>>* out);

  Stats stats() const;

  /// Mirrors the cumulative counters (pages.captured_pages,
  /// pages.version_hits, pages.versions_dropped) into `registry` from
  /// here on. Call before any capture/resolve traffic (Database::Build
  /// does); stats() stays the per-instance source of truth either way.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// The current committed epoch alone (cheaper than stats(), which
  /// walks the chains; hot-path callers stamping cache entries use
  /// this).
  uint64_t committed_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return committed_epoch_;
  }

 private:
  struct Version {
    /// Last epoch this image was the committed content for.
    uint64_t valid_through = 0;
    std::shared_ptr<const std::vector<char>> data;
  };

  void GcLocked();

  mutable std::mutex mu_;
  uint64_t committed_epoch_ = 0;
  uint64_t next_token_ = 1;
  /// token -> pinned epoch, for every live snapshot.
  std::unordered_map<uint64_t, uint64_t> active_;
  /// Per-page chains, each sorted by valid_through ascending.
  std::unordered_map<PageId, std::vector<Version>> versions_;

  bool txn_active_ = false;
  uint32_t txn_base_page_count_ = 0;
  /// Epoch the active transaction's captures are tagged with (the
  /// committed epoch at its Begin).
  uint64_t capture_epoch_ = 0;
  std::thread::id writer_thread_{};
  std::set<PageId> txn_captured_;

  Stats stats_;
  /// Telemetry mirrors (null until BindMetrics): bumped alongside the
  /// stats_ members so a session registry sees the same counts.
  obs::Counter* captured_ctr_ = nullptr;
  obs::Counter* version_hits_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_PAGE_VERSIONS_H_
