#include "storage/pager.h"

#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           bool deferred_header) {
  auto pager = std::unique_ptr<Pager>(new Pager(std::move(file)));
  pager->deferred_ = deferred_header;
  if (pager->file_->Size() == 0) {
    CRIMSON_RETURN_IF_ERROR(pager->InitializeFresh());
  } else {
    CRIMSON_RETURN_IF_ERROR(pager->LoadHeader());
  }
  return pager;
}

Status Pager::InitializeFresh() {
  page_count_ = 1;
  freelist_head_ = kInvalidPageId;
  catalog_root_ = kInvalidPageId;
  return WriteHeader();
}

Status Pager::LoadHeader() {
  std::vector<char> buf(kPageSize);
  CRIMSON_RETURN_IF_ERROR(file_->Read(0, kPageSize, buf.data()));
  if (memcmp(buf.data() + kHeaderMagicOffset, kDbMagic, sizeof(kDbMagic)) !=
      0) {
    return Status::Corruption("bad database magic");
  }
  uint32_t page_size = DecodeFixed32(buf.data() + kHeaderPageSizeOffset);
  if (page_size != kPageSize) {
    return Status::Corruption(
        StrFormat("page size mismatch: file has %u, build expects %u",
                  page_size, kPageSize));
  }
  page_count_ = DecodeFixed32(buf.data() + kHeaderPageCountOffset);
  freelist_head_ = DecodeFixed32(buf.data() + kHeaderFreelistOffset);
  catalog_root_ = DecodeFixed32(buf.data() + kHeaderCatalogRootOffset);
  if (page_count_ == 0) return Status::Corruption("zero page count");
  return Status::OK();
}

Status Pager::WriteHeader() {
  std::vector<char> buf(kPageSize, 0);
  memcpy(buf.data() + kHeaderMagicOffset, kDbMagic, sizeof(kDbMagic));
  EncodeFixed32(buf.data() + kHeaderPageSizeOffset, kPageSize);
  EncodeFixed32(buf.data() + kHeaderPageCountOffset, page_count_);
  EncodeFixed32(buf.data() + kHeaderFreelistOffset, freelist_head_);
  EncodeFixed32(buf.data() + kHeaderCatalogRootOffset, catalog_root_);
  return file_->Write(0, buf.data(), kPageSize);
}

Status Pager::ReadPage(PageId id, char* buf) const {
  if (id >= page_count_) {
    return Status::OutOfRange(
        StrFormat("read of page %u beyond page count %u", id,
                  page_count_.load()));
  }
  return file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf);
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange(
        StrFormat("write of page %u beyond page count %u", id,
                  page_count_.load()));
  }
  return file_->Write(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize);
}

Result<PageId> Pager::AllocatePage() {
  if (deferred_) {
    return Status::Internal(
        "AllocatePage bypasses the WAL; use the BufferPool in deferred mode");
  }
  if (freelist_head_ != kInvalidPageId) {
    PageId id = freelist_head_;
    // A free page stores the next freelist entry at byte offset 1
    // (offset 0 holds the kFree type tag).
    std::vector<char> buf(kPageSize);
    CRIMSON_RETURN_IF_ERROR(ReadPage(id, buf.data()));
    if (static_cast<PageType>(buf[0]) != PageType::kFree) {
      return Status::Corruption(
          StrFormat("freelist page %u is not marked free", id));
    }
    freelist_head_ = DecodeFixed32(buf.data() + 1);
    CRIMSON_RETURN_IF_ERROR(WriteHeader());
    return id;
  }
  PageId id = page_count_;
  ++page_count_;
  // Extend the file with a zero page so later reads succeed.
  std::vector<char> zero(kPageSize, 0);
  CRIMSON_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * kPageSize, zero.data(),
                   kPageSize));
  CRIMSON_RETURN_IF_ERROR(WriteHeader());
  return id;
}

Status Pager::FreePage(PageId id) {
  if (deferred_) {
    return Status::Internal(
        "FreePage bypasses the WAL; use the BufferPool in deferred mode");
  }
  if (id == kHeaderPageId || id >= page_count_) {
    return Status::InvalidArgument(StrFormat("cannot free page %u", id));
  }
  std::vector<char> buf(kPageSize, 0);
  buf[0] = static_cast<char>(PageType::kFree);
  EncodeFixed32(buf.data() + 1, freelist_head_);
  CRIMSON_RETURN_IF_ERROR(WritePage(id, buf.data()));
  freelist_head_ = id;
  return WriteHeader();
}

Status Pager::SetCatalogRoot(PageId root) {
  catalog_root_ = root;
  if (deferred_) {
    header_dirty_ = true;
    return Status::OK();
  }
  return WriteHeader();
}

Status Pager::Flush() {
  CRIMSON_RETURN_IF_ERROR(WriteHeader());
  header_dirty_ = false;
  return file_->Sync();
}

Result<PageId> Pager::DeferredAllocateFromExtension() {
  if (!deferred_) {
    return Status::Internal("deferred allocation requires deferred mode");
  }
  PageId id = page_count_;
  ++page_count_;
  header_dirty_ = true;
  return id;
}

Status Pager::DeferredSetFreelistHead(PageId head) {
  if (!deferred_) {
    return Status::Internal("deferred freelist relink requires deferred mode");
  }
  freelist_head_ = head;
  header_dirty_ = true;
  return Status::OK();
}

Status Pager::WriteHeaderIfDirty() {
  if (!header_dirty_) return Status::OK();
  CRIMSON_RETURN_IF_ERROR(WriteHeader());
  header_dirty_ = false;
  return Status::OK();
}

Pager::HeaderSnapshot Pager::snapshot() const {
  HeaderSnapshot snap;
  snap.page_count = page_count_;
  snap.freelist_head = freelist_head_;
  snap.catalog_root = catalog_root_;
  snap.header_dirty = header_dirty_;
  return snap;
}

void Pager::Restore(const HeaderSnapshot& snap) {
  page_count_ = snap.page_count;
  freelist_head_ = snap.freelist_head;
  catalog_root_ = snap.catalog_root;
  header_dirty_ = snap.header_dirty;
}

}  // namespace crimson
