// Pager: page-granular allocation and I/O over a File, plus the
// database header (page count, freelist, catalog root).

#ifndef CRIMSON_STORAGE_PAGER_H_
#define CRIMSON_STORAGE_PAGER_H_

#include <atomic>
#include <memory>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"

namespace crimson {

/// Owns the database file and its header. All page reads/writes go
/// through here; the BufferPool caches on top.
///
/// Two header-write disciplines:
///  - Eager (default, durability off): AllocatePage/FreePage/
///    SetCatalogRoot persist the header immediately -- today's
///    behavior and file format, byte for byte.
///  - Deferred (WAL mode): header mutations only update memory and set
///    a dirty flag; the transaction commit logs a header image and
///    force-writes the page, so a crash mid-transaction leaves the
///    on-disk header (and freelist) at the previous committed state.
///
/// Thread safety: page reads may run concurrently (PosixFile uses
/// pread; MemFile synchronizes internally). Header mutations belong to
/// the single writer -- the Database writer epoch excludes readers --
/// but the in-memory header fields are relaxed atomics so concurrent
/// readers of page_count()/catalog_root() never tear.
class Pager {
 public:
  /// Opens an existing database file or initializes a fresh one.
  /// `deferred_header` selects the WAL-mode write discipline above.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             bool deferred_header = false);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page `id` from `buf` (kPageSize bytes).
  Status WritePage(PageId id, const char* buf);

  /// Allocates a page: pops the freelist or extends the file.
  /// The returned page's content is undefined; callers must format it.
  Result<PageId> AllocatePage();

  /// Returns a page to the freelist.
  Status FreePage(PageId id);

  /// Total pages in the file, including header.
  uint32_t page_count() const { return page_count_; }

  /// Catalog root accessors (persisted in the header page).
  PageId catalog_root() const { return catalog_root_; }
  Status SetCatalogRoot(PageId root);

  /// Flushes the header and syncs the file.
  Status Flush();

  // -- WAL-mode (deferred header) surface ----------------------------------

  bool deferred_header() const { return deferred_; }
  bool header_dirty() const { return header_dirty_; }
  PageId freelist_head() const { return freelist_head_; }

  /// Extends the page count without touching the file; the new page's
  /// first write (spill, commit force, or WAL replay) extends it.
  Result<PageId> DeferredAllocateFromExtension();

  /// Relinks the freelist head in memory; the freelist node itself is
  /// formatted as a normal (logged) page by the BufferPool.
  Status DeferredSetFreelistHead(PageId head);

  /// Writes the header page if any deferred mutation is pending. Plain
  /// write, no sync -- the commit already logged the header image.
  Status WriteHeaderIfDirty();

  /// In-memory header state captured at transaction begin and restored
  /// on abort.
  struct HeaderSnapshot {
    uint32_t page_count = 1;
    PageId freelist_head = kInvalidPageId;
    PageId catalog_root = kInvalidPageId;
    bool header_dirty = false;
  };
  HeaderSnapshot snapshot() const;
  void Restore(const HeaderSnapshot& snap);

 private:
  explicit Pager(std::unique_ptr<File> file) : file_(std::move(file)) {}

  Status WriteHeader();
  Status LoadHeader();
  Status InitializeFresh();

  std::unique_ptr<File> file_;
  std::atomic<uint32_t> page_count_{1};
  std::atomic<PageId> freelist_head_{kInvalidPageId};
  std::atomic<PageId> catalog_root_{kInvalidPageId};
  bool deferred_ = false;
  std::atomic<bool> header_dirty_{false};
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_PAGER_H_
