// Pager: page-granular allocation and I/O over a File, plus the
// database header (page count, freelist, catalog root).

#ifndef CRIMSON_STORAGE_PAGER_H_
#define CRIMSON_STORAGE_PAGER_H_

#include <memory>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"

namespace crimson {

/// Owns the database file and its header. All page reads/writes go
/// through here; the BufferPool caches on top.
class Pager {
 public:
  /// Opens an existing database file or initializes a fresh one.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page `id` from `buf` (kPageSize bytes).
  Status WritePage(PageId id, const char* buf);

  /// Allocates a page: pops the freelist or extends the file.
  /// The returned page's content is undefined; callers must format it.
  Result<PageId> AllocatePage();

  /// Returns a page to the freelist.
  Status FreePage(PageId id);

  /// Total pages in the file, including header.
  uint32_t page_count() const { return page_count_; }

  /// Catalog root accessors (persisted in the header page).
  PageId catalog_root() const { return catalog_root_; }
  Status SetCatalogRoot(PageId root);

  /// Flushes the header and syncs the file.
  Status Flush();

 private:
  explicit Pager(std::unique_ptr<File> file) : file_(std::move(file)) {}

  Status WriteHeader();
  Status LoadHeader();
  Status InitializeFresh();

  std::unique_ptr<File> file_;
  uint32_t page_count_ = 1;
  PageId freelist_head_ = kInvalidPageId;
  PageId catalog_root_ = kInvalidPageId;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_PAGER_H_
