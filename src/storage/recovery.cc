#include "storage/recovery.h"

#include <cstring>
#include <functional>

#include "common/coding.h"
#include "common/log.h"
#include "common/string_util.h"

namespace crimson {

namespace {

struct RawRecord {
  WalRecordType type;
  Lsn lsn;
  Slice body;  // points into the scan buffer
};

/// Streams every structurally valid record in log order, stopping at
/// the first framing/CRC/ordering break (everything after a break was
/// never acknowledged: commit fsyncs persist the whole prefix).
/// fn returning false stops the scan early without error.
Status ScanWal(const std::string& base, const StorageEnv& env,
               WalScanSummary* summary,
               const std::function<bool(const RawRecord&)>& fn) {
  *summary = WalScanSummary();
  const std::string seg1 = WalSegmentPath(base, 1);
  CRIMSON_ASSIGN_OR_RETURN(bool exists, env.file_exists(seg1));
  if (!exists) return Status::OK();

  Lsn next_lsn = 1;
  for (uint32_t idx = 1;; ++idx) {
    CRIMSON_ASSIGN_OR_RETURN(bool seg_exists,
                             env.file_exists(WalSegmentPath(base, idx)));
    if (!seg_exists) return Status::OK();
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                             env.open_file(WalSegmentPath(base, idx)));
    const uint64_t size = file->Size();
    if (size < kWalSegmentHeaderSize) return Status::OK();
    std::vector<char> hdr(kWalSegmentHeaderSize);
    CRIMSON_RETURN_IF_ERROR(file->Read(0, hdr.size(), hdr.data()));
    if (memcmp(hdr.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      return Status::OK();
    }
    const uint64_t gen = DecodeFixed64(hdr.data() + 8);
    const uint32_t stamped_idx = DecodeFixed32(hdr.data() + 16);
    if (stamped_idx != idx) return Status::OK();
    if (idx == 1) {
      summary->wal_found = true;
      summary->generation = gen;
    } else if (gen != summary->generation) {
      // Stale leftover from before the last truncation; not chained.
      return Status::OK();
    }

    uint64_t off = kWalSegmentHeaderSize;
    std::vector<char> buf;
    for (;;) {
      if (off + kWalRecordHeaderSize > size) break;  // segment exhausted
      char rh[kWalRecordHeaderSize];
      CRIMSON_RETURN_IF_ERROR(file->Read(off, sizeof(rh), rh));
      const uint32_t len = DecodeFixed32(rh);
      const uint32_t crc = DecodeFixed32(rh + 4);
      if (len < 9 || len > kWalMaxPayload) return Status::OK();
      if (off + kWalRecordHeaderSize + len > size) return Status::OK();
      buf.resize(len);
      CRIMSON_RETURN_IF_ERROR(
          file->Read(off + kWalRecordHeaderSize, len, buf.data()));
      if (Crc32(buf.data(), len) != crc) return Status::OK();

      RawRecord rec;
      const uint8_t type = static_cast<uint8_t>(buf[0]);
      if (type < 1 || type > 3) return Status::OK();
      rec.type = static_cast<WalRecordType>(type);
      rec.lsn = DecodeFixed64(buf.data() + 1);
      if (rec.lsn != next_lsn) return Status::OK();
      rec.body = Slice(buf.data() + 9, len - 9);
      switch (rec.type) {
        case WalRecordType::kPageImage:
          if (rec.body.size() != 4 + kPageSize) return Status::OK();
          break;
        case WalRecordType::kHeaderImage:
          if (rec.body.size() != 12) return Status::OK();
          break;
        case WalRecordType::kCommit:
          if (rec.body.size() != 8) return Status::OK();
          break;
      }

      ++next_lsn;
      ++summary->records;
      summary->last_lsn = rec.lsn;
      summary->bytes_scanned += kWalRecordHeaderSize + len;
      if (rec.type == WalRecordType::kCommit) {
        ++summary->commits;
        summary->last_commit_lsn = rec.lsn;
      }
      if (!fn(rec)) return Status::OK();
      off += kWalRecordHeaderSize + len;
    }
  }
}

WalRecord DecodeRecord(const RawRecord& raw) {
  WalRecord rec;
  rec.type = raw.type;
  rec.lsn = raw.lsn;
  switch (raw.type) {
    case WalRecordType::kPageImage:
      rec.page = DecodeFixed32(raw.body.data());
      rec.image.assign(raw.body.data() + 4, kPageSize);
      break;
    case WalRecordType::kHeaderImage:
      rec.page_count = DecodeFixed32(raw.body.data());
      rec.freelist_head = DecodeFixed32(raw.body.data() + 4);
      rec.catalog_root = DecodeFixed32(raw.body.data() + 8);
      break;
    case WalRecordType::kCommit:
      rec.txn_id = DecodeFixed64(raw.body.data());
      break;
  }
  return rec;
}

}  // namespace

Result<std::vector<WalRecord>> ReadWalRecords(const std::string& base,
                                              const StorageEnv& env,
                                              WalScanSummary* summary) {
  WalScanSummary local;
  if (summary == nullptr) summary = &local;
  std::vector<WalRecord> records;
  CRIMSON_RETURN_IF_ERROR(ScanWal(base, env, summary,
                                  [&](const RawRecord& raw) {
                                    records.push_back(DecodeRecord(raw));
                                    return true;
                                  }));
  summary->tail_records_discarded =
      summary->records -
      static_cast<uint64_t>(summary->last_commit_lsn);  // lsn == ordinal
  return records;
}

Result<bool> WalExists(const std::string& base, const StorageEnv& env) {
  CRIMSON_ASSIGN_OR_RETURN(bool exists,
                           env.file_exists(WalSegmentPath(base, 1)));
  if (!exists) return false;
  CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           env.open_file(WalSegmentPath(base, 1)));
  return f->Size() >= kWalSegmentHeaderSize;
}

Result<RecoveryResult> RecoverFromWal(const std::string& base,
                                      const StorageEnv& env, File* db_file) {
  RecoveryResult result;
  // Pass 1: find the last committed record (validates the whole chain).
  CRIMSON_RETURN_IF_ERROR(
      ScanWal(base, env, &result.scan, [](const RawRecord&) { return true; }));
  result.scan.tail_records_discarded =
      result.scan.records - static_cast<uint64_t>(result.scan.last_commit_lsn);
  if (!result.scan.wal_found || result.scan.last_commit_lsn == 0) {
    return result;
  }

  // Pass 2: replay the committed prefix in log order (later images of
  // the same page simply overwrite earlier ones -- idempotent).
  const Lsn limit = result.scan.last_commit_lsn;
  uint32_t final_page_count = 0;
  Status apply_status;
  WalScanSummary replay_summary;
  CRIMSON_RETURN_IF_ERROR(ScanWal(
      base, env, &replay_summary, [&](const RawRecord& raw) {
        if (raw.lsn > limit) return false;
        switch (raw.type) {
          case WalRecordType::kPageImage: {
            const PageId page = DecodeFixed32(raw.body.data());
            apply_status =
                db_file->Write(static_cast<uint64_t>(page) * kPageSize,
                               raw.body.data() + 4, kPageSize);
            if (!apply_status.ok()) return false;
            ++result.pages_replayed;
            break;
          }
          case WalRecordType::kHeaderImage: {
            // Rebuild the header page exactly as Pager::WriteHeader
            // lays it out (zero page + magic + fields).
            std::vector<char> hdr(kPageSize, 0);
            memcpy(hdr.data() + kHeaderMagicOffset, kDbMagic,
                   sizeof(kDbMagic));
            EncodeFixed32(hdr.data() + kHeaderPageSizeOffset, kPageSize);
            final_page_count = DecodeFixed32(raw.body.data());
            EncodeFixed32(hdr.data() + kHeaderPageCountOffset,
                          final_page_count);
            EncodeFixed32(hdr.data() + kHeaderFreelistOffset,
                          DecodeFixed32(raw.body.data() + 4));
            EncodeFixed32(hdr.data() + kHeaderCatalogRootOffset,
                          DecodeFixed32(raw.body.data() + 8));
            apply_status = db_file->Write(0, hdr.data(), kPageSize);
            if (!apply_status.ok()) return false;
            ++result.headers_replayed;
            break;
          }
          case WalRecordType::kCommit:
            break;
        }
        return true;
      }));
  CRIMSON_RETURN_IF_ERROR(apply_status);

  // Trim spilled uncommitted pages past the committed page count (and
  // zero-extend if a committed page image landed short of it).
  if (final_page_count > 0) {
    const uint64_t want = static_cast<uint64_t>(final_page_count) * kPageSize;
    if (db_file->Size() != want) {
      CRIMSON_RETURN_IF_ERROR(db_file->Truncate(want));
    }
  }
  CRIMSON_RETURN_IF_ERROR(db_file->Sync());
  result.replayed = true;
  CRIMSON_LOG(kInfo) << "WAL recovery: replayed " << result.pages_replayed
                     << " page images across " << result.scan.commits
                     << " committed txns (discarded "
                     << result.scan.tail_records_discarded
                     << " uncommitted tail records)";
  return result;
}

}  // namespace crimson
