// Crash recovery: scans the write-ahead log left beside a database
// file, discards the torn/uncommitted tail, and replays committed
// page after-images idempotently onto the database file.
//
// Run *before* the Pager loads the header: a crash can tear the header
// page itself, and the replayed kHeaderImage record is what restores
// it. After a successful replay the database file is synced; the caller
// then resets the WAL (Wal::Open does this) so stale records can never
// be replayed over newer state.

#ifndef CRIMSON_STORAGE_RECOVERY_H_
#define CRIMSON_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace crimson {

/// One decoded WAL record (exposed for tests and tooling; recovery
/// itself streams instead of materializing page images).
struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  Lsn lsn = 0;
  // kPageImage
  PageId page = kInvalidPageId;
  std::string image;
  // kHeaderImage
  uint32_t page_count = 0;
  PageId freelist_head = kInvalidPageId;
  PageId catalog_root = kInvalidPageId;
  // kCommit
  uint64_t txn_id = 0;
};

struct WalScanSummary {
  bool wal_found = false;        // a valid segment 1 header exists
  uint64_t generation = 0;
  Lsn last_lsn = 0;              // last structurally valid record
  Lsn last_commit_lsn = 0;       // 0 = no committed transaction
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t bytes_scanned = 0;
  uint64_t tail_records_discarded = 0;  // records after the last commit
};

/// Decodes every structurally valid record of the log at `base`
/// (stopping at the first CRC/framing break). Test/tooling surface.
Result<std::vector<WalRecord>> ReadWalRecords(const std::string& base,
                                              const StorageEnv& env,
                                              WalScanSummary* summary);

struct RecoveryResult {
  WalScanSummary scan;
  bool replayed = false;         // committed records were applied
  uint64_t pages_replayed = 0;
  uint64_t headers_replayed = 0;
};

/// Replays the committed prefix of the log at `base` onto `db_file`
/// and syncs it. Idempotent: replaying the same log twice yields the
/// same file. Does not truncate the log (the caller resets it once the
/// database is durable). No-op when the log is absent or has no commit.
Result<RecoveryResult> RecoverFromWal(const std::string& base,
                                      const StorageEnv& env, File* db_file);

/// True if the log at `base` has any segment-1 file (used to trigger
/// recovery even when the database is opened with durability off).
Result<bool> WalExists(const std::string& base, const StorageEnv& env);

}  // namespace crimson

#endif  // CRIMSON_STORAGE_RECOVERY_H_
