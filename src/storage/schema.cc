#include "storage/schema.h"

#include "common/coding.h"
#include "common/string_util.h"
#include "storage/key_codec.h"

namespace crimson {

std::string_view ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kBytes:
      return "bytes";
  }
  return "?";
}

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    dst->push_back(static_cast<char>(c.type));
    PutLengthPrefixedSlice(dst, Slice(c.name));
  }
}

Result<Schema> Schema::DecodeFrom(Slice* input) {
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) {
    return Status::Corruption("schema: bad column count");
  }
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (input->empty()) return Status::Corruption("schema: truncated");
    auto type = static_cast<ColumnType>((*input)[0]);
    input->remove_prefix(1);
    Slice name;
    if (!GetLengthPrefixedSlice(input, &name)) {
      return Status::Corruption("schema: bad column name");
    }
    cols.push_back(Column{name.ToString(), type});
  }
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

namespace {

// ZigZag maps signed to unsigned so small magnitudes stay short.
uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

bool ValueMatches(ColumnType type, const Value& v) {
  switch (type) {
    case ColumnType::kInt64:
      return std::holds_alternative<int64_t>(v);
    case ColumnType::kDouble:
      return std::holds_alternative<double>(v);
    case ColumnType::kString:
    case ColumnType::kBytes:
      return std::holds_alternative<std::string>(v);
  }
  return false;
}

}  // namespace

Status EncodeRow(const Schema& schema, const Row& row, std::string* dst) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu", row.size(),
                  schema.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    if (!ValueMatches(col.type, row[i])) {
      return Status::InvalidArgument(
          StrFormat("column %zu (%s) type mismatch", i, col.name.c_str()));
    }
    switch (col.type) {
      case ColumnType::kInt64:
        PutVarint64(dst, ZigZagEncode(std::get<int64_t>(row[i])));
        break;
      case ColumnType::kDouble:
        PutDouble(dst, std::get<double>(row[i]));
        break;
      case ColumnType::kString:
      case ColumnType::kBytes:
        PutLengthPrefixedSlice(dst, Slice(std::get<std::string>(row[i])));
        break;
    }
  }
  return Status::OK();
}

Status DecodeRow(const Schema& schema, Slice input, Row* row) {
  row->clear();
  row->reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    switch (schema.column(i).type) {
      case ColumnType::kInt64: {
        uint64_t raw;
        if (!GetVarint64(&input, &raw)) {
          return Status::Corruption("row: bad int64");
        }
        row->push_back(ZigZagDecode(raw));
        break;
      }
      case ColumnType::kDouble: {
        double d = 0;
        if (!GetDouble(&input, &d)) {
          return Status::Corruption("row: bad double");
        }
        row->push_back(d);
        break;
      }
      case ColumnType::kString:
      case ColumnType::kBytes: {
        Slice s;
        if (!GetLengthPrefixedSlice(&input, &s)) {
          return Status::Corruption("row: bad string");
        }
        // In-place construction sidesteps a GCC 12 -Wmaybe-uninitialized
        // false positive on moved-from variant temporaries.
        row->emplace_back(std::in_place_type<std::string>, s.data(), s.size());
        break;
      }
    }
  }
  if (!input.empty()) {
    return Status::Corruption("row: trailing bytes");
  }
  return Status::OK();
}

Status EncodeValueKey(ColumnType type, const Value& value, std::string* dst) {
  if (!ValueMatches(type, value)) {
    return Status::InvalidArgument("index key type mismatch");
  }
  switch (type) {
    case ColumnType::kInt64: {
      // Bias so that memcmp order matches signed order.
      uint64_t biased =
          static_cast<uint64_t>(std::get<int64_t>(value)) ^ (1ULL << 63);
      AppendU64Key(dst, biased);
      return Status::OK();
    }
    case ColumnType::kDouble:
      AppendDoubleKey(dst, std::get<double>(value));
      return Status::OK();
    case ColumnType::kString:
    case ColumnType::kBytes:
      dst->append(std::get<std::string>(value));
      return Status::OK();
  }
  return Status::Internal("unknown column type");
}

}  // namespace crimson
