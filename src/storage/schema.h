// Typed schemas and row encoding for the relational layer. Crimson
// stores tree structure and species data "in relational form" (paper
// §2.1); these are the row formats those tables use.

#ifndef CRIMSON_STORAGE_SCHEMA_H_
#define CRIMSON_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace crimson {

enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBytes = 3,
};

std::string_view ColumnTypeName(ColumnType t);

struct Column {
  std::string name;
  ColumnType type;
};

/// Ordered list of typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column with this name, or -1.
  int FindColumn(std::string_view name) const;

  /// Serialization for the catalog.
  void EncodeTo(std::string* dst) const;
  static Result<Schema> DecodeFrom(Slice* input);

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// A single typed cell. kBytes values also use std::string storage.
using Value = std::variant<int64_t, double, std::string>;

/// Row of values matching a Schema positionally.
using Row = std::vector<Value>;

/// Encodes a row; fails if the arity or value kinds do not match.
Status EncodeRow(const Schema& schema, const Row& row, std::string* dst);

/// Decodes a row previously encoded with the same schema.
Status DecodeRow(const Schema& schema, Slice input, Row* row);

/// Order-preserving index-key encoding of a single value (see
/// storage/key_codec.h for the primitive encodings).
Status EncodeValueKey(ColumnType type, const Value& value, std::string* dst);

}  // namespace crimson

#endif  // CRIMSON_STORAGE_SCHEMA_H_
