#include "storage/table.h"

#include <algorithm>

#include "common/coding.h"
#include "common/string_util.h"
#include "storage/key_codec.h"

namespace crimson {

void TableDef::EncodeTo(std::string* dst) const {
  PutLengthPrefixedSlice(dst, Slice(name));
  schema.EncodeTo(dst);
  PutFixed32(dst, heap_first_page);
  PutVarint32(dst, static_cast<uint32_t>(indexes.size()));
  for (const IndexDef& idx : indexes) {
    PutLengthPrefixedSlice(dst, Slice(idx.name));
    PutVarint32(dst, static_cast<uint32_t>(idx.column));
    dst->push_back(idx.unique ? 1 : 0);
    PutFixed32(dst, idx.anchor);
  }
}

Result<TableDef> TableDef::DecodeFrom(Slice input) {
  TableDef def;
  Slice name;
  if (!GetLengthPrefixedSlice(&input, &name)) {
    return Status::Corruption("table def: bad name");
  }
  def.name = name.ToString();
  CRIMSON_ASSIGN_OR_RETURN(def.schema, Schema::DecodeFrom(&input));
  uint32_t heap_page;
  if (!GetFixed32(&input, &heap_page)) {
    return Status::Corruption("table def: bad heap page");
  }
  def.heap_first_page = heap_page;
  uint32_t n_idx = 0;
  if (!GetVarint32(&input, &n_idx)) {
    return Status::Corruption("table def: bad index count");
  }
  for (uint32_t i = 0; i < n_idx; ++i) {
    IndexDef idx;
    Slice idx_name;
    uint32_t column;
    if (!GetLengthPrefixedSlice(&input, &idx_name) ||
        !GetVarint32(&input, &column) || input.empty()) {
      return Status::Corruption("table def: bad index");
    }
    idx.name = idx_name.ToString();
    idx.column = static_cast<int>(column);
    idx.unique = input[0] != 0;
    input.remove_prefix(1);
    uint32_t anchor;
    if (!GetFixed32(&input, &anchor)) {
      return Status::Corruption("table def: bad index anchor");
    }
    idx.anchor = anchor;
    def.indexes.push_back(std::move(idx));
  }
  return def;
}

Result<Table> Table::Open(BufferPool* pool, TableDef def) {
  Table t(pool, std::move(def));
  CRIMSON_ASSIGN_OR_RETURN(HeapFile heap,
                           HeapFile::Open(pool, t.def_.heap_first_page));
  t.heap_ = std::make_unique<HeapFile>(std::move(heap));
  for (const IndexDef& idx : t.def_.indexes) {
    if (idx.column < 0 ||
        idx.column >= static_cast<int>(t.def_.schema.num_columns())) {
      return Status::Corruption(
          StrFormat("index %s: column %d out of range", idx.name.c_str(),
                    idx.column));
    }
    CRIMSON_ASSIGN_OR_RETURN(BTree tree, BTree::Open(pool, idx.anchor));
    t.index_trees_.push_back(std::make_unique<BTree>(std::move(tree)));
  }
  return t;
}

const IndexDef* Table::FindIndexDef(std::string_view name,
                                    size_t* pos) const {
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    if (def_.indexes[i].name == name) {
      if (pos) *pos = i;
      return &def_.indexes[i];
    }
  }
  return nullptr;
}

Result<RecordId> Table::Insert(const Row& row) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  std::string encoded;
  CRIMSON_RETURN_IF_ERROR(EncodeRow(def_.schema, row, &encoded));

  // Check unique constraints before mutating anything.
  std::vector<std::string> keys(def_.indexes.size());
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    const IndexDef& idx = def_.indexes[i];
    CRIMSON_RETURN_IF_ERROR(EncodeValueKey(
        def_.schema.column(idx.column).type, row[idx.column], &keys[i]));
    if (idx.unique) {
      std::string ignored;
      Status s = index_trees_[i]->Get(Slice(keys[i]), &ignored);
      if (s.ok()) {
        return Status::AlreadyExists(
            StrFormat("unique index %s violated", idx.name.c_str()));
      }
      if (!s.IsNotFound()) return s;
    }
  }

  CRIMSON_ASSIGN_OR_RETURN(RecordId rid, heap_->Insert(Slice(encoded)));
  std::string rid_value = U64Key(rid.Pack());
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    CRIMSON_RETURN_IF_ERROR(
        index_trees_[i]->Insert(Slice(keys[i]), Slice(rid_value)));
  }
  return rid;
}

Result<std::vector<RecordId>> Table::BulkAppend(const std::vector<Row>& rows) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  const size_t n_indexes = def_.indexes.size();
  // Encode all rows and index keys up front so failures happen before
  // any mutation.
  std::vector<std::string> encoded(rows.size());
  std::vector<std::vector<std::string>> keys(n_indexes);
  for (auto& k : keys) k.resize(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    CRIMSON_RETURN_IF_ERROR(EncodeRow(def_.schema, rows[r], &encoded[r]));
    for (size_t i = 0; i < n_indexes; ++i) {
      const IndexDef& idx = def_.indexes[i];
      CRIMSON_RETURN_IF_ERROR(EncodeValueKey(
          def_.schema.column(idx.column).type, rows[r][idx.column],
          &keys[i][r]));
    }
  }

  // Sort row ordinals per index (cheap to swap; keys stay put). Tie
  // order among duplicate keys is chosen so the final index is
  // byte-identical to per-row Insert, which *prepends* to a duplicate
  // run (leaf insert at LowerBound): a bulk-built index lays ties out
  // directly, so they go in reverse row order; ordered inserts into an
  // existing index each prepend, so feeding ties in row order ends up
  // reversed on its own.
  std::vector<bool> index_empty(n_indexes);
  for (size_t i = 0; i < n_indexes; ++i) {
    CRIMSON_ASSIGN_OR_RETURN(bool empty, index_trees_[i]->Empty());
    index_empty[i] = empty;
  }
  std::vector<std::vector<uint32_t>> orders(n_indexes);
  for (size_t i = 0; i < n_indexes; ++i) {
    std::vector<uint32_t>& order = orders[i];
    order.resize(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      order[r] = static_cast<uint32_t>(r);
    }
    const std::vector<std::string>& k = keys[i];
    if (index_empty[i]) {
      std::sort(order.begin(), order.end(), [&k](uint32_t a, uint32_t b) {
        if (k[a] != k[b]) return k[a] < k[b];
        return a > b;
      });
    } else {
      std::stable_sort(order.begin(), order.end(),
                       [&k](uint32_t a, uint32_t b) { return k[a] < k[b]; });
    }
  }

  // Unique constraints: duplicates within the batch, then collisions
  // with already-stored rows (skipped entirely when the index is empty).
  for (size_t i = 0; i < n_indexes; ++i) {
    const IndexDef& idx = def_.indexes[i];
    if (!idx.unique) continue;
    const std::vector<std::string>& k = keys[i];
    const std::vector<uint32_t>& order = orders[i];
    for (size_t r = 1; r < order.size(); ++r) {
      if (k[order[r]] == k[order[r - 1]]) {
        return Status::AlreadyExists(
            StrFormat("unique index %s violated within batch",
                      idx.name.c_str()));
      }
    }
    if (index_empty[i]) continue;
    for (uint32_t r : order) {
      std::string ignored;
      Status s = index_trees_[i]->Get(Slice(k[r]), &ignored);
      if (s.ok()) {
        return Status::AlreadyExists(
            StrFormat("unique index %s violated", idx.name.c_str()));
      }
      if (!s.IsNotFound()) return s;
    }
  }

  std::vector<RecordId> rids(rows.size());
  std::string rid_values;  // packed 8-byte index values, one per row
  rid_values.resize(rows.size() * 8);
  for (size_t r = 0; r < rows.size(); ++r) {
    CRIMSON_ASSIGN_OR_RETURN(rids[r], heap_->Insert(Slice(encoded[r])));
    std::string packed = U64Key(rids[r].Pack());
    memcpy(&rid_values[r * 8], packed.data(), 8);
  }

  for (size_t i = 0; i < n_indexes; ++i) {
    std::vector<std::pair<Slice, Slice>> run(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      uint32_t src = orders[i][r];
      run[r] = {Slice(keys[i][src]), Slice(&rid_values[src * 8], 8)};
    }
    if (index_empty[i]) {
      CRIMSON_RETURN_IF_ERROR(index_trees_[i]->BulkLoad(run));
    } else {
      for (const auto& [key, value] : run) {
        CRIMSON_RETURN_IF_ERROR(index_trees_[i]->Insert(key, value));
      }
    }
  }
  return rids;
}

Status Table::Get(const RecordId& id, Row* row) const {
  std::string raw;
  CRIMSON_RETURN_IF_ERROR(heap_->Get(id, &raw));
  return DecodeRow(def_.schema, Slice(raw), row);
}

Status Table::Delete(const RecordId& id) {
  CRIMSON_RETURN_IF_ERROR(pool_->RequireWritable());
  Row row;
  CRIMSON_RETURN_IF_ERROR(Get(id, &row));
  std::string rid_value = U64Key(id.Pack());
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    const IndexDef& idx = def_.indexes[i];
    std::string key;
    CRIMSON_RETURN_IF_ERROR(EncodeValueKey(
        def_.schema.column(idx.column).type, row[idx.column], &key));
    Slice value(rid_value);
    CRIMSON_RETURN_IF_ERROR(index_trees_[i]->Delete(Slice(key), &value));
  }
  return heap_->Delete(id);
}

Result<std::vector<RecordId>> Table::IndexLookup(std::string_view index_name,
                                                 const Value& key) const {
  size_t pos;
  const IndexDef* idx = FindIndexDef(index_name, &pos);
  if (idx == nullptr) {
    return Status::NotFound(StrFormat("no index named %.*s",
                                      static_cast<int>(index_name.size()),
                                      index_name.data()));
  }
  std::string encoded;
  CRIMSON_RETURN_IF_ERROR(
      EncodeValueKey(def_.schema.column(idx->column).type, key, &encoded));
  std::vector<RecordId> out;
  BTree::Iterator it = index_trees_[pos]->NewIterator();
  CRIMSON_RETURN_IF_ERROR(it.Seek(Slice(encoded)));
  while (it.Valid() && it.key() == Slice(encoded)) {
    if (it.value().size() != 8) return Status::Corruption("bad index value");
    out.push_back(RecordId::Unpack(DecodeU64Key(it.value().data())));
    CRIMSON_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Status Table::IndexRangeScan(
    std::string_view index_name, const std::string& lower_key,
    const std::string& upper_key,
    const std::function<bool(const Slice&, RecordId)>& fn) const {
  size_t pos;
  const IndexDef* idx = FindIndexDef(index_name, &pos);
  if (idx == nullptr) {
    return Status::NotFound(StrFormat("no index named %.*s",
                                      static_cast<int>(index_name.size()),
                                      index_name.data()));
  }
  BTree::Iterator it = index_trees_[pos]->NewIterator();
  CRIMSON_RETURN_IF_ERROR(it.Seek(Slice(lower_key)));
  while (it.Valid()) {
    if (!upper_key.empty() && it.key().compare(Slice(upper_key)) >= 0) break;
    if (it.value().size() != 8) return Status::Corruption("bad index value");
    if (!fn(it.key(), RecordId::Unpack(DecodeU64Key(it.value().data())))) {
      break;
    }
    CRIMSON_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

Status Table::Scan(
    const std::function<bool(const RecordId&, const Row&)>& fn) const {
  Status decode_status;
  Status s = heap_->Scan([&](const RecordId& id, const Slice& raw) {
    Row row;
    decode_status = DecodeRow(def_.schema, raw, &row);
    if (!decode_status.ok()) return false;
    return fn(id, row);
  });
  CRIMSON_RETURN_IF_ERROR(decode_status);
  return s;
}

Status Table::EncodeKeyFor(std::string_view index_name, const Value& v,
                           std::string* key) const {
  size_t pos;
  const IndexDef* idx = FindIndexDef(index_name, &pos);
  if (idx == nullptr) return Status::NotFound("no such index");
  return EncodeValueKey(def_.schema.column(idx->column).type, v, key);
}

}  // namespace crimson
