// Table: schema-typed rows in a heap file plus optional B+Tree
// secondary indexes. The Crimson repositories (tree, species, query
// history) are tables of this kind.

#ifndef CRIMSON_STORAGE_TABLE_H_
#define CRIMSON_STORAGE_TABLE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/schema.h"

namespace crimson {

/// Persistent description of one secondary index.
struct IndexDef {
  std::string name;
  int column = 0;       // indexed column ordinal
  bool unique = false;
  PageId anchor = kInvalidPageId;  // B+Tree handle
};

/// Persistent description of a table (stored in the catalog).
struct TableDef {
  std::string name;
  Schema schema;
  PageId heap_first_page = kInvalidPageId;
  std::vector<IndexDef> indexes;

  void EncodeTo(std::string* dst) const;
  static Result<TableDef> DecodeFrom(Slice input);
};

/// Open handle to a table. Point/range lookups and scans are safe
/// from any number of threads under the buffer pool's shared frame
/// latches; mutations belong to the single writer (Database writer
/// epoch), which also owns the handle's in-memory hints (heap tail,
/// record count).
class Table {
 public:
  /// Materializes a handle from a definition (heap and indexes must
  /// already exist; Database handles creation).
  static Result<Table> Open(BufferPool* pool, TableDef def);

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableDef& def() const { return def_; }
  const Schema& schema() const { return def_.schema; }
  uint64_t row_count() const { return heap_->record_count(); }

  /// Inserts a row, maintaining every index. Unique-index violations
  /// fail with AlreadyExists before any mutation of the indexes.
  Result<RecordId> Insert(const Row& row);

  /// Inserts many rows at once, maintaining every index. The result is
  /// byte-identical to calling Insert per row (same scan/lookup
  /// results, same duplicate-key order), but rows are appended to the
  /// heap in one run and each index is fed one sorted key run: an
  /// empty index is built bottom-up via BTree::BulkLoad (no page
  /// splits), a non-empty one takes ordered inserts. Unique violations
  /// -- within the batch or against existing rows -- fail before any
  /// mutation.
  Result<std::vector<RecordId>> BulkAppend(const std::vector<Row>& rows);

  /// Reads one row by id.
  Status Get(const RecordId& id, Row* row) const;

  /// Deletes a row and its index entries.
  Status Delete(const RecordId& id);

  /// Looks up record ids by exact value on a named index.
  Result<std::vector<RecordId>> IndexLookup(std::string_view index_name,
                                            const Value& key) const;

  /// Range scan over a named index: calls fn(key, record id) for entries
  /// with encoded key in [lower, upper); empty upper = unbounded. Stops
  /// early when fn returns false.
  Status IndexRangeScan(
      std::string_view index_name, const std::string& lower_key,
      const std::string& upper_key,
      const std::function<bool(const Slice&, RecordId)>& fn) const;

  /// Full scan: fn(id, row); stops early when fn returns false.
  Status Scan(const std::function<bool(const RecordId&, const Row&)>& fn) const;

  /// Encodes an index key for this table's column type (for range scans).
  Status EncodeKeyFor(std::string_view index_name, const Value& v,
                      std::string* key) const;

 private:
  Table(BufferPool* pool, TableDef def)
      : pool_(pool), def_(std::move(def)) {}

  const IndexDef* FindIndexDef(std::string_view name, size_t* pos) const;

  BufferPool* pool_;
  TableDef def_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<std::unique_ptr<BTree>> index_trees_;  // parallel to def_.indexes
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_TABLE_H_
