#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/string_util.h"

namespace crimson {

namespace {

/// How many consecutive missing indices the segment prober tolerates
/// while hunting for stale leftovers from an interrupted truncation.
constexpr uint32_t kSegmentProbeWindow = 8;

}  // namespace

std::string WalSegmentPath(const std::string& base, uint32_t index) {
  return base + StrFormat(".%06u", index);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& base,
                                       const StorageEnv& env,
                                       const WalOptions& options) {
  auto wal = std::unique_ptr<Wal>(new Wal(base, env, options));
  // Find the highest generation stamped on any surviving segment so the
  // new era can never collide with a stale leftover.
  uint64_t max_gen = 0;
  uint32_t misses = 0;
  for (uint32_t idx = 1; misses < kSegmentProbeWindow; ++idx) {
    CRIMSON_ASSIGN_OR_RETURN(bool exists,
                             env.file_exists(WalSegmentPath(base, idx)));
    if (!exists) {
      ++misses;
      continue;
    }
    misses = 0;
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                             env.open_file(WalSegmentPath(base, idx)));
    if (f->Size() >= kWalSegmentHeaderSize) {
      std::vector<char> hdr(kWalSegmentHeaderSize);
      CRIMSON_RETURN_IF_ERROR(f->Read(0, hdr.size(), hdr.data()));
      if (memcmp(hdr.data(), kWalMagic, sizeof(kWalMagic)) == 0) {
        max_gen = std::max(max_gen, DecodeFixed64(hdr.data() + 8));
      }
    }
  }
  std::lock_guard<std::mutex> lock(wal->mu_);
  CRIMSON_RETURN_IF_ERROR(wal->ResetLocked(max_gen + 1));
  return wal;
}

Status Wal::OpenSegmentLocked(uint32_t index, bool truncate) {
  CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           env_.open_file(WalSegmentPath(base_, index)));
  seg_file_ = std::move(file);
  if (truncate && seg_file_->Size() > 0) {
    CRIMSON_RETURN_IF_ERROR(seg_file_->Truncate(0));
  }
  std::string hdr;
  hdr.append(kWalMagic, sizeof(kWalMagic));
  PutFixed64(&hdr, generation_);
  PutFixed32(&hdr, index);
  PutFixed32(&hdr, 0);  // reserved
  CRIMSON_RETURN_IF_ERROR(seg_file_->Write(0, hdr.data(), hdr.size()));
  seg_index_ = index;
  seg_written_ = kWalSegmentHeaderSize;
  needs_dir_sync_ = true;
  ++segments_created_;
  return Status::OK();
}

Status Wal::InvalidateChain(const std::string& base, const StorageEnv& env,
                            uint32_t first_removed) {
  // Step 1: atomically invalidate the old chain. Segment 1 heads it, so
  // a zero-length (or torn-header) segment 1 makes recovery see an
  // empty log regardless of what later segments still hold.
  const std::string seg1 = WalSegmentPath(base, 1);
  CRIMSON_ASSIGN_OR_RETURN(bool seg1_exists, env.file_exists(seg1));
  if (seg1_exists) {
    CRIMSON_ASSIGN_OR_RETURN(std::unique_ptr<File> f, env.open_file(seg1));
    if (f->Size() > 0) {
      CRIMSON_RETURN_IF_ERROR(f->Truncate(0));
      CRIMSON_RETURN_IF_ERROR(f->Sync());
    }
  }
  // Step 2: remove stale segments (safe in any order now).
  uint32_t misses = 0;
  for (uint32_t idx = first_removed; misses < kSegmentProbeWindow; ++idx) {
    CRIMSON_ASSIGN_OR_RETURN(bool exists,
                             env.file_exists(WalSegmentPath(base, idx)));
    if (!exists) {
      ++misses;
      continue;
    }
    misses = 0;
    CRIMSON_RETURN_IF_ERROR(env.remove_file(WalSegmentPath(base, idx)));
  }
  return Status::OK();
}

Status Wal::RemoveLog(const std::string& base, const StorageEnv& env) {
  CRIMSON_RETURN_IF_ERROR(InvalidateChain(base, env, /*first_removed=*/2));
  return env.remove_file(WalSegmentPath(base, 1));
}

Status Wal::ResetLocked(uint64_t new_generation) {
  pending_.clear();
  CRIMSON_RETURN_IF_ERROR(InvalidateChain(base_, env_, /*first_removed=*/2));
  // Start the new era in segment 1.
  generation_ = new_generation;
  appended_lsn_ = flushed_lsn_ = durable_lsn_ = 0;
  size_bytes_ = 0;
  pending_commits_.clear();
  last_group_batch_ = 0;
  return OpenSegmentLocked(1, /*truncate=*/true);
}

Status Wal::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !sync_in_progress_; });
  if (!sticky_.ok()) return sticky_;
  Status s = ResetLocked(generation_ + 1);
  if (!s.ok()) sticky_ = s;
  return s;
}

Result<Lsn> Wal::Append(WalRecordType type, const std::string& body) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok()) return sticky_;

  std::string payload;
  payload.reserve(9 + body.size());
  payload.push_back(static_cast<char>(type));
  PutFixed64(&payload, appended_lsn_ + 1);
  payload.append(body);

  const uint64_t record_size = kWalRecordHeaderSize + payload.size();
  // Rotate at record granularity so records never span segments.
  if (seg_written_ + pending_.size() + record_size > options_.segment_bytes &&
      seg_written_ + pending_.size() > kWalSegmentHeaderSize) {
    Status s = RotateLocked();
    if (!s.ok()) {
      sticky_ = s;
      return s;
    }
  }

  ++appended_lsn_;
  size_bytes_ += record_size;
  if (appends_ctr_) appends_ctr_->Increment();
  if (bytes_ctr_) bytes_ctr_->Add(record_size);
  PutFixed32(&pending_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&pending_, Crc32(payload.data(), payload.size()));
  pending_.append(payload);

  if (pending_.size() >= options_.flush_threshold) {
    Status s = FlushLocked();
    if (!s.ok()) {
      sticky_ = s;
      return s;
    }
  }
  return appended_lsn_;
}

Result<Lsn> Wal::AppendPageImage(PageId page, const char* image) {
  std::string body;
  body.reserve(4 + kPageSize);
  PutFixed32(&body, page);
  body.append(image, kPageSize);
  return Append(WalRecordType::kPageImage, body);
}

Result<Lsn> Wal::AppendHeaderImage(uint32_t page_count, PageId freelist_head,
                                   PageId catalog_root) {
  std::string body;
  PutFixed32(&body, page_count);
  PutFixed32(&body, freelist_head);
  PutFixed32(&body, catalog_root);
  return Append(WalRecordType::kHeaderImage, body);
}

Result<Lsn> Wal::AppendCommit(uint64_t txn_id) {
  std::string body;
  PutFixed64(&body, txn_id);
  Result<Lsn> lsn = Append(WalRecordType::kCommit, body);
  if (lsn.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_commits_.push_back(*lsn);
    if (leader_collecting_) cv_.notify_all();
  }
  return lsn;
}

Status Wal::FlushLocked() {
  if (pending_.empty()) return Status::OK();
  CRIMSON_RETURN_IF_ERROR(
      seg_file_->Write(seg_written_, pending_.data(), pending_.size()));
  seg_written_ += pending_.size();
  pending_.clear();
  flushed_lsn_ = appended_lsn_;
  return Status::OK();
}

Status Wal::RotateLocked() {
  CRIMSON_RETURN_IF_ERROR(FlushLocked());
  // Close out the full segment durably so later Syncs only ever need to
  // touch the current segment (and the directory entry).
  CRIMSON_RETURN_IF_ERROR(seg_file_->Sync());
  if (needs_dir_sync_) {
    CRIMSON_RETURN_IF_ERROR(env_.sync_dir(base_));
    needs_dir_sync_ = false;
  }
  durable_lsn_ = std::max(durable_lsn_, flushed_lsn_);
  return OpenSegmentLocked(seg_index_ + 1, /*truncate=*/true);
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_.ok()) return sticky_;
  Status s = FlushLocked();
  if (!s.ok()) sticky_ = s;
  return s;
}

Status Wal::Sync(Lsn lsn, bool group) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!sticky_.ok()) return sticky_;
    if (group && durable_lsn_ >= lsn) return Status::OK();
    if (sync_in_progress_) {
      // A leader's fdatasync is in flight; wait for it. In group mode
      // it may cover us; in exclusive mode we still do our own after.
      cv_.wait(lock);
      continue;
    }
    // Exclusive mode falls through even when durable_lsn_ already
    // covers lsn: per-commit-fsync semantics issue a dedicated
    // fdatasync for every committer.
    if (group && options_.group_window_us > 0 && last_group_batch_ > 1) {
      // Committers are arriving concurrently: hold the flush until as
      // many commits as the last batch have queued (commit appends
      // notify us, so this resolves in microseconds under steady
      // load), or until the window expires on falling load.
      leader_collecting_ = true;
      const uint64_t want = last_group_batch_;
      cv_.wait_for(lock, std::chrono::microseconds(options_.group_window_us),
                   [&] {
                     return pending_commits_.size() >= want || !sticky_.ok();
                   });
      leader_collecting_ = false;
      if (!sticky_.ok()) {
        cv_.notify_all();
        return sticky_;
      }
    }
    Status s = FlushLocked();
    if (!s.ok()) {
      sticky_ = s;
      cv_.notify_all();
      return s;
    }
    const Lsn target = flushed_lsn_;
    // Shared copy: a concurrent append may rotate (and replace)
    // seg_file_ while this fsync runs outside the lock. Records up to
    // `target` are in this file, and a rotation fsyncs the segment it
    // retires, so the durability claim below stays valid either way.
    std::shared_ptr<File> file = seg_file_;
    const bool dir_sync = needs_dir_sync_;
    const uint64_t created_at_capture = segments_created_;
    sync_in_progress_ = true;
    lock.unlock();

    Status sync_status = file->Sync();
    if (fsyncs_ctr_) fsyncs_ctr_->Increment();
    if (sync_status.ok() && dir_sync) sync_status = env_.sync_dir(base_);

    lock.lock();
    sync_in_progress_ = false;
    if (!sync_status.ok()) {
      sticky_ = sync_status;
      cv_.notify_all();
      return sync_status;
    }
    // Only clear the flag if no segment was created while the
    // directory fsync ran -- a fresh segment needs its own.
    if (dir_sync && segments_created_ == created_at_capture) {
      needs_dir_sync_ = false;
    }
    durable_lsn_ = std::max(durable_lsn_, target);
    uint64_t covered = 0;
    while (!pending_commits_.empty() && pending_commits_.front() <= target) {
      pending_commits_.pop_front();
      ++covered;
    }
    if (covered > 0) {
      last_group_batch_ = covered;
      if (group_batch_hist_) group_batch_hist_->Observe(covered);
    }
    cv_.notify_all();
    if (durable_lsn_ >= lsn) return Status::OK();
  }
}

void Wal::BindMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  appends_ctr_ = registry->GetCounter("storage.wal.appends");
  bytes_ctr_ = registry->GetCounter("storage.wal.bytes");
  fsyncs_ctr_ = registry->GetCounter("storage.wal.fsyncs");
  group_batch_hist_ = registry->GetHistogram(
      "storage.wal.group_batch", {1, 2, 4, 8, 16, 32, 64, 128, 256});
}

Wal::Mark Wal::mark() const {
  std::lock_guard<std::mutex> lock(mu_);
  Mark m;
  m.lsn = appended_lsn_;
  m.segment = seg_index_;
  m.offset = seg_written_ + pending_.size();
  return m;
}

Status Wal::Rewind(const Mark& mark) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !sync_in_progress_; });
  if (!sticky_.ok()) return sticky_;
  auto fail = [&](Status s) {
    sticky_ = s;
    return s;
  };
  if (mark.lsn > appended_lsn_) {
    return fail(Status::Internal("WAL rewind past the append position"));
  }
  if (mark.segment == seg_index_ && mark.offset >= seg_written_) {
    // The whole rewound range is still buffered.
    pending_.resize(mark.offset - seg_written_);
  } else {
    pending_.clear();
    if (mark.segment != seg_index_) {
      // Drop segments created during the aborted transaction.
      for (uint32_t idx = seg_index_; idx > mark.segment; --idx) {
        Status s = env_.remove_file(WalSegmentPath(base_, idx));
        if (!s.ok()) return fail(s);
      }
      Result<std::unique_ptr<File>> reopened =
          env_.open_file(WalSegmentPath(base_, mark.segment));
      if (!reopened.ok()) return fail(reopened.status());
      seg_file_ = std::shared_ptr<File>(std::move(*reopened));
      seg_index_ = mark.segment;
      needs_dir_sync_ = true;
    }
    Status s = seg_file_->Truncate(mark.offset);
    if (!s.ok()) return fail(s);
    seg_written_ = mark.offset;
  }
  appended_lsn_ = mark.lsn;
  flushed_lsn_ = std::min(flushed_lsn_, mark.lsn);
  durable_lsn_ = std::min(durable_lsn_, mark.lsn);
  while (!pending_commits_.empty() && pending_commits_.back() > mark.lsn) {
    pending_commits_.pop_back();
  }
  return Status::OK();
}

Lsn Wal::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

Lsn Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t Wal::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint64_t Wal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_bytes_;
}

}  // namespace crimson
