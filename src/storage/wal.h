// Write-ahead log: the durability backbone of the storage engine.
//
// The log is a chain of segment files beside the database file
// (`<db>-wal.000001`, `<db>-wal.000002`, ...). Each segment starts with
// a 24-byte header (magic, generation, segment index); records follow:
//
//   [0..4)   payload length (fixed32)
//   [4..8)   CRC32 of the payload (fixed32)
//   [8..)    payload: type (u8) | lsn (fixed64) | body
//
// Record types:
//   kPageImage   body = page id (fixed32) + full kPageSize after-image
//   kHeaderImage body = page_count, freelist head, catalog root (fixed32 x3)
//   kCommit      body = txn id (fixed64)
//
// A transaction's records are appended (buffered), terminated by a
// commit record, and made durable with one fdatasync. Recovery replays
// committed after-images in log order, so any record after the last
// valid commit (torn tail, aborted txn, CRC damage) is simply ignored.
//
// The generation stamp increments on every Reset (checkpoint
// truncation); a stale higher-numbered segment left behind by a crash
// mid-truncation carries an older generation and is never chained.
//
// Thread safety: all public methods are thread-safe. Sync(lsn,
// group=true) is the group-commit path: concurrent committers coalesce
// behind one leader fdatasync. Sync(lsn, group=false) always performs a
// dedicated fdatasync per caller (per-commit-fsync semantics), which is
// what `bench_wal` contrasts group commit against.

#ifndef CRIMSON_STORAGE_WAL_H_
#define CRIMSON_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "common/crc32.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/file.h"
#include "storage/page.h"

namespace crimson {

/// Log sequence number: 1-based record ordinal, monotone within a
/// generation. 0 means "none".
using Lsn = uint64_t;

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kHeaderImage = 2,
  kCommit = 3,
};

inline constexpr char kWalMagic[8] = {'C', 'R', 'W', 'A', 'L', 'S', 'E', 'G'};
inline constexpr uint32_t kWalSegmentHeaderSize = 24;
inline constexpr uint32_t kWalRecordHeaderSize = 8;  // len + crc
/// Largest legal payload: page image + generous framing slack.
inline constexpr uint32_t kWalMaxPayload = kPageSize + 64;

/// Returns the path of segment `index` (1-based) of the log at `base`.
std::string WalSegmentPath(const std::string& base, uint32_t index);

struct WalOptions {
  /// Rotate to a new segment once the current one exceeds this size.
  uint64_t segment_bytes = 4ull << 20;
  /// Opportunistically write (without sync) once this many bytes are
  /// buffered, bounding memory during large transactions.
  uint64_t flush_threshold = 1ull << 20;
  /// Group-commit collection window: when the previous batch coalesced
  /// more than one commit (i.e. committers are arriving concurrently),
  /// a fresh sync leader waits -- at most this long -- for as many
  /// commits as the last batch to queue before flushing, so stragglers
  /// ride its fdatasync instead of forcing their own. The count
  /// condition triggers via commit-append notification, so under
  /// steady concurrency the wait is microseconds; a lone committer
  /// never waits at all.
  uint64_t group_window_us = 100;
};

/// Append-side handle of the log. Opening resets the log to an empty
/// segment 1 with a fresh generation -- recovery (storage/recovery.h)
/// must consume any previous contents first.
class Wal {
 public:
  static Result<std::unique_ptr<Wal>> Open(const std::string& base,
                                           const StorageEnv& env,
                                           const WalOptions& options = {});

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends a full-page after-image. Buffered; returns the record lsn.
  Result<Lsn> AppendPageImage(PageId page, const char* image);

  /// Appends the logical database header (what Pager::WriteHeader
  /// persists): page count, freelist head, catalog root.
  Result<Lsn> AppendHeaderImage(uint32_t page_count, PageId freelist_head,
                                PageId catalog_root);

  /// Appends a commit record for txn_id.
  Result<Lsn> AppendCommit(uint64_t txn_id);

  /// Writes buffered records to the segment file (no fsync).
  Status Flush();

  /// Makes every record up to `lsn` durable. group=true coalesces with
  /// concurrent callers behind one fdatasync (returning early when a
  /// peer's sync already covered `lsn`); group=false performs a
  /// dedicated fdatasync for this caller.
  Status Sync(Lsn lsn, bool group);

  /// Restart point for transaction rollback (capture at Begin).
  struct Mark {
    Lsn lsn = 0;               // last appended lsn
    uint32_t segment = 1;      // segment holding the append position
    uint64_t offset = 0;       // byte offset of the append position
  };
  Mark mark() const;

  /// Drops every record appended after `mark` (transaction abort).
  /// Failure is sticky: a log that cannot be rewound refuses all
  /// further appends, leaving the database read-only but consistent.
  Status Rewind(const Mark& mark);

  /// Checkpoint truncation: atomically invalidates the whole log
  /// (truncate+sync segment 1, which heads the chain), deletes higher
  /// segments, and starts an empty segment 1 under generation+1. The
  /// caller must have made the database file durable first.
  Status Reset();

  /// Invalidates and deletes the whole log at `base` (truncate+sync
  /// the chain-head segment first, then remove every segment). Used
  /// when a consumed WAL must not survive a non-durable open.
  static Status RemoveLog(const std::string& base, const StorageEnv& env);

  /// Mirrors cumulative WAL telemetry (storage.wal.appends / .bytes /
  /// .fsyncs counters plus the storage.wal.group_batch commit-coalesce
  /// histogram) into `registry`. Call right after Open, before append
  /// traffic (Database::Build does).
  void BindMetrics(obs::MetricsRegistry* registry);

  Lsn appended_lsn() const;
  Lsn durable_lsn() const;
  uint64_t generation() const;
  /// Total bytes appended in this generation (auto-checkpoint trigger).
  uint64_t size_bytes() const;

 private:
  Wal(std::string base, StorageEnv env, WalOptions options)
      : base_(std::move(base)), env_(std::move(env)), options_(options) {}

  Result<Lsn> Append(WalRecordType type, const std::string& body);
  /// Truncates+syncs segment 1 (atomically invalidating the chain),
  /// then removes segments >= `first_removed`.
  static Status InvalidateChain(const std::string& base,
                                const StorageEnv& env,
                                uint32_t first_removed);
  Status FlushLocked();
  Status RotateLocked();
  Status ResetLocked(uint64_t new_generation);
  Status OpenSegmentLocked(uint32_t index, bool truncate);

  const std::string base_;
  const StorageEnv env_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Shared so a sync leader can keep the file alive while fsyncing
  /// outside mu_ even if a concurrent append rotates segments.
  std::shared_ptr<File> seg_file_;
  uint32_t seg_index_ = 1;
  uint64_t seg_written_ = 0;         // bytes of current segment on file
  std::string pending_;              // appended but not yet written
  Lsn appended_lsn_ = 0;
  Lsn flushed_lsn_ = 0;              // last lsn fully in the file
  Lsn durable_lsn_ = 0;              // last lsn covered by an fdatasync
  uint64_t generation_ = 0;
  uint64_t size_bytes_ = 0;
  bool needs_dir_sync_ = false;      // a segment was created since last sync
  uint64_t segments_created_ = 0;    // guards needs_dir_sync_ against races
  bool sync_in_progress_ = false;
  bool leader_collecting_ = false;     // a group leader gathers a batch
  std::deque<Lsn> pending_commits_;    // commit lsns not yet durable
  uint64_t last_group_batch_ = 0;      // commits covered by the last sync
  Status sticky_;                    // first unrecoverable error, if any
  /// Telemetry mirrors (null until BindMetrics).
  obs::Counter* appends_ctr_ = nullptr;
  obs::Counter* bytes_ctr_ = nullptr;
  obs::Counter* fsyncs_ctr_ = nullptr;
  obs::Histogram* group_batch_hist_ = nullptr;
};

}  // namespace crimson

#endif  // CRIMSON_STORAGE_WAL_H_
