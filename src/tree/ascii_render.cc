#include "tree/ascii_render.h"

#include <vector>

#include "common/string_util.h"

namespace crimson {

std::string RenderAscii(const PhyloTree& tree,
                        const AsciiRenderOptions& options) {
  if (tree.empty()) return "(empty tree)\n";
  if (options.max_nodes != 0 && tree.size() > options.max_nodes) {
    return StrFormat(
        "(tree with %zu nodes exceeds the %zu-node rendering limit; "
        "project a smaller subtree first)\n",
        tree.size(), options.max_nodes);
  }

  std::string out;
  auto label = [&](NodeId n) {
    std::string text(tree.name(n).empty() ? std::string_view("?") : tree.name(n));
    if (options.show_edge_lengths && n != tree.root()) {
      text += StrFormat(":%.*g", options.precision, tree.edge_length(n));
    }
    return text;
  };

  // Iterative pre-order carrying the line prefix; a node knows whether
  // it is its parent's last child, which picks the branch glyph.
  struct Frame {
    NodeId node;
    std::string prefix;
    bool is_last;
    bool is_root;
  };
  std::vector<Frame> stack = {{tree.root(), "", true, true}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.is_root) {
      out += label(f.node);
    } else {
      out += f.prefix;
      out += f.is_last ? "└── " : "├── ";
      out += label(f.node);
    }
    out.push_back('\n');
    // Children pushed in reverse so the first child renders first.
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(f.node); c != kNoNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    std::string child_prefix =
        f.is_root ? "" : f.prefix + (f.is_last ? "    " : "│   ");
    for (size_t i = kids.size(); i > 0; --i) {
      stack.push_back({kids[i - 1], child_prefix, i == kids.size(), false});
    }
  }
  return out;
}

}  // namespace crimson
