// Tree Viewer (paper Fig. 3 / §3 "Visualizing the results"): the demo
// displayed result trees via the Walrus 3D viewer or as NEXUS text. As
// a C++ library we render dendrograms as ASCII art (and NEXUS/Newick
// via tree/nexus.h, tree/newick.h).

#ifndef CRIMSON_TREE_ASCII_RENDER_H_
#define CRIMSON_TREE_ASCII_RENDER_H_

#include <string>

#include "tree/phylo_tree.h"

namespace crimson {

struct AsciiRenderOptions {
  /// Show ":length" after each node label.
  bool show_edge_lengths = true;
  /// printf precision for edge lengths.
  int precision = 4;
  /// Stop rendering below this many nodes (huge trees are unreadable;
  /// callers should project first). 0 = unlimited.
  size_t max_nodes = 512;
};

/// Renders a tree as an indented ASCII dendrogram, e.g. for Fig. 2:
///
///   root
///   ├── ?:0.75
///   │   ├── Lla:1.5
///   │   └── Bha:1.5
///   └── Syn:2.5
///
/// Unnamed nodes print as "?". Returns an error note instead of art
/// when the tree exceeds options.max_nodes.
std::string RenderAscii(const PhyloTree& tree,
                        const AsciiRenderOptions& options = {});

}  // namespace crimson

#endif  // CRIMSON_TREE_ASCII_RENDER_H_
