#include "tree/name_index.h"

#include <algorithm>
#include <cassert>

namespace crimson {

namespace {

// FNV-1a 64; names are short (species labels), so the byte loop beats
// fancier mixers once the table is cache-resident.
uint64_t HashName(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

NameIndex NameIndex::Build(const PhyloTree& tree) {
  NameIndex index;
  if (tree.empty()) return index;
  // <= 50% load factor keeps linear-probe chains short.
  size_t cap = NextPow2(std::max<size_t>(16, tree.size() * 2));
  index.slots_.assign(cap, Slot{});
  index.mask_ = cap - 1;
  const char* arena = tree.name_arena().c_str();
  for (NodeId n = 0; n < tree.size(); ++n) {
    uint32_t off = tree.name_offset(n);
    if (off == 0) {  // empty names are not indexed
      if (tree.is_leaf(n)) index.has_unnamed_leaf_ = true;
      continue;
    }
    std::string_view name(arena + off);
    uint64_t h = HashName(name) & index.mask_;
    for (;;) {
      Slot& slot = index.slots_[h];
      if (slot.first_node == kNoNode) {
        slot.offset = off;
        slot.len = static_cast<uint32_t>(name.size());
        slot.first_node = n;
        if (tree.is_leaf(n)) slot.first_leaf = n;
        ++index.used_;
        break;
      }
      if (slot.len == name.size() &&
          std::string_view(arena + slot.offset, slot.len) == name) {
        // Ascending scan: first_node/first_leaf keep the lowest id.
        if (tree.is_leaf(n)) {
          if (slot.first_leaf == kNoNode) {
            slot.first_leaf = n;
          } else {
            // A second leaf with this name: record the span once.
            if (index.duplicate_leaf_names_.empty() ||
                index.duplicate_leaf_names_.back() != slot.offset) {
              index.duplicate_leaf_names_.push_back(slot.offset);
            }
          }
        }
        break;
      }
      h = (h + 1) & index.mask_;
    }
  }
  // The back-dedup above only catches immediate repeats; make it exact.
  std::sort(index.duplicate_leaf_names_.begin(),
            index.duplicate_leaf_names_.end());
  index.duplicate_leaf_names_.erase(
      std::unique(index.duplicate_leaf_names_.begin(),
                  index.duplicate_leaf_names_.end()),
      index.duplicate_leaf_names_.end());
  return index;
}

const NameIndex::Slot* NameIndex::Probe(const PhyloTree& tree,
                                        std::string_view name) const {
  if (slots_.empty()) return nullptr;
  const char* arena = tree.name_arena().c_str();
  uint64_t h = HashName(name) & mask_;
  for (;;) {
    const Slot& slot = slots_[h];
    if (slot.first_node == kNoNode) return nullptr;
    if (slot.len == name.size() &&
        std::string_view(arena + slot.offset, slot.len) == name) {
      return &slot;
    }
    h = (h + 1) & mask_;
  }
}

NodeId NameIndex::Find(const PhyloTree& tree, std::string_view name) const {
  if (name.empty()) return tree.FindByName(name);  // FindByName("") parity
  const Slot* slot = Probe(tree, name);
  return slot != nullptr ? slot->first_node : kNoNode;
}

NodeId NameIndex::FindLeaf(const PhyloTree& tree,
                           std::string_view name) const {
  if (name.empty()) {
    for (NodeId n = 0; n < tree.size(); ++n) {
      if (tree.is_leaf(n) && tree.name(n).empty()) return n;
    }
    return kNoNode;
  }
  const Slot* slot = Probe(tree, name);
  return slot != nullptr ? slot->first_leaf : kNoNode;
}

std::vector<std::string> NameIndex::DuplicateLeafNames(
    const PhyloTree& tree) const {
  std::vector<std::string> out;
  out.reserve(duplicate_leaf_names_.size());
  const char* arena = tree.name_arena().c_str();
  for (uint32_t off : duplicate_leaf_names_) {
    out.emplace_back(arena + off);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> NameIndex::SortedLeafNames(
    const PhyloTree& tree) const {
  std::vector<std::string> out;
  const char* arena = tree.name_arena().c_str();
  for (const Slot& slot : slots_) {
    if (slot.first_node != kNoNode && slot.first_leaf != kNoNode) {
      out.emplace_back(arena + slot.offset, slot.len);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace crimson
