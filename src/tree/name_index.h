// NameIndex: interned name -> NodeId open-addressing hash built once
// over a PhyloTree's packed name arena. Replaces the O(n) FindByName
// scan on every name-addressed query (ResolveSpecies, pattern leaf
// anchoring, NEXUS taxa export, the cracked store's leaf domain).
//
// The index stores (offset, len) spans into the tree's name arena, not
// string copies, so building it allocates only the slot table. Lookups
// therefore take the tree as a parameter: an index is valid exactly for
// the tree it was built from (or a bit-identical copy) and goes stale
// if that tree is mutated.
//
// Duplicate-name semantics mirror the pre-index behaviour byte for
// byte: Find() returns the first node in arena order bearing the name
// (FindByName parity) and FindLeaf() the first leaf in arena order
// (parity with the pattern matcher's old keep-first leaf_by_name_ map).
// Empty names are not indexed; Find/FindLeaf fall back to a linear scan
// for them, matching FindByName("").

#ifndef CRIMSON_TREE_NAME_INDEX_H_
#define CRIMSON_TREE_NAME_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tree/phylo_tree.h"

namespace crimson {

class NameIndex {
 public:
  NameIndex() = default;

  /// Builds the index over all non-empty node names in `tree`.
  static NameIndex Build(const PhyloTree& tree);

  /// First node in arena order named `name`; kNoNode if none.
  /// Exact FindByName parity, O(1) amortized.
  NodeId Find(const PhyloTree& tree, std::string_view name) const;

  /// First leaf in arena order named `name`; kNoNode if no leaf bears
  /// it (even when an internal node does).
  NodeId FindLeaf(const PhyloTree& tree, std::string_view name) const;

  /// True if two distinct leaves share a name. Queries against such a
  /// tree resolve deterministically to the first leaf in arena order.
  bool has_duplicate_leaf_names() const {
    return !duplicate_leaf_names_.empty();
  }

  /// Sorted unique list of leaf names that occur on more than one leaf.
  std::vector<std::string> DuplicateLeafNames(const PhyloTree& tree) const;

  /// Sorted unique non-empty leaf names — the cracked store's ordinal
  /// domain. Identical to sorting-and-uniquing Leaves() names.
  std::vector<std::string> SortedLeafNames(const PhyloTree& tree) const;

  /// Number of distinct non-empty names in the tree.
  size_t distinct_names() const { return used_; }

  /// True if some leaf has an empty name (such leaves are not indexed).
  bool has_unnamed_leaf() const { return has_unnamed_leaf_; }

 private:
  struct Slot {
    uint32_t offset = 0;
    uint32_t len = 0;
    NodeId first_node = kNoNode;  // kNoNode marks an empty slot
    NodeId first_leaf = kNoNode;
  };

  const Slot* Probe(const PhyloTree& tree, std::string_view name) const;

  std::vector<Slot> slots_;
  size_t used_ = 0;
  uint64_t mask_ = 0;  // slots_.size() - 1 (power-of-two table)
  bool has_unnamed_leaf_ = false;
  // Arena offsets of leaf names seen on >1 leaf (one entry per name).
  std::vector<uint32_t> duplicate_leaf_names_;
};

}  // namespace crimson

#endif  // CRIMSON_TREE_NAME_INDEX_H_
