#include "tree/newick.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace crimson {

namespace {

/// Cursor over the input with comment/whitespace skipping.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Skips whitespace and [...] comments.
  void SkipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '[') {
        size_t close = text_.find(']', pos_);
        if (close == std::string_view::npos) {
          pos_ = text_.size();  // unterminated comment: consume to end
          return;
        }
        pos_ = close + 1;
      } else {
        return;
      }
    }
  }

  char Peek() {
    SkipTrivia();
    return AtEnd() ? '\0' : text_[pos_];
  }

  void Advance() { ++pos_; }

  /// Parses a (possibly quoted) label.
  Result<std::string> ReadLabel() {
    SkipTrivia();
    if (AtEnd()) return Status::InvalidArgument("newick: label at EOF");
    std::string out;
    if (text_[pos_] == '\'') {
      ++pos_;
      while (true) {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("newick: unterminated quoted label");
        }
        char c = text_[pos_++];
        if (c == '\'') {
          if (pos_ < text_.size() && text_[pos_] == '\'') {
            out.push_back('\'');  // '' escapes a quote
            ++pos_;
          } else {
            break;
          }
        } else {
          out.push_back(c);
        }
      }
      return out;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(' || c == ')' || c == '[' || c == ']' || c == ':' ||
          c == ';' || c == ',' ||
          isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

  /// Parses a floating-point edge length after ':'.
  Result<double> ReadLength() {
    SkipTrivia();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("newick: expected number at position %zu", start));
    }
    return ParseDouble(text_.substr(start, pos_ - start));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PhyloTree> ParseNewick(std::string_view text) {
  Scanner scan(text);
  PhyloTree tree;
  // Pre-reserve from the input shape so million-node parses stop
  // reallocation-churning: every leaf follows a '(' or ',' and every
  // internal node opens with '(', so commas + parens + 1 bounds the
  // node count; the text length bounds total label bytes.
  {
    size_t commas = 0, opens = 0;
    for (char ch : text) {
      if (ch == ',') ++commas;
      if (ch == '(') ++opens;
    }
    tree.Reserve(commas + opens + 2, text.size());
  }
  std::vector<NodeId> open;  // stack of unclosed internal nodes
  bool done = false;
  // After a completed subtree (leaf or closed group), only ',', ')' or
  // ';' may follow; this catches inputs like "(A:1:2);" or "(A B);".
  bool expect_separator = false;

  // A label/length pair can follow either a leaf token or a ')'.
  auto read_suffix = [&](NodeId node) -> Status {
    if (scan.Peek() != ':' && scan.Peek() != '\0' && scan.Peek() != ',' &&
        scan.Peek() != ')' && scan.Peek() != ';') {
      CRIMSON_ASSIGN_OR_RETURN(std::string label, scan.ReadLabel());
      tree.set_name(node, std::move(label));
    }
    if (scan.Peek() == ':') {
      scan.Advance();
      CRIMSON_ASSIGN_OR_RETURN(double len, scan.ReadLength());
      tree.set_edge_length(node, len);
    }
    return Status::OK();
  };

  while (!done) {
    char c = scan.Peek();
    switch (c) {
      case '\0':
        return Status::InvalidArgument("newick: unexpected end of input");
      case '(': {
        if (expect_separator) {
          return Status::InvalidArgument(StrFormat(
              "newick: expected ',' or ')' at position %zu", scan.pos()));
        }
        scan.Advance();
        NodeId n;
        if (tree.empty()) {
          n = tree.AddRoot();
        } else {
          if (open.empty()) {
            return Status::InvalidArgument(
                StrFormat("newick: '(' outside tree at position %zu",
                          scan.pos()));
          }
          n = tree.AddChild(open.back());
        }
        open.push_back(n);
        break;
      }
      case ')': {
        if (!expect_separator) {
          return Status::InvalidArgument(StrFormat(
              "newick: empty subtree before ')' at position %zu",
              scan.pos()));
        }
        scan.Advance();
        if (open.empty()) {
          return Status::InvalidArgument(
              StrFormat("newick: unbalanced ')' at position %zu",
                        scan.pos()));
        }
        NodeId n = open.back();
        open.pop_back();
        CRIMSON_RETURN_IF_ERROR(read_suffix(n));
        expect_separator = true;
        break;
      }
      case ',':
        if (!expect_separator) {
          return Status::InvalidArgument(StrFormat(
              "newick: empty subtree before ',' at position %zu",
              scan.pos()));
        }
        scan.Advance();
        if (open.empty()) {
          return Status::InvalidArgument(
              StrFormat("newick: ',' outside tree at position %zu",
                        scan.pos()));
        }
        expect_separator = false;
        break;
      case ';':
        scan.Advance();
        if (!open.empty()) {
          return Status::InvalidArgument(
              StrFormat("newick: ';' with %zu unclosed '('", open.size()));
        }
        if (tree.empty()) {
          return Status::InvalidArgument("newick: empty tree");
        }
        done = true;
        break;
      default: {
        if (expect_separator) {
          return Status::InvalidArgument(StrFormat(
              "newick: expected ',' or ')' at position %zu", scan.pos()));
        }
        // A leaf (or a single-node tree at the top level).
        NodeId n;
        if (tree.empty()) {
          n = tree.AddRoot();
        } else {
          if (open.empty()) {
            return Status::InvalidArgument(StrFormat(
                "newick: trailing content at position %zu", scan.pos()));
          }
          n = tree.AddChild(open.back());
        }
        CRIMSON_RETURN_IF_ERROR(read_suffix(n));
        expect_separator = true;
        break;
      }
    }
  }
  // Only trivia may follow the ';'.
  if (scan.Peek() != '\0') {
    return Status::InvalidArgument(StrFormat(
        "newick: trailing content after ';' at position %zu", scan.pos()));
  }
  tree.ShrinkToFit();  // the pre-reserve above may overshoot
  CRIMSON_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

namespace {

bool NeedsQuoting(std::string_view label) {
  if (label.empty()) return false;
  for (char c : label) {
    if (c == '(' || c == ')' || c == '[' || c == ']' || c == ':' ||
        c == ';' || c == ',' || c == '\'' ||
        isspace(static_cast<unsigned char>(c))) {
      return true;
    }
  }
  return false;
}

void AppendLabel(std::string* out, std::string_view label) {
  if (!NeedsQuoting(label)) {
    out->append(label);
    return;
  }
  out->push_back('\'');
  for (char c : label) {
    if (c == '\'') out->push_back('\'');
    out->push_back(c);
  }
  out->push_back('\'');
}

}  // namespace

std::string WriteNewick(const PhyloTree& tree,
                        const NewickWriteOptions& options) {
  std::string out;
  if (tree.empty()) {
    out.push_back(';');  // (assignment from a literal trips a GCC 12
                         // -Wrestrict false positive when inlined)
    return out;
  }
  // Iterative serialization: frames carry the next child to emit.
  struct Frame {
    NodeId node;
    NodeId next_child;
    bool opened;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), tree.first_child(tree.root()), false});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (tree.is_leaf(f.node)) {
      AppendLabel(&out, tree.name(f.node));
      if (options.include_edge_lengths && f.node != tree.root()) {
        out += StrFormat(":%.*g", options.precision,
                         tree.edge_length(f.node));
      }
      stack.pop_back();
      continue;
    }
    if (!f.opened) {
      out.push_back('(');
      f.opened = true;
    }
    if (f.next_child != kNoNode) {
      NodeId child = f.next_child;
      f.next_child = tree.next_sibling(child);
      if (child != tree.first_child(f.node)) out.push_back(',');
      stack.push_back({child, tree.first_child(child), false});
      continue;
    }
    out.push_back(')');
    if (options.include_internal_names) {
      AppendLabel(&out, tree.name(f.node));
    }
    if (options.include_edge_lengths && f.node != tree.root()) {
      out += StrFormat(":%.*g", options.precision, tree.edge_length(f.node));
    }
    stack.pop_back();
  }
  out.push_back(';');
  return out;
}

}  // namespace crimson
