// Newick format reader/writer. Hand-rolled and fully iterative: Crimson
// simulation trees can be 10^6 levels deep, so neither parsing nor
// serialization may recurse.
//
// Supported syntax:
//   tree      := subtree ";"
//   subtree   := "(" subtree ("," subtree)* ")" [label] [":" length]
//              | label [":" length]
//   label     := unquoted token (no "()[]:;," or whitespace)
//              | 'single-quoted' (with '' as an escaped quote)
//   comments  := "[...]" anywhere between tokens (skipped)

#ifndef CRIMSON_TREE_NEWICK_H_
#define CRIMSON_TREE_NEWICK_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// Parses a single Newick tree. Fails with InvalidArgument and a
/// character position on malformed input.
Result<PhyloTree> ParseNewick(std::string_view text);

struct NewickWriteOptions {
  bool include_edge_lengths = true;
  bool include_internal_names = true;
  /// printf precision for edge lengths.
  int precision = 10;
};

/// Serializes a tree to Newick (with trailing ";").
std::string WriteNewick(const PhyloTree& tree,
                        const NewickWriteOptions& options = {});

}  // namespace crimson

#endif  // CRIMSON_TREE_NEWICK_H_
