#include "tree/nexus.h"

#include <cctype>

#include "common/string_util.h"
#include "tree/newick.h"

namespace crimson {

namespace {

/// NEXUS tokenizer: words, punctuation ( ; = , ), quoted labels,
/// [comments] skipped. Underscores in unquoted tokens are preserved.
class NexusScanner {
 public:
  explicit NexusScanner(std::string_view text) : text_(text) {}

  void SkipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '[') {
        size_t close = text_.find(']', pos_);
        pos_ = close == std::string_view::npos ? text_.size() : close + 1;
      } else {
        return;
      }
    }
  }

  bool AtEnd() {
    SkipTrivia();
    return pos_ >= text_.size();
  }

  char PeekChar() {
    SkipTrivia();
    return pos_ >= text_.size() ? '\0' : text_[pos_];
  }

  /// Reads the next token: a single punctuation char (";", "=", ","),
  /// a quoted string, or a word.
  Result<std::string> Next() {
    SkipTrivia();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("nexus: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == ';' || c == '=' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (true) {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("nexus: unterminated quote");
        }
        char q = text_[pos_++];
        if (q == '\'') {
          if (pos_ < text_.size() && text_[pos_] == '\'') {
            out.push_back('\'');
            ++pos_;
          } else {
            break;
          }
        } else {
          out.push_back(q);
        }
      }
      return out;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char w = text_[pos_];
      if (isspace(static_cast<unsigned char>(w)) || w == ';' || w == '=' ||
          w == ',' || w == '[' || w == '\'') {
        break;
      }
      out.push_back(w);
      ++pos_;
    }
    return out;
  }

  /// Captures raw text (quote-aware) up to and including the next
  /// unquoted ';'. Used for TREE commands whose payload is Newick.
  Result<std::string> CaptureUntilSemicolon() {
    SkipTrivia();
    std::string out;
    bool in_quote = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (in_quote) {
        out.push_back(c);
        if (c == '\'') in_quote = false;  // '' handled fine: re-enters below
        continue;
      }
      if (c == '\'') {
        in_quote = true;
        out.push_back(c);
        continue;
      }
      if (c == '[') {  // skip comment
        size_t close = text_.find(']', pos_);
        pos_ = close == std::string_view::npos ? text_.size() : close + 1;
        continue;
      }
      if (c == ';') {
        out.push_back(';');
        return out;
      }
      out.push_back(c);
    }
    return Status::InvalidArgument("nexus: missing ';'");
  }

  /// Skips tokens through the next ';'.
  Status SkipCommand() {
    while (true) {
      CRIMSON_ASSIGN_OR_RETURN(std::string tok, Next());
      if (tok == ";") return Status::OK();
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseTaxaBlock(NexusScanner* scan, NexusDocument* doc) {
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(std::string cmd, scan->Next());
    if (EqualsIgnoreCase(cmd, "END") || EqualsIgnoreCase(cmd, "ENDBLOCK")) {
      return scan->SkipCommand();
    }
    if (EqualsIgnoreCase(cmd, "TAXLABELS")) {
      while (true) {
        // Declared before the macro: GCC 12 emits a spurious
        // -Wmaybe-uninitialized through the moved-from Result otherwise.
        std::string tok;
        CRIMSON_ASSIGN_OR_RETURN(tok, scan->Next());
        if (tok == ";") break;
        doc->taxa.push_back(std::move(tok));
      }
    } else {
      CRIMSON_RETURN_IF_ERROR(scan->SkipCommand());
    }
  }
}

Status ParseTreesBlock(NexusScanner* scan, NexusDocument* doc) {
  std::map<std::string, std::string> translate;
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(std::string cmd, scan->Next());
    if (EqualsIgnoreCase(cmd, "END") || EqualsIgnoreCase(cmd, "ENDBLOCK")) {
      return scan->SkipCommand();
    }
    if (EqualsIgnoreCase(cmd, "TRANSLATE")) {
      while (true) {
        CRIMSON_ASSIGN_OR_RETURN(std::string key, scan->Next());
        if (key == ";") break;
        CRIMSON_ASSIGN_OR_RETURN(std::string value, scan->Next());
        translate[key] = value;
        std::string sep;
        CRIMSON_ASSIGN_OR_RETURN(sep, scan->Next());
        if (sep == ";") break;
        if (sep != ",") {
          return Status::InvalidArgument("nexus: bad TRANSLATE separator");
        }
      }
    } else if (EqualsIgnoreCase(cmd, "TREE")) {
      NexusTree nt;
      CRIMSON_ASSIGN_OR_RETURN(nt.name, scan->Next());
      CRIMSON_ASSIGN_OR_RETURN(std::string eq, scan->Next());
      if (eq != "=") {
        return Status::InvalidArgument("nexus: TREE missing '='");
      }
      CRIMSON_ASSIGN_OR_RETURN(std::string newick,
                               scan->CaptureUntilSemicolon());
      // A rooting annotation like [&R] is already stripped as a comment
      // by the scanner; CaptureUntilSemicolon skips comments too.
      CRIMSON_ASSIGN_OR_RETURN(nt.tree, ParseNewick(newick));
      // Apply TRANSLATE to leaf names.
      if (!translate.empty()) {
        for (NodeId n = 0; n < nt.tree.size(); ++n) {
          auto it = translate.find(std::string(nt.tree.name(n)));
          if (it != translate.end()) nt.tree.set_name(n, it->second);
        }
      }
      doc->trees.push_back(std::move(nt));
    } else {
      CRIMSON_RETURN_IF_ERROR(scan->SkipCommand());
    }
  }
}

Status ParseCharactersBlock(NexusScanner* scan, NexusDocument* doc) {
  while (true) {
    CRIMSON_ASSIGN_OR_RETURN(std::string cmd, scan->Next());
    if (EqualsIgnoreCase(cmd, "END") || EqualsIgnoreCase(cmd, "ENDBLOCK")) {
      return scan->SkipCommand();
    }
    if (EqualsIgnoreCase(cmd, "FORMAT")) {
      // Look for DATATYPE=<x>; ignore other settings.
      std::string prev;
      while (true) {
        CRIMSON_ASSIGN_OR_RETURN(std::string tok, scan->Next());
        if (tok == ";") break;
        if (EqualsIgnoreCase(prev, "DATATYPE") && tok != "=") {
          doc->datatype = ToUpperAscii(tok);
        }
        if (tok != "=") prev = tok;
      }
    } else if (EqualsIgnoreCase(cmd, "MATRIX")) {
      // taxon sequence pairs; repeated taxa append (interleaved files).
      while (true) {
        CRIMSON_ASSIGN_OR_RETURN(std::string taxon, scan->Next());
        if (taxon == ";") break;
        CRIMSON_ASSIGN_OR_RETURN(std::string seq, scan->Next());
        if (seq == ";") {
          return Status::InvalidArgument(
              "nexus: MATRIX row for " + taxon + " missing sequence");
        }
        doc->sequences[taxon] += seq;
      }
    } else {
      CRIMSON_RETURN_IF_ERROR(scan->SkipCommand());
    }
  }
}

}  // namespace

Result<NexusDocument> ParseNexus(std::string_view text) {
  NexusScanner scan(text);
  CRIMSON_ASSIGN_OR_RETURN(std::string magic, scan.Next());
  if (!EqualsIgnoreCase(magic, "#NEXUS")) {
    return Status::InvalidArgument("nexus: missing #NEXUS header");
  }
  NexusDocument doc;
  while (!scan.AtEnd()) {
    CRIMSON_ASSIGN_OR_RETURN(std::string word, scan.Next());
    if (!EqualsIgnoreCase(word, "BEGIN")) {
      return Status::InvalidArgument("nexus: expected BEGIN, got " + word);
    }
    CRIMSON_ASSIGN_OR_RETURN(std::string block, scan.Next());
    CRIMSON_ASSIGN_OR_RETURN(std::string semi, scan.Next());
    if (semi != ";") {
      return Status::InvalidArgument("nexus: BEGIN missing ';'");
    }
    if (EqualsIgnoreCase(block, "TAXA")) {
      CRIMSON_RETURN_IF_ERROR(ParseTaxaBlock(&scan, &doc));
    } else if (EqualsIgnoreCase(block, "TREES")) {
      CRIMSON_RETURN_IF_ERROR(ParseTreesBlock(&scan, &doc));
    } else if (EqualsIgnoreCase(block, "CHARACTERS") ||
               EqualsIgnoreCase(block, "DATA")) {
      CRIMSON_RETURN_IF_ERROR(ParseCharactersBlock(&scan, &doc));
    } else {
      // Unknown block: skip commands until END;
      while (true) {
        CRIMSON_ASSIGN_OR_RETURN(std::string cmd, scan.Next());
        if (EqualsIgnoreCase(cmd, "END") ||
            EqualsIgnoreCase(cmd, "ENDBLOCK")) {
          CRIMSON_RETURN_IF_ERROR(scan.SkipCommand());
          break;
        }
        CRIMSON_RETURN_IF_ERROR(scan.SkipCommand());
      }
    }
  }
  return doc;
}

namespace {

std::string QuoteIfNeeded(const std::string& label) {
  bool need = label.empty();
  for (char c : label) {
    if (isspace(static_cast<unsigned char>(c)) || c == ';' || c == '=' ||
        c == ',' || c == '[' || c == ']' || c == '(' || c == ')' ||
        c == '\'') {
      need = true;
      break;
    }
  }
  if (!need) return label;
  std::string out = "'";
  for (char c : label) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace

std::string WriteNexus(const NexusDocument& doc) {
  std::string out = "#NEXUS\n\n";
  out += "BEGIN TAXA;\n";
  out += StrFormat("  DIMENSIONS NTAX=%zu;\n", doc.taxa.size());
  out += "  TAXLABELS";
  for (const std::string& t : doc.taxa) {
    out += " " + QuoteIfNeeded(t);
  }
  out += ";\nEND;\n\n";

  if (!doc.sequences.empty()) {
    size_t nchar = doc.sequences.begin()->second.size();
    out += "BEGIN DATA;\n";
    out += StrFormat("  DIMENSIONS NTAX=%zu NCHAR=%zu;\n",
                     doc.sequences.size(), nchar);
    out += StrFormat("  FORMAT DATATYPE=%s MISSING=? GAP=-;\n",
                     doc.datatype.c_str());
    out += "  MATRIX\n";
    for (const auto& [taxon, seq] : doc.sequences) {
      out += "    " + QuoteIfNeeded(taxon) + " " + seq + "\n";
    }
    out += "  ;\nEND;\n\n";
  }

  if (!doc.trees.empty()) {
    out += "BEGIN TREES;\n";
    for (const NexusTree& nt : doc.trees) {
      out += StrFormat("  TREE %s = [&R] ",
                       QuoteIfNeeded(nt.name).c_str());
      out += WriteNewick(nt.tree);
      out += "\n";
    }
    out += "END;\n";
  }
  return out;
}

}  // namespace crimson
