// NEXUS file format support (Maddison, Swofford & Maddison 1997), the
// standard exchange format for phylogenetic data and the input format
// of the Crimson loader (paper §2.1, §3).
//
// Supported blocks:
//   TAXA       -- DIMENSIONS NTAX, TAXLABELS
//   TREES      -- TRANSLATE, TREE <name> = [&R/&U] <newick>;
//   CHARACTERS / DATA -- DIMENSIONS NCHAR, FORMAT DATATYPE, MATRIX
// Unknown blocks and commands are skipped (the format is extensible by
// design). Comments [...] are honored everywhere.

#ifndef CRIMSON_TREE_NEXUS_H_
#define CRIMSON_TREE_NEXUS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// A named tree inside a TREES block.
struct NexusTree {
  std::string name;
  PhyloTree tree;
};

/// Parsed contents of a NEXUS file.
struct NexusDocument {
  std::vector<std::string> taxa;
  std::vector<NexusTree> trees;
  /// taxon -> molecular sequence (CHARACTERS/DATA matrix).
  std::map<std::string, std::string> sequences;
  /// FORMAT DATATYPE (upper-cased; "DNA" if unspecified).
  std::string datatype = "DNA";
};

/// Parses a NEXUS document.
Result<NexusDocument> ParseNexus(std::string_view text);

/// Serializes a document (TAXA, then DATA if sequences exist, then
/// TREES if trees exist).
std::string WriteNexus(const NexusDocument& doc);

}  // namespace crimson

#endif  // CRIMSON_TREE_NEXUS_H_
