#include "tree/phylo_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace crimson {

NodeId PhyloTree::AddRoot(std::string name, double edge_length) {
  assert(nodes_.empty() && "AddRoot on non-empty tree");
  Node n;
  n.name = std::move(name);
  n.edge_length = edge_length;
  nodes_.push_back(std::move(n));
  return 0;
}

NodeId PhyloTree::AddChild(NodeId parent, std::string name,
                           double edge_length) {
  assert(parent < nodes_.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.name = std::move(name);
  n.edge_length = edge_length;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  Node& p = nodes_[parent];
  if (p.first_child == kNoNode) {
    p.first_child = id;
  } else {
    nodes_[p.last_child].next_sibling = id;
  }
  p.last_child = id;
  return id;
}

void PhyloTree::Reserve(size_t n) { nodes_.reserve(n); }

int PhyloTree::OutDegree(NodeId n) const {
  int d = 0;
  for (NodeId c = nodes_[n].first_child; c != kNoNode;
       c = nodes_[c].next_sibling) {
    ++d;
  }
  return d;
}

std::vector<NodeId> PhyloTree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = nodes_[n].first_child; c != kNoNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

void PhyloTree::PreOrder(const std::function<bool(NodeId)>& fn,
                         NodeId start) const {
  if (nodes_.empty()) return;
  // Sibling-chain trick: visiting n pushes its next sibling (resuming
  // the parent's child list later) and then its first child, so no
  // per-node child vector is materialized.
  std::vector<NodeId> stack = {start};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (!fn(n)) return;
    if (n != start && nodes_[n].next_sibling != kNoNode) {
      stack.push_back(nodes_[n].next_sibling);
    }
    if (nodes_[n].first_child != kNoNode) {
      stack.push_back(nodes_[n].first_child);
    }
  }
}

void PhyloTree::PostOrder(const std::function<bool(NodeId)>& fn,
                          NodeId start) const {
  if (nodes_.empty()) return;
  // Two-phase iterative post-order using the sibling-chain trick: an
  // unexpanded node pushes (sibling, unexpanded), (self, expanded),
  // (first child, unexpanded); every child subtree completes above the
  // expanded marker.
  std::vector<std::pair<NodeId, bool>> stack = {{start, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      if (!fn(n)) return;
      continue;
    }
    if (n != start && nodes_[n].next_sibling != kNoNode) {
      stack.push_back({nodes_[n].next_sibling, false});
    }
    stack.push_back({n, true});
    if (nodes_[n].first_child != kNoNode) {
      stack.push_back({nodes_[n].first_child, false});
    }
  }
}

std::vector<uint32_t> PhyloTree::PreOrderRanks() const {
  std::vector<uint32_t> rank(nodes_.size(), 0);
  uint32_t next = 0;
  PreOrder([&](NodeId n) {
    rank[n] = next++;
    return true;
  });
  return rank;
}

std::vector<uint32_t> PhyloTree::Depths() const {
  std::vector<uint32_t> depth(nodes_.size(), 0);
  // Arena order guarantees parents precede children.
  for (size_t i = 1; i < nodes_.size(); ++i) {
    depth[i] = depth[nodes_[i].parent] + 1;
  }
  return depth;
}

std::vector<double> PhyloTree::RootPathWeights() const {
  std::vector<double> w(nodes_.size(), 0.0);
  for (size_t i = 1; i < nodes_.size(); ++i) {
    w[i] = w[nodes_[i].parent] + nodes_[i].edge_length;
  }
  return w;
}

std::vector<NodeId> PhyloTree::Leaves() const {
  std::vector<NodeId> out;
  PreOrder([&](NodeId n) {
    if (is_leaf(n)) out.push_back(n);
    return true;
  });
  return out;
}

size_t PhyloTree::LeafCount() const {
  size_t n = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].first_child == kNoNode) ++n;
  }
  return n;
}

uint32_t PhyloTree::MaxDepth() const {
  uint32_t best = 0;
  std::vector<uint32_t> d = Depths();
  for (uint32_t v : d) best = std::max(best, v);
  return best;
}

NodeId PhyloTree::FindByName(std::string_view name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kNoNode;
}

NodeId PhyloTree::NaiveLca(NodeId a, NodeId b) const {
  std::vector<uint32_t> depth = Depths();
  while (a != b) {
    if (depth[a] >= depth[b]) {
      a = nodes_[a].parent;
    } else {
      b = nodes_[b].parent;
    }
  }
  return a;
}

bool PhyloTree::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  while (n != kNoNode) {
    if (n == anc) return true;
    n = nodes_[n].parent;
  }
  return false;
}

namespace {

/// Canonical string of a subtree: name, edge length (rounded), and the
/// sorted canonical forms of children. Used for unordered comparison.
std::string Canonical(const PhyloTree& t, NodeId n, double eps) {
  std::vector<std::string> kids;
  for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
    kids.push_back(Canonical(t, c, eps));
  }
  std::sort(kids.begin(), kids.end());
  // Quantize the edge length by eps so nearly-equal weights compare equal.
  long long q = eps > 0 ? std::llround(t.edge_length(n) / eps) : 0;
  std::string out = "(";
  out += t.name(n);
  out += ":";
  out += std::to_string(q);
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

bool OrderedEqual(const PhyloTree& a, NodeId na, const PhyloTree& b, NodeId nb,
                  double eps) {
  if (a.name(na) != b.name(nb)) return false;
  if (std::fabs(a.edge_length(na) - b.edge_length(nb)) > eps) return false;
  NodeId ca = a.first_child(na), cb = b.first_child(nb);
  while (ca != kNoNode && cb != kNoNode) {
    if (!OrderedEqual(a, ca, b, cb, eps)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kNoNode && cb == kNoNode;
}

}  // namespace

bool PhyloTree::Equal(const PhyloTree& a, const PhyloTree& b, double eps,
                      bool ordered) {
  if (a.empty() || b.empty()) return a.empty() == b.empty();
  if (a.size() != b.size()) return false;
  if (ordered) return OrderedEqual(a, a.root(), b, b.root(), eps);
  return Canonical(a, a.root(), eps) == Canonical(b, b.root(), eps);
}

Status PhyloTree::Validate() const {
  if (nodes_.empty()) return Status::OK();
  if (nodes_[0].parent != kNoNode) {
    return Status::Corruption("root has a parent");
  }
  size_t reachable = 0;
  PreOrder([&](NodeId) {
    ++reachable;
    return true;
  });
  if (reachable != nodes_.size()) {
    return Status::Corruption(
        StrFormat("%zu of %zu nodes reachable from root", reachable,
                  nodes_.size()));
  }
  // Child lists must agree with parent pointers.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId c = nodes_[i].first_child; c != kNoNode;
         c = nodes_[c].next_sibling) {
      if (nodes_[c].parent != static_cast<NodeId>(i)) {
        return Status::Corruption("child/parent pointer mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace crimson
