#include "tree/phylo_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace crimson {

uint32_t PhyloTree::InternName(std::string_view name) {
  if (name_arena_.empty()) name_arena_.push_back('\0');
  if (name.empty()) return 0;
  uint32_t off = static_cast<uint32_t>(name_arena_.size());
  name_arena_.append(name.data(), name.size());
  name_arena_.push_back('\0');
  return off;
}

NodeId PhyloTree::AddRoot(std::string_view name, double edge_length) {
  assert(parent_.empty() && "AddRoot on non-empty tree");
  uint32_t off = InternName(name);
  parent_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  edge_length_.push_back(edge_length);
  name_offset_.push_back(off);
  last_child_.push_back(kNoNode);
  return 0;
}

NodeId PhyloTree::AddChild(NodeId parent, std::string_view name,
                           double edge_length) {
  assert(parent < parent_.size());
  if (last_child_.size() != parent_.size()) RebuildLastChild();
  NodeId id = static_cast<NodeId>(parent_.size());
  uint32_t off = InternName(name);
  parent_.push_back(parent);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  edge_length_.push_back(edge_length);
  name_offset_.push_back(off);
  last_child_.push_back(kNoNode);
  if (first_child_[parent] == kNoNode) {
    first_child_[parent] = id;
  } else {
    next_sibling_[last_child_[parent]] = id;
  }
  last_child_[parent] = id;
  return id;
}

void PhyloTree::RebuildLastChild() {
  last_child_.assign(parent_.size(), kNoNode);
  // Children append in node order, so a node's last child is simply its
  // highest-id child.
  for (size_t i = 1; i < parent_.size(); ++i) {
    last_child_[parent_[i]] = static_cast<NodeId>(i);
  }
}

void PhyloTree::Reserve(size_t n, size_t name_bytes) {
  parent_.reserve(n);
  first_child_.reserve(n);
  next_sibling_.reserve(n);
  edge_length_.reserve(n);
  name_offset_.reserve(n);
  last_child_.reserve(n);
  if (name_bytes > 0) {
    // +1 for the shared empty label at offset 0, +n NUL terminators.
    name_arena_.reserve(1 + name_bytes + n);
  }
}

void PhyloTree::ShrinkToFit() {
  parent_.shrink_to_fit();
  first_child_.shrink_to_fit();
  next_sibling_.shrink_to_fit();
  edge_length_.shrink_to_fit();
  name_offset_.shrink_to_fit();
  name_arena_.shrink_to_fit();
  last_child_.clear();
  last_child_.shrink_to_fit();
}

void PhyloTree::set_name(NodeId n, std::string_view name) {
  uint32_t off = name_offset_[n];
  if (name.empty()) {
    if (name_arena_.empty()) name_arena_.push_back('\0');
    name_offset_[n] = 0;
    return;
  }
  if (off != 0 && name.size() <= std::strlen(name_arena_.c_str() + off)) {
    // Overwrite in place when the new label fits (renames during
    // simulation rewrites hit this path); shorter labels re-terminate.
    std::memcpy(&name_arena_[off], name.data(), name.size());
    name_arena_[off + name.size()] = '\0';
    return;
  }
  name_offset_[n] = InternName(name);
}

Result<PhyloTree> PhyloTree::FromPacked(std::vector<NodeId> parents,
                                        std::vector<double> edge_lengths,
                                        std::vector<uint32_t> name_offsets,
                                        std::string name_arena) {
  size_t n = parents.size();
  if (edge_lengths.size() != n || name_offsets.size() != n) {
    return Status::InvalidArgument("packed tree: column length mismatch");
  }
  if (n == 0) return PhyloTree();
  if (name_arena.empty() || name_arena[0] != '\0' ||
      name_arena.back() != '\0') {
    return Status::InvalidArgument("packed tree: malformed name arena");
  }
  if (parents[0] != kNoNode) {
    return Status::InvalidArgument("packed tree: root has a parent");
  }
  for (size_t i = 1; i < n; ++i) {
    if (parents[i] >= i) {
      return Status::InvalidArgument(
          "packed tree: parent does not precede child");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (name_offsets[i] >= name_arena.size()) {
      return Status::InvalidArgument(
          "packed tree: name offset out of bounds");
    }
  }
  PhyloTree tree;
  tree.parent_ = std::move(parents);
  tree.edge_length_ = std::move(edge_lengths);
  tree.name_offset_ = std::move(name_offsets);
  tree.name_arena_ = std::move(name_arena);
  tree.first_child_.assign(n, kNoNode);
  tree.next_sibling_.assign(n, kNoNode);
  // Children-in-insertion-order is node order, so one ascending pass
  // threading each child after its parent's current last child rebuilds
  // both link columns.
  std::vector<NodeId> last(n, kNoNode);
  for (size_t i = 1; i < n; ++i) {
    NodeId p = tree.parent_[i];
    NodeId id = static_cast<NodeId>(i);
    if (tree.first_child_[p] == kNoNode) {
      tree.first_child_[p] = id;
    } else {
      tree.next_sibling_[last[p]] = id;
    }
    last[p] = id;
  }
  return tree;
}

uint32_t PhyloTree::OutDegree(NodeId n) const {
  uint32_t d = 0;
  for (NodeId c = first_child_[n]; c != kNoNode; c = next_sibling_[c]) {
    ++d;
  }
  return d;
}

std::vector<NodeId> PhyloTree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[n]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

std::vector<uint32_t> PhyloTree::PreOrderRanks() const {
  std::vector<uint32_t> rank(parent_.size(), 0);
  uint32_t next = 0;
  PreOrder([&](NodeId n) {
    rank[n] = next++;
    return true;
  });
  return rank;
}

std::vector<uint32_t> PhyloTree::Depths() const {
  std::vector<uint32_t> depth(parent_.size(), 0);
  // Arena order guarantees parents precede children.
  for (size_t i = 1; i < parent_.size(); ++i) {
    depth[i] = depth[parent_[i]] + 1;
  }
  return depth;
}

std::vector<double> PhyloTree::RootPathWeights() const {
  std::vector<double> w(parent_.size(), 0.0);
  for (size_t i = 1; i < parent_.size(); ++i) {
    w[i] = w[parent_[i]] + edge_length_[i];
  }
  return w;
}

std::vector<NodeId> PhyloTree::Leaves() const {
  std::vector<NodeId> out;
  PreOrder([&](NodeId n) {
    if (is_leaf(n)) out.push_back(n);
    return true;
  });
  return out;
}

size_t PhyloTree::LeafCount() const {
  size_t n = 0;
  for (size_t i = 0; i < first_child_.size(); ++i) {
    if (first_child_[i] == kNoNode) ++n;
  }
  return n;
}

uint32_t PhyloTree::MaxDepth() const {
  uint32_t best = 0;
  std::vector<uint32_t> d = Depths();
  for (uint32_t v : d) best = std::max(best, v);
  return best;
}

NodeId PhyloTree::FindByName(std::string_view name) const {
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (this->name(static_cast<NodeId>(i)) == name) {
      return static_cast<NodeId>(i);
    }
  }
  return kNoNode;
}

size_t PhyloTree::MemoryFootprintBytes() const {
  return parent_.capacity() * sizeof(NodeId) +
         first_child_.capacity() * sizeof(NodeId) +
         next_sibling_.capacity() * sizeof(NodeId) +
         edge_length_.capacity() * sizeof(double) +
         name_offset_.capacity() * sizeof(uint32_t) +
         last_child_.capacity() * sizeof(NodeId) + name_arena_.capacity();
}

NodeId PhyloTree::NaiveLca(NodeId a, NodeId b) const {
  std::vector<uint32_t> depth = Depths();
  while (a != b) {
    if (depth[a] >= depth[b]) {
      a = parent_[a];
    } else {
      b = parent_[b];
    }
  }
  return a;
}

bool PhyloTree::IsAncestorOrSelf(NodeId anc, NodeId n) const {
  while (n != kNoNode) {
    if (n == anc) return true;
    n = parent_[n];
  }
  return false;
}

namespace {

/// Canonical string of a subtree: name, edge length (rounded), and the
/// sorted canonical forms of children. Used for unordered comparison.
std::string Canonical(const PhyloTree& t, NodeId n, double eps) {
  std::vector<std::string> kids;
  for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
    kids.push_back(Canonical(t, c, eps));
  }
  std::sort(kids.begin(), kids.end());
  // Quantize the edge length by eps so nearly-equal weights compare equal.
  long long q = eps > 0 ? std::llround(t.edge_length(n) / eps) : 0;
  std::string out = "(";
  out += t.name(n);
  out += ":";
  out += std::to_string(q);
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

bool OrderedEqual(const PhyloTree& a, NodeId na, const PhyloTree& b, NodeId nb,
                  double eps) {
  if (a.name(na) != b.name(nb)) return false;
  if (std::fabs(a.edge_length(na) - b.edge_length(nb)) > eps) return false;
  NodeId ca = a.first_child(na), cb = b.first_child(nb);
  while (ca != kNoNode && cb != kNoNode) {
    if (!OrderedEqual(a, ca, b, cb, eps)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kNoNode && cb == kNoNode;
}

}  // namespace

bool PhyloTree::Equal(const PhyloTree& a, const PhyloTree& b, double eps,
                      bool ordered) {
  if (a.empty() || b.empty()) return a.empty() == b.empty();
  if (a.size() != b.size()) return false;
  if (ordered) return OrderedEqual(a, a.root(), b, b.root(), eps);
  return Canonical(a, a.root(), eps) == Canonical(b, b.root(), eps);
}

Status PhyloTree::Validate() const {
  if (parent_.empty()) return Status::OK();
  if (parent_[0] != kNoNode) {
    return Status::Corruption("root has a parent");
  }
  size_t reachable = 0;
  PreOrder([&](NodeId) {
    ++reachable;
    return true;
  });
  if (reachable != parent_.size()) {
    return Status::Corruption(
        StrFormat("%zu of %zu nodes reachable from root", reachable,
                  parent_.size()));
  }
  // Child lists must agree with parent pointers.
  for (size_t i = 0; i < parent_.size(); ++i) {
    for (NodeId c = first_child_[i]; c != kNoNode; c = next_sibling_[c]) {
      if (parent_[c] != static_cast<NodeId>(i)) {
        return Status::Corruption("child/parent pointer mismatch");
      }
    }
  }
  // Name offsets must land inside the arena.
  for (size_t i = 0; i < name_offset_.size(); ++i) {
    if (name_offset_[i] >= name_arena_.size()) {
      return Status::Corruption("name offset out of arena bounds");
    }
  }
  return Status::OK();
}

}  // namespace crimson
