// PhyloTree: the in-memory phylogenetic tree model. Packed
// structure-of-arrays arena (indices, not pointers) so trees with
// millions of nodes stay compact and traversals stay cache-friendly:
// parallel parent/first_child/next_sibling/edge_length vectors plus one
// contiguous NUL-terminated name arena addressed by byte offsets. Edge
// lengths live on the child node (the edge to its parent), matching
// Newick semantics.
//
// Phylogenetic trees differ from XML documents in exactly the ways the
// paper stresses: they are deep (simulation trees average depth > 1000
// and can reach 10^6 levels) and queried by structure, not by path.
//
// Name invariants: names are C strings inside the arena — they cannot
// contain an embedded NUL byte (ingest paths reject it). `name()`
// returns a std::string_view into the arena; the view is invalidated by
// any mutation of the tree (AddChild/set_name may grow the arena) and
// by destruction/assignment of the tree, like iterators of a vector.

#ifndef CRIMSON_TREE_PHYLO_TREE_H_
#define CRIMSON_TREE_PHYLO_TREE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crimson {

/// Node handle; index into the tree's arena.
using NodeId = uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Rooted tree with named leaves and weighted edges.
class PhyloTree {
 public:
  PhyloTree() = default;

  PhyloTree(PhyloTree&&) = default;
  PhyloTree& operator=(PhyloTree&&) = default;
  PhyloTree(const PhyloTree&) = default;
  PhyloTree& operator=(const PhyloTree&) = default;

  // -- construction ---------------------------------------------------------

  /// Creates the root. Must be called exactly once, first.
  NodeId AddRoot(std::string_view name = {}, double edge_length = 0.0);

  /// Adds a child under `parent` with the length of the edge
  /// (parent -> child). Children keep insertion order.
  NodeId AddChild(NodeId parent, std::string_view name = {},
                  double edge_length = 0.0);

  /// Reserves arena capacity (perf knob for big builds): `n` node slots
  /// and `name_bytes` of label payload (NUL terminators are added on
  /// top automatically).
  void Reserve(size_t n, size_t name_bytes = 0);

  /// Drops the transient append accelerator and trims vector slack.
  /// Call after a bulk build; AddChild stays valid afterwards (the
  /// accelerator is rebuilt lazily).
  void ShrinkToFit();

  /// Rebuilds a tree from its packed representation without
  /// re-interning names: `parents[0]` must be kNoNode and every other
  /// parent must precede its child; `name_offsets[i]` indexes a
  /// NUL-terminated label inside `name_arena` (offset 0 = the shared
  /// empty name; `name_arena[0]` must be NUL). first_child/next_sibling
  /// links are derived in O(n) because children-in-insertion-order is
  /// node order.
  static Result<PhyloTree> FromPacked(std::vector<NodeId> parents,
                                      std::vector<double> edge_lengths,
                                      std::vector<uint32_t> name_offsets,
                                      std::string name_arena);

  // -- basic accessors ------------------------------------------------------

  bool empty() const { return parent_.empty(); }
  size_t size() const { return parent_.size(); }
  NodeId root() const { return parent_.empty() ? kNoNode : 0; }

  NodeId parent(NodeId n) const { return parent_[n]; }
  NodeId first_child(NodeId n) const { return first_child_[n]; }
  NodeId next_sibling(NodeId n) const { return next_sibling_[n]; }
  bool is_leaf(NodeId n) const { return first_child_[n] == kNoNode; }
  std::string_view name(NodeId n) const {
    // Arena labels are NUL-terminated; offset 0 is the shared "".
    return std::string_view(name_arena_.c_str() + name_offset_[n]);
  }
  double edge_length(NodeId n) const { return edge_length_[n]; }

  void set_name(NodeId n, std::string_view name);
  void set_edge_length(NodeId n, double len) { edge_length_[n] = len; }

  /// Number of children (O(degree)).
  uint32_t OutDegree(NodeId n) const;

  /// Children of n in order (O(degree) allocation; prefer the sibling
  /// chain in hot loops).
  std::vector<NodeId> Children(NodeId n) const;

  // -- traversal ------------------------------------------------------------

  /// Pre-order visit of the subtree rooted at `start` (default: root).
  /// fn returns false to stop early. Takes any callable — no
  /// std::function indirection on hot traversals.
  template <typename Fn>
  void PreOrder(Fn&& fn, NodeId start = 0) const {
    if (parent_.empty()) return;
    // Sibling-chain trick: visiting n pushes its next sibling (resuming
    // the parent's child list later) and then its first child, so no
    // per-node child vector is materialized.
    std::vector<NodeId> stack = {start};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      if (!fn(n)) return;
      if (n != start && next_sibling_[n] != kNoNode) {
        stack.push_back(next_sibling_[n]);
      }
      if (first_child_[n] != kNoNode) {
        stack.push_back(first_child_[n]);
      }
    }
  }

  /// Post-order visit (children before parent).
  template <typename Fn>
  void PostOrder(Fn&& fn, NodeId start = 0) const {
    if (parent_.empty()) return;
    // Two-phase iterative post-order using the sibling-chain trick: an
    // unexpanded node pushes (sibling, unexpanded), (self, expanded),
    // (first child, unexpanded); every child subtree completes above
    // the expanded marker.
    std::vector<std::pair<NodeId, bool>> stack = {{start, false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        if (!fn(n)) return;
        continue;
      }
      if (n != start && next_sibling_[n] != kNoNode) {
        stack.push_back({next_sibling_[n], false});
      }
      stack.push_back({n, true});
      if (first_child_[n] != kNoNode) {
        stack.push_back({first_child_[n], false});
      }
    }
  }

  /// Pre-order ranks for all nodes: rank[n] = position of n in preorder.
  std::vector<uint32_t> PreOrderRanks() const;

  /// Depth in edges from the root, for all nodes.
  std::vector<uint32_t> Depths() const;

  /// Sum of edge lengths from the root, for all nodes.
  std::vector<double> RootPathWeights() const;

  /// All leaf ids in pre-order.
  std::vector<NodeId> Leaves() const;

  /// Leaf count.
  size_t LeafCount() const;

  /// Maximum depth in edges.
  uint32_t MaxDepth() const;

  /// Finds the first node with this name (linear scan); kNoNode if
  /// none. Kept as the oracle for NameIndex; use a NameIndex for
  /// anything hot.
  NodeId FindByName(std::string_view name) const;

  // -- packed representation ------------------------------------------------

  /// Raw name arena (offset-addressed, NUL-terminated labels). Exposed
  /// for the storage codec and the name index.
  const std::string& name_arena() const { return name_arena_; }

  /// Byte offset of node n's label inside name_arena() (0 = empty).
  uint32_t name_offset(NodeId n) const { return name_offset_[n]; }

  /// Parent vector view, for the storage codec.
  const std::vector<NodeId>& parents() const { return parent_; }

  /// Edge-length vector view, for the storage codec.
  const std::vector<double>& edge_lengths() const { return edge_length_; }

  /// Name-offset vector view, for the storage codec.
  const std::vector<uint32_t>& name_offsets() const { return name_offset_; }

  /// Allocated bytes of the packed representation (vector capacities +
  /// name arena + transient append accelerator). Used by
  /// bench_tree_footprint and cache accounting.
  size_t MemoryFootprintBytes() const;

  // -- structural helpers ---------------------------------------------------

  /// Naive LCA by parent walks (baseline for the labeling schemes).
  NodeId NaiveLca(NodeId a, NodeId b) const;

  /// True if `anc` is an ancestor of (or equal to) `n`.
  bool IsAncestorOrSelf(NodeId anc, NodeId n) const;

  /// Checks structural equality including names and edge lengths
  /// (within eps), respecting child order if ordered=true, otherwise
  /// comparing as unordered trees (children matched by canonical form).
  static bool Equal(const PhyloTree& a, const PhyloTree& b, double eps = 1e-9,
                    bool ordered = false);

  /// Validates internal invariants (parent/child agreement, single root,
  /// acyclicity). Used by tests and the loader.
  Status Validate() const;

 private:
  /// Appends `name` to the arena NUL-terminated and returns its offset
  /// (0 for the shared empty label).
  uint32_t InternName(std::string_view name);

  /// Recomputes last_child_ from the sibling chains (the last child of
  /// p is its highest-id child because children append in node order).
  void RebuildLastChild();

  // Packed per-node columns: 4+4+4+8+4 = 24 fixed bytes per node.
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<double> edge_length_;
  std::vector<uint32_t> name_offset_;

  // One contiguous buffer of NUL-terminated labels; byte 0 is the
  // shared empty label. Lazily seeded on first node.
  std::string name_arena_;

  // Transient O(1)-append accelerator: last child per node. Dropped by
  // ShrinkToFit() and rebuilt lazily on the next AddChild.
  std::vector<NodeId> last_child_;
};

}  // namespace crimson

#endif  // CRIMSON_TREE_PHYLO_TREE_H_
