// PhyloTree: the in-memory phylogenetic tree model. Arena-backed
// (indices, not pointers) so trees with millions of nodes stay compact
// and traversals stay cache-friendly. Edge lengths live on the child
// node (the edge to its parent), matching Newick semantics.
//
// Phylogenetic trees differ from XML documents in exactly the ways the
// paper stresses: they are deep (simulation trees average depth > 1000
// and can reach 10^6 levels) and queried by structure, not by path.

#ifndef CRIMSON_TREE_PHYLO_TREE_H_
#define CRIMSON_TREE_PHYLO_TREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crimson {

/// Node handle; index into the tree's arena.
using NodeId = uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Rooted tree with named leaves and weighted edges.
class PhyloTree {
 public:
  PhyloTree() = default;

  PhyloTree(PhyloTree&&) = default;
  PhyloTree& operator=(PhyloTree&&) = default;
  PhyloTree(const PhyloTree&) = default;
  PhyloTree& operator=(const PhyloTree&) = default;

  // -- construction ---------------------------------------------------------

  /// Creates the root. Must be called exactly once, first.
  NodeId AddRoot(std::string name = "", double edge_length = 0.0);

  /// Adds a child under `parent` with the length of the edge
  /// (parent -> child). Children keep insertion order.
  NodeId AddChild(NodeId parent, std::string name = "",
                  double edge_length = 0.0);

  /// Reserves arena capacity (perf knob for big builds).
  void Reserve(size_t n);

  // -- basic accessors ------------------------------------------------------

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kNoNode : 0; }

  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  NodeId first_child(NodeId n) const { return nodes_[n].first_child; }
  NodeId next_sibling(NodeId n) const { return nodes_[n].next_sibling; }
  bool is_leaf(NodeId n) const { return nodes_[n].first_child == kNoNode; }
  const std::string& name(NodeId n) const { return nodes_[n].name; }
  double edge_length(NodeId n) const { return nodes_[n].edge_length; }

  void set_name(NodeId n, std::string name) {
    nodes_[n].name = std::move(name);
  }
  void set_edge_length(NodeId n, double len) { nodes_[n].edge_length = len; }

  /// Number of children (O(degree)).
  int OutDegree(NodeId n) const;

  /// Children of n in order (O(degree) allocation; prefer the sibling
  /// chain in hot loops).
  std::vector<NodeId> Children(NodeId n) const;

  // -- traversal ------------------------------------------------------------

  /// Pre-order visit of the subtree rooted at `start` (default: root).
  /// fn returns false to stop early.
  void PreOrder(const std::function<bool(NodeId)>& fn,
                NodeId start = 0) const;

  /// Post-order visit (children before parent).
  void PostOrder(const std::function<bool(NodeId)>& fn,
                 NodeId start = 0) const;

  /// Pre-order ranks for all nodes: rank[n] = position of n in preorder.
  std::vector<uint32_t> PreOrderRanks() const;

  /// Depth in edges from the root, for all nodes.
  std::vector<uint32_t> Depths() const;

  /// Sum of edge lengths from the root, for all nodes.
  std::vector<double> RootPathWeights() const;

  /// All leaf ids in pre-order.
  std::vector<NodeId> Leaves() const;

  /// Leaf count.
  size_t LeafCount() const;

  /// Maximum depth in edges.
  uint32_t MaxDepth() const;

  /// Finds the first node with this name (linear scan); kNoNode if none.
  NodeId FindByName(std::string_view name) const;

  // -- structural helpers ---------------------------------------------------

  /// Naive LCA by parent walks (baseline for the labeling schemes).
  NodeId NaiveLca(NodeId a, NodeId b) const;

  /// True if `anc` is an ancestor of (or equal to) `n`.
  bool IsAncestorOrSelf(NodeId anc, NodeId n) const;

  /// Checks structural equality including names and edge lengths
  /// (within eps), respecting child order if ordered=true, otherwise
  /// comparing as unordered trees (children matched by canonical form).
  static bool Equal(const PhyloTree& a, const PhyloTree& b, double eps = 1e-9,
                    bool ordered = false);

  /// Validates internal invariants (parent/child agreement, single root,
  /// acyclicity). Used by tests and the loader.
  Status Validate() const;

 private:
  struct Node {
    std::string name;
    double edge_length = 0.0;
    NodeId parent = kNoNode;
    NodeId first_child = kNoNode;
    NodeId last_child = kNoNode;  // for O(1) append
    NodeId next_sibling = kNoNode;
  };

  std::vector<Node> nodes_;
};

}  // namespace crimson

#endif  // CRIMSON_TREE_PHYLO_TREE_H_
