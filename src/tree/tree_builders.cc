#include "tree/tree_builders.h"

#include "common/string_util.h"

namespace crimson {

PhyloTree MakePaperFigure1Tree() {
  // Reconstructed from three worked examples in the paper that pin the
  // shape and weights down uniquely:
  //  * Dewey labels: Lla = (2.1.1), Spy = (2.1.2), LCA = (2.1)  [§2.1]
  //    -> root's 2nd child is an internal node P; P's 1st child is an
  //       internal node x; x's children are Lla, Spy.
  //  * Projection of {Bha, Lla, Syn} (Fig. 2): root -> P' = 0.75,
  //    P' -> Bha = 1.5, P' -> Lla = 1.5 (merged 0.5 + 1.0 through x),
  //    root -> Syn = 2.5.
  //  * Sampling at time 1 (§2.2): the frontier of minimal nodes with
  //    root-path weight > 1 is exactly {Bha, x, Syn, Bsu}:
  //    Bha = 0.75+1.5 = 2.25, x = 0.75+0.5 = 1.25, Syn = 2.5,
  //    Bsu = 1.25.
  PhyloTree t;
  NodeId root = t.AddRoot("root");
  t.AddChild(root, "Syn", 2.5);                  // child 1
  NodeId p = t.AddChild(root, "", 0.75);         // child 2 ("P", node 3 in Fig. 4)
  t.AddChild(root, "Bsu", 1.25);                 // child 3
  NodeId x = t.AddChild(p, "", 0.5);             // P child 1 ("x", node 4 in Fig. 4)
  t.AddChild(p, "Bha", 1.5);                     // P child 2
  t.AddChild(x, "Lla", 1.0);                     // x child 1 -> Dewey 2.1.1
  t.AddChild(x, "Spy", 1.0);                     // x child 2 -> Dewey 2.1.2
  return t;
}

PhyloTree MakeCaterpillar(uint32_t depth, double edge_len) {
  PhyloTree t;
  t.Reserve(2 * depth + 2);
  NodeId cur = t.AddRoot("");
  for (uint32_t d = 0; d < depth; ++d) {
    t.AddChild(cur, StrFormat("L%u", d), edge_len);
    cur = t.AddChild(cur, "", edge_len);
  }
  t.set_name(cur, StrFormat("L%u", depth));
  return t;
}

PhyloTree MakeBalancedBinary(uint32_t levels, double edge_len) {
  PhyloTree t;
  t.Reserve((2u << levels));
  NodeId root = t.AddRoot("");
  std::vector<NodeId> frontier = {root};
  for (uint32_t lvl = 0; lvl < levels; ++lvl) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * 2);
    for (NodeId n : frontier) {
      next.push_back(t.AddChild(n, "", edge_len));
      next.push_back(t.AddChild(n, "", edge_len));
    }
    frontier = std::move(next);
  }
  for (size_t i = 0; i < frontier.size(); ++i) {
    t.set_name(frontier[i], StrFormat("L%zu", i));
  }
  return t;
}

PhyloTree MakeRandomBinary(uint32_t n_leaves, Rng* rng) {
  // Grow by repeatedly picking a random current leaf and giving it two
  // children; the picked node becomes internal. Produces a random
  // binary shape whose depth concentrates around O(log n) with heavy
  // tails, useful as a generic workload.
  PhyloTree t;
  if (n_leaves == 0) return t;
  t.Reserve(2 * n_leaves);
  NodeId root = t.AddRoot("");
  if (n_leaves == 1) {
    t.set_name(root, "L0");
    return t;
  }
  std::vector<NodeId> leaves = {root};
  while (leaves.size() < n_leaves) {
    size_t pick = static_cast<size_t>(rng->Uniform(leaves.size()));
    NodeId n = leaves[pick];
    NodeId a = t.AddChild(n, "", rng->Exponential(1.0));
    NodeId b = t.AddChild(n, "", rng->Exponential(1.0));
    leaves[pick] = a;
    leaves.push_back(b);
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    t.set_name(leaves[i], StrFormat("L%zu", i));
  }
  return t;
}

}  // namespace crimson
