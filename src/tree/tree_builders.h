// Deterministic tree constructors used by tests, benches, and examples,
// including the exact worked example from the paper (Figure 1).

#ifndef CRIMSON_TREE_TREE_BUILDERS_H_
#define CRIMSON_TREE_TREE_BUILDERS_H_

#include <cstdint>

#include "common/random.h"
#include "tree/phylo_tree.h"

namespace crimson {

/// The sample phylogenetic tree of paper Figure 1:
///
///        root
///       /    \        root->A: 1.25,  root->Bsu: 2.5
///      A      Bsu
///     / \             A->Bha: 1.5,  A->B: 0.75
///   Bha   B
///        /|\          B->Lla: 0.75(*), B->Spy: 1, B->Syn? no --
///
/// Exactly as drawn: root has children {A, Bsu}; A has {Bha, B, Syn};
/// B has {Lla, Spy}. Edge weights: root->A=1.25, root->Bsu=2.5,
/// A->Bha=1.5, A->B=0.75, A->Syn=1.5? -- see the cc for the calibrated
/// numbers; they reproduce both the Figure 2 projection (Lla edge
/// 0.75+0.75=1.5) and the §2.2 time-sampling frontier at t=1.
PhyloTree MakePaperFigure1Tree();

/// Caterpillar (maximally deep) tree: depth internal levels, one leaf
/// hanging off each internal node plus a terminal leaf. Leaf names
/// "L0".."L<depth>"; every edge has length edge_len.
PhyloTree MakeCaterpillar(uint32_t depth, double edge_len = 1.0);

/// Perfectly balanced binary tree with 2^levels leaves ("L0"...).
PhyloTree MakeBalancedBinary(uint32_t levels, double edge_len = 1.0);

/// Random binary tree shape over n leaves grown by random leaf-edge
/// splitting (uniform over a broad class of shapes); edge lengths
/// drawn Exponential(1).
PhyloTree MakeRandomBinary(uint32_t n_leaves, Rng* rng);

}  // namespace crimson

#endif  // CRIMSON_TREE_TREE_BUILDERS_H_
