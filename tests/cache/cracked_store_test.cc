// Unit tests for the cracked sequence store: piece-map refinement,
// fetch slicing and alignment, missing-name handling, fetch error
// propagation, the MapSequenceSource adapter, and concurrent GetBatch.

#include "cache/cracked_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "common/string_util.h"

namespace crimson {
namespace cache {
namespace {

/// A backing "storage" of n species named s000..s{n-1} (zero-padded so
/// lexicographic order equals numeric order), sequence = "SEQ_<name>".
/// Records every fetch so tests can assert slicing behavior.
class FakeBacking {
 public:
  explicit FakeBacking(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      names_.push_back(StrFormat("s%03zu", i));
    }
  }

  const std::vector<std::string>& names() const { return names_; }

  CrackedSequenceStore::FetchFn fetcher() {
    return [this](const std::vector<std::string>& wanted)
               -> Result<std::map<std::string, std::string>> {
      std::lock_guard<std::mutex> lock(mu_);
      fetch_calls_.push_back(wanted);
      std::map<std::string, std::string> out;
      for (const std::string& name : wanted) {
        if (absent_.count(name)) continue;  // simulated missing sequence
        for (const std::string& n : names_) {
          if (n == name) {
            out[name] = "SEQ_" + name;
            fetched_total_.fetch_add(1);
            break;
          }
        }
      }
      return out;
    };
  }

  void MarkAbsent(const std::string& name) { absent_.insert(name); }

  size_t fetch_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fetch_calls_.size();
  }
  size_t fetched_total() const { return fetched_total_.load(); }
  std::vector<std::vector<std::string>> calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fetch_calls_;
  }

 private:
  std::vector<std::string> names_;
  std::set<std::string> absent_;
  mutable std::mutex mu_;
  std::vector<std::vector<std::string>> fetch_calls_;
  std::atomic<size_t> fetched_total_{0};
};

TEST(MapSequenceSourceTest, ServesPresentAndReportsMissing) {
  std::map<std::string, std::string> backing = {{"a", "AA"}, {"b", "BB"}};
  MapSequenceSource source(&backing);
  auto got = source.GetBatch({"b", "a"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at("a"), "AA");
  EXPECT_EQ(got->at("b"), "BB");

  auto missing = source.GetBatch({"a", "ghost"});
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_NE(missing.status().message().find(
                "no sequence for sampled species 'ghost'"),
            std::string::npos);
}

TEST(CrackedStoreTest, FirstTouchLoadsOnlyTheAlignedSlice) {
  FakeBacking backing(100);
  CrackedSequenceStore store(backing.names(), /*min_piece=*/8,
                             backing.fetcher());
  EXPECT_EQ(store.domain_size(), 100u);

  // Touch ordinals 10 and 11: one fetch, aligned out to [8, 16).
  auto got = store.GetBatch({"s010", "s011"});
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->at("s010"), "SEQ_s010");
  EXPECT_EQ(backing.fetch_calls(), 1u);
  EXPECT_EQ(backing.fetched_total(), 8u);

  CrackedStoreStats stats = store.stats();
  EXPECT_EQ(stats.sequences_loaded, 8u);
  EXPECT_EQ(stats.sequences_total, 100u);
  EXPECT_EQ(stats.loaded_pieces, 1u);
  EXPECT_GT(stats.pieces, 1u) << "cracking must have split the domain";
}

TEST(CrackedStoreTest, RepeatQueriesAreServedWithoutFetching) {
  FakeBacking backing(100);
  CrackedSequenceStore store(backing.names(), 8, backing.fetcher());
  ASSERT_TRUE(store.GetBatch({"s010", "s011"}).ok());
  const size_t calls_after_first = backing.fetch_calls();

  for (int i = 0; i < 5; ++i) {
    auto again = store.GetBatch({"s011", "s010", "s012"});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->size(), 3u);
  }
  EXPECT_EQ(backing.fetch_calls(), calls_after_first)
      << "the touched region is resident; repeats must not re-fetch";
  EXPECT_EQ(store.stats().piece_hits, 5u);
}

TEST(CrackedStoreTest, DisjointTouchesCrackIndependentPieces) {
  FakeBacking backing(100);
  CrackedSequenceStore store(backing.names(), 8, backing.fetcher());

  ASSERT_TRUE(store.GetBatch({"s005"}).ok());
  ASSERT_TRUE(store.GetBatch({"s090"}).ok());
  // Two separated touches: two fetches, nothing in between loaded.
  EXPECT_EQ(backing.fetch_calls(), 2u);
  EXPECT_EQ(backing.fetched_total(), 16u);
  EXPECT_EQ(store.stats().loaded_pieces, 2u);

  // The gap is still cold: touching it fetches, and never re-fetches
  // the flanks (nothing is fetched twice).
  ASSERT_TRUE(store.GetBatch({"s050"}).ok());
  EXPECT_EQ(backing.fetched_total(), 24u);
  std::set<std::string> seen;
  for (const auto& call : backing.calls()) {
    for (const auto& name : call) {
      EXPECT_TRUE(seen.insert(name).second)
          << name << " was fetched more than once";
    }
  }
}

TEST(CrackedStoreTest, ScatteredWorkloadConvergesToFullResidency) {
  FakeBacking backing(64);
  CrackedSequenceStore store(backing.names(), 4, backing.fetcher());
  std::vector<std::string> all = backing.names();
  ASSERT_TRUE(store.GetBatch(all).ok());
  EXPECT_EQ(store.stats().sequences_loaded, 64u);
  // Full residency: later batches never fetch again.
  ASSERT_TRUE(store.GetBatch(all).ok());
  EXPECT_EQ(backing.fetched_total(), 64u);
}

TEST(CrackedStoreTest, NameOutsideTheDomainIsNotFound) {
  FakeBacking backing(16);
  CrackedSequenceStore store(backing.names(), 4, backing.fetcher());
  auto got = store.GetBatch({"s001", "zebra"});
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
  EXPECT_NE(
      got.status().message().find("no sequence for sampled species 'zebra'"),
      std::string::npos);
}

TEST(CrackedStoreTest, DomainNameWithNoStoredSequenceIsNotFound) {
  FakeBacking backing(16);
  backing.MarkAbsent("s003");
  CrackedSequenceStore store(backing.names(), 4, backing.fetcher());
  auto got = store.GetBatch({"s003"});
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
  EXPECT_NE(
      got.status().message().find("no sequence for sampled species 's003'"),
      std::string::npos);
  // The miss is remembered: no second fetch for the same piece.
  const size_t calls = backing.fetch_calls();
  EXPECT_FALSE(store.GetBatch({"s003"}).ok());
  EXPECT_EQ(backing.fetch_calls(), calls);
}

TEST(CrackedStoreTest, FetchErrorsPropagateAndDoNotPoisonTheStore) {
  FakeBacking backing(32);
  std::atomic<bool> fail{true};
  CrackedSequenceStore::FetchFn inner = backing.fetcher();
  CrackedSequenceStore store(
      backing.names(), 4,
      [&fail, inner](const std::vector<std::string>& names)
          -> Result<std::map<std::string, std::string>> {
        if (fail.load()) return Status::Unavailable("backing offline");
        return inner(names);
      });

  auto got = store.GetBatch({"s010"});
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable());

  // The failed slice was not marked loaded; once the backing recovers
  // the same batch succeeds.
  fail.store(false);
  auto retry = store.GetBatch({"s010"});
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->at("s010"), "SEQ_s010");
}

TEST(CrackedStoreTest, MinPieceZeroBehavesAsOne) {
  FakeBacking backing(16);
  CrackedSequenceStore store(backing.names(), 0, backing.fetcher());
  ASSERT_TRUE(store.GetBatch({"s007"}).ok());
  EXPECT_EQ(backing.fetched_total(), 1u);
}

TEST(CrackedStoreStressTest, ConcurrentBatchesLoadEachSequenceOnce) {
  FakeBacking backing(200);
  CrackedSequenceStore store(backing.names(), 8, backing.fetcher());
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        const size_t base = static_cast<size_t>((t * 31 + i * 7) % 190);
        std::vector<std::string> want = {StrFormat("s%03zu", base),
                                         StrFormat("s%03zu", base + 5)};
        auto got = store.GetBatch(want);
        if (!got.ok() || got->size() != want.size()) failures.fetch_add(1);
        for (const auto& name : want) {
          if (got.ok() && got->at(name) != "SEQ_" + name) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Nothing fetched twice, ever -- even under contention.
  std::set<std::string> seen;
  for (const auto& call : backing.calls()) {
    for (const auto& name : call) {
      EXPECT_TRUE(seen.insert(name).second)
          << name << " was fetched more than once";
    }
  }
  EXPECT_LE(store.stats().sequences_loaded, 200u);
}

}  // namespace
}  // namespace cache
}  // namespace crimson
