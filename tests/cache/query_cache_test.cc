// Unit tests for the adaptive query cache: cacheability and keying,
// the (generation, epoch) validity stamp protocol around begin /
// commit / abort, 2Q promotion and byte-budget eviction, EraseTree,
// and the zero-budget disabled mode.

#include "cache/query_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace crimson {
namespace cache {
namespace {

QueryResult LcaResult(const std::string& name) {
  return QueryResult(LcaAnswer{0, name});
}

/// A result whose retained size we can dial: a sample answer carrying
/// one species name of `bytes` characters.
QueryResult ResultOfSize(size_t bytes) {
  SampleAnswer a;
  a.species.push_back(std::string(bytes, 'x'));
  return QueryResult(std::move(a));
}

TEST(CacheabilityTest, SamplingKindsNeverCache) {
  EXPECT_TRUE(QueryCache::IsCacheable(QueryRequest(LcaQuery{"a", "b"})));
  EXPECT_TRUE(QueryCache::IsCacheable(QueryRequest(ProjectQuery{{"a"}})));
  EXPECT_TRUE(QueryCache::IsCacheable(QueryRequest(CladeQuery{{"a"}})));
  EXPECT_TRUE(QueryCache::IsCacheable(QueryRequest(PatternQuery{"(a,b);"})));
  EXPECT_FALSE(QueryCache::IsCacheable(QueryRequest(SampleUniformQuery{3})));
  EXPECT_FALSE(QueryCache::IsCacheable(QueryRequest(SampleTimeQuery{3, 1.0})));
}

TEST(CacheabilityTest, KeysSeparateKindsTreesAndParams) {
  const std::string a = QueryCache::KeyFor("t1", QueryRequest(LcaQuery{"x", "y"}));
  EXPECT_NE(a, QueryCache::KeyFor("t2", QueryRequest(LcaQuery{"x", "y"})));
  EXPECT_NE(a, QueryCache::KeyFor("t1", QueryRequest(LcaQuery{"x", "z"})));
  EXPECT_NE(a, QueryCache::KeyFor("t1", QueryRequest(CladeQuery{{"x", "y"}})));
  EXPECT_EQ(a, QueryCache::KeyFor("t1", QueryRequest(LcaQuery{"x", "y"})));
}

TEST(QueryCacheTest, InsertThenLookupHits) {
  QueryCache cache(1 << 20);
  ReadStamp stamp = cache.Stamp("t", 5);
  cache.Insert("t", "k", stamp, LcaResult("root"));
  auto hit = cache.Lookup("t", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<LcaAnswer>(*hit).name, "root");
  EXPECT_FALSE(cache.Lookup("t", "other").has_value());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_used, 0u);
}

TEST(QueryCacheTest, ZeroBudgetDisablesEverything) {
  QueryCache cache(0);
  EXPECT_FALSE(cache.enabled());
  ReadStamp stamp = cache.Stamp("t", 1);
  cache.Insert("t", "k", stamp, LcaResult("root"));
  EXPECT_FALSE(cache.Lookup("t", "k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(InvalidationTest, CommittedMutationInvalidatesOldStamps) {
  QueryCache cache(1 << 20);
  ReadStamp stamp = cache.Stamp("t", 3);
  cache.Insert("t", "k", stamp, LcaResult("old"));

  cache.BeginTreeMutation("t");
  cache.CommitTreeMutation("t", 4);

  EXPECT_FALSE(cache.Lookup("t", "k").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Post-mutation stamps validate again.
  ReadStamp fresh = cache.Stamp("t", 4);
  cache.Insert("t", "k", fresh, LcaResult("new"));
  auto hit = cache.Lookup("t", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<LcaAnswer>(*hit).name, "new");
}

TEST(InvalidationTest, AbortRestoresTheGeneration) {
  QueryCache cache(1 << 20);
  ReadStamp stamp = cache.Stamp("t", 3);
  cache.Insert("t", "k", stamp, LcaResult("kept"));

  cache.BeginTreeMutation("t");
  cache.AbortTreeMutation("t");

  // The aborted write changed nothing; the entry must survive.
  auto hit = cache.Lookup("t", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<LcaAnswer>(*hit).name, "kept");
}

TEST(InvalidationTest, StampTakenDuringMutationIsRejectedByEpochBarrier) {
  QueryCache cache(1 << 20);
  // A mutation is in flight; a concurrent reader stamps mid-mutation
  // (it already sees the bumped generation but a pre-commit epoch).
  cache.BeginTreeMutation("t");
  ReadStamp mid = cache.Stamp("t", /*committed_epoch=*/7);
  cache.CommitTreeMutation("t", /*committed_epoch=*/9);

  // Insert still succeeds or skips, but the entry must never be served:
  // the stamp's epoch (7) is below the barrier (9).
  cache.Insert("t", "k", mid, LcaResult("snapshot"));
  EXPECT_FALSE(cache.Lookup("t", "k").has_value());

  // Whereas a stamp at or past the barrier is fine.
  ReadStamp after = cache.Stamp("t", 9);
  cache.Insert("t", "k", after, LcaResult("current"));
  EXPECT_TRUE(cache.Lookup("t", "k").has_value());
}

TEST(InvalidationTest, MutationOnOneTreeLeavesOthersAlone) {
  // Keys are globally unique because KeyFor embeds the tree name; the
  // raw-key tests below follow the same discipline.
  QueryCache cache(1 << 20);
  cache.Insert("a", "a/k", cache.Stamp("a", 1), LcaResult("a"));
  cache.Insert("b", "b/k", cache.Stamp("b", 1), LcaResult("b"));

  cache.BeginTreeMutation("a");
  cache.CommitTreeMutation("a", 2);

  EXPECT_FALSE(cache.Lookup("a", "a/k").has_value());
  EXPECT_TRUE(cache.Lookup("b", "b/k").has_value());
}

TEST(InvalidationTest, EraseTreeDropsEntriesAndState) {
  QueryCache cache(1 << 20);
  cache.Insert("t", "t/k1", cache.Stamp("t", 1), LcaResult("x"));
  cache.Insert("t", "t/k2", cache.Stamp("t", 1), LcaResult("y"));
  cache.Insert("u", "u/k1", cache.Stamp("u", 1), LcaResult("z"));

  cache.EraseTree("t");
  EXPECT_FALSE(cache.Lookup("t", "t/k1").has_value());
  EXPECT_FALSE(cache.Lookup("t", "t/k2").has_value());
  EXPECT_TRUE(cache.Lookup("u", "u/k1").has_value());

  // A re-created tree under the same name starts from a clean slate:
  // generation 0 stamps validate again.
  cache.Insert("t", "t/k1", cache.Stamp("t", 1), LcaResult("fresh"));
  EXPECT_TRUE(cache.Lookup("t", "t/k1").has_value());
}

TEST(StalenessTest, InsertWithAgedStampIsSkipped) {
  QueryCache cache(1 << 20);
  ReadStamp stamp = cache.Stamp("t", 1);
  // The mutation lands while the query is still executing.
  cache.BeginTreeMutation("t");
  cache.CommitTreeMutation("t", 2);
  cache.Insert("t", "k", stamp, LcaResult("stale"));

  EXPECT_FALSE(cache.Lookup("t", "k").has_value());
  EXPECT_EQ(cache.stats().stale_skips, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ReplacementTest, BudgetEvictsProbationBeforeProtected) {
  // Budget fits ~4 entries of this size. "hot" is promoted to the
  // protected segment by a re-reference; the cold fill that follows
  // must evict only probation entries.
  QueryCache cache(4096);
  const ReadStamp stamp = cache.Stamp("t", 1);
  cache.Insert("t", "hot", stamp, ResultOfSize(500));
  ASSERT_TRUE(cache.Lookup("t", "hot").has_value());  // promote

  for (int i = 0; i < 16; ++i) {
    cache.Insert("t", "cold" + std::to_string(i), stamp, ResultOfSize(500));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().bytes_used, 4096u);
  EXPECT_TRUE(cache.Lookup("t", "hot").has_value())
      << "a burst of one-shot inserts must not flush the re-referenced entry";
}

TEST(ReplacementTest, OversizedEntryIsRejectedNotLooped) {
  QueryCache cache(1024);
  cache.Insert("t", "huge", cache.Stamp("t", 1), ResultOfSize(64 * 1024));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup("t", "huge").has_value());
}

TEST(ReplacementTest, BypassCounterTracksSamplingKinds) {
  QueryCache cache(1 << 20);
  cache.NoteBypass();
  cache.NoteBypass();
  EXPECT_EQ(cache.stats().bypassed, 2u);
}

TEST(QueryCacheStressTest, ConcurrentMixedTrafficStaysConsistent) {
  QueryCache cache(64 * 1024);
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      // One tree per thread: the begin/commit/abort hooks are
      // contract-bound to the single session writer, so no two threads
      // may mutate the same tree -- but all threads share the cache
      // structure, its lists, and its byte budget.
      const std::string tree = "t" + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        const std::string key = tree + "/k" + std::to_string(i % 32);
        if (i % 16 == 0) {
          cache.BeginTreeMutation(tree);
          if (i % 32 == 0) {
            cache.CommitTreeMutation(tree, static_cast<uint64_t>(i));
          } else {
            cache.AbortTreeMutation(tree);
          }
        }
        if (auto hit = cache.Lookup(tree, key); !hit.has_value()) {
          cache.Insert(tree, key, cache.Stamp(tree, static_cast<uint64_t>(i)),
                       ResultOfSize(64));
        }
        if (i % 64 == 0) cache.EraseTree(tree);
      }
    });
  }
  for (auto& t : threads) t.join();

  CacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes_used, 64u * 1024u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace cache
}  // namespace crimson
