#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace crimson {
namespace {

TEST(FixedCodingTest, Fixed16RoundTrip) {
  char buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xffffu}) {
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(FixedCodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0xffu, 0x12345678u, 0xffffffffu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(FixedCodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xdeadbeefcafebabe},
                     std::numeric_limits<uint64_t>::max()}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(FixedCodingTest, LittleEndianLayout) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(VarintTest, KnownEncodedSizes) {
  EXPECT_EQ(VarintLength(0), 1);
  EXPECT_EQ(VarintLength(127), 1);
  EXPECT_EQ(VarintLength(128), 2);
  EXPECT_EQ(VarintLength(16383), 2);
  EXPECT_EQ(VarintLength(16384), 3);
  EXPECT_EQ(VarintLength(std::numeric_limits<uint64_t>::max()), 10);
}

TEST(VarintTest, RoundTrip32Boundaries) {
  for (uint32_t v :
       {0u, 1u, 127u, 128u, 16383u, 16384u, 0xffffffu, 0xffffffffu}) {
    std::string buf;
    PutVarint32(&buf, v);
    Slice in(buf);
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(&in, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(VarintTest, Oversized32Rejected) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 35);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

// Property sweep: random round trips at several magnitudes.
class VarintPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintPropertyTest, RandomRoundTrips) {
  int bits = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(bits));
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Next() >> (64 - bits);
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, VarintPropertyTest,
                         ::testing::Values(1, 8, 16, 24, 32, 48, 63, 64));

TEST(LengthPrefixedTest, RoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice(std::string(1000, 'x')));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(LengthPrefixedTest, TruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  Slice in(buf.data(), buf.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &out));
}

TEST(DoubleCodingTest, RoundTripIncludingSpecials) {
  for (double d : {0.0, -0.0, 1.5, -273.15, 1e300, -1e-300,
                   std::numeric_limits<double>::infinity()}) {
    std::string buf;
    PutDouble(&buf, d);
    Slice in(buf);
    double decoded = 0;
    ASSERT_TRUE(GetDouble(&in, &decoded));
    EXPECT_EQ(decoded, d);
  }
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  Slice s("hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

}  // namespace
}  // namespace crimson
