#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace crimson {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(100);
  bool all_equal = true;
  Rng a2(99);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  uint64_t first = a.Next();
  a.Next();
  a.Reseed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (uint64_t n : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialPositiveWithRoughMean) {
  Rng rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  // Mean 1/rate = 0.5; tolerate 5% statistical wiggle.
  EXPECT_NEAR(sum / n, 0.5, 0.025);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  auto [n, k] = GetParam();
  Rng rng(6);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<uint64_t> s = rng.SampleWithoutReplacement(n, k);
    ASSERT_EQ(s.size(), k);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k) << "duplicates in sample";
    for (uint64_t x : s) EXPECT_LT(x, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SampleWithoutReplacementTest,
    ::testing::Values(std::make_pair(1ull, 1ull), std::make_pair(10ull, 0ull),
                      std::make_pair(10ull, 10ull),
                      std::make_pair(1000ull, 3ull),   // Floyd path
                      std::make_pair(1000ull, 900ull),  // dense path
                      std::make_pair(100000ull, 64ull)));

TEST(RngTest, SampleCoversAllElementsEventually) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int rep = 0; rep < 200; ++rep) {
    for (uint64_t x : rng.SampleWithoutReplacement(10, 3)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace crimson
