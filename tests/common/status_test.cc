#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace crimson {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing species");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing species");
  EXPECT_EQ(s.ToString(), "not_found: missing species");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, UnavailableCarriesRetryAfter) {
  Status s = Status::Unavailable("server saturated", 250);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.retry_after_ms(), 250);
  EXPECT_EQ(s.message(), "server saturated");
  EXPECT_EQ(s.ToString(), "unavailable: server saturated");

  // Default hint is "none"; other codes and OK report none too.
  EXPECT_EQ(Status::Unavailable("no hint").retry_after_ms(), 0);
  EXPECT_EQ(Status::IOError("disk").retry_after_ms(), 0);
  EXPECT_EQ(Status::OK().retry_after_ms(), 0);
}

TEST(StatusTest, RetryAfterSurvivesCopyAndMove) {
  Status s = Status::Unavailable("busy", 42);
  Status copied = s;
  EXPECT_EQ(copied.retry_after_ms(), 42);
  Status assigned = Status::IOError("disk");
  assigned = s;
  EXPECT_EQ(assigned.retry_after_ms(), 42);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsUnavailable());
  EXPECT_EQ(moved.retry_after_ms(), 42);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad page");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad page");
  // Copy assignment over a non-OK status.
  Status u = Status::IOError("disk");
  u = s;
  EXPECT_TRUE(u.IsCorruption());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::IOError("pread");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIOError());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "unavailable");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  CRIMSON_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsOutOfRange());
  EXPECT_EQ(bad.value_or(-1), -1);
}

Result<int> DoubleIt(int x) {
  CRIMSON_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = DoubleIt(-3);
  EXPECT_TRUE(bad.status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace crimson
