#include "common/string_util.h"

#include <gtest/gtest.h>

namespace crimson {
namespace {

TEST(StrSplitTest, BasicAndEmptyFields) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
  EXPECT_EQ(StrSplit("abc", ',').size(), 1u);
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"x"}, ","), "x");
}

TEST(StripWhitespaceTest, Strips) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("BEGIN", "begin"));
  EXPECT_TRUE(EqualsIgnoreCase("TaXa", "tAxA"));
  EXPECT_FALSE(EqualsIgnoreCase("taxa", "tax"));
  EXPECT_EQ(ToUpperAscii("nexus"), "NEXUS");
  EXPECT_EQ(ToLowerAscii("NeXuS"), "nexus");
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("9999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0.75"), 0.75);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5abc").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long output beyond any small static buffer.
  std::string long_out = StrFormat("%s", std::string(5000, 'y').c_str());
  EXPECT_EQ(long_out.size(), 5000u);
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace crimson
