#include "crimson/benchmark_manager.h"

#include <gtest/gtest.h>

#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace crimson {
namespace {

class BenchmarkManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(777);
    YuleOptions opts;
    opts.n_leaves = 64;
    auto t = SimulateYule(opts, &rng);
    ASSERT_TRUE(t.ok());
    tree_ = std::move(t).value();
    // Scale edges so sequences diverge measurably but not to saturation.
    double height = tree_.RootPathWeights()[tree_.Leaves()[0]];
    for (NodeId n = 1; n < tree_.size(); ++n) {
      tree_.set_edge_length(n, tree_.edge_length(n) / height * 0.8);
    }
    SeqEvolveOptions seq_opts;
    seq_opts.model = SubstModel::kJC69;
    seq_opts.seq_length = 800;
    auto ev = SequenceEvolver::Create(seq_opts);
    ASSERT_TRUE(ev.ok());
    auto seqs = ev->EvolveLeaves(tree_, &rng);
    ASSERT_TRUE(seqs.ok());
    seqs_ = std::move(seqs).value();
    manager_ = std::make_unique<BenchmarkManager>(&tree_, &seqs_, 8);
    ASSERT_TRUE(manager_->Init().ok());
  }

  PhyloTree tree_;
  std::map<std::string, std::string> seqs_;
  std::unique_ptr<BenchmarkManager> manager_;
};

TEST_F(BenchmarkManagerTest, UniformSelectionEndToEnd) {
  Rng rng(1);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 16;
  auto nj = MakeNjAlgorithm();
  auto run = manager_->Evaluate(*nj, sel, &rng, /*compute_triplets=*/true);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->algorithm, "neighbor_joining");
  EXPECT_EQ(run->sample_size, 16u);
  EXPECT_EQ(run->reference.LeafCount(), 16u);
  EXPECT_EQ(run->reconstructed.LeafCount(), 16u);
  EXPECT_LE(run->rf.normalized, 1.0);
  EXPECT_GT(run->triplets.total, 0u);
  // With 800 sites on a shallow tree NJ should be decent.
  EXPECT_LT(run->rf.normalized, 0.5);
}

TEST_F(BenchmarkManagerTest, TimeSelection) {
  Rng rng(2);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kWithRespectToTime;
  sel.k = 12;
  sel.time = 0.1;
  auto upgma = MakeUpgmaAlgorithm();
  auto run = manager_->Evaluate(*upgma, sel, &rng);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->algorithm, "upgma");
  EXPECT_EQ(run->sample_size, 12u);
}

TEST_F(BenchmarkManagerTest, UserListSelection) {
  Rng rng(3);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUserList;
  sel.species = {"S0", "S1", "S2", "S3", "S4"};
  auto nj = MakeNjAlgorithm();
  auto run = manager_->Evaluate(*nj, sel, &rng);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->sample_size, 5u);
  std::set<std::string> names;
  for (NodeId n : run->reference.Leaves()) {
    names.insert(std::string(run->reference.name(n)));
  }
  EXPECT_EQ(names, (std::set<std::string>{"S0", "S1", "S2", "S3", "S4"}));
}

TEST_F(BenchmarkManagerTest, UnknownSpeciesRejected) {
  Rng rng(4);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUserList;
  sel.species = {"S0", "S1", "NotASpecies"};
  auto nj = MakeNjAlgorithm();
  EXPECT_TRUE(manager_->Evaluate(*nj, sel, &rng).status().IsNotFound());
}

TEST_F(BenchmarkManagerTest, TooSmallSampleRejected) {
  Rng rng(5);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 2;
  auto nj = MakeNjAlgorithm();
  EXPECT_TRUE(
      manager_->Evaluate(*nj, sel, &rng).status().IsInvalidArgument());
}

TEST_F(BenchmarkManagerTest, PerfectDataGivesPerfectNj) {
  // A custom "oracle" algorithm returning the reference itself must
  // score RF = 0: validates the comparison plumbing.
  class Oracle final : public ReconstructionAlgorithm {
   public:
    explicit Oracle(const BenchmarkManager* m) : m_(m) {}
    std::string name() const override { return "oracle"; }
    Result<PhyloTree> Reconstruct(
        const std::map<std::string, std::string>& seqs) const override {
      std::vector<NodeId> nodes;
      const PhyloTree& t = m_->projector().tree();
      for (const auto& [name, seq] : seqs) {
        nodes.push_back(t.FindByName(name));
      }
      return m_->projector().Project(nodes);
    }

   private:
    const BenchmarkManager* m_;
  };
  Rng rng(6);
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 20;
  Oracle oracle(manager_.get());
  auto run = manager_->Evaluate(oracle, sel, &rng);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->rf.distance, 0u);
}

TEST(BenchmarkManagerInitTest, RequiresTreeAndInit) {
  std::map<std::string, std::string> empty;
  BenchmarkManager bad(nullptr, &empty);
  EXPECT_FALSE(bad.Init().ok());
  PhyloTree t;
  BenchmarkManager also_bad(&t, &empty);
  EXPECT_FALSE(also_bad.Init().ok());
}

}  // namespace
}  // namespace crimson
