// Session-level tests for the adaptive query cache: a cache-enabled
// session must be byte-identical to a cache-disabled one across every
// query kind and across random interleavings of queries with
// StoreTree / AppendSpeciesData / aborted writes; DropTree must evict
// eagerly so a re-stored same-name tree never serves stale state; and
// concurrent readers racing a writer must never observe a
// pre-mutation cached result after the mutation commits.

#include "crimson/crimson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace crimson {
namespace {

constexpr char kFig1Newick[] =
    "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";
constexpr char kAltNewick[] =
    "((Syn:1,Bsu:1):0.5,(Lla:2,(Spy:1,Bha:1):0.5):0.25)root;";

std::unique_ptr<Crimson> OpenSession(uint64_t seed, uint64_t cache_bytes) {
  CrimsonOptions opts;
  opts.f = 3;
  opts.seed = seed;
  opts.batch_workers = 4;
  opts.query_cache_bytes = cache_bytes;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

std::vector<QueryRequest> SixKinds() {
  return {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(SampleUniformQuery{3}),
      QueryRequest(SampleTimeQuery{4, 1.0}),
      QueryRequest(CladeQuery{{"Lla", "Spy"}}),
      QueryRequest(PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true}),
  };
}

TEST(CacheSessionTest, RepeatedQueriesHitAndStayByteIdentical) {
  auto crimson = OpenSession(42, 1 << 20);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok()) << report.status();
  TreeRef tree = report->ref;

  const QueryRequest cacheable[] = {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(CladeQuery{{"Lla", "Spy"}}),
      QueryRequest(PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true}),
  };
  std::vector<std::string> first;
  for (const QueryRequest& request : cacheable) {
    auto r = crimson->Execute(tree, request);
    ASSERT_TRUE(r.ok()) << r.status();
    first.push_back(RenderResult(*r));
  }
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      auto r = crimson->Execute(tree, cacheable[i]);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(RenderResult(*r), first[i]) << "round " << round << " req " << i;
    }
  }
  cache::CacheStats stats = crimson->GetCacheStats();
  EXPECT_EQ(stats.hits, 12u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 4u);

  // Cached executions are still recorded in history like uncached ones.
  auto history = crimson->QueryHistory(32);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 16u);
}

TEST(CacheSessionTest, SamplingBypassesTheCacheButKeepsTicketParity) {
  // Cache hits consume RNG tickets exactly like the executions they
  // replace, so a cache-enabled session and a cache-disabled one draw
  // identical sampling streams through an identical query sequence.
  auto cached = OpenSession(7, 1 << 20);
  auto uncached = OpenSession(7, 0);
  TreeRef ct = cached->LoadNewick("fig1", kFig1Newick).value().ref;
  TreeRef ut = uncached->LoadNewick("fig1", kFig1Newick).value().ref;

  for (int round = 0; round < 4; ++round) {
    for (const QueryRequest& request : SixKinds()) {
      auto a = cached->Execute(ct, request);
      auto b = uncached->Execute(ut, request);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(RenderResult(*a), RenderResult(*b))
          << "round " << round << " kind " << QueryKindName(request);
    }
  }
  cache::CacheStats stats = cached->GetCacheStats();
  EXPECT_EQ(stats.bypassed, 8u) << "two sampling kinds x four rounds";
  EXPECT_EQ(stats.hits, 12u) << "four cacheable kinds x three repeat rounds";
  EXPECT_EQ(uncached->GetCacheStats().hits, 0u);
}

TEST(CacheSessionTest, RandomInterleavingsMatchUncachedByteForByte) {
  // Drive two same-seed sessions (cache on / cache off) through an
  // identical pseudo-random schedule of queries, tree stores, species
  // appends, and aborted writes; every answer must match byte for
  // byte, and no answer may leak across a mutation.
  Rng schedule(0x1234);
  auto cached = OpenSession(99, 1 << 20);
  auto uncached = OpenSession(99, 0);

  Rng tree_rng(0xFACE);
  YuleOptions yule_opts;
  yule_opts.n_leaves = 40;
  auto gold = SimulateYule(yule_opts, &tree_rng);
  ASSERT_TRUE(gold.ok());
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 64;
  auto evolver = SequenceEvolver::Create(seq_opts);
  auto sequences = evolver->EvolveLeaves(*gold, &tree_rng);
  ASSERT_TRUE(sequences.ok());

  TreeRef ct = cached->LoadNewick("fig1", kFig1Newick).value().ref;
  TreeRef ut = uncached->LoadNewick("fig1", kFig1Newick).value().ref;
  const std::vector<QueryRequest> requests = SixKinds();

  int stores = 0;
  for (int step = 0; step < 120; ++step) {
    const uint64_t op = schedule.Next() % 10;
    if (op < 7) {
      const QueryRequest& request = requests[schedule.Next() % requests.size()];
      auto a = cached->Execute(ct, request);
      auto b = uncached->Execute(ut, request);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
      if (a.ok()) {
        EXPECT_EQ(RenderResult(*a), RenderResult(*b)) << "step " << step;
      }
    } else if (op == 7) {
      // Store (or re-store) an unrelated tree: invalidation machinery
      // runs, fig1 entries must survive.
      const std::string name = StrFormat("extra%d", stores++ % 3);
      auto a = cached->LoadNewick(name, kAltNewick);
      auto b = uncached->LoadNewick(name, kAltNewick);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
    } else if (op == 8) {
      // Append species data to a tree that exists only on round 0
      // (re-appends conflict), so both outcomes are exercised.
      auto a = cached->LoadTree("gold", *gold);
      auto b = uncached->LoadTree("gold", *gold);
      ASSERT_EQ(a.ok(), b.ok());
      auto sa = cached->AppendSpeciesData("gold", *sequences);
      auto sb = uncached->AppendSpeciesData("gold", *sequences);
      ASSERT_EQ(sa.ok(), sb.ok()) << "step " << step;
    } else {
      // Aborted mutation: appending to a tree that does not exist
      // fails inside the write transaction and must roll back cleanly
      // (cache generations included).
      auto a = cached->AppendSpeciesData("ghost", *sequences);
      auto b = uncached->AppendSpeciesData("ghost", *sequences);
      EXPECT_FALSE(a.ok()) << "step " << step;
      ASSERT_EQ(a.ok(), b.ok());
    }
  }
  // The schedule above must actually have exercised the cache.
  EXPECT_GT(cached->GetCacheStats().hits, 0u);
}

TEST(CacheSessionTest, AppendSpeciesDataInvalidatesThatTreeOnly) {
  auto crimson = OpenSession(42, 1 << 20);
  Rng tree_rng(0xFACE);
  YuleOptions yule_opts;
  yule_opts.n_leaves = 24;
  auto gold = SimulateYule(yule_opts, &tree_rng);
  ASSERT_TRUE(gold.ok());
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 48;
  auto evolver = SequenceEvolver::Create(seq_opts);
  auto sequences = evolver->EvolveLeaves(*gold, &tree_rng);
  ASSERT_TRUE(sequences.ok());

  TreeRef fig = crimson->LoadNewick("fig1", kFig1Newick).value().ref;
  TreeRef yule = crimson->LoadTree("gold", *gold).value().ref;
  ASSERT_TRUE(crimson->Execute(fig, LcaQuery{"Lla", "Syn"}).ok());
  ASSERT_TRUE(crimson->Execute(yule, LcaQuery{"S1", "S5"}).ok());
  ASSERT_EQ(crimson->GetCacheStats().entries, 2u);

  ASSERT_TRUE(crimson->AppendSpeciesData("gold", *sequences).ok());

  // fig1's entry still hits; gold's was invalidated by the append.
  ASSERT_TRUE(crimson->Execute(fig, LcaQuery{"Lla", "Syn"}).ok());
  ASSERT_TRUE(crimson->Execute(yule, LcaQuery{"S1", "S5"}).ok());
  cache::CacheStats stats = crimson->GetCacheStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(DropTreeTest, ReStoredSameNameTreeNeverServesStaleState) {
  auto crimson = OpenSession(42, 1 << 20);
  TreeRef old_ref = crimson->LoadNewick("x", kFig1Newick).value().ref;

  auto before = crimson->Execute(old_ref, LcaQuery{"Spy", "Bha"});
  ASSERT_TRUE(before.ok());
  // In kFig1Newick, Spy and Bha join below the root (inner node);
  // in kAltNewick their LCA is their direct unnamed parent at depth 2.
  const std::string old_rendered = RenderResult(*before);

  ASSERT_TRUE(crimson->DropTree("x").ok());
  EXPECT_TRUE(crimson->OpenTree("x").status().IsNotFound());
  // The old handle is dead, not dangling.
  EXPECT_FALSE(crimson->Execute(old_ref, LcaQuery{"Spy", "Bha"}).ok());

  TreeRef new_ref = crimson->LoadNewick("x", kAltNewick).value().ref;
  auto after = crimson->Execute(new_ref, LcaQuery{"Spy", "Bha"});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(RenderResult(*after), old_rendered)
      << "the re-stored tree has a different topology; equal answers "
         "mean the drop leaked cached state";

  // By-name execution agrees with the fresh handle too.
  auto by_name = crimson->Execute(*crimson->OpenTree("x"),
                                  LcaQuery{"Spy", "Bha"});
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(RenderResult(*by_name), RenderResult(*after));
}

TEST(DropTreeTest, DropEvictsEvalStateForExperiments) {
  // Load a tree with sequences, run an experiment (materializes
  // EvalState), drop it, re-store under the same name with *different*
  // sequences: the rerun must see the new data, not the resident
  // pre-drop EvalState.
  Rng tree_rng(0x5EED);
  YuleOptions yule_opts;
  yule_opts.n_leaves = 16;
  auto gold = SimulateYule(yule_opts, &tree_rng);
  ASSERT_TRUE(gold.ok());
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 60;
  auto evolver = SequenceEvolver::Create(seq_opts);
  auto seqs_a = evolver->EvolveLeaves(*gold, &tree_rng);
  ASSERT_TRUE(seqs_a.ok());

  auto crimson = OpenSession(42, 1 << 20);
  TreeRef ref = crimson->LoadTree("g", *gold).value().ref;
  ASSERT_TRUE(crimson->AppendSpeciesData("g", *seqs_a).ok());

  ExperimentSpec spec;
  spec.algorithms = {"nj"};
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 8;
  spec.selections = {sel};
  spec.replicates = 1;
  spec.compute_triplets = false;
  ASSERT_TRUE(crimson->RunExperiment(ref, spec).ok());
  EXPECT_GT(crimson->GetCacheStats().crack_stores, 0u);

  ASSERT_TRUE(crimson->DropTree("g").ok());
  EXPECT_EQ(crimson->GetCacheStats().crack_stores, 0u)
      << "DropTree must evict the resident EvalState eagerly";

  // Re-store the same name with no sequences: the experiment must now
  // fail on missing data instead of silently reusing pre-drop state.
  TreeRef fresh = crimson->LoadTree("g", *gold).value().ref;
  auto rerun = crimson->RunExperiment(fresh, spec);
  EXPECT_FALSE(rerun.ok());
  EXPECT_TRUE(rerun.status().IsFailedPrecondition()) << rerun.status();
}

TEST(CacheSessionStressTest, ReadersRacingWritersNeverSeeStaleResults) {
  // Readers hammer one query on tree "hot" while a writer flips the
  // tree between two topologies via DropTree + re-store. Every
  // successful answer must match one of the two legal topologies, and
  // after the writer's final commit a fresh query must see the final
  // topology (no stale cache survivor).
  auto crimson = OpenSession(42, 1 << 20);
  ASSERT_TRUE(crimson->LoadNewick("hot", kFig1Newick).ok());

  // Precompute the two legal renderings from throwaway sessions.
  std::string legal_a, legal_b;
  {
    auto s = OpenSession(1, 0);
    TreeRef r = s->LoadNewick("hot", kFig1Newick).value().ref;
    legal_a = RenderResult(*s->Execute(r, LcaQuery{"Spy", "Bha"}));
  }
  {
    auto s = OpenSession(1, 0);
    TreeRef r = s->LoadNewick("hot", kAltNewick).value().ref;
    legal_b = RenderResult(*s->Execute(r, LcaQuery{"Spy", "Bha"}));
  }
  ASSERT_NE(legal_a, legal_b);

  std::atomic<bool> stop{false};
  std::atomic<int> stale{0};
  std::atomic<int> hits_ok{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto ref = crimson->OpenTree("hot");
        if (!ref.ok()) continue;  // racing the drop window
        auto r = crimson->Execute(*ref, LcaQuery{"Spy", "Bha"});
        if (!r.ok()) continue;  // handle died mid-flight; also legal
        const std::string rendered = RenderResult(*r);
        if (rendered == legal_a || rendered == legal_b) {
          hits_ok.fetch_add(1);
        } else {
          stale.fetch_add(1);
        }
      }
    });
  }

  bool alt = false;
  for (int flip = 0; flip < 20; ++flip) {
    alt = !alt;
    ASSERT_TRUE(crimson->DropTree("hot").ok());
    ASSERT_TRUE(
        crimson->LoadNewick("hot", alt ? kAltNewick : kFig1Newick).ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(stale.load(), 0);
  EXPECT_GT(hits_ok.load(), 0);

  // Post-drain determinism: the final topology answers, not a cached
  // relic of any earlier flip.
  auto final_ref = crimson->OpenTree("hot");
  ASSERT_TRUE(final_ref.ok());
  auto r = crimson->Execute(*final_ref, LcaQuery{"Spy", "Bha"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(RenderResult(*r), alt ? legal_b : legal_a);
}

TEST(CacheSessionStressTest, ConcurrentMixedKindsMatchSequentialSession) {
  // Four threads fire the full six-kind mix at a cached session via
  // ExecuteBatch while a fifth keeps storing unrelated trees. Every
  // per-batch result must equal the same batch on a quiet uncached
  // session (batch determinism is per-batch-ticket, so each batch is
  // independently reproducible).
  auto noisy = OpenSession(5, 1 << 20);
  ASSERT_TRUE(noisy->LoadNewick("fig1", kFig1Newick).ok());
  TreeRef nt = noisy->OpenTree("fig1").value();

  // Reference answers for the cacheable kinds (sampling kinds draw
  // from per-batch tickets, so they are checked for success only).
  auto quiet = OpenSession(5, 0);
  ASSERT_TRUE(quiet->LoadNewick("fig1", kFig1Newick).ok());
  TreeRef qt = quiet->OpenTree("fig1").value();
  const std::vector<QueryRequest> requests = SixKinds();
  std::vector<std::string> expected(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!cache::QueryCache::IsCacheable(requests[i])) continue;
    auto r = quiet->Execute(qt, requests[i]);
    ASSERT_TRUE(r.ok());
    expected[i] = RenderResult(*r);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 30; ++round) {
        auto results = noisy->ExecuteBatch(nt, requests);
        for (size_t i = 0; i < requests.size(); ++i) {
          if (!results[i].ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          if (!expected[i].empty() &&
              RenderResult(*results[i]) != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    int n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)noisy->LoadNewick(StrFormat("w%d", n++ % 4), kAltNewick);
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(mismatches.load(), 0);
  cache::CacheStats stats = noisy->GetCacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.bytes_used, stats.budget_bytes);
}

}  // namespace
}  // namespace crimson
