#include "crimson/crimson.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/seq_evolve.h"
#include "storage/file.h"
#include "tree/newick.h"
#include "tree/nexus.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

constexpr char kFig1Newick[] =
    "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";

class CrimsonFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CrimsonOptions opts;
    opts.f = 3;
    auto c = Crimson::Open(opts);
    ASSERT_TRUE(c.ok()) << c.status();
    crimson_ = std::move(c).value();
    auto report = crimson_->LoadNewick("fig1", kFig1Newick);
    ASSERT_TRUE(report.ok()) << report.status();
  }

  std::unique_ptr<Crimson> crimson_;
};

TEST_F(CrimsonFacadeTest, ListAndGetTree) {
  auto list = crimson_->ListTrees();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].name, "fig1");
  EXPECT_EQ((*list)[0].n_nodes, 8);
  auto tree = crimson_->GetTree("fig1");
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(PhyloTree::Equal(**tree, MakePaperFigure1Tree(), 1e-9,
                               /*ordered=*/false));
}

TEST_F(CrimsonFacadeTest, LcaQuery) {
  auto a = crimson_->Lca("fig1", "Lla", "Spy");
  ASSERT_TRUE(a.ok()) << a.status();
  auto tree = crimson_->GetTree("fig1");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(a->node, (*tree)->parent((*tree)->FindByName("Lla")));
  auto b = crimson_->Lca("fig1", "Lla", "Syn");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->name, "root");
  EXPECT_TRUE(crimson_->Lca("fig1", "Lla", "Zzz").status().IsNotFound());
  EXPECT_TRUE(crimson_->Lca("ghost", "A", "B").status().IsNotFound());
}

TEST_F(CrimsonFacadeTest, ProjectQueryMatchesFigure2) {
  auto proj = crimson_->Project("fig1", {"Bha", "Lla", "Syn"});
  ASSERT_TRUE(proj.ok()) << proj.status();
  auto expected = ParseNewick("((Lla:1.5,Bha:1.5):0.75,Syn:2.5)root;");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(PhyloTree::Equal(*proj, *expected, 1e-9, /*ordered=*/false));
}

TEST_F(CrimsonFacadeTest, SamplingQueries) {
  auto uniform = crimson_->SampleUniform("fig1", 3);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->size(), 3u);
  auto timed = crimson_->SampleWithRespectToTime("fig1", 4, 1.0);
  ASSERT_TRUE(timed.ok());
  std::set<std::string> names(timed->begin(), timed->end());
  EXPECT_TRUE(names.count("Bha"));
  EXPECT_TRUE(names.count("Syn"));
  EXPECT_TRUE(names.count("Bsu"));
}

TEST_F(CrimsonFacadeTest, CladeQuery) {
  auto clade = crimson_->MinimalClade("fig1", {"Lla", "Spy"});
  ASSERT_TRUE(clade.ok());
  EXPECT_EQ(clade->node_count, 3u);
  EXPECT_EQ(clade->leaf_count, 2u);
  auto wide = crimson_->MinimalClade("fig1", {"Lla", "Bsu"});
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->node_count, 8u);
}

TEST_F(CrimsonFacadeTest, PatternMatchQuery) {
  auto hit =
      crimson_->MatchPattern("fig1", "((Bha:1.5,Lla:1.5):0.75,Syn:2.5);",
                             /*match_weights=*/true);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->exact);
  // Non-match with 4 leaves so unrooted RF is informative (3-leaf
  // unrooted trees have no non-trivial splits).
  auto miss = crimson_->MatchPattern(
      "fig1", "((Bha:1,Lla:1):1,(Spy:1,Syn:1):1);",
      /*match_weights=*/false);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->exact);
  EXPECT_GT(miss->rf_normalized, 0.0);
}

TEST_F(CrimsonFacadeTest, QueryHistoryRecordsEverything) {
  ASSERT_TRUE(crimson_->Lca("fig1", "Lla", "Spy").ok());
  ASSERT_TRUE(crimson_->Project("fig1", {"Bha", "Syn"}).ok());
  ASSERT_TRUE(crimson_->SampleUniform("fig1", 2).ok());
  auto history = crimson_->QueryHistory();
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 3u);
  EXPECT_EQ((*history)[0].kind, "sample_uniform");
  EXPECT_EQ((*history)[1].kind, "project");
  EXPECT_EQ((*history)[2].kind, "lca");
  EXPECT_FALSE((*history)[2].summary.empty());
}

TEST_F(CrimsonFacadeTest, RerunQueryReproducesAnswers) {
  auto first = crimson_->Lca("fig1", "Lla", "Syn");
  ASSERT_TRUE(first.ok());
  auto history = crimson_->QueryHistory(1);
  ASSERT_TRUE(history.ok());
  int64_t qid = (*history)[0].query_id;
  auto rerun = crimson_->RerunQuery(qid);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_NE(rerun->find("root"), std::string::npos);
  // Projection reruns return Newick.
  ASSERT_TRUE(crimson_->Project("fig1", {"Bha", "Lla", "Syn"}).ok());
  history = crimson_->QueryHistory(1);
  auto proj_rerun = crimson_->RerunQuery((*history)[0].query_id);
  ASSERT_TRUE(proj_rerun.ok());
  auto reparsed = ParseNewick(*proj_rerun);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->LeafCount(), 3u);
}

TEST_F(CrimsonFacadeTest, WrappersShareTheTypedExecutePath) {
  // A legacy wrapper call and the equivalent typed Execute produce
  // identical history entries -- they are one dispatch path.
  ASSERT_TRUE(crimson_->Lca("fig1", "Lla", "Spy").ok());
  auto ref = crimson_->OpenTree("fig1");
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(crimson_->Execute(*ref, LcaQuery{"Lla", "Spy"}).ok());
  auto history = crimson_->QueryHistory(2);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[0].kind, (*history)[1].kind);
  EXPECT_EQ((*history)[0].params, (*history)[1].params);
  EXPECT_EQ((*history)[0].summary, (*history)[1].summary);
}

TEST_F(CrimsonFacadeTest, BenchmarkRequiresSpeciesData) {
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 4;
  auto nj = MakeNjAlgorithm();
  EXPECT_TRUE(crimson_->Benchmark("fig1", *nj, sel)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(CrimsonFacadeTest, BenchmarkWithLoadedSequences) {
  // Attach simulated sequences, then benchmark NJ end to end.
  auto tree = crimson_->GetTree("fig1");
  ASSERT_TRUE(tree.ok());
  SeqEvolveOptions opts;
  opts.seq_length = 400;
  auto ev = SequenceEvolver::Create(opts);
  ASSERT_TRUE(ev.ok());
  Rng rng(5);
  auto seqs = ev->EvolveLeaves(**tree, &rng);
  ASSERT_TRUE(seqs.ok());
  ASSERT_TRUE(crimson_->AppendSpeciesData("fig1", *seqs).ok());

  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 5;
  auto nj = MakeNjAlgorithm();
  auto run = crimson_->Benchmark("fig1", *nj, sel);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->sample_size, 5u);
  EXPECT_EQ(run->reconstructed.LeafCount(), 5u);
}

TEST(CrimsonPersistenceTest, OnDiskLifecycle) {
  std::string path = testing::TempDir() + "/crimson_facade.db";
  RemoveFile(path);
  {
    CrimsonOptions opts;
    opts.db_path = path;
    opts.f = 3;
    auto c = Crimson::Open(opts);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->LoadNewick("fig1", kFig1Newick).ok());
    ASSERT_TRUE((*c)->Lca("fig1", "Lla", "Spy").ok());
    ASSERT_TRUE((*c)->Flush().ok());
  }
  {
    CrimsonOptions opts;
    opts.db_path = path;
    auto c = Crimson::Open(opts);
    ASSERT_TRUE(c.ok());
    auto list = (*c)->ListTrees();
    ASSERT_TRUE(list.ok());
    ASSERT_EQ(list->size(), 1u);
    // Query history survived.
    auto history = (*c)->QueryHistory();
    ASSERT_TRUE(history.ok());
    ASSERT_EQ(history->size(), 1u);
    EXPECT_EQ((*history)[0].kind, "lca");
    // And the tree still answers queries.
    auto a = (*c)->Lca("fig1", "Lla", "Syn");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->name, "root");
  }
  RemoveFile(path);
}

TEST(CrimsonOptionsTest, DuplicateLoadRejected) {
  auto c = Crimson::Open();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->LoadNewick("t", "(A:1,B:1);").ok());
  EXPECT_TRUE((*c)->LoadNewick("t", "(C:1,D:1);").status().IsAlreadyExists());
}

}  // namespace
}  // namespace crimson

namespace crimson {
namespace {

TEST(CrimsonViewerTest, ExportNexusAndRender) {
  CrimsonOptions opts;
  opts.f = 3;
  auto c = Crimson::Open(opts);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(
      (*c)->LoadNewick("fig1",
                       "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)"
                       "root;")
          .ok());
  std::map<std::string, std::string> seqs = {{"Syn", "ACGT"},
                                             {"Bha", "TTTT"}};
  ASSERT_TRUE((*c)->AppendSpeciesData("fig1", seqs).ok());

  auto nexus = (*c)->ExportNexus("fig1");
  ASSERT_TRUE(nexus.ok()) << nexus.status();
  EXPECT_NE(nexus->find("#NEXUS"), std::string::npos);
  EXPECT_NE(nexus->find("TAXLABELS"), std::string::npos);
  EXPECT_NE(nexus->find("ACGT"), std::string::npos);
  EXPECT_NE(nexus->find("TREE fig1"), std::string::npos);
  // The exported document reparses to an equal tree.
  auto doc = ParseNexus(*nexus);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->trees.size(), 1u);
  EXPECT_TRUE(PhyloTree::Equal(doc->trees[0].tree, MakePaperFigure1Tree(),
                               1e-9, /*ordered=*/false));

  auto art = (*c)->RenderTree("fig1");
  ASSERT_TRUE(art.ok());
  EXPECT_NE(art->find("Lla:1"), std::string::npos);
  EXPECT_NE(art->find("└──"), std::string::npos);
  EXPECT_TRUE((*c)->RenderTree("ghost").status().IsNotFound());
}

TEST(CrimsonDuplicateBind, PreexistingDuplicateTreeBindsFirstOccurrence) {
  // Trees stored before the ingest-time duplicate check still open:
  // the bind warns and every name-addressed lookup resolves to the
  // first occurrence in node order, deterministically.
  const char* db_path = "dup_bind_facade.db";
  std::remove(db_path);
  {
    auto db = Database::Open(db_path, {});
    ASSERT_TRUE(db.ok()) << db.status();
    auto trees = TreeRepository::Open(db->get());
    ASSERT_TRUE(trees.ok());
    PhyloTree t;
    t.AddRoot("root");
    NodeId inner = t.AddChild(0, "", 1.0);
    t.AddChild(inner, "Dup", 1.0);  // node 2: first occurrence
    t.AddChild(inner, "C", 1.0);
    t.AddChild(0, "Dup", 2.0);  // node 4: shadowed duplicate
    LayeredDeweyScheme scheme(3);
    ASSERT_TRUE(scheme.Build(t).ok());
    ASSERT_TRUE((*trees)->StoreTree("legacy_dups", t, scheme).ok());
    ASSERT_TRUE(db.value()->Checkpoint().ok());
  }
  CrimsonOptions opts;
  opts.db_path = db_path;
  opts.f = 3;
  auto c = Crimson::Open(opts);
  ASSERT_TRUE(c.ok()) << c.status();
  auto ref = (*c)->OpenTree("legacy_dups");
  ASSERT_TRUE(ref.ok()) << ref.status();
  auto tree = (*c)->GetTree(*ref);
  ASSERT_TRUE(tree.ok());
  // "Dup" resolves to node 2 (the first occurrence), so LCA(Dup, C) is
  // their shared parent -- not the root that the shadowed node 4 would
  // produce.
  auto lca = (*c)->Lca("legacy_dups", "Dup", "C");
  ASSERT_TRUE(lca.ok()) << lca.status();
  EXPECT_EQ(lca->node, (*tree)->parent((*tree)->FindByName("Dup")));
  EXPECT_NE(lca->node, (*tree)->root());
  std::remove(db_path);
}

}  // namespace
}  // namespace crimson
